//! Golden integration tests: every number the paper states about the
//! running example, checked end-to-end through the public API.

use mdq::prelude::*;
use mdq_bench::experiments::fig11::{self, PlanShape, PAPER_CALLS};
use mdq_bench::experiments::{fig7, fig8, table1};
use std::sync::Arc;

fn schema_and_query() -> (Schema, ConjunctiveQuery) {
    let schema = mdq::model::examples::running_example_schema();
    let query = mdq::model::examples::running_example_query(&schema);
    (schema, query)
}

/// Fig. 3 parses, validates, and round-trips through its own display.
#[test]
fn fig3_query_roundtrip() {
    let (schema, query) = schema_and_query();
    assert_eq!(query.atoms.len(), 4);
    assert_eq!(query.predicates.len(), 4);
    assert_eq!(query.head.len(), 9);
    let text = format!("{}", query.display(&schema));
    let reparsed = parse_query(&text, &schema).expect("round-trip parses");
    assert_eq!(format!("{}", reparsed.display(&schema)), text);
}

/// Example 4.1: 4 raw choices, α3 impermissible, {α1, α4} most cogent.
#[test]
fn example_41_golden() {
    let (schema, query) = schema_and_query();
    let seqs = permissible_sequences(&query, &schema);
    assert_eq!(seqs.len(), 3);
    assert!(
        !seqs.contains(&ApChoice(vec![0, 0, 1, 0])),
        "α3 impermissible"
    );
    let best = most_cogent(&query, &schema, &seqs);
    assert_eq!(best.len(), 2);
}

/// Example 5.1: 19 plans under α1, 6 of them serial.
#[test]
fn example_51_nineteen_plans() {
    let priced = fig7::priced_topologies();
    assert_eq!(priced.len(), 19);
    assert_eq!(priced.iter().filter(|p| p.is_chain).count(), 6);
}

/// Fig. 8: F = (3, 4) from Eq. 6 and the annotated cardinalities.
#[test]
fn fig8_golden() {
    let (_, values) = fig8::compute();
    assert_eq!(values, fig8::PAPER);
}

/// Table 1: chunk sizes and response times recovered by the profiler.
#[test]
fn table1_golden() {
    let reports = table1::profile_all(2008);
    assert_eq!(reports[2].chunk_size, Some(25), "flight chunk");
    assert_eq!(reports[3].chunk_size, Some(5), "hotel chunk");
    assert!((reports[0].avg_response_time - 1.2).abs() < 1e-9);
    assert!((reports[1].avg_response_time - 1.5).abs() < 1e-9);
    assert!((reports[3].avg_response_time - 4.9).abs() < 1e-9);
}

/// Fig. 11: the full 3 × 3 call matrix, exactly as published.
#[test]
fn fig11_call_matrix_golden() {
    let m = fig11::run_matrix(2008);
    for ci in 0..3 {
        for si in 0..3 {
            let c = m[ci][si];
            assert_eq!(
                (c.weather, c.flight, c.hotel),
                PAPER_CALLS[ci][si],
                "cache row {ci}, plan column {si}"
            );
        }
    }
}

/// Fig. 11 totals: conf always contributes exactly one call.
#[test]
fn conf_is_called_once_everywhere() {
    for shape in PlanShape::ALL {
        for cache in CacheSetting::ALL {
            let world = travel_world(2008);
            let plan = fig11::build_shape(&world, shape);
            let report = mdq::exec::pipeline::run(
                &plan,
                &world.schema,
                &world.registry,
                &ExecConfig { cache, k: None },
            )
            .expect("executes");
            assert_eq!(report.calls_to(world.ids.conf), 1);
        }
    }
}

/// The multithreading experiment's qualitative claims (§6).
#[test]
fn multithreading_golden() {
    let t = fig11::threading_experiment(2008);
    assert_eq!(t.sequential_hotel_calls, 15);
    assert!(t.parallel_hotel_calls > 150 && t.parallel_hotel_calls <= 284);
    assert!(t.parallel_time < 120.0, "{}", t.parallel_time);
}

/// End-to-end through the facade: the optimizer's chosen plan answers
/// the Fig. 3 query with at least k = 10 tuples satisfying every
/// predicate.
#[test]
fn facade_answers_running_example() {
    let world = travel_world(2008);
    let engine = mdq::Mdq::from_world(mdq::services::domains::World {
        schema: world.schema,
        query: world.query,
        registry: world.registry,
    });
    // the Fig. 3 query with its default selectivities: hard-coding
    // optimistic hints (e.g. `Temp >= 28 @1.0`) makes the optimizer pick
    // a hotel-scan plan whose real output is empty — the calibrated
    // world's cheap hotels all sit in cold cities
    let out = engine
        .run(
            "q(Conf, City, HPrice, FPrice, Hotel) :- \
             flight('Milano', City, Start, End, ST, ET, FPrice), \
             hotel(Hotel, City, 'luxury', Start, End, HPrice), \
             conf('DB', Conf, Start, End, City), \
             weather(City, Temp, Start), \
             Start >= '2007/3/14', End <= '2007/3/14' + 180, \
             Temp >= 28, FPrice + HPrice < 2000.",
            10,
        )
        .expect("runs");
    assert_eq!(out.answers().len(), 10);
    for a in out.answers() {
        let hp = a.get(2).as_f64().expect("HPrice");
        let fp = a.get(3).as_f64().expect("FPrice");
        assert!(fp + hp < 2000.0);
    }
}

/// The optimizer beats (or ties) all three measured plans of Fig. 11
/// under ETM with estimates, and its plan executes at least as fast as
/// S and P in measured virtual time.
#[test]
fn optimizer_beats_measured_plans() {
    let (schema, query) = schema_and_query();
    let query = Arc::new(query);
    let optimized = optimize(
        Arc::clone(&query),
        &schema,
        &ExecutionTime,
        &OptimizerConfig::default(),
    )
    .expect("optimizes");

    let world = travel_world(2008);
    let chosen = mdq::plan::builder::build_plan(
        Arc::new(world.query.clone()),
        &world.schema,
        optimized.candidate.plan.choice.clone(),
        optimized.candidate.plan.poset.clone(),
        optimized.candidate.plan.atoms.clone(),
        &StrategyRule::default(),
    )
    .expect("rebuilds");
    let mut chosen = chosen;
    chosen
        .fetches
        .copy_from_slice(&optimized.candidate.plan.fetches);
    let chosen_report = mdq::exec::pipeline::run(
        &chosen,
        &world.schema,
        &world.registry,
        &ExecConfig {
            cache: CacheSetting::OneCall,
            k: None,
        },
    )
    .expect("executes");

    for shape in [PlanShape::S, PlanShape::P] {
        let w = travel_world(2008);
        let p = fig11::build_shape(&w, shape);
        let r = mdq::exec::pipeline::run(
            &p,
            &w.schema,
            &w.registry,
            &ExecConfig {
                cache: CacheSetting::OneCall,
                k: None,
            },
        )
        .expect("executes");
        assert!(
            chosen_report.virtual_time <= r.virtual_time + 1e-9,
            "optimizer plan ({:.1}s) beats {} ({:.1}s)",
            chosen_report.virtual_time,
            shape.label(),
            r.virtual_time
        );
    }
}
