//! The delta-vs-rerun oracle suite for standing queries.
//!
//! A standing query subscribed on a [`QueryServer`] receives
//! incremental [`Delta`]s as the world refreshes. The oracle pinned
//! here: after **every** epoch, the subscriber's folded delta stream
//! must be *byte-identical* to a from-scratch re-run of the same query
//! over an identically-seeded world pinned to the same epoch — while
//! issuing strictly fewer service calls, because one refresh pass over
//! the shared frontier serves every subscription at once.
//!
//! Two worlds built from the same [`RefreshConfig`] seed show the same
//! data at every epoch regardless of call order, which is what makes
//! the oracle exact rather than statistical: the subscription server
//! advances its own [`EpochClock`] via refresh passes; the oracle
//! server pins an independent clock to each epoch and re-runs from
//! scratch (shared state invalidated between runs, so every oracle run
//! pays full price).

use mdq::model::value::{Tuple, Value};
use mdq::runtime::DEFAULT_TENANT;
use mdq::services::domains::travel::travel_world;
use mdq::services::domains::World;
use mdq::services::refresh::{refreshing_registry, EpochClock, RefreshConfig, RefreshPolicy};
use mdq::services::registry::ServiceRegistry;
use mdq::services::service::{Service, ServiceFault, ServiceResponse};
use mdq::{Mdq, QueryServer, RuntimeConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

const K: u64 = 5;

fn travel_query(topic: &str, budget: u32) -> String {
    format!(
        "q(Conf, City, HPrice, FPrice, Hotel) :- \
         flight('Milano', City, Start, End, ST, ET, FPrice), \
         hotel(Hotel, City, 'luxury', Start, End, HPrice), \
         conf('{topic}', Conf, Start, End, City), \
         weather(City, Temp, Start), \
         Start >= '2007/3/14', End <= '2007/3/14' + 180, \
         Temp >= 28, FPrice + HPrice < {budget}.0."
    )
}

/// A travel engine whose sources drift per epoch on `clock`, seeded so
/// two engines built from the same `config` are byte-identical worlds.
fn refreshing_engine(config: RefreshConfig, clock: &Arc<EpochClock>) -> Mdq {
    let w = travel_world(2008);
    let registry = refreshing_registry(&w.registry, clock, config);
    Mdq::from_world(World {
        schema: w.schema,
        query: w.query,
        registry,
    })
}

/// Cumulative request-responses across every service of `reg`.
fn total_calls(reg: &ServiceRegistry) -> u64 {
    let mut ids: Vec<_> = reg.ids().collect();
    ids.sort_by_key(|id| id.0);
    ids.iter()
        .filter_map(|&id| reg.counter(id))
        .map(|c| c.calls())
        .sum()
}

/// Sorted copy — the canonical multiset form both sides compare in.
fn sorted(mut rows: Vec<Tuple>) -> Vec<Tuple> {
    rows.sort();
    rows
}

/// Folds one delta into `rows` as a multiset: every retraction must
/// remove exactly one live occurrence (a dangling retraction means the
/// delta stream lost or duplicated a row).
fn fold(rows: &mut Vec<Tuple>, added: &[Tuple], retracted: &[Tuple]) {
    for r in retracted {
        let at = rows
            .iter()
            .position(|t| t == r)
            .unwrap_or_else(|| panic!("retraction of a row not in the folded set: {r:?}"));
        rows.swap_remove(at);
    }
    rows.extend(added.iter().cloned());
}

/// A from-scratch oracle: re-runs queries over an identically-seeded
/// world pinned to any epoch, invalidating all shared state first so
/// every run pays the full service-call price of a fresh evaluation.
struct RerunOracle {
    server: QueryServer,
    clock: Arc<EpochClock>,
}

impl RerunOracle {
    fn new(config: RefreshConfig) -> Self {
        let clock = EpochClock::new();
        let server = QueryServer::new(refreshing_engine(config, &clock), RuntimeConfig::default());
        RerunOracle { server, clock }
    }

    /// Answers of `text` at `epoch`, evaluated from scratch; also
    /// returns how many service calls the run cost.
    fn rerun(&self, text: &str, epoch: u64) -> (Vec<Tuple>, u64) {
        self.clock.set(epoch);
        let shared = self.server.shared_state();
        shared.invalidate_unpinned_pages();
        shared.invalidate_sub_results();
        shared.clear_failed_pages();
        let before = total_calls(self.server.engine().registry());
        let result = self
            .server
            .submit(text, Some(K))
            .collect()
            .expect("oracle rerun succeeds");
        let cost = total_calls(self.server.engine().registry()) - before;
        (sorted(result.answers), cost)
    }
}

/// Runs `f` on its own thread, panicking if it does not finish within
/// `secs` — fail fast instead of letting CI time out on a hang.
fn with_watchdog<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    let out = rx
        .recv_timeout(std::time::Duration::from_secs(secs))
        .expect("watchdog: standing-query run hung");
    handle.join().expect("runner thread panicked");
    out
}

/// The core oracle loop: subscribe every query, then per epoch run one
/// refresh pass, poll and fold the deltas, and demand byte-identical
/// rows vs the from-scratch oracle — at every epoch, for every query.
/// Returns (subscription-side calls, oracle-side calls) over the whole
/// lifecycle: initial materialization plus `epochs` maintenance passes
/// vs one independent from-scratch rerun per query per epoch `0..=E`.
fn run_oracle(config: RefreshConfig, queries: &[String], epochs: u64) -> (u64, u64) {
    let seed = config.seed;
    let clock = EpochClock::new();
    let server = QueryServer::new(refreshing_engine(config, &clock), RuntimeConfig::default());
    server.attach_refresh(Arc::clone(&clock), RefreshPolicy::every(1));
    let oracle = RerunOracle::new(config);

    // subscribe everything at epoch 0; the tickets' initial answers
    // must already match a from-scratch run
    let mut subs = Vec::new();
    let mut oracle_calls = 0u64;
    for text in queries {
        let ticket = server
            .subscribe(DEFAULT_TENANT, text, Some(K))
            .expect("subscribe");
        assert_eq!(ticket.epoch, 0);
        let (expect, cost) = oracle.rerun(text, 0);
        oracle_calls += cost;
        assert_eq!(
            sorted(ticket.answers.clone()),
            expect,
            "seed {seed}: initial answers diverge from a fresh run"
        );
        subs.push((ticket.id, text.clone(), ticket.answers));
    }
    assert_eq!(server.subscriptions_active(), queries.len() as u64);

    let mut deltas_seen = 0u64;
    for epoch in 1..=epochs {
        let summary = server.refresh();
        assert_eq!(summary.epoch, epoch);
        assert_eq!(summary.failed, 0, "healthy world: no refresh failures");

        for (id, text, folded) in &mut subs {
            for delta in server
                .poll_deltas(DEFAULT_TENANT, *id)
                .expect("live subscription")
            {
                assert_eq!(delta.epoch, epoch, "deltas stamped with the pass epoch");
                fold(folded, &delta.added, &delta.retracted);
                deltas_seen += 1;
            }
            let (expect, cost) = oracle.rerun(text, epoch);
            oracle_calls += cost;
            assert_eq!(
                sorted(folded.clone()),
                expect,
                "seed {seed} epoch {epoch}: folded deltas diverge from a from-scratch rerun"
            );
            // the server's own answer snapshot agrees with the fold
            assert_eq!(
                sorted(
                    server
                        .subscription_answers(DEFAULT_TENANT, *id)
                        .expect("live")
                ),
                sorted(folded.clone()),
                "seed {seed} epoch {epoch}: stored answers diverge from the delta stream"
            );
        }
    }
    assert!(
        deltas_seen > 0,
        "seed {seed}: the world drifted {epochs} epochs but no subscription \
         ever saw a delta — the equality above would be vacuous"
    );
    let sub_calls = total_calls(server.engine().registry());

    for (id, _, _) in &subs {
        assert!(server.unsubscribe(DEFAULT_TENANT, *id));
    }
    assert_eq!(server.subscriptions_active(), 0);
    assert_eq!(
        server.shared_state().pinned_invocations(),
        0,
        "unsubscribing everything releases every page pin"
    );
    (sub_calls, oracle_calls)
}

/// The oracle property over several seeds and a mixed plan set: folded
/// deltas equal from-scratch reruns at every epoch, for strictly fewer
/// service calls.
#[test]
fn deltas_match_rerun_oracle_across_epochs() {
    with_watchdog(300, || {
        for seed in [11, 42, 1905] {
            let queries = vec![
                travel_query("DB", 700),
                travel_query("DB", 950),
                travel_query("AI", 800),
                travel_query("AI", 1100),
            ];
            let (sub, oracle) = run_oracle(RefreshConfig::seeded(seed), &queries, 4);
            assert!(
                sub < oracle,
                "seed {seed}: maintaining {} subscriptions incrementally ({sub} calls) \
                 must beat per-epoch from-scratch reruns ({oracle} calls)",
                queries.len()
            );
        }
    });
}

/// The headline sharing claim: 16 standing queries maintained by one
/// refresh pass per epoch cost at least 3× fewer service calls than 16
/// per-epoch from-scratch reruns — while staying byte-identical.
#[test]
fn sixteen_subscriptions_share_one_refresh_pass() {
    with_watchdog(600, || {
        // 16 variants of the travel plan watching nearby budget
        // thresholds — the regime where sharing pays: their frontiers
        // overlap heavily, so one refresh pass polls the union once
        let queries: Vec<String> = (0..16)
            .map(|i| {
                let topic = if i % 2 == 0 { "DB" } else { "AI" };
                travel_query(topic, 880 + (i as u32 / 2) * 25)
            })
            .collect();
        // a gently drifting world — the realistic standing-query regime
        // (a page changing 15% of its rows per refresh would hardly be
        // worth subscribing to); the oracle equality above holds at any
        // rate, this pin is about the cost of *maintenance*
        let config = RefreshConfig::seeded(7)
            .with_change_rate(0.05)
            .with_drop_rate(0.01);
        let (sub, oracle) = run_oracle(config, &queries, 3);
        eprintln!(
            "standing vs rerun: {sub} vs {oracle} calls ({:.1}×)",
            oracle as f64 / sub as f64
        );
        assert!(
            sub * 3 <= oracle,
            "16 subscriptions sharing one refresh pass per epoch must save ≥3× the \
             service calls of 16 independent reruns: {sub} shared vs {oracle} rerun calls"
        );
    });
}

/// A failed re-evaluation must not strand the subscription: the world
/// changes once (epoch 1) while the tenant's cumulative budget is
/// pinned to its current spend, so the driver's re-fetch succeeds (it
/// calls services directly) but the tenant-charged re-evaluation fails
/// — stale answers kept whole, no delta. The world then goes quiet (a
/// TTL of 100 makes the next passes refresh nothing), so the frontier
/// never intersects a changed set again; only the dirty flag can
/// trigger the catch-up. Without it the subscription would be
/// permanently stale.
#[test]
fn failed_reevaluation_is_retried_until_caught_up() {
    with_watchdog(120, || {
        // drop rate high enough that the epoch-1 re-evaluation must
        // read past the pinned frontier (hidden rows force deeper
        // pulls), i.e. must forward calls — which is what the pinned
        // budget refuses
        let config = RefreshConfig::seeded(42)
            .with_change_rate(0.05)
            .with_drop_rate(0.25);
        let clock = EpochClock::new();
        let server = QueryServer::new(refreshing_engine(config, &clock), RuntimeConfig::default());
        server.attach_refresh(Arc::clone(&clock), RefreshPolicy::every(1));

        let text = travel_query("DB", 900);
        let ticket = server
            .subscribe(DEFAULT_TENANT, &text, Some(K))
            .expect("subscribe");

        // epoch 1: pages change and install, but the re-evaluation is
        // refused at its first forwarded call — the subscription keeps
        // its stale answers *whole* (no partial fold) and goes dirty
        let shared = server.shared_state();
        shared.set_tenant_budget(DEFAULT_TENANT, Some(shared.tenant_calls(DEFAULT_TENANT)));
        let summary = server.refresh();
        assert_eq!(summary.epoch, 1);
        assert!(summary.invocations_changed > 0, "the world drifted");
        assert_eq!(summary.subscriptions_evaluated, 1);
        assert_eq!(
            summary.failed, 1,
            "the budget-refused re-evaluation is counted"
        );
        assert_eq!(
            summary.deltas_emitted, 0,
            "a failed re-evaluation emits nothing"
        );
        assert!(server
            .poll_deltas(DEFAULT_TENANT, ticket.id)
            .expect("live")
            .is_empty());
        assert_eq!(
            sorted(
                server
                    .subscription_answers(DEFAULT_TENANT, ticket.id)
                    .expect("live")
            ),
            sorted(ticket.answers.clone()),
            "stale answers survive the failure intact"
        );

        // epoch 2: budget restored, world quiet (TTL 100 → nothing
        // due, nothing changed) — frontier intersection alone would
        // skip the subscription forever; the dirty flag must not
        let shared = server.shared_state();
        shared.set_tenant_budget(DEFAULT_TENANT, None);
        server.attach_refresh(Arc::clone(&clock), RefreshPolicy::every(100));
        let summary = server.refresh();
        assert_eq!(summary.epoch, 2);
        assert_eq!(
            (summary.refreshed, summary.invocations_changed),
            (0, 0),
            "nothing due within TTL: the changed set is empty"
        );
        assert_eq!(
            summary.subscriptions_evaluated, 1,
            "the dirty subscription is retried despite an empty changed set"
        );
        assert_eq!(summary.failed, 0);
        assert_eq!(
            summary.deltas_emitted, 1,
            "the retry emits the catch-up delta"
        );
        let mut folded = ticket.answers.clone();
        for delta in server.poll_deltas(DEFAULT_TENANT, ticket.id).expect("live") {
            assert_eq!(delta.epoch, 2);
            fold(&mut folded, &delta.added, &delta.retracted);
        }
        assert_eq!(
            sorted(folded),
            sorted(
                server
                    .subscription_answers(DEFAULT_TENANT, ticket.id)
                    .expect("live")
            ),
            "the catch-up delta folds exactly onto the current answers"
        );

        // epoch 3: caught up and still quiet — the flag cleared, so
        // the subscription is back to zero-work skipping
        let summary = server.refresh();
        assert_eq!(summary.epoch, 3);
        assert_eq!(
            (summary.subscriptions_evaluated, summary.deltas_emitted),
            (0, 0),
            "a successful retry clears the dirty flag"
        );
    });
}

/// A TTL larger than one epoch deliberately serves stale-within-TTL
/// answers: a refresh pass before anything is due refreshes nothing
/// and emits nothing, and the next due pass catches the world up.
#[test]
fn ttl_throttles_refresh_and_serves_stale_within_ttl() {
    with_watchdog(120, || {
        let config = RefreshConfig::seeded(23);
        let clock = EpochClock::new();
        let server = QueryServer::new(refreshing_engine(config, &clock), RuntimeConfig::default());
        server.attach_refresh(Arc::clone(&clock), RefreshPolicy::every(2));
        let oracle = RerunOracle::new(config);

        let text = travel_query("DB", 900);
        let ticket = server
            .subscribe(DEFAULT_TENANT, &text, Some(K))
            .expect("subscribe");
        let epoch0 = sorted(ticket.answers.clone());

        // epoch 1: nothing is 2 epochs stale yet — the pass is a no-op
        // and the answers knowingly stay the epoch-0 snapshot
        let summary = server.refresh();
        assert_eq!((summary.epoch, summary.refreshed, summary.calls), (1, 0, 0));
        assert!(summary.skipped > 0, "the frontier is tracked but not due");
        assert_eq!(summary.deltas_emitted, 0);
        assert!(server
            .poll_deltas(DEFAULT_TENANT, ticket.id)
            .expect("live")
            .is_empty());
        assert_eq!(
            sorted(
                server
                    .subscription_answers(DEFAULT_TENANT, ticket.id)
                    .expect("live")
            ),
            epoch0,
            "within TTL the subscription serves the stale snapshot"
        );

        // epoch 2: everything is due — one pass catches up to the live
        // world and the folded stream agrees with a from-scratch rerun
        let summary = server.refresh();
        assert_eq!(summary.epoch, 2);
        assert!(summary.refreshed > 0, "now 2 epochs stale: all due");
        let mut folded = ticket.answers.clone();
        for delta in server.poll_deltas(DEFAULT_TENANT, ticket.id).expect("live") {
            fold(&mut folded, &delta.added, &delta.retracted);
        }
        let (expect, _) = oracle.rerun(&text, 2);
        assert_eq!(sorted(folded), expect);
    });
}

/// Everything one standing lifecycle observably produces, for
/// worker-count equivalence comparison: initial answers, every delta
/// (by subscription and epoch, byte-for-byte), every per-pass summary's
/// counters, the final answer sets, and the registry's total forwarded
/// calls.
#[derive(Debug, PartialEq)]
struct StandingTrace {
    initial: Vec<Vec<Tuple>>,
    deltas: Vec<(usize, u64, Vec<Tuple>, Vec<Tuple>)>,
    summaries: Vec<SummaryCounters>,
    final_answers: Vec<Vec<Tuple>>,
    total_calls: u64,
}

/// The worker-count-invariant counters of one `RefreshSummary`.
#[derive(Debug, PartialEq)]
struct SummaryCounters {
    epoch: u64,
    refreshed: u64,
    skipped: u64,
    calls: u64,
    invocations_changed: u64,
    failed: u64,
    subscriptions_evaluated: u64,
    deltas_emitted: u64,
}

/// Drives one standing lifecycle under `runtime` (notably its
/// `refresh_workers` and `sub_results` knobs) and records the full
/// observable trace.
fn standing_trace(
    config: RefreshConfig,
    queries: &[String],
    epochs: u64,
    runtime: RuntimeConfig,
) -> StandingTrace {
    let clock = EpochClock::new();
    let server = QueryServer::new(refreshing_engine(config, &clock), runtime);
    server.attach_refresh(Arc::clone(&clock), RefreshPolicy::every(1));

    let mut trace = StandingTrace {
        initial: Vec::new(),
        deltas: Vec::new(),
        summaries: Vec::new(),
        final_answers: Vec::new(),
        total_calls: 0,
    };
    let mut subs = Vec::new();
    for text in queries {
        let ticket = server
            .subscribe(DEFAULT_TENANT, text, Some(K))
            .expect("subscribe");
        trace.initial.push(ticket.answers.clone());
        subs.push((ticket.id, ticket.answers));
    }
    for _ in 1..=epochs {
        let s = server.refresh();
        trace.summaries.push(SummaryCounters {
            epoch: s.epoch,
            refreshed: s.refreshed,
            skipped: s.skipped,
            calls: s.calls,
            invocations_changed: s.invocations_changed,
            failed: s.failed,
            subscriptions_evaluated: s.subscriptions_evaluated,
            deltas_emitted: s.deltas_emitted,
        });
        for (at, (id, folded)) in subs.iter_mut().enumerate() {
            for delta in server
                .poll_deltas(DEFAULT_TENANT, *id)
                .expect("live subscription")
            {
                fold(folded, &delta.added, &delta.retracted);
                trace
                    .deltas
                    .push((at, delta.epoch, delta.added, delta.retracted));
            }
        }
    }
    for (_, folded) in subs {
        trace.final_answers.push(sorted(folded));
    }
    trace.total_calls = total_calls(server.engine().registry());
    trace
}

/// The pipeline's determinism contract, healthy world: the observable
/// trace — delta streams byte-for-byte, summary counters exactly, and
/// the total forwarded calls — is identical at every `refresh_workers`
/// setting, with the sub-result store off and on.
#[test]
fn refresh_pipeline_is_worker_count_invariant() {
    with_watchdog(600, || {
        for seed in [11, 1905] {
            let queries = vec![
                travel_query("DB", 700),
                travel_query("DB", 950),
                travel_query("AI", 800),
                travel_query("AI", 1100),
            ];
            let config = RefreshConfig::seeded(seed);
            for sub_results in [0, 64] {
                let runtime = |workers| RuntimeConfig {
                    refresh_workers: workers,
                    sub_results,
                    ..RuntimeConfig::default()
                };
                let serial = standing_trace(config, &queries, 3, runtime(1));
                assert!(
                    !serial.deltas.is_empty(),
                    "seed {seed}: a drifting world must produce deltas"
                );
                for workers in [2, 8] {
                    let parallel = standing_trace(config, &queries, 3, runtime(workers));
                    assert_eq!(
                        serial, parallel,
                        "seed {seed} store {sub_results}: {workers} workers must replay \
                         the serial pass byte-identically"
                    );
                }
            }
        }
    });
}

/// The epoch-scoped sub-result retention fix: with the store enabled,
/// refresh passes keep entries whose entire frontier came through the
/// epoch unchanged — and the retained entries serve both standing
/// re-evaluations and post-refresh ad-hoc queries with answers that
/// still match a from-scratch rerun.
///
/// A TTL of 2 makes retention deterministic: on odd epochs nothing is
/// due, so nothing changes, so every frontier-complete entry must
/// survive (the pre-fix wholesale wipe dropped them all); on even
/// epochs the whole frontier refreshes and the re-evaluations share
/// re-materialized prefixes through single-flight.
#[test]
fn retained_sub_results_serve_refreshed_queries_correctly() {
    with_watchdog(300, || {
        let config = RefreshConfig::seeded(7);
        let clock = EpochClock::new();
        let server = QueryServer::new(
            refreshing_engine(config, &clock),
            RuntimeConfig {
                sub_results: 64,
                refresh_workers: 2,
                ..RuntimeConfig::default()
            },
        );
        server.attach_refresh(Arc::clone(&clock), RefreshPolicy::every(2));
        let oracle = RerunOracle::new(config);

        // overlapping budget variants: their shared invoke prefixes are
        // what the store materializes and the refresh passes retain
        let queries = [
            travel_query("DB", 850),
            travel_query("DB", 950),
            travel_query("DB", 1050),
        ];
        let mut subs = Vec::new();
        for text in &queries {
            let ticket = server
                .subscribe(DEFAULT_TENANT, text, Some(K))
                .expect("subscribe");
            subs.push((ticket.id, text.clone(), ticket.answers));
        }

        for epoch in 1..=4u64 {
            let summary = server.refresh();
            assert_eq!(summary.epoch, epoch);
            if epoch % 2 == 1 {
                // within TTL: nothing due, nothing changed — every
                // entry whose frontier the subscriptions still pin must
                // come through alive, and subscribers knowingly keep
                // their stale-within-TTL answers
                assert!(
                    summary.sub_results_retained > 0,
                    "epoch {epoch}: a no-op pass must retain the store, \
                     not wipe it"
                );
                assert_eq!(summary.deltas_emitted, 0);
                continue;
            }
            // everything due: the pass catches up to the live world
            // and the folded streams agree with from-scratch reruns
            for (id, text, folded) in &mut subs {
                for delta in server.poll_deltas(DEFAULT_TENANT, *id).expect("live") {
                    fold(folded, &delta.added, &delta.retracted);
                }
                let (expect, _) = oracle.rerun(text, epoch);
                assert_eq!(
                    sorted(folded.clone()),
                    expect,
                    "epoch {epoch}: retention must never serve a stale entry"
                );
            }
        }
        let stats = server.shared_state().sub_result_stats();
        assert!(
            stats.hits > 0 && stats.calls_saved > 0,
            "overlapping standing queries must replay shared work: {stats:?}"
        );

        // a post-refresh ad-hoc query replays a retained entry and
        // still answers exactly like a from-scratch rerun
        let hits_before = server.shared_state().sub_result_stats().hits;
        let result = server
            .submit(&queries[0], Some(K))
            .collect()
            .expect("ad-hoc over retained entries");
        let (expect, _) = oracle.rerun(&queries[0], 4);
        assert_eq!(sorted(result.answers), expect);
        assert!(
            server.shared_state().sub_result_stats().hits > hits_before,
            "the ad-hoc run must have replayed a retained entry"
        );
    });
}

/// Wraps a service with a *real* per-fetch sleep — the only place
/// wall-clock latency enters the otherwise simulated test world. The
/// lock-hold regression below needs a refresh pass that is actually
/// slow, not accounted-slow.
struct RealLatency {
    inner: Arc<dyn Service>,
    millis: u64,
    fetches: Arc<AtomicU64>,
}

impl Service for RealLatency {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn fetch(&self, pattern: usize, inputs: &[Value], page: u32) -> ServiceResponse {
        self.fetches.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(self.millis));
        self.inner.fetch(pattern, inputs, page)
    }

    fn try_fetch(
        &self,
        pattern: usize,
        inputs: &[Value],
        page: u32,
    ) -> Result<ServiceResponse, ServiceFault> {
        self.fetches.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(self.millis));
        self.inner.try_fetch(pattern, inputs, page)
    }
}

/// The lock-hold regression: the pre-pipeline `refresh` held the state
/// mutex for the whole pass, so a concurrent `poll_deltas` stalled
/// behind every slow service call. The pipeline holds the lock only
/// for its snapshot and commit phases — a poll issued mid-fetch must
/// return orders of magnitude faster than the pass itself.
#[test]
fn slow_refresh_does_not_stall_polls() {
    with_watchdog(120, || {
        let clock = EpochClock::new();
        let w = travel_world(2008);
        let refreshing = refreshing_registry(&w.registry, &clock, RefreshConfig::seeded(5));
        let fetches = Arc::new(AtomicU64::new(0));
        let mut registry = ServiceRegistry::new();
        for id in refreshing.ids().collect::<Vec<_>>() {
            registry.register(
                id,
                RealLatency {
                    inner: Arc::clone(refreshing.get(id).expect("registered")),
                    millis: 20,
                    fetches: Arc::clone(&fetches),
                },
            );
        }
        let engine = Mdq::from_world(World {
            schema: w.schema,
            query: w.query,
            registry,
        });
        let server = Arc::new(QueryServer::new(engine, RuntimeConfig::default()));
        server.attach_refresh(Arc::clone(&clock), RefreshPolicy::every(1));
        let ticket = server
            .subscribe(DEFAULT_TENANT, &travel_query("DB", 900), Some(K))
            .expect("subscribe");

        let fetched_before = fetches.load(Ordering::Relaxed);
        let refresher = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let started = Instant::now();
                let summary = server.refresh();
                (summary, started.elapsed())
            })
        };
        // wait until the pass is demonstrably inside its fetch phase
        // (forwarding slow calls), then poll concurrently
        while fetches.load(Ordering::Relaxed) == fetched_before {
            std::thread::yield_now();
        }
        let poll_started = Instant::now();
        let _ = server
            .poll_deltas(DEFAULT_TENANT, ticket.id)
            .expect("live subscription");
        let poll_wall = poll_started.elapsed();
        let (summary, refresh_wall) = refresher.join().expect("refresher thread");
        assert!(summary.refreshed > 0, "the pass re-fetched the frontier");
        assert!(
            refresh_wall > Duration::from_millis(50),
            "the injected latency must make the pass measurably slow \
             (took {refresh_wall:?})"
        );
        assert!(
            poll_wall < refresh_wall / 2 && poll_wall < Duration::from_secs(1),
            "a poll during a slow pass must not wait out the pass: \
             poll {poll_wall:?} vs pass {refresh_wall:?}"
        );
    });
}
