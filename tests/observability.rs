//! Trace completeness and runtime-stats reconciliation: every gateway
//! call, retry and re-plan lands in exactly one span, and span-summed
//! totals equal the accounting totals — per driver (pipeline, top-k,
//! threaded) and through the serving layer under seeded faults with
//! adaptive re-planning and MQO sharing. The EXPLAIN ANALYZE stats ride
//! the same per-node counters, so they are pinned against the same
//! accounting truth.

use mdq::cost::divergence::AdaptiveConfig;
use mdq::model::examples::{ATOM_CONF, ATOM_FLIGHT, ATOM_HOTEL, ATOM_WEATHER};
use mdq::prelude::*;
use mdq::services::domains::travel::{travel_world, TravelWorld};
use mdq::services::domains::World;
use mdq::services::fault::{FaultConfig, FaultPlan, FaultProfile, PlannedFault};
use mdq::{Mdq, QueryServer, RuntimeConfig};
use std::sync::Arc;
use std::time::Duration;

/// The running example's plan O (conf → weather → {flight, hotel}).
fn plan_o(world: &TravelWorld) -> Plan {
    let poset = Poset::from_pairs(
        4,
        &[
            (ATOM_CONF, ATOM_WEATHER),
            (ATOM_WEATHER, ATOM_FLIGHT),
            (ATOM_WEATHER, ATOM_HOTEL),
        ],
    )
    .expect("valid");
    build_plan(
        Arc::new(world.query.clone()),
        &world.schema,
        ApChoice(vec![0, 0, 0, 0]),
        poset,
        (0..4).collect(),
        &StrategyRule::default(),
    )
    .expect("builds")
}

/// Re-registers the flight service wrapped in a scripted fault profile:
/// every page errors twice before succeeding, so the run retries on a
/// known schedule.
fn script_flight(world: &mut TravelWorld) {
    let id = world.ids.flight;
    let inner = world.registry.get(id).expect("registered").clone();
    world.registry.register(
        id,
        FaultProfile::scripted(inner, FaultPlan::new().fail_first(2, PlannedFault::Error)),
    );
}

/// A fresh shared state with a recorder attached.
fn traced_state() -> (Arc<SharedServiceState>, Arc<TraceRecorder>) {
    let rec = TraceRecorder::new();
    let shared =
        Arc::new(SharedServiceState::new(CacheSetting::Optimal, 0).with_trace(Arc::clone(&rec)));
    (shared, rec)
}

/// The hard contract: every forwarded attempt is exactly one
/// `ServiceCall` span (dur = its simulated latency) and every retry is
/// exactly one `Retry` span (dur = its accounted backoff), so the
/// span-summed totals equal the gateway accounting totals.
fn spans_reconcile(events: &[TraceEvent], shared: &SharedServiceState) {
    let calls: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| matches!(e.kind, SpanKind::ServiceCall { .. }))
        .collect();
    assert_eq!(
        calls.len() as u64,
        shared.total_calls(),
        "one span per call"
    );
    let span_latency: f64 = calls.iter().map(|e| e.dur).sum();
    assert!(
        (span_latency - shared.total_latency()).abs() < 1e-6,
        "span latency {span_latency} == accounted {}",
        shared.total_latency()
    );
    let faults = shared.total_fault_stats();
    let retries: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| matches!(e.kind, SpanKind::Retry { .. }))
        .collect();
    assert_eq!(retries.len() as u64, faults.retries, "one span per retry");
    let span_backoff: f64 = retries.iter().map(|e| e.dur).sum();
    assert!(
        (span_backoff - faults.backoff_seconds).abs() < 1e-6,
        "span backoff {span_backoff} == accounted {}",
        faults.backoff_seconds
    );
}

/// The EXPLAIN ANALYZE side of the same contract: per-node stats sum
/// to the gateway accounting totals (sim-time includes backoff).
fn stats_reconcile(stats: &[OperatorStats], shared: &SharedServiceState) {
    let faults = shared.total_fault_stats();
    assert_eq!(
        stats.iter().map(|s| s.calls).sum::<u64>(),
        shared.total_calls(),
        "node calls sum to the accounting total"
    );
    assert_eq!(stats.iter().map(|s| s.retries).sum::<u64>(), faults.retries);
    let sim: f64 = stats.iter().map(|s| s.sim_seconds).sum();
    let accounted = shared.total_latency() + faults.backoff_seconds;
    assert!(
        (sim - accounted).abs() < 1e-6,
        "node sim-seconds {sim} == latency + backoff {accounted}"
    );
}

#[test]
fn pipeline_trace_reconciles_with_accounting_under_faults() {
    let mut w = travel_world(2008);
    script_flight(&mut w);
    let plan = plan_o(&w);
    let (shared, rec) = traced_state();
    let report = run_with_shared(
        &plan,
        &w.schema,
        &w.registry,
        Arc::clone(&shared),
        None,
        None,
    )
    .expect("runs");
    assert!(!report.answers.is_empty());
    let events = rec.events();
    assert!(!events.is_empty(), "tracing recorded spans");
    spans_reconcile(&events, &shared);
    stats_reconcile(&report.operator_stats, &shared);
    assert_eq!(
        report.operator_stats[plan.output_node().0].rows_out as usize,
        report.answers.len(),
        "the output node's rows_out is the answer count"
    );
}

#[test]
fn threaded_trace_reconciles_with_accounting_under_faults() {
    let mut w = travel_world(2008);
    script_flight(&mut w);
    let plan = plan_o(&w);
    let (shared, rec) = traced_state();
    let config = ThreadedConfig {
        time_scale: 1e-6,
        ..ThreadedConfig::default()
    };
    let report = run_threaded_shared(
        &plan,
        &w.schema,
        &w.registry,
        Arc::clone(&shared),
        None,
        &config,
    )
    .expect("runs");
    assert!(!report.answers.is_empty());
    spans_reconcile(&rec.events(), &shared);
    stats_reconcile(&report.operator_stats, &shared);
}

#[test]
fn topk_early_halt_stats_reconcile() {
    let mut w = travel_world(2008);
    script_flight(&mut w);
    let plan = plan_o(&w);
    let (shared, rec) = traced_state();
    let mut exec = TopKExecution::with_shared(
        &plan,
        &w.schema,
        &w.registry,
        Arc::clone(&shared),
        None,
        false,
    )
    .expect("prepares");
    let answers: Vec<_> = std::iter::from_fn(|| exec.next_answer()).take(3).collect();
    assert_eq!(answers.len(), 3, "the travel world yields at least 3");
    // finalizing drops the halted operator tree, flushing every probe
    let stats = exec.operator_stats(&plan);
    spans_reconcile(&rec.events(), &shared);
    stats_reconcile(&stats, &shared);
}

#[test]
fn untraced_run_records_nothing_but_keeps_operator_stats() {
    let w = travel_world(2008);
    let plan = plan_o(&w);
    let shared = Arc::new(SharedServiceState::new(CacheSetting::Optimal, 0));
    assert!(shared.trace_recorder().is_none());
    let report = run_with_shared(
        &plan,
        &w.schema,
        &w.registry,
        Arc::clone(&shared),
        None,
        None,
    )
    .expect("runs");
    // per-node stats are always on — EXPLAIN ANALYZE needs no opt-in
    stats_reconcile(&report.operator_stats, &shared);
}

#[test]
fn explain_analyze_renders_the_observed_run() {
    let w = travel_world(2008);
    let plan = plan_o(&w);
    let (shared, _rec) = traced_state();
    let report = run_with_shared(
        &plan,
        &w.schema,
        &w.registry,
        Arc::clone(&shared),
        None,
        None,
    )
    .expect("runs");
    let sel = SelectivityModel::default();
    let ann = Estimator::new(&w.schema, &sel, CacheSetting::Optimal).annotate(&plan);
    let text = explain_analyze(&plan, &w.schema, &ann, &report.operator_stats);
    assert!(text.contains("obs calls"), "{text}");
    assert!(
        text.contains(&format!("observed answers: {}", report.answers.len())),
        "{text}"
    );
    assert_eq!(text.lines().count(), plan.nodes.len() + 3, "{text}");
}

const CATALOG_QUERY: &str = "q(Item, Part, Vendor, Price) :- seed('widgets', Item), \
     parts(Item, Part), offers(Part, Vendor, Price), Price <= 100.0.";

#[test]
fn server_trace_is_complete_under_adaptive_faulty_workload() {
    // the acceptance scenario: seeded faults + mis-estimated services
    // force retries and a mid-flight re-plan; the trace must carry all
    // of it, reconciling exactly with the accounting and the metrics
    let mut c = mdq::services::domains::catalog::catalog_world(true);
    for id in [c.ids.seed, c.ids.parts, c.ids.offers] {
        let inner = c.world.registry.get(id).expect("registered").clone();
        let cfg = FaultConfig::seeded(0x5EED ^ id.0 as u64)
            .with_errors(0.08)
            .with_timeouts(0.04);
        c.world
            .registry
            .register(id, FaultProfile::seeded(inner, cfg));
    }
    let server = QueryServer::new(
        Mdq::from_world(c.world),
        RuntimeConfig {
            adaptive: Some(AdaptiveConfig::default()),
            workers: 1,
            ..RuntimeConfig::default()
        },
    );
    let rec = server.enable_tracing();
    let first = server
        .submit(CATALOG_QUERY, Some(10))
        .collect()
        .expect("runs despite faults");
    assert!(
        first.stats.replans >= 1,
        "the mis-estimate forces a re-plan"
    );
    server
        .submit(CATALOG_QUERY, Some(10))
        .collect()
        .expect("runs");

    let m = server.metrics();
    let events = rec.events();
    spans_reconcile(&events, server.shared_state());

    let count = |f: &dyn Fn(&SpanKind) -> bool| events.iter().filter(|e| f(&e.kind)).count() as u64;
    assert_eq!(
        count(&|k| matches!(k, SpanKind::Replan { .. })),
        m.replans,
        "every re-plan splice is one span"
    );
    assert_eq!(
        count(&|k| matches!(k, SpanKind::PlanCacheHit { .. })),
        m.plan_cache_hits
    );
    assert_eq!(
        count(&|k| matches!(k, SpanKind::PlanCacheMiss { .. })),
        m.plan_cache_misses
    );
    assert_eq!(
        count(&|k| matches!(k, SpanKind::Optimize)),
        m.optimizer_invocations,
        "every optimizer run is one control span"
    );
    assert_eq!(
        count(&|k| matches!(k, SpanKind::QueryStart { .. })),
        m.completed
    );
    assert_eq!(
        count(&|k| matches!(k, SpanKind::QueryDone { .. })),
        m.completed
    );

    // the seeded faults also populate the new histogram metrics
    let service_observations: u64 = m.service_latency_buckets.iter().map(|(_, n)| n).sum();
    assert_eq!(service_observations, m.total_service_calls);
    let summary_count: u64 = m.per_service_latency.iter().map(|(_, s)| s.count).sum();
    assert_eq!(summary_count, m.total_service_calls);
    let summary_total: f64 = m.per_service_latency.iter().map(|(_, s)| s.total).sum();
    assert!((summary_total - m.total_service_latency).abs() < 1e-6);

    // the export is loadable: array form, balanced, every event present
    let json = chrome_trace_json(&rec);
    assert!(json.starts_with("[\n") && json.trim_end().ends_with(']'));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(jsonl(&rec).lines().count(), events.len());
}

#[test]
fn mqo_server_traces_admission_and_replay() {
    let w = travel_world(2008);
    let engine = Mdq::from_world(World {
        schema: w.schema,
        query: w.query,
        registry: w.registry,
    });
    let server = QueryServer::new(
        engine,
        RuntimeConfig {
            workers: 2,
            cache: CacheSetting::OneCall,
            sub_results: 16,
            batch_window: Some(Duration::from_millis(5)),
            ..RuntimeConfig::default()
        },
    );
    let rec = server.enable_tracing();
    // same template three times, sequentially: the first admission
    // registers the prefix, the second is flagged shared and
    // materializes, the third replays from the sub-result store
    let query = "q(Conf, City, HPrice, FPrice, Hotel) :- \
         flight('Milano', City, Start, End, ST, ET, FPrice), \
         hotel(Hotel, City, 'luxury', Start, End, HPrice), \
         conf('DB', Conf, Start, End, City), \
         weather(City, Temp, Start), \
         Start >= '2007/3/14', End <= '2007/3/14' + 180, \
         Temp >= 28, FPrice + HPrice < 2000.";
    for _ in 0..3 {
        server.submit(query, Some(5)).collect().expect("runs");
    }
    let m = server.metrics();
    let events = rec.events();
    spans_reconcile(&events, server.shared_state());

    let batches: Vec<(u64, u64)> = events
        .iter()
        .filter_map(|e| match e.kind {
            SpanKind::AdmissionBatch {
                members,
                shared_prefix_hits,
            } => Some((members, shared_prefix_hits)),
            _ => None,
        })
        .collect();
    assert_eq!(
        batches.iter().map(|(m, _)| m).sum::<u64>(),
        m.submitted,
        "every submission lands in exactly one admission-batch span"
    );
    assert_eq!(
        batches.iter().map(|(_, h)| h).sum::<u64>(),
        m.shared_prefix_hits
    );
    assert_eq!(
        m.batch_size_buckets.iter().map(|(_, n)| n).sum::<u64>(),
        batches.len() as u64,
        "one batch-size observation per admission batch"
    );
    let replays = events
        .iter()
        .filter(|e| matches!(e.kind, SpanKind::SubResultReplay { .. }))
        .count() as u64;
    assert_eq!(replays, m.sub_result_hits);
    assert!(replays >= 1, "the third submission replays the prefix");
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, SpanKind::SubResultMaterialize { .. })),
        "the flagged member's materialization is traced"
    );
}

#[test]
fn snapshot_histograms_cover_the_workload() {
    let w = travel_world(2008);
    let engine = Mdq::from_world(World {
        schema: w.schema,
        query: w.query,
        registry: w.registry,
    });
    let server = QueryServer::new(engine, RuntimeConfig::default());
    let query = "q(Conf, City, HPrice, FPrice, Hotel) :- \
         flight('Milano', City, Start, End, ST, ET, FPrice), \
         hotel(Hotel, City, 'luxury', Start, End, HPrice), \
         conf('DB', Conf, Start, End, City), \
         weather(City, Temp, Start), \
         Start >= '2007/3/14', End <= '2007/3/14' + 180, \
         Temp >= 28, FPrice + HPrice < 2000.";
    for _ in 0..2 {
        server.submit(query, Some(5)).collect().expect("runs");
    }
    let m = server.metrics();
    assert_eq!(
        m.latency_buckets.iter().map(|(_, n)| n).sum::<u64>(),
        m.completed,
        "one wall-latency observation per completed query"
    );
    assert_eq!(
        m.queue_wait_buckets.iter().map(|(_, n)| n).sum::<u64>(),
        m.submitted,
        "one queue-wait observation per dequeued job"
    );
    assert_eq!(
        m.service_latency_buckets
            .iter()
            .map(|(_, n)| n)
            .sum::<u64>(),
        m.total_service_calls,
        "one latency observation per forwarded attempt"
    );
    assert_eq!(
        m.batch_size_buckets.iter().map(|(_, n)| n).sum::<u64>(),
        0,
        "no admission batching, no batch observations"
    );
    assert!(!m.page_cache_shards.is_empty());
    assert!(
        m.page_cache_shards.iter().map(|s| s.entries).sum::<u64>() > 0,
        "the optimal cache memoized invocations across shards"
    );
    // the Display surface carries the new histograms
    let text = m.to_string();
    assert!(text.contains("queue wait:"), "{text}");
    assert!(text.contains("service call latency:"), "{text}");
}
