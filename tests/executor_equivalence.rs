//! Cross-executor equivalence: the three drivers over the shared
//! operator kernel — stage-materialised, pull-based top-k and the real
//! OS-thread dataflow engine — must return **identical answer sets and
//! identical per-service call counts** on randomized travel-world plans,
//! under every cache setting. The parallel-dispatch driver shuffles its
//! inputs (its point is showing the cache degradation), so it must agree
//! on answers but is exempt from the call-count check.
//!
//! Plans are randomized over topology (random admissible precedence
//! pairs), fetch factors and cache setting, generated with the
//! workspace's deterministic [`Rng`](mdq::model::rng::Rng); assertion
//! messages carry the case description for replay.

use mdq::model::examples::{ATOM_CONF, ATOM_FLIGHT, ATOM_HOTEL, ATOM_WEATHER};
use mdq::model::rng::Rng;
use mdq::prelude::*;
use std::sync::Arc;

fn sorted(mut v: Vec<Tuple>) -> Vec<Tuple> {
    v.sort();
    v
}

/// Builds a random admissible α1 plan over the travel world: conf first
/// (it alone is callable from the query constants), then a random
/// acyclic set of extra precedences among weather / flight / hotel, and
/// random fetch factors for the chunked services.
fn random_plan(rng: &mut Rng, world: &mdq_services::domains::travel::TravelWorld) -> Plan {
    let mut pairs = vec![
        (ATOM_CONF, ATOM_WEATHER),
        (ATOM_CONF, ATOM_FLIGHT),
        (ATOM_CONF, ATOM_HOTEL),
    ];
    // a random linear refinement over the tail atoms keeps the poset
    // acyclic; each candidate edge joins independently
    let mut tail = [ATOM_WEATHER, ATOM_FLIGHT, ATOM_HOTEL];
    rng.shuffle(&mut tail);
    for i in 0..tail.len() {
        for j in (i + 1)..tail.len() {
            if rng.bool(0.5) {
                pairs.push((tail[i], tail[j]));
            }
        }
    }
    let poset = Poset::from_pairs(4, &pairs).expect("acyclic by construction");
    let mut plan = build_plan(
        Arc::new(world.query.clone()),
        &world.schema,
        ApChoice(vec![0, 0, 0, 0]),
        poset,
        (0..4).collect(),
        &StrategyRule::default(),
    )
    .expect("conf-first α1 plans are admissible");
    plan.set_fetch(ATOM_FLIGHT, rng.range_u64(1, 4));
    plan.set_fetch(ATOM_HOTEL, rng.range_u64(1, 5));
    plan
}

/// The materialised, pull and threaded drivers agree on answers *and*
/// call counts; parallel dispatch agrees on answers.
#[test]
fn randomized_plans_executors_agree() {
    let mut rng = Rng::new(0xEC_EC);
    for case in 0..12 {
        let cache = *rng.choose(&CacheSetting::ALL).expect("three settings");
        let w = travel_world(2008);
        let plan = random_plan(&mut rng, &w);
        let desc = format!(
            "case {case}: cache {cache:?}, fetches {:?}, poset {}",
            plan.fetches, plan.poset
        );

        let pipeline = run(
            &plan,
            &w.schema,
            &w.registry,
            &ExecConfig { cache, k: None },
        )
        .unwrap_or_else(|e| panic!("{desc}: pipeline fails: {e}"));
        let baseline = sorted(pipeline.answers.clone());

        // pull executor, drained to exhaustion
        let mut pull = TopKExecution::new(&plan, &w.schema, &w.registry, cache, false)
            .unwrap_or_else(|e| panic!("{desc}: pull fails: {e}"));
        let pulled = sorted(pull.answers(1 << 20));
        assert!(
            pull.error().is_none(),
            "{desc}: pull stream poisoned: {:?}",
            pull.error()
        );
        assert_eq!(pulled, baseline, "{desc}: pull answers");

        // real-thread dataflow engine
        let thr = run_threaded(
            &plan,
            &w.schema,
            &w.registry,
            &ThreadedConfig {
                cache,
                time_scale: 0.0,
                channel_capacity: 8,
                k: None,
            },
        )
        .unwrap_or_else(|e| panic!("{desc}: threaded fails: {e}"));
        assert_eq!(
            sorted(thr.answers.clone()),
            baseline,
            "{desc}: threaded answers"
        );

        // parallel dispatch: same answers (its shuffled invocation order
        // legitimately changes the call counts)
        let par = run_parallel_dispatch(
            &plan,
            &w.schema,
            &w.registry,
            &ParallelConfig {
                cache,
                shuffle_seed: case as u64,
                ..ParallelConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("{desc}: parallel fails: {e}"));
        assert_eq!(
            sorted(par.answers.clone()),
            baseline,
            "{desc}: parallel answers"
        );

        // call counts: every deterministic driver forwards exactly the
        // same number of request-responses to every service
        for (name, id) in [
            ("conf", w.ids.conf),
            ("weather", w.ids.weather),
            ("flight", w.ids.flight),
            ("hotel", w.ids.hotel),
        ] {
            let p = pipeline.calls_to(id);
            assert_eq!(
                pull.calls_to(id),
                p,
                "{desc}: pull vs pipeline calls to {name}"
            );
            assert_eq!(
                thr.calls.get(&id).copied().unwrap_or(0),
                p,
                "{desc}: threaded vs pipeline calls to {name}"
            );
        }
    }
}

/// Rebuilds the travel world with every service wrapped in a seeded
/// [`FaultProfile`]: the fault schedule is a function of call identity
/// only, so identically-seeded worlds replay identical faults no matter
/// which driver (or thread interleaving) issues the calls.
fn faulty_world(fault_seed: u64) -> mdq_services::domains::travel::TravelWorld {
    use mdq::services::fault::{FaultConfig, FaultProfile};
    let mut w = travel_world(2008);
    let ids = [w.ids.conf, w.ids.weather, w.ids.flight, w.ids.hotel];
    for id in ids {
        let inner = w.registry.get(id).expect("registered").clone();
        let cfg = FaultConfig::seeded(fault_seed ^ id.0 as u64)
            .with_errors(0.10)
            .with_timeouts(0.06)
            .with_rate_limits(0.04)
            .with_spikes(0.05, 3.0);
        w.registry.register(id, FaultProfile::seeded(inner, cfg));
    }
    w
}

/// Seeded-fault equivalence: all three deterministic drivers produce
/// identical answers, identical per-service call counts (faulted
/// attempts included) and identical retry counts under the same seeded
/// fault schedule — and agree on which services, if any, degraded.
#[test]
fn randomized_plans_executors_agree_under_seeded_faults() {
    let mut rng = Rng::new(0xFA_17);
    for case in 0..8 {
        let cache = *rng.choose(&CacheSetting::ALL).expect("three settings");
        let fault_seed = rng.next_u64();
        let plan = random_plan(&mut rng, &travel_world(2008));
        let desc = format!(
            "case {case}: cache {cache:?}, fault seed {fault_seed:#x}, fetches {:?}, poset {}",
            plan.fetches, plan.poset
        );

        // each driver gets a freshly wrapped world so per-identity
        // attempt counters start from zero every time
        let wp = faulty_world(fault_seed);
        let pipeline = run(
            &plan,
            &wp.schema,
            &wp.registry,
            &ExecConfig { cache, k: None },
        )
        .unwrap_or_else(|e| panic!("{desc}: pipeline fails: {e}"));
        let baseline = sorted(pipeline.answers.clone());

        let wq = faulty_world(fault_seed);
        let mut pull = TopKExecution::new(&plan, &wq.schema, &wq.registry, cache, false)
            .unwrap_or_else(|e| panic!("{desc}: pull fails: {e}"));
        let pulled = sorted(pull.answers(1 << 20));
        assert_eq!(pulled, baseline, "{desc}: pull answers");

        let wt = faulty_world(fault_seed);
        let thr = run_threaded(
            &plan,
            &wt.schema,
            &wt.registry,
            &ThreadedConfig {
                cache,
                time_scale: 0.0,
                channel_capacity: 8,
                k: None,
            },
        )
        .unwrap_or_else(|e| panic!("{desc}: threaded fails: {e}"));
        assert_eq!(
            sorted(thr.answers.clone()),
            baseline,
            "{desc}: threaded answers"
        );

        // identical attempts AND identical retries, service by service
        let pull_faults = pull.fault_stats();
        for (name, id) in [
            ("conf", wp.ids.conf),
            ("weather", wp.ids.weather),
            ("flight", wp.ids.flight),
            ("hotel", wp.ids.hotel),
        ] {
            let calls = pipeline.calls_to(id);
            assert_eq!(
                pull.calls_to(id),
                calls,
                "{desc}: pull vs pipeline calls to {name}"
            );
            assert_eq!(
                thr.calls.get(&id).copied().unwrap_or(0),
                calls,
                "{desc}: threaded vs pipeline calls to {name}"
            );
            let retries = pipeline.retries_to(id);
            assert_eq!(
                pull_faults.get(&id).map(|s| s.retries).unwrap_or(0),
                retries,
                "{desc}: pull vs pipeline retries to {name}"
            );
            assert_eq!(
                thr.retries_to(id),
                retries,
                "{desc}: threaded vs pipeline retries to {name}"
            );
        }

        // and on the degraded-service report itself
        assert_eq!(
            pull.partial_results(),
            pipeline.partial,
            "{desc}: pull vs pipeline partial report"
        );
        assert_eq!(
            thr.partial, pipeline.partial,
            "{desc}: threaded vs pipeline partial report"
        );
    }
}

/// Early halting never changes *which* answers arrive, only how many
/// calls are spent: the first k pulled answers are a prefix-equivalent
/// subset of the materialised answer set.
#[test]
fn randomized_plans_topk_prefix_is_subset() {
    let mut rng = Rng::new(0x70CC);
    for case in 0..8 {
        let w = travel_world(2008);
        let plan = random_plan(&mut rng, &w);
        let k = rng.range_usize(1, 12);
        let full = run(
            &plan,
            &w.schema,
            &w.registry,
            &ExecConfig {
                cache: CacheSetting::OneCall,
                k: None,
            },
        )
        .expect("pipeline");
        let full_set = sorted(full.answers.clone());
        let mut pull =
            TopKExecution::new(&plan, &w.schema, &w.registry, CacheSetting::OneCall, false)
                .expect("pull");
        let first_k = pull.answers(k);
        assert_eq!(
            first_k.len(),
            k.min(full_set.len()),
            "case {case}: k={k} answers available"
        );
        for a in &first_k {
            assert!(
                full_set.binary_search(a).is_ok(),
                "case {case}: pulled answer {a} missing from materialised set"
            );
        }
        if !first_k.is_empty() && first_k.len() < full_set.len() {
            assert!(
                pull.total_calls() <= full.calls.values().sum::<u64>(),
                "case {case}: early halt never spends more calls"
            );
        }
    }
}
