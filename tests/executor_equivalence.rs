//! Cross-executor equivalence: the three drivers over the shared
//! operator kernel — stage-materialised, pull-based top-k and the real
//! OS-thread dataflow engine — must return **identical answer sets and
//! identical per-service call counts** on randomized travel-world plans,
//! under every cache setting. The parallel-dispatch driver shuffles its
//! inputs (its point is showing the cache degradation), so it must agree
//! on answers but is exempt from the call-count check.
//!
//! Plans are randomized over topology (random admissible precedence
//! pairs), fetch factors and cache setting, generated with the
//! workspace's deterministic [`Rng`](mdq::model::rng::Rng); assertion
//! messages carry the case description for replay.

use mdq::model::examples::{ATOM_CONF, ATOM_FLIGHT, ATOM_HOTEL, ATOM_WEATHER};
use mdq::model::rng::Rng;
use mdq::prelude::*;
use std::sync::Arc;

fn sorted(mut v: Vec<Tuple>) -> Vec<Tuple> {
    v.sort();
    v
}

/// Builds a random admissible α1 plan over the travel world: conf first
/// (it alone is callable from the query constants), then a random
/// acyclic set of extra precedences among weather / flight / hotel, and
/// random fetch factors for the chunked services.
fn random_plan(rng: &mut Rng, world: &mdq_services::domains::travel::TravelWorld) -> Plan {
    let mut pairs = vec![
        (ATOM_CONF, ATOM_WEATHER),
        (ATOM_CONF, ATOM_FLIGHT),
        (ATOM_CONF, ATOM_HOTEL),
    ];
    // a random linear refinement over the tail atoms keeps the poset
    // acyclic; each candidate edge joins independently
    let mut tail = [ATOM_WEATHER, ATOM_FLIGHT, ATOM_HOTEL];
    rng.shuffle(&mut tail);
    for i in 0..tail.len() {
        for j in (i + 1)..tail.len() {
            if rng.bool(0.5) {
                pairs.push((tail[i], tail[j]));
            }
        }
    }
    let poset = Poset::from_pairs(4, &pairs).expect("acyclic by construction");
    let mut plan = build_plan(
        Arc::new(world.query.clone()),
        &world.schema,
        ApChoice(vec![0, 0, 0, 0]),
        poset,
        (0..4).collect(),
        &StrategyRule::default(),
    )
    .expect("conf-first α1 plans are admissible");
    plan.set_fetch(ATOM_FLIGHT, rng.range_u64(1, 4));
    plan.set_fetch(ATOM_HOTEL, rng.range_u64(1, 5));
    plan
}

/// The materialised, pull and threaded drivers agree on answers *and*
/// call counts; parallel dispatch agrees on answers.
#[test]
fn randomized_plans_executors_agree() {
    let mut rng = Rng::new(0xEC_EC);
    for case in 0..12 {
        let cache = *rng.choose(&CacheSetting::ALL).expect("three settings");
        let w = travel_world(2008);
        let plan = random_plan(&mut rng, &w);
        let desc = format!(
            "case {case}: cache {cache:?}, fetches {:?}, poset {}",
            plan.fetches, plan.poset
        );

        let pipeline = run(
            &plan,
            &w.schema,
            &w.registry,
            &ExecConfig { cache, k: None },
        )
        .unwrap_or_else(|e| panic!("{desc}: pipeline fails: {e}"));
        let baseline = sorted(pipeline.answers.clone());

        // pull executor, drained to exhaustion
        let mut pull = TopKExecution::new(&plan, &w.schema, &w.registry, cache, false)
            .unwrap_or_else(|e| panic!("{desc}: pull fails: {e}"));
        let pulled = sorted(pull.answers(1 << 20));
        assert!(
            pull.error().is_none(),
            "{desc}: pull stream poisoned: {:?}",
            pull.error()
        );
        assert_eq!(pulled, baseline, "{desc}: pull answers");

        // real-thread dataflow engine
        let thr = run_threaded(
            &plan,
            &w.schema,
            &w.registry,
            &ThreadedConfig {
                cache,
                time_scale: 0.0,
                channel_capacity: 8,
                k: None,
            },
        )
        .unwrap_or_else(|e| panic!("{desc}: threaded fails: {e}"));
        assert_eq!(
            sorted(thr.answers.clone()),
            baseline,
            "{desc}: threaded answers"
        );

        // parallel dispatch: same answers (its shuffled invocation order
        // legitimately changes the call counts)
        let par = run_parallel_dispatch(
            &plan,
            &w.schema,
            &w.registry,
            &ParallelConfig {
                cache,
                shuffle_seed: case as u64,
                ..ParallelConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("{desc}: parallel fails: {e}"));
        assert_eq!(
            sorted(par.answers.clone()),
            baseline,
            "{desc}: parallel answers"
        );

        // call counts: every deterministic driver forwards exactly the
        // same number of request-responses to every service
        for (name, id) in [
            ("conf", w.ids.conf),
            ("weather", w.ids.weather),
            ("flight", w.ids.flight),
            ("hotel", w.ids.hotel),
        ] {
            let p = pipeline.calls_to(id);
            assert_eq!(
                pull.calls_to(id),
                p,
                "{desc}: pull vs pipeline calls to {name}"
            );
            assert_eq!(
                thr.calls.get(&id).copied().unwrap_or(0),
                p,
                "{desc}: threaded vs pipeline calls to {name}"
            );
        }
    }
}

/// Rebuilds the travel world with every service wrapped in a seeded
/// [`FaultProfile`]: the fault schedule is a function of call identity
/// only, so identically-seeded worlds replay identical faults no matter
/// which driver (or thread interleaving) issues the calls.
fn faulty_world(fault_seed: u64) -> mdq_services::domains::travel::TravelWorld {
    use mdq::services::fault::{FaultConfig, FaultProfile};
    let mut w = travel_world(2008);
    let ids = [w.ids.conf, w.ids.weather, w.ids.flight, w.ids.hotel];
    for id in ids {
        let inner = w.registry.get(id).expect("registered").clone();
        let cfg = FaultConfig::seeded(fault_seed ^ id.0 as u64)
            .with_errors(0.10)
            .with_timeouts(0.06)
            .with_rate_limits(0.04)
            .with_spikes(0.05, 3.0);
        w.registry.register(id, FaultProfile::seeded(inner, cfg));
    }
    w
}

/// Seeded-fault equivalence: all three deterministic drivers produce
/// identical answers, identical per-service call counts (faulted
/// attempts included) and identical retry counts under the same seeded
/// fault schedule — and agree on which services, if any, degraded.
#[test]
fn randomized_plans_executors_agree_under_seeded_faults() {
    let mut rng = Rng::new(0xFA_17);
    for case in 0..8 {
        let cache = *rng.choose(&CacheSetting::ALL).expect("three settings");
        let fault_seed = rng.next_u64();
        let plan = random_plan(&mut rng, &travel_world(2008));
        let desc = format!(
            "case {case}: cache {cache:?}, fault seed {fault_seed:#x}, fetches {:?}, poset {}",
            plan.fetches, plan.poset
        );

        // each driver gets a freshly wrapped world so per-identity
        // attempt counters start from zero every time
        let wp = faulty_world(fault_seed);
        let pipeline = run(
            &plan,
            &wp.schema,
            &wp.registry,
            &ExecConfig { cache, k: None },
        )
        .unwrap_or_else(|e| panic!("{desc}: pipeline fails: {e}"));
        let baseline = sorted(pipeline.answers.clone());

        let wq = faulty_world(fault_seed);
        let mut pull = TopKExecution::new(&plan, &wq.schema, &wq.registry, cache, false)
            .unwrap_or_else(|e| panic!("{desc}: pull fails: {e}"));
        let pulled = sorted(pull.answers(1 << 20));
        assert_eq!(pulled, baseline, "{desc}: pull answers");

        let wt = faulty_world(fault_seed);
        let thr = run_threaded(
            &plan,
            &wt.schema,
            &wt.registry,
            &ThreadedConfig {
                cache,
                time_scale: 0.0,
                channel_capacity: 8,
                k: None,
            },
        )
        .unwrap_or_else(|e| panic!("{desc}: threaded fails: {e}"));
        assert_eq!(
            sorted(thr.answers.clone()),
            baseline,
            "{desc}: threaded answers"
        );

        // identical attempts AND identical retries, service by service
        let pull_faults = pull.fault_stats();
        for (name, id) in [
            ("conf", wp.ids.conf),
            ("weather", wp.ids.weather),
            ("flight", wp.ids.flight),
            ("hotel", wp.ids.hotel),
        ] {
            let calls = pipeline.calls_to(id);
            assert_eq!(
                pull.calls_to(id),
                calls,
                "{desc}: pull vs pipeline calls to {name}"
            );
            assert_eq!(
                thr.calls.get(&id).copied().unwrap_or(0),
                calls,
                "{desc}: threaded vs pipeline calls to {name}"
            );
            let retries = pipeline.retries_to(id);
            assert_eq!(
                pull_faults.get(&id).map(|s| s.retries).unwrap_or(0),
                retries,
                "{desc}: pull vs pipeline retries to {name}"
            );
            assert_eq!(
                thr.retries_to(id),
                retries,
                "{desc}: threaded vs pipeline retries to {name}"
            );
        }

        // and on the degraded-service report itself
        assert_eq!(
            pull.partial_results(),
            pipeline.partial,
            "{desc}: pull vs pipeline partial report"
        );
        assert_eq!(
            thr.partial, pipeline.partial,
            "{desc}: threaded vs pipeline partial report"
        );
    }
}

/// Builds the adaptive-equivalence fixture: a freshly mis-estimated
/// catalog world (optionally fault-wrapped with a seeded schedule), the
/// plan its stale estimates produce, and a fresh memoizing shared
/// state. Every driver gets its own copy so fault-attempt counters and
/// cache state start from zero.
fn adaptive_fixture(
    fault_seed: Option<u64>,
) -> (
    mdq::services::domains::catalog::CatalogWorld,
    Plan,
    std::sync::Arc<SharedServiceState>,
) {
    use mdq::services::fault::{FaultConfig, FaultProfile};
    let mut c = mdq::services::domains::catalog::catalog_world(true);
    if let Some(seed) = fault_seed {
        for id in [c.ids.seed, c.ids.parts, c.ids.offers] {
            let inner = c.world.registry.get(id).expect("registered").clone();
            let cfg = FaultConfig::seeded(seed ^ id.0 as u64)
                .with_errors(0.08)
                .with_timeouts(0.04);
            c.world
                .registry
                .register(id, FaultProfile::seeded(inner, cfg));
        }
    }
    let optimized = optimize(
        Arc::new(c.world.query.clone()),
        &c.world.schema,
        &ExecutionTime,
        &OptimizerConfig {
            k: 10,
            cache: mdq::cost::estimate::CacheSetting::Optimal,
            ..OptimizerConfig::default()
        },
    )
    .expect("optimizes");
    let shared = Arc::new(SharedServiceState::new(CacheSetting::Optimal, 0));
    (c, optimized.candidate.plan, shared)
}

fn adaptive_replanner<'a>(
    world: &'a mdq::services::domains::catalog::CatalogWorld,
) -> OptimizerReplanner<'a> {
    OptimizerReplanner::new(
        &world.world.schema,
        &ExecutionTime,
        OptimizerConfig {
            k: 10,
            cache: mdq::cost::estimate::CacheSetting::Optimal,
            ..OptimizerConfig::default()
        },
    )
}

/// The adaptive variant of the equivalence suite: on a mis-estimated
/// workload that forces at least one re-plan, the adaptive
/// stage-materialised, stage-threaded and pull drivers must produce
/// identical answer sets, identical per-service call counts and
/// identical re-plan counts — healthy and under a seeded fault
/// schedule (where retries spent before the splice must stay counted
/// exactly once).
#[test]
fn adaptive_drivers_agree_on_answers_calls_and_replans() {
    for fault_seed in [None, Some(0xAD_A9u64)] {
        let desc = match fault_seed {
            None => "healthy".to_string(),
            Some(s) => format!("seeded faults {s:#x}"),
        };

        let (wp, plan, shared) = adaptive_fixture(fault_seed);
        let mut rp = adaptive_replanner(&wp);
        let pipeline = run_adaptive(
            &plan,
            &wp.world.schema,
            &wp.world.registry,
            shared,
            None,
            None,
            &mdq::cost::divergence::AdaptiveConfig::default(),
            &mut rp,
        )
        .unwrap_or_else(|e| panic!("{desc}: adaptive pipeline fails: {e}"));
        assert!(
            pipeline.replans >= 1,
            "{desc}: the mis-estimate must force a re-plan"
        );
        let baseline = sorted(pipeline.report.answers.clone());
        assert!(!baseline.is_empty(), "{desc}: answers exist");

        let (wt, plan_t, shared_t) = adaptive_fixture(fault_seed);
        let mut rp = adaptive_replanner(&wt);
        let threaded = run_adaptive_dispatch(
            &plan_t,
            &wt.world.schema,
            &wt.world.registry,
            shared_t,
            None,
            None,
            4,
            &mdq::cost::divergence::AdaptiveConfig::default(),
            &mut rp,
        )
        .unwrap_or_else(|e| panic!("{desc}: adaptive threaded fails: {e}"));
        assert_eq!(
            sorted(threaded.report.answers.clone()),
            baseline,
            "{desc}: threaded answers"
        );
        assert_eq!(
            threaded.replans, pipeline.replans,
            "{desc}: threaded replans"
        );

        let (wq, plan_q, shared_q) = adaptive_fixture(fault_seed);
        let mut rp = adaptive_replanner(&wq);
        let mut pull = AdaptiveTopK::with_shared(
            &plan_q,
            &wq.world.schema,
            &wq.world.registry,
            shared_q,
            None,
            false,
            &mdq::cost::divergence::AdaptiveConfig::default(),
        )
        .unwrap_or_else(|e| panic!("{desc}: adaptive pull fails: {e}"));
        let pulled = sorted(pull.answers(1 << 20, &mut rp));
        assert!(
            pull.error().is_none(),
            "{desc}: pull poisoned: {:?}",
            pull.error()
        );
        assert_eq!(pulled, baseline, "{desc}: pull answers");
        assert_eq!(pull.replans(), pipeline.replans, "{desc}: pull replans");

        // identical per-service forwarded calls (faulted attempts
        // included) and identical retries, driver by driver
        for (name, id) in [
            ("seed", wp.ids.seed),
            ("parts", wp.ids.parts),
            ("offers", wp.ids.offers),
        ] {
            let calls = pipeline.report.calls_to(id);
            assert_eq!(
                threaded.report.calls_to(id),
                calls,
                "{desc}: threaded vs pipeline calls to {name}"
            );
            assert_eq!(
                pull.calls_to(id),
                calls,
                "{desc}: pull vs pipeline calls to {name}"
            );
            let retries = pipeline.report.retries_to(id);
            assert_eq!(
                threaded.report.retries_to(id),
                retries,
                "{desc}: threaded vs pipeline retries to {name}"
            );
            assert_eq!(
                pull.fault_stats().get(&id).map(|s| s.retries).unwrap_or(0),
                retries,
                "{desc}: pull vs pipeline retries to {name}"
            );
        }
        assert_eq!(
            pull.partial_results(),
            pipeline.report.partial,
            "{desc}: pull vs pipeline partial report"
        );
        assert_eq!(
            threaded.report.partial, pipeline.report.partial,
            "{desc}: threaded vs pipeline partial report"
        );
    }
}

/// The operator batch size is a pure amortisation knob: sweeping it
/// across 1 (tuple-at-a-time), 2, 7 (deliberately unaligned with page
/// and chunk sizes) and 64 must leave answers, per-service call counts
/// and retry counts byte-identical for the stage-materialised, pull and
/// real-thread drivers — healthy and under a seeded fault schedule.
#[test]
fn batch_size_sweep_is_equivalent_to_tuple_at_a_time() {
    let mut rng = Rng::new(0xBA_7C);
    for fault_seed in [None, Some(0x5EEDu64)] {
        for case in 0..3 {
            let cache = *rng.choose(&CacheSetting::ALL).expect("three settings");
            let plan = random_plan(&mut rng, &travel_world(2008));
            let world = || match fault_seed {
                None => travel_world(2008),
                Some(s) => faulty_world(s),
            };
            let desc = format!(
                "case {case}: cache {cache:?}, faults {fault_seed:?}, fetches {:?}, poset {}",
                plan.fetches, plan.poset
            );

            // tuple-at-a-time baseline: every batched run must match it
            let wb = world();
            let base = run_with_batch(
                &plan,
                &wb.schema,
                &wb.registry,
                &ExecConfig { cache, k: None },
                1,
            )
            .unwrap_or_else(|e| panic!("{desc}: batch=1 pipeline fails: {e}"));
            let base_answers = sorted(base.answers.clone());
            let services = [wb.ids.conf, wb.ids.weather, wb.ids.flight, wb.ids.hotel];

            for batch in [2usize, 7, 64] {
                let wp = world();
                let pipeline = run_with_batch(
                    &plan,
                    &wp.schema,
                    &wp.registry,
                    &ExecConfig { cache, k: None },
                    batch,
                )
                .unwrap_or_else(|e| panic!("{desc}: batch={batch} pipeline fails: {e}"));
                assert_eq!(
                    sorted(pipeline.answers.clone()),
                    base_answers,
                    "{desc}: batch={batch} pipeline answers"
                );

                let wt = world();
                let thr = run_threaded_with_batch(
                    &plan,
                    &wt.schema,
                    &wt.registry,
                    &ThreadedConfig {
                        cache,
                        time_scale: 0.0,
                        channel_capacity: 8,
                        k: None,
                    },
                    batch,
                )
                .unwrap_or_else(|e| panic!("{desc}: batch={batch} threaded fails: {e}"));
                assert_eq!(
                    sorted(thr.answers.clone()),
                    base_answers,
                    "{desc}: batch={batch} threaded answers"
                );

                // the pull driver's batch size is the demand chunk:
                // drain it `batch` answers at a time
                let wq = world();
                let mut pull = TopKExecution::new(&plan, &wq.schema, &wq.registry, cache, false)
                    .unwrap_or_else(|e| panic!("{desc}: batch={batch} pull fails: {e}"));
                let mut pulled = Vec::new();
                loop {
                    let chunk = pull.answers(batch);
                    let done = chunk.len() < batch;
                    pulled.extend(chunk);
                    if done {
                        break;
                    }
                }
                assert!(
                    pull.error().is_none(),
                    "{desc}: batch={batch} pull poisoned: {:?}",
                    pull.error()
                );
                assert_eq!(
                    sorted(pulled),
                    base_answers,
                    "{desc}: batch={batch} pull answers"
                );

                let pull_faults = pull.fault_stats();
                for id in services {
                    let calls = base.calls_to(id);
                    let retries = base.retries_to(id);
                    assert_eq!(
                        pipeline.calls_to(id),
                        calls,
                        "{desc}: batch={batch} pipeline calls to {id:?}"
                    );
                    assert_eq!(
                        pipeline.retries_to(id),
                        retries,
                        "{desc}: batch={batch} pipeline retries to {id:?}"
                    );
                    assert_eq!(
                        thr.calls.get(&id).copied().unwrap_or(0),
                        calls,
                        "{desc}: batch={batch} threaded calls to {id:?}"
                    );
                    assert_eq!(
                        thr.retries_to(id),
                        retries,
                        "{desc}: batch={batch} threaded retries to {id:?}"
                    );
                    assert_eq!(
                        pull.calls_to(id),
                        calls,
                        "{desc}: batch={batch} pull calls to {id:?}"
                    );
                    assert_eq!(
                        pull_faults.get(&id).map(|s| s.retries).unwrap_or(0),
                        retries,
                        "{desc}: batch={batch} pull retries to {id:?}"
                    );
                }
            }
        }
    }
}

/// The adaptive driver under the same sweep: answers, per-service call
/// counts *and re-plan decisions* are invariant in the batch size (the
/// divergence checks run at the same stage boundaries with the same
/// observed statistics, whatever the batch).
#[test]
fn adaptive_batch_sweep_preserves_replans() {
    for fault_seed in [None, Some(0xAD_A9u64)] {
        let desc = match fault_seed {
            None => "healthy".to_string(),
            Some(s) => format!("seeded faults {s:#x}"),
        };

        let (wb, plan_b, shared_b) = adaptive_fixture(fault_seed);
        let mut rp = adaptive_replanner(&wb);
        let base = run_adaptive_with_batch(
            &plan_b,
            &wb.world.schema,
            &wb.world.registry,
            shared_b,
            None,
            None,
            &mdq::cost::divergence::AdaptiveConfig::default(),
            &mut rp,
            1,
        )
        .unwrap_or_else(|e| panic!("{desc}: batch=1 adaptive fails: {e}"));
        assert!(
            base.replans >= 1,
            "{desc}: the mis-estimate forces a re-plan"
        );
        let base_answers = sorted(base.report.answers.clone());

        for batch in [2usize, 7, 64] {
            let (w, plan, shared) = adaptive_fixture(fault_seed);
            let mut rp = adaptive_replanner(&w);
            let out = run_adaptive_with_batch(
                &plan,
                &w.world.schema,
                &w.world.registry,
                shared,
                None,
                None,
                &mdq::cost::divergence::AdaptiveConfig::default(),
                &mut rp,
                batch,
            )
            .unwrap_or_else(|e| panic!("{desc}: batch={batch} adaptive fails: {e}"));
            assert_eq!(
                sorted(out.report.answers.clone()),
                base_answers,
                "{desc}: batch={batch} adaptive answers"
            );
            assert_eq!(
                out.replans, base.replans,
                "{desc}: batch={batch} adaptive replans"
            );
            for id in [w.ids.seed, w.ids.parts, w.ids.offers] {
                assert_eq!(
                    out.report.calls_to(id),
                    base.report.calls_to(id),
                    "{desc}: batch={batch} adaptive calls to {id:?}"
                );
                assert_eq!(
                    out.report.retries_to(id),
                    base.report.retries_to(id),
                    "{desc}: batch={batch} adaptive retries to {id:?}"
                );
            }
        }
    }
}

/// Early halting never changes *which* answers arrive, only how many
/// calls are spent: the first k pulled answers are a prefix-equivalent
/// subset of the materialised answer set.
#[test]
fn randomized_plans_topk_prefix_is_subset() {
    let mut rng = Rng::new(0x70CC);
    for case in 0..8 {
        let w = travel_world(2008);
        let plan = random_plan(&mut rng, &w);
        let k = rng.range_usize(1, 12);
        let full = run(
            &plan,
            &w.schema,
            &w.registry,
            &ExecConfig {
                cache: CacheSetting::OneCall,
                k: None,
            },
        )
        .expect("pipeline");
        let full_set = sorted(full.answers.clone());
        let mut pull =
            TopKExecution::new(&plan, &w.schema, &w.registry, CacheSetting::OneCall, false)
                .expect("pull");
        let first_k = pull.answers(k);
        assert_eq!(
            first_k.len(),
            k.min(full_set.len()),
            "case {case}: k={k} answers available"
        );
        for a in &first_k {
            assert!(
                full_set.binary_search(a).is_ok(),
                "case {case}: pulled answer {a} missing from materialised set"
            );
        }
        if !first_k.is_empty() && first_k.len() < full_set.len() {
            assert!(
                pull.total_calls() <= full.calls.values().sum::<u64>(),
                "case {case}: early halt never spends more calls"
            );
        }
    }
}
