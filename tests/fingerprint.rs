//! Integration coverage for the template-normalization fingerprint
//! (`mdq::model::fingerprint`) — the plan-cache key of the serving
//! layer: alpha-renaming and predicate order must not matter; constants
//! and shape must.

use mdq::model::fingerprint::{canonical_text, fingerprint, QueryFingerprint};
use mdq::model::template::QueryTemplate;
use mdq::model::value::Value;
use mdq::services::domains::travel::travel_world;
use mdq::Mdq;

fn engine() -> Mdq {
    let w = travel_world(2008);
    Mdq::from_world(mdq::services::domains::World {
        schema: w.schema,
        query: w.query,
        registry: w.registry,
    })
}

fn fp(engine: &Mdq, text: &str) -> QueryFingerprint {
    fingerprint(&engine.parse(text).expect("parses"))
}

const FULL: &str = "q(Conf, City, HPrice, FPrice, Hotel) :- \
     flight('Milano', City, Start, End, ST, ET, FPrice), \
     hotel(Hotel, City, 'luxury', Start, End, HPrice), \
     conf('DB', Conf, Start, End, City), \
     weather(City, Temp, Start), \
     Start >= '2007/3/14', End <= '2007/3/14' + 180, \
     Temp >= 28, FPrice + HPrice < 2000.";

#[test]
fn alpha_renaming_and_predicate_order_are_invisible() {
    let e = engine();
    // every variable renamed, predicates listed in a different order
    let variant = "q(C, Town, HP, FP, H) :- \
         flight('Milano', Town, S, E, T1, T2, FP), \
         hotel(H, Town, 'luxury', S, E, HP), \
         conf('DB', C, S, E, Town), \
         weather(Town, Deg, S), \
         FP + HP < 2000, Deg >= 28, \
         E <= '2007/3/14' + 180, S >= '2007/3/14'.";
    assert_eq!(fp(&e, FULL), fp(&e, variant));
}

#[test]
fn constants_are_part_of_the_template() {
    let e = engine();
    let other_topic = FULL.replace("'DB'", "'AI'");
    let other_budget = FULL.replace("2000", "1800");
    let base = fp(&e, FULL);
    assert_ne!(base, fp(&e, &other_topic));
    assert_ne!(base, fp(&e, &other_budget));
    assert_ne!(fp(&e, &other_topic), fp(&e, &other_budget));
}

#[test]
fn shape_changes_change_the_fingerprint() {
    let e = engine();
    let base = fp(&e, FULL);
    // one atom fewer
    let no_weather = "q(Conf, City, HPrice, FPrice, Hotel) :- \
         flight('Milano', City, Start, End, ST, ET, FPrice), \
         hotel(Hotel, City, 'luxury', Start, End, HPrice), \
         conf('DB', Conf, Start, End, City), \
         Start >= '2007/3/14', FPrice + HPrice < 2000.";
    assert_ne!(base, fp(&e, no_weather));
    // same atoms, different head projection
    let narrower_head = "q(Conf, City) :- \
         flight('Milano', City, Start, End, ST, ET, FPrice), \
         hotel(Hotel, City, 'luxury', Start, End, HPrice), \
         conf('DB', Conf, Start, End, City), \
         weather(City, Temp, Start), \
         Start >= '2007/3/14', End <= '2007/3/14' + 180, \
         Temp >= 28, FPrice + HPrice < 2000.";
    assert_ne!(base, fp(&e, narrower_head));
}

#[test]
fn template_instantiations_share_fingerprints_per_binding() {
    // §2.2: the same form resubmitted with the same keywords is the
    // same template instance — and the plan cache treats it as such
    let e = engine();
    let template = QueryTemplate::new(
        "q(Conf, City) :- conf($topic, Conf, S, E, City), \
         weather(City, T, S), T >= $min.",
    )
    .expect("builds");
    let inst = |topic: &str, min: i64| {
        let q = template
            .instantiate(
                e.schema(),
                &[("topic", Value::str(topic)), ("min", Value::Int(min))],
            )
            .expect("instantiates");
        fingerprint(&q)
    };
    assert_eq!(inst("DB", 28), inst("DB", 28), "same keywords, same key");
    assert_ne!(inst("DB", 28), inst("AI", 28), "keyword is part of the key");
    assert_ne!(inst("DB", 28), inst("DB", 30));
}

#[test]
fn canonical_text_is_deterministic_across_parses() {
    let e = engine();
    let a = e.parse(FULL).expect("parses");
    let b = e.parse(FULL).expect("parses");
    assert_eq!(canonical_text(&a), canonical_text(&b));
    assert_eq!(format!("{}", fingerprint(&a)).len(), 16, "hex digest");
}
