//! Integration coverage for the template-normalization fingerprint
//! (`mdq::model::fingerprint`) — the plan-cache key of the serving
//! layer: alpha-renaming and predicate order must not matter; constants
//! and shape must. The same canonicalization rules govern the *subplan
//! signatures* (`mdq::plan::signature`) the MQO sub-result store keys
//! shared invoke prefixes on, tested below property-style: every
//! alpha-renaming and every atom listing order of a template must sign
//! identically at every prefix level, while perturbing a constant must
//! change exactly the levels whose work it participates in.

use mdq::cost::metrics::ExecutionTime;
use mdq::exec::cache::CacheSetting;
use mdq::model::fingerprint::{canonical_text, fingerprint, QueryFingerprint, SubplanSignature};
use mdq::model::template::QueryTemplate;
use mdq::model::value::Value;
use mdq::optimizer::bnb::OptimizerConfig;
use mdq::plan::signature::invoke_prefixes;
use mdq::services::domains::travel::travel_world;
use mdq::Mdq;

fn engine() -> Mdq {
    let w = travel_world(2008);
    Mdq::from_world(mdq::services::domains::World {
        schema: w.schema,
        query: w.query,
        registry: w.registry,
    })
}

fn fp(engine: &Mdq, text: &str) -> QueryFingerprint {
    fingerprint(&engine.parse(text).expect("parses"))
}

const FULL: &str = "q(Conf, City, HPrice, FPrice, Hotel) :- \
     flight('Milano', City, Start, End, ST, ET, FPrice), \
     hotel(Hotel, City, 'luxury', Start, End, HPrice), \
     conf('DB', Conf, Start, End, City), \
     weather(City, Temp, Start), \
     Start >= '2007/3/14', End <= '2007/3/14' + 180, \
     Temp >= 28, FPrice + HPrice < 2000.";

#[test]
fn alpha_renaming_and_predicate_order_are_invisible() {
    let e = engine();
    // every variable renamed, predicates listed in a different order
    let variant = "q(C, Town, HP, FP, H) :- \
         flight('Milano', Town, S, E, T1, T2, FP), \
         hotel(H, Town, 'luxury', S, E, HP), \
         conf('DB', C, S, E, Town), \
         weather(Town, Deg, S), \
         FP + HP < 2000, Deg >= 28, \
         E <= '2007/3/14' + 180, S >= '2007/3/14'.";
    assert_eq!(fp(&e, FULL), fp(&e, variant));
}

#[test]
fn constants_are_part_of_the_template() {
    let e = engine();
    let other_topic = FULL.replace("'DB'", "'AI'");
    let other_budget = FULL.replace("2000", "1800");
    let base = fp(&e, FULL);
    assert_ne!(base, fp(&e, &other_topic));
    assert_ne!(base, fp(&e, &other_budget));
    assert_ne!(fp(&e, &other_topic), fp(&e, &other_budget));
}

#[test]
fn shape_changes_change_the_fingerprint() {
    let e = engine();
    let base = fp(&e, FULL);
    // one atom fewer
    let no_weather = "q(Conf, City, HPrice, FPrice, Hotel) :- \
         flight('Milano', City, Start, End, ST, ET, FPrice), \
         hotel(Hotel, City, 'luxury', Start, End, HPrice), \
         conf('DB', Conf, Start, End, City), \
         Start >= '2007/3/14', FPrice + HPrice < 2000.";
    assert_ne!(base, fp(&e, no_weather));
    // same atoms, different head projection
    let narrower_head = "q(Conf, City) :- \
         flight('Milano', City, Start, End, ST, ET, FPrice), \
         hotel(Hotel, City, 'luxury', Start, End, HPrice), \
         conf('DB', Conf, Start, End, City), \
         weather(City, Temp, Start), \
         Start >= '2007/3/14', End <= '2007/3/14' + 180, \
         Temp >= 28, FPrice + HPrice < 2000.";
    assert_ne!(base, fp(&e, narrower_head));
}

#[test]
fn template_instantiations_share_fingerprints_per_binding() {
    // §2.2: the same form resubmitted with the same keywords is the
    // same template instance — and the plan cache treats it as such
    let e = engine();
    let template = QueryTemplate::new(
        "q(Conf, City) :- conf($topic, Conf, S, E, City), \
         weather(City, T, S), T >= $min.",
    )
    .expect("builds");
    let inst = |topic: &str, min: i64| {
        let q = template
            .instantiate(
                e.schema(),
                &[("topic", Value::str(topic)), ("min", Value::Int(min))],
            )
            .expect("instantiates");
        fingerprint(&q)
    };
    assert_eq!(inst("DB", 28), inst("DB", 28), "same keywords, same key");
    assert_ne!(inst("DB", 28), inst("AI", 28), "keyword is part of the key");
    assert_ne!(inst("DB", 28), inst("DB", 30));
}

/// Optimizes `text` exactly like the serving layer and signs every
/// invoke prefix of the chosen plan.
fn prefix_sigs(engine: &Mdq, text: &str) -> Vec<SubplanSignature> {
    let query = engine.parse(text).expect("parses");
    let optimized = engine
        .optimize(
            query,
            &ExecutionTime,
            OptimizerConfig {
                k: 5,
                cache: CacheSetting::OneCall,
                ..OptimizerConfig::default()
            },
        )
        .expect("optimizes");
    invoke_prefixes(&optimized.candidate.plan)
        .iter()
        .map(|p| p.signature)
        .collect()
}

/// The travel template with its four body atoms in a chosen listing
/// order and its variables renamed through `rename`.
fn travel_variant(order: &[usize; 4], rename: &dyn Fn(&str) -> String) -> String {
    let atoms = [
        "flight('Milano', City, Start, End, ST, ET, FPrice)",
        "hotel(Hotel, City, 'luxury', Start, End, HPrice)",
        "conf('DB', Conf, Start, End, City)",
        "weather(City, Temp, Start)",
    ];
    let body: Vec<String> = order.iter().map(|&i| atoms[i].to_string()).collect();
    let text = format!(
        "q(Conf, City, HPrice, FPrice, Hotel) :- {}, \
         Start >= '2007/3/14', End <= '2007/3/14' + 180, \
         Temp >= 28, FPrice + HPrice < 700.0.",
        body.join(", ")
    );
    // rename every variable occurrence: the names are case-sensitively
    // distinct from the (lowercase) service names and from each other's
    // substrings, so plain textual replacement is unambiguous
    let mut out = text;
    for v in [
        "Conf", "City", "HPrice", "FPrice", "Hotel", "Start", "End", "ST", "ET", "Temp",
    ] {
        out = out.replace(v, &rename(v));
    }
    out
}

#[test]
fn subplan_signatures_survive_renaming_and_listing_order() {
    // property-style: every atom listing order × every renaming of the
    // same template must optimize to a plan whose invoke prefixes sign
    // identically at every level
    let e = engine();
    let renamings: [&dyn Fn(&str) -> String; 3] = [
        &|v: &str| v.to_string(),
        &|v: &str| format!("{v}X"),
        &|v: &str| format!("Zz{v}Q"),
    ];
    let orders: [[usize; 4]; 5] = [
        [0, 1, 2, 3],
        [3, 2, 1, 0],
        [2, 3, 0, 1],
        [1, 0, 3, 2],
        [2, 0, 3, 1],
    ];
    let base = prefix_sigs(&e, &travel_variant(&orders[0], renamings[0]));
    assert!(
        base.len() >= 2,
        "the travel plan has a sharable chain ({} levels)",
        base.len()
    );
    for order in &orders {
        for rename in &renamings {
            let sigs = prefix_sigs(&e, &travel_variant(order, rename));
            assert_eq!(
                sigs, base,
                "order {order:?} signed differently under a renaming"
            );
        }
    }
}

#[test]
fn subplan_signatures_change_exactly_where_a_constant_participates() {
    // the serving layer's sharing boundary: perturbing a constant must
    // invalidate precisely the prefix levels whose work it affects
    let e = engine();
    let ident: &dyn Fn(&str) -> String = &|v: &str| v.to_string();
    let base_text = travel_variant(&[0, 1, 2, 3], ident);
    let base = prefix_sigs(&e, &base_text);
    let levels = base.len();

    // the price budget binds only at the flight ⋈ hotel join — outside
    // the serial chain entirely, so *every* prefix level still shares:
    // this is precisely what lets a batch of different-budget queries
    // replay one materialized `conf → weather` prefix
    let budget = prefix_sigs(&e, &base_text.replace("700.0", "650.0"));
    assert_eq!(
        budget, base,
        "a join-level constant must not invalidate any prefix level"
    );

    // the conference topic feeds the chain's first invocation: no level
    // survives
    let topic = prefix_sigs(&e, &base_text.replace("'DB'", "'AI'"));
    for (lvl, (a, b)) in topic.iter().zip(&base).enumerate() {
        assert_ne!(a, b, "level {} shares across different topics", lvl + 1);
    }

    // the weather threshold applies at the weather invocation: the
    // conf-only level 1 still shares, everything from weather on differs
    let temp = prefix_sigs(&e, &base_text.replace("Temp >= 28", "Temp >= 30"));
    assert_eq!(temp[0], base[0], "level 1 (conf) is untouched by Temp");
    let weather_level = (1..levels)
        .find(|&i| temp[i] != base[i])
        .expect("some level applies the Temp predicate");
    for i in weather_level..levels {
        assert_ne!(temp[i], base[i], "levels from weather on must differ");
    }
}

#[test]
fn canonical_text_is_deterministic_across_parses() {
    let e = engine();
    let a = e.parse(FULL).expect("parses");
    let b = e.parse(FULL).expect("parses");
    assert_eq!(canonical_text(&a), canonical_text(&b));
    assert_eq!(format!("{}", fingerprint(&a)).len(), 16, "hex digest");
}
