//! Executing the Fig. 9 alternative plan (α2 patterns: hotel② scan
//! branch, nested-loop join) against the calibrated travel world — the
//! engine path not exercised by the Fig. 11 plans (which are all-α1 and
//! merge-scan).

use mdq::prelude::*;
use mdq_bench::experiments::fig11::{build_shape, PlanShape};
use mdq_bench::experiments::fig8::fig9_plan;

fn sorted(mut v: Vec<Tuple>) -> Vec<Tuple> {
    v.sort();
    v
}

/// Fig. 9 executes: the hotel scan runs directly off the query input,
/// the conf → weather → flight chain runs beside it, and the NL join
/// (hotel as the bounded outer side) merges them.
#[test]
fn fig9_plan_executes_with_nl_join() {
    let w = travel_world(2008);
    // fig9_plan builds against the canonical schema; rebuild against the
    // world's (they are identical — same constructor)
    let plan = fig9_plan();
    let report = run(
        &plan,
        &w.schema,
        &w.registry,
        &ExecConfig {
            cache: CacheSetting::OneCall,
            k: None,
        },
    )
    .expect("executes");
    // the hotel scan is one invocation of F = 2 pages = 2 calls
    assert_eq!(report.calls_to(w.ids.hotel), 2, "one scan, two fetches");
    assert_eq!(report.calls_to(w.ids.conf), 1);
    assert_eq!(report.calls_to(w.ids.weather), 71);
    assert_eq!(report.calls_to(w.ids.flight), 16);
    // answers satisfy every predicate
    for a in &report.answers {
        let hp = a.get(2).as_f64().expect("HPrice");
        let fp = a.get(3).as_f64().expect("FPrice");
        assert!(fp + hp < 2000.0);
    }
}

/// Fig. 9's answers are a subset of plan O's: the bounded hotel scan
/// (F = 2 → the 10 globally cheapest hotels) sees only some cities.
#[test]
fn fig9_answers_subset_of_plan_o() {
    let w = travel_world(2008);
    let fig9 = fig9_plan();
    let nine = run(
        &w.schema
            .service_by_name("hotel")
            .map(|_| fig9)
            .expect("schema matches"),
        &w.schema,
        &w.registry,
        &ExecConfig {
            cache: CacheSetting::Optimal,
            k: None,
        },
    )
    .expect("executes");

    let w2 = travel_world(2008);
    let plan_o = build_shape(&w2, PlanShape::O);
    let full = run(
        &plan_o,
        &w2.schema,
        &w2.registry,
        &ExecConfig {
            cache: CacheSetting::Optimal,
            k: None,
        },
    )
    .expect("executes");
    let full_set = sorted(full.answers);
    for a in sorted(nine.answers) {
        assert!(
            full_set.binary_search(&a).is_ok(),
            "Fig. 9 answer {a} must be among plan O's answers"
        );
    }
}

/// The same plan through the pull executor agrees with the pipeline and
/// halts the hotel scan early when only a few answers are needed.
#[test]
fn fig9_pull_agrees_and_halts() {
    let w = travel_world(2008);
    let plan = fig9_plan();
    let all = run(
        &plan,
        &w.schema,
        &w.registry,
        &ExecConfig {
            cache: CacheSetting::Optimal,
            k: None,
        },
    )
    .expect("executes");
    let w2 = travel_world(2008);
    let mut pull = TopKExecution::new(
        &plan,
        &w2.schema,
        &w2.registry,
        CacheSetting::Optimal,
        false,
    )
    .expect("builds");
    let pulled = pull.answers(1 << 20);
    assert_eq!(sorted(pulled), sorted(all.answers.clone()));

    // asking for just one answer issues fewer calls
    let w3 = travel_world(2008);
    let mut one = TopKExecution::new(
        &plan,
        &w3.schema,
        &w3.registry,
        CacheSetting::Optimal,
        false,
    )
    .expect("builds");
    if one.next_answer().is_some() {
        let total_calls: u64 = all.calls.values().sum();
        assert!(one.total_calls() < total_calls);
    }
}
