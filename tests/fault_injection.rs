//! Deterministic chaos: scripted [`FaultPlan`] scenarios against the
//! resilient gateway.
//!
//! Every scenario pins *exact* call/retry/backoff counts — the fault
//! schedules are functions of call identity, never of wall-clock or
//! global order, so three consecutive runs must agree to the digit
//! (see `replays_identically`).

use mdq::model::examples::{ATOM_CONF, ATOM_FLIGHT, ATOM_HOTEL, ATOM_WEATHER};
use mdq::prelude::*;
use mdq::services::domains::travel::TravelWorld;
use mdq::services::fault::{FaultPlan, FaultProfile, PlannedFault};
use mdq::services::service::{ServiceFault, ServiceResponse};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};

/// The running example's plan O (conf → weather → {flight, hotel}).
fn plan_o(world: &TravelWorld) -> Plan {
    let poset = Poset::from_pairs(
        4,
        &[
            (ATOM_CONF, ATOM_WEATHER),
            (ATOM_WEATHER, ATOM_FLIGHT),
            (ATOM_WEATHER, ATOM_HOTEL),
        ],
    )
    .expect("valid");
    build_plan(
        Arc::new(world.query.clone()),
        &world.schema,
        ApChoice(vec![0, 0, 0, 0]),
        poset,
        (0..4).collect(),
        &StrategyRule::default(),
    )
    .expect("builds")
}

/// Re-registers the service picked by `which` wrapped in a scripted
/// fault profile.
fn script(world: &mut TravelWorld, which: fn(&TravelWorld) -> ServiceId, plan: FaultPlan) {
    let id = which(world);
    let inner = world.registry.get(id).expect("registered").clone();
    world
        .registry
        .register(id, FaultProfile::scripted(inner, plan));
}

fn run_optimal(world: &TravelWorld, plan: &Plan) -> ExecReport {
    run(
        plan,
        &world.schema,
        &world.registry,
        &ExecConfig {
            cache: CacheSetting::Optimal,
            k: None,
        },
    )
    .expect("executes")
}

/// Retry-then-succeed: a service whose every call errors twice before
/// succeeding yields *identical answers* to the clean run, with exactly
/// `3×` the attempts and `2×` the retries (default policy: 2 retries).
#[test]
fn retry_then_succeed_identical_answers_exact_counts() {
    let clean_world = travel_world(2008);
    let plan = plan_o(&clean_world);
    let clean = run_optimal(&clean_world, &plan);
    assert_eq!(clean.calls_to(clean_world.ids.flight), 11, "baseline");

    let mut w = travel_world(2008);
    script(
        &mut w,
        |w| w.ids.flight,
        FaultPlan::new().fail_first(2, PlannedFault::Error),
    );
    let report = run_optimal(&w, &plan);

    assert_eq!(report.answers, clean.answers, "answers survive the faults");
    assert!(report.is_complete(), "retries absorbed every fault");
    assert_eq!(
        report.calls_to(w.ids.flight),
        3 * clean.calls_to(w.ids.flight),
        "every page: 2 failed attempts + 1 success"
    );
    let flight = report.fault_stats[&w.ids.flight];
    assert_eq!(flight.errors, 22);
    assert_eq!(flight.retries, 22);
    assert_eq!(flight.exhausted, 0);
    // the other services never faulted
    assert_eq!(report.retries_to(w.ids.weather), 0);
    assert_eq!(
        report.calls_to(w.ids.weather),
        clean.calls_to(w.ids.weather)
    );
}

/// Exhausted retries degrade the service into `PartialResults` naming
/// it — the query completes instead of failing.
#[test]
fn exhausted_retries_yield_partial_results_naming_the_service() {
    let clean_world = travel_world(2008);
    let plan = plan_o(&clean_world);
    let clean = run_optimal(&clean_world, &plan);

    let mut w = travel_world(2008);
    script(
        &mut w,
        |w| w.ids.hotel,
        FaultPlan::new().fail_always(PlannedFault::Error),
    );
    let report = run_optimal(&w, &plan);

    let partial = report.partial.as_ref().expect("hotel degraded");
    assert!(partial.names("hotel"), "{partial}");
    assert_eq!(partial.degraded.len(), 1, "only hotel degraded");
    assert!(
        report.answers.is_empty(),
        "every answer needs a hotel binding"
    );
    // hotel: 11 page identities × (1 attempt + 2 retries), all exhausted
    let hotel = report.fault_stats[&w.ids.hotel];
    assert_eq!(report.calls_to(w.ids.hotel), 33);
    assert_eq!(hotel.errors, 33);
    assert_eq!(hotel.retries, 22);
    assert_eq!(hotel.exhausted, 11);
    // upstream services unaffected
    assert_eq!(report.calls_to(w.ids.conf), clean.calls_to(w.ids.conf));
    assert_eq!(
        report.calls_to(w.ids.weather),
        clean.calls_to(w.ids.weather)
    );
    assert_eq!(report.calls_to(w.ids.flight), clean.calls_to(w.ids.flight));
}

/// The failed-page memo: once a page exhausts its retries, later
/// executions over the same shared state observe the degradation
/// without re-fetching the fault storm.
#[test]
fn failed_pages_are_memoized_across_executions() {
    let mut w = travel_world(2008);
    let plan = plan_o(&w);
    script(
        &mut w,
        |w| w.ids.hotel,
        FaultPlan::new().fail_always(PlannedFault::Timeout),
    );
    let shared = Arc::new(SharedServiceState::new(CacheSetting::Optimal, 0));

    let first = run_with_shared(
        &plan,
        &w.schema,
        &w.registry,
        Arc::clone(&shared),
        None,
        None,
    )
    .expect("executes");
    assert!(first.partial.as_ref().expect("degraded").names("hotel"));
    let calls_after_first = shared.total_calls();
    assert_eq!(shared.failed_pages(), 11, "one memo entry per hotel page");

    let second = run_with_shared(
        &plan,
        &w.schema,
        &w.registry,
        Arc::clone(&shared),
        None,
        None,
    )
    .expect("executes");
    assert!(
        second
            .partial
            .as_ref()
            .expect("still degraded")
            .names("hotel"),
        "memoized failures surface as partial results"
    );
    assert_eq!(
        shared.total_calls(),
        calls_after_first,
        "no page and no fault re-fetched: healthy pages hit the cache, \
         failed pages hit the memo"
    );
    assert_eq!(second.retries_to(w.ids.hotel), 0, "memo path never retries");
}

/// Recovery after an outage: the memo holds a condemned page until
/// `clear_failed_pages` — after clearing, a recovered service serves
/// the page and the query completes fully.
#[test]
fn clearing_the_memo_recovers_a_healed_service() {
    let mut w = travel_world(2008);
    let plan = plan_o(&w);
    // an outage exactly as long as the retry budget: attempts 0-2 of
    // the single conf page fail, attempt 3 (after "the outage ends")
    // succeeds
    script(
        &mut w,
        |w| w.ids.conf,
        FaultPlan::new().fail_first(3, PlannedFault::Error),
    );
    let shared = Arc::new(SharedServiceState::new(CacheSetting::Optimal, 0));

    let outage = run_with_shared(
        &plan,
        &w.schema,
        &w.registry,
        Arc::clone(&shared),
        None,
        None,
    )
    .expect("executes");
    assert!(outage.partial.as_ref().expect("degraded").names("conf"));
    assert_eq!(shared.failed_pages(), 1);

    // while the memo stands, even the healed service stays condemned
    let still_down = run_with_shared(
        &plan,
        &w.schema,
        &w.registry,
        Arc::clone(&shared),
        None,
        None,
    )
    .expect("executes");
    assert!(still_down.partial.is_some(), "memo outlives the outage");

    assert_eq!(shared.clear_failed_pages(), 1, "operator recovery lever");
    let recovered = run_with_shared(
        &plan,
        &w.schema,
        &w.registry,
        Arc::clone(&shared),
        None,
        None,
    )
    .expect("executes");
    assert!(recovered.is_complete(), "the healed page serves again");
    assert!(!recovered.answers.is_empty());
    assert_eq!(shared.failed_pages(), 0);
}

/// A rate-limited service's `retry_after` dominates the policy backoff
/// and is accounted exactly, in simulated seconds.
#[test]
fn rate_limit_respects_backoff_accounting() {
    let clean_world = travel_world(2008);
    let plan = plan_o(&clean_world);
    let clean = run_optimal(&clean_world, &plan);

    let mut w = travel_world(2008);
    script(
        &mut w,
        |w| w.ids.conf,
        FaultPlan::new().fail_first(1, PlannedFault::RateLimited(3.0)),
    );
    let report = run_optimal(&w, &plan);

    assert_eq!(report.answers, clean.answers);
    let conf = report.fault_stats[&w.ids.conf];
    assert_eq!(conf.rate_limited, 1);
    assert_eq!(conf.retries, 1);
    assert!(
        (conf.backoff_seconds - 3.0).abs() < 1e-9,
        "retry_after (3.0) > default backoff (0.5): {}",
        conf.backoff_seconds
    );
    // the throttle response (0.05 s) plus the accounted wait shift the
    // whole virtual timeline, conf being the root of the plan
    assert!(
        (report.virtual_time - clean.virtual_time - 3.05).abs() < 1e-9,
        "virtual time accounts the backoff: {} vs {}",
        report.virtual_time,
        clean.virtual_time
    );
}

/// A custom policy's exponential backoff schedule is accounted term by
/// term: 0.5 + 1.0 + 2.0 for three retries at base 0.5, multiplier 2.
#[test]
fn custom_policy_backoff_escalates_deterministically() {
    let mut w = travel_world(2008);
    let plan = plan_o(&w);
    script(
        &mut w,
        |w| w.ids.conf,
        FaultPlan::new().fail_first(3, PlannedFault::Error),
    );
    let shared = Arc::new(
        SharedServiceState::new(CacheSetting::Optimal, 0).with_retry(RetryPolicy {
            max_retries: 3,
            base_backoff: 0.5,
            multiplier: 2.0,
        }),
    );
    let report =
        run_with_shared(&plan, &w.schema, &w.registry, shared, None, None).expect("executes");
    assert!(report.is_complete());
    let conf = report.fault_stats[&w.ids.conf];
    assert_eq!(report.calls_to(w.ids.conf), 4, "3 faults + 1 success");
    assert_eq!(conf.retries, 3);
    assert!(
        (conf.backoff_seconds - 3.5).abs() < 1e-9,
        "0.5 + 1.0 + 2.0 accounted: {}",
        conf.backoff_seconds
    );
}

/// Retries are call-budget aware: a generous retry policy stops
/// retrying the moment the per-query budget is consumed, degrading the
/// page instead of overdrawing.
#[test]
fn retries_respect_the_call_budget() {
    let mut w = travel_world(2008);
    let plan = plan_o(&w);
    script(
        &mut w,
        |w| w.ids.conf,
        FaultPlan::new().fail_always(PlannedFault::Error),
    );
    let shared = Arc::new(
        SharedServiceState::new(CacheSetting::Optimal, 0).with_retry(RetryPolicy::retries(5)),
    );
    let report = run_with_shared(&plan, &w.schema, &w.registry, shared, Some(2), None)
        .expect("budget degradation is not a hard failure");
    assert_eq!(
        report.calls_to(w.ids.conf),
        2,
        "5 retries allowed, budget caps at 2 attempts"
    );
    let conf = report.fault_stats[&w.ids.conf];
    assert_eq!((conf.retries, conf.exhausted), (1, 1));
    assert!(report.partial.as_ref().expect("degraded").names("conf"));
}

/// One query running out of its *own* call budget mid-fault must not
/// condemn a transiently-failing page in the shared failed-page memo:
/// the next query (with budget to retry) recovers the page fully.
#[test]
fn budget_starved_query_does_not_poison_the_page_for_others() {
    let mut w = travel_world(2008);
    let plan = plan_o(&w);
    // transient: the first attempt of each call fails, retries succeed
    script(
        &mut w,
        |w| w.ids.conf,
        FaultPlan::new().fail_first(1, PlannedFault::Error),
    );
    let shared = Arc::new(SharedServiceState::new(CacheSetting::Optimal, 0));

    // query A: budget 1 — its only allowed attempt faults, so it
    // degrades without ever exercising its retry policy
    let starved = run_with_shared(
        &plan,
        &w.schema,
        &w.registry,
        Arc::clone(&shared),
        Some(1),
        None,
    )
    .expect("degrades, does not fail");
    assert!(starved
        .partial
        .as_ref()
        .expect("conf degraded")
        .names("conf"));
    assert_eq!(
        shared.failed_pages(),
        0,
        "a budget limit is a property of the query, not of the page"
    );

    // query B: unconstrained — the page's second attempt succeeds and
    // the query completes fully
    let healthy =
        run_with_shared(&plan, &w.schema, &w.registry, shared, None, None).expect("executes");
    assert!(
        healthy.is_complete(),
        "the page was never globally condemned"
    );
    assert!(!healthy.answers.is_empty());
}

/// Per-service retry overrides: a service can be declared fail-fast
/// while the rest of the workload keeps the default policy.
#[test]
fn per_service_retry_override() {
    let mut w = travel_world(2008);
    let plan = plan_o(&w);
    script(
        &mut w,
        |w| w.ids.flight,
        FaultPlan::new().fail_first(1, PlannedFault::Error),
    );
    script(
        &mut w,
        |w| w.ids.hotel,
        FaultPlan::new().fail_first(1, PlannedFault::Error),
    );
    let shared = Arc::new(
        SharedServiceState::new(CacheSetting::Optimal, 0)
            .with_service_retry(w.ids.hotel, RetryPolicy::NONE),
    );
    let report =
        run_with_shared(&plan, &w.schema, &w.registry, shared, None, None).expect("executes");
    // flight (default policy) recovered; hotel (fail-fast) degraded
    assert_eq!(report.retries_to(w.ids.flight), 11);
    assert_eq!(report.retries_to(w.ids.hotel), 0);
    let partial = report.partial.as_ref().expect("hotel degraded");
    assert!(partial.names("hotel") && !partial.names("flight"));
}

/// The whole suite's premise: a faulty run replays identically —
/// answers, calls, retries, backoff — when the world is rebuilt with
/// the same script.
#[test]
fn replays_identically() {
    let reports: Vec<ExecReport> = (0..3)
        .map(|_| {
            let mut w = travel_world(2008);
            let plan = plan_o(&w);
            script(
                &mut w,
                |w| w.ids.flight,
                FaultPlan::new()
                    .fail_page(0, 1, PlannedFault::Timeout)
                    .fail_first(1, PlannedFault::Error),
            );
            script(
                &mut w,
                |w| w.ids.weather,
                FaultPlan::new().fail_first(1, PlannedFault::RateLimited(0.25)),
            );
            run_optimal(&w, &plan)
        })
        .collect();
    for r in &reports[1..] {
        assert_eq!(r.answers, reports[0].answers);
        assert_eq!(r.calls, reports[0].calls);
        assert_eq!(r.fault_stats, reports[0].fault_stats);
        assert_eq!(r.partial, reports[0].partial);
    }
}

/// A service that blocks until released, then faults — the rendezvous
/// for the single-flight regression test below.
struct Blocking {
    entered: mpsc::Sender<()>,
    release: Mutex<mpsc::Receiver<()>>,
    calls: AtomicU64,
}

impl Service for Blocking {
    fn name(&self) -> &str {
        "conf"
    }

    fn fetch(&self, _pattern: usize, _inputs: &[Value], _page: u32) -> ServiceResponse {
        unreachable!("the gateway drives try_fetch")
    }

    fn try_fetch(
        &self,
        _pattern: usize,
        _inputs: &[Value],
        _page: u32,
    ) -> Result<ServiceResponse, ServiceFault> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        let _ = self.entered.send(());
        let _ = self.release.lock().expect("release lock").recv();
        Err(ServiceFault::Error {
            message: "leader fails while a waiter is blocked".into(),
            latency: 0.1,
        })
    }
}

/// Regression (latent `poison` × single-flight bug): a waiter blocked
/// on an in-flight page whose leader errors must wake *with the error*
/// — served from the failed-page memo — not hang, and not duplicate
/// the fault storm by re-fetching the page itself.
#[test]
fn single_flight_waiter_wakes_with_the_leaders_error() {
    let mut w = travel_world(2008);
    let plan = Arc::new(plan_o(&w));
    let (entered_tx, entered_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel();
    let blocking = Arc::new(Blocking {
        entered: entered_tx,
        release: Mutex::new(release_rx),
        calls: AtomicU64::new(0),
    });
    w.registry.register(w.ids.conf, Arc::clone(&blocking));
    let w = Arc::new(w);
    let shared =
        Arc::new(SharedServiceState::new(CacheSetting::Optimal, 0).with_retry(RetryPolicy::NONE));
    let key = vec![Value::str("DB")];

    let (leader_fetch, waiter_fetch) = std::thread::scope(|scope| {
        let leader = {
            let (w, plan, shared, key) = (
                Arc::clone(&w),
                Arc::clone(&plan),
                Arc::clone(&shared),
                key.clone(),
            );
            scope.spawn(move || {
                let mut g =
                    ServiceGateway::with_shared(&plan, &w.schema, &w.registry, shared, None)
                        .expect("builds");
                g.fetch_page(w.ids.conf, 0, &key, 0)
            })
        };
        // the leader holds the single-flight claim once it is inside
        // the service call
        entered_rx.recv().expect("leader entered the service");
        let waiter = {
            let (w, plan, shared, key) = (
                Arc::clone(&w),
                Arc::clone(&plan),
                Arc::clone(&shared),
                key.clone(),
            );
            scope.spawn(move || {
                let mut g =
                    ServiceGateway::with_shared(&plan, &w.schema, &w.registry, shared, None)
                        .expect("builds");
                g.fetch_page(w.ids.conf, 0, &key, 0)
            })
        };
        // give the waiter time to block on the in-flight page, then
        // let the leader's call fail
        std::thread::sleep(std::time::Duration::from_millis(100));
        release_tx.send(()).expect("leader still blocked");
        (
            leader.join().expect("leader"),
            waiter.join().expect("waiter"),
        )
    });

    assert!(leader_fetch.fault.is_some(), "leader observed the fault");
    let waiter_fault = waiter_fetch
        .fault
        .as_ref()
        .expect("waiter woke with the error");
    assert!(
        matches!(waiter_fault, ServiceFault::Error { .. }),
        "{waiter_fault}"
    );
    assert!(
        waiter_fetch.forwarded_latency.is_none(),
        "the waiter was served from the failed-page memo, not a re-fetch"
    );
    assert_eq!(
        blocking.calls.load(Ordering::SeqCst),
        1,
        "exactly one request-response: the waiter never duplicated it"
    );
    assert_eq!(shared.total_calls(), 1);
    assert_eq!(shared.total_fault_stats().exhausted, 1);
}
