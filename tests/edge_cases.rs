//! Cross-crate edge cases: degenerate queries, single atoms, Cartesian
//! joins, deep paging, and cache corner behaviour.

use mdq::prelude::*;
use mdq::Mdq;

fn single_service_engine() -> (Mdq, ServiceId) {
    let mut engine = Mdq::new();
    let svc = ServiceBuilder::new(engine.schema_mut(), "catalog")
        .attr_kinded("Topic", "Topic", DomainKind::Str)
        .attr_kinded("Item", "Item", DomainKind::Str)
        .attr_kinded("Price", "Price", DomainKind::Float)
        .pattern("ioo")
        .search()
        .chunked(2)
        .profile(ServiceProfile::new(2.0, 0.3))
        .register()
        .expect("registers");
    let rows: Vec<Tuple> = (0..7)
        .map(|i| {
            Tuple::new(vec![
                Value::str("t"),
                Value::str(format!("item{i}")),
                Value::float(10.0 + i as f64),
            ])
        })
        .collect();
    engine.registry_mut().register(
        svc,
        SyntheticSource::new(
            "catalog",
            vec![AccessPattern::parse("ioo").expect("valid")],
            rows,
            Some(2),
            LatencyModel::fixed(0.3),
        ),
    );
    (engine, svc)
}

/// A single-atom query: one topology, one sequence, fetch assignment
/// drives everything.
#[test]
fn single_atom_query() {
    let (engine, svc) = single_service_engine();
    let out = engine
        .run("q(Item, Price) :- catalog('t', Item, Price).", 5)
        .expect("runs");
    assert_eq!(out.answers().len(), 5);
    // 5 answers at chunk 2 need 3 fetches
    assert_eq!(out.calls_to(svc), 3);
    // ranked order is preserved (ascending price = rank order here)
    let prices: Vec<f64> = out
        .answers()
        .iter()
        .map(|a| a.get(1).as_f64().expect("price"))
        .collect();
    for w in prices.windows(2) {
        assert!(w[0] <= w[1], "{prices:?}");
    }
}

/// Asking for more answers than exist terminates cleanly.
#[test]
fn overshooting_k_terminates() {
    let (engine, _) = single_service_engine();
    let out = engine
        .run("q(Item) :- catalog('t', Item, Price).", 500)
        .expect("runs");
    assert_eq!(out.answers().len(), 7, "all items, no hang");
}

/// An unknown topic yields zero answers (and a fast empty response).
#[test]
fn empty_result_set() {
    let (engine, svc) = single_service_engine();
    let out = engine
        .run("q(Item) :- catalog('nope', Item, Price).", 5)
        .expect("runs");
    assert!(out.answers().is_empty());
    assert!(out.calls_to(svc) >= 1);
}

/// Two services with no shared variables: a Cartesian-product join.
#[test]
fn cartesian_join_without_shared_vars() {
    let mut engine = Mdq::new();
    let a = ServiceBuilder::new(engine.schema_mut(), "xs")
        .attr_kinded("K", "KX", DomainKind::Str)
        .attr_kinded("X", "DX", DomainKind::Int)
        .pattern("io")
        .profile(ServiceProfile::new(2.0, 0.1))
        .register()
        .expect("registers");
    let b = ServiceBuilder::new(engine.schema_mut(), "ys")
        .attr_kinded("K", "KY", DomainKind::Str)
        .attr_kinded("Y", "DY", DomainKind::Int)
        .pattern("io")
        .profile(ServiceProfile::new(3.0, 0.1))
        .register()
        .expect("registers");
    engine.registry_mut().register(
        a,
        SyntheticSource::new(
            "xs",
            vec![AccessPattern::parse("io").expect("valid")],
            (0..2)
                .map(|i| Tuple::new(vec![Value::str("k"), Value::Int(i)]))
                .collect::<Vec<_>>(),
            None,
            LatencyModel::fixed(0.1),
        ),
    );
    engine.registry_mut().register(
        b,
        SyntheticSource::new(
            "ys",
            vec![AccessPattern::parse("io").expect("valid")],
            (0..3)
                .map(|i| Tuple::new(vec![Value::str("k"), Value::Int(10 + i)]))
                .collect::<Vec<_>>(),
            None,
            LatencyModel::fixed(0.1),
        ),
    );
    let out = engine
        .run("q(X, Y) :- xs('k', X), ys('k', Y).", 100)
        .expect("runs");
    assert_eq!(out.answers().len(), 6, "2 × 3 cross product");
}

/// Repeated variables inside one atom enforce equality on the results.
#[test]
fn repeated_variable_filters_results() {
    let mut engine = Mdq::new();
    let svc = ServiceBuilder::new(engine.schema_mut(), "pairs")
        .attr_kinded("K", "DK", DomainKind::Str)
        .attr_kinded("A", "DA", DomainKind::Int)
        .attr_kinded("B", "DA", DomainKind::Int)
        .pattern("ioo")
        .profile(ServiceProfile::new(3.0, 0.1))
        .register()
        .expect("registers");
    let rows = vec![
        Tuple::new(vec![Value::str("k"), Value::Int(1), Value::Int(1)]),
        Tuple::new(vec![Value::str("k"), Value::Int(1), Value::Int(2)]),
        Tuple::new(vec![Value::str("k"), Value::Int(3), Value::Int(3)]),
    ];
    engine.registry_mut().register(
        svc,
        SyntheticSource::new(
            "pairs",
            vec![AccessPattern::parse("ioo").expect("valid")],
            rows,
            None,
            LatencyModel::fixed(0.1),
        ),
    );
    // q(X) :- pairs('k', X, X): only the diagonal rows survive
    let out = engine.run("q(X) :- pairs('k', X, X).", 10).expect("runs");
    assert_eq!(out.answers().len(), 2);
}

/// Deep paging through the pull executor in elastic mode: one input key,
/// many pages, the stream ends exactly at the data boundary.
#[test]
fn deep_elastic_paging() {
    let (engine, svc) = single_service_engine();
    let query = engine
        .parse("q(Item, Price) :- catalog('t', Item, Price).")
        .expect("parses");
    let optimized = engine
        .optimize(query, &RequestResponse, OptimizerConfig::default())
        .expect("optimizes");
    let mut pull = engine
        .pull(&optimized.candidate.plan, CacheSetting::Optimal, true)
        .expect("builds");
    let got = pull.answers(1000);
    assert_eq!(got.len(), 7);
    // 4 pages needed (2+2+2+1); the last short page signals exhaustion,
    // so no probing fifth call is made under a caching setting
    assert_eq!(pull.calls_to(svc), 4);
}

/// The one-call page cache forwards deeper fetches for a known key, and
/// marks exhaustion so no probing call is made past the end.
#[test]
fn one_call_cache_page_upgrade() {
    let mut cache = PageCache::new(CacheSetting::OneCall);
    let id = ServiceId(0);
    let key = vec![Value::str("k")];
    cache.store(id, &key, 0, vec![], true);
    assert!(matches!(cache.lookup(id, &key, 0), PageLookup::Hit(..)));
    assert!(
        matches!(cache.lookup(id, &key, 1), PageLookup::Unknown),
        "needs a deeper fetch"
    );
    cache.store(id, &key, 1, vec![], true);
    cache.store(id, &key, 2, vec![], false);
    assert!(matches!(
        cache.lookup(id, &key, 2),
        PageLookup::Hit(_, false)
    ));
    assert!(
        matches!(cache.lookup(id, &key, 5), PageLookup::PastEnd),
        "exhaustion answers any deeper request"
    );
}

/// Date arithmetic across month/year boundaries, used by the query's
/// six-month window.
#[test]
fn date_window_boundaries() {
    let base = Date::parse("2007/3/14").expect("parses");
    assert_eq!(format!("{}", base.plus_days(180)), "2007/09/10");
    assert_eq!(format!("{}", base.plus_days(-73)), "2006/12/31");
    let leap = Date::parse("2008/2/29").expect("leap day parses");
    assert_eq!(format!("{}", leap.plus_days(1)), "2008/03/01");
    assert_eq!(
        Value::Date(base)
            .checked_add(&Value::Int(180))
            .expect("date + int"),
        Value::Date(Date::parse("2007/9/10").expect("parses"))
    );
}

/// Optimizing with every metric yields a plan that actually executes.
#[test]
fn all_metrics_produce_executable_plans() {
    let w = travel_world(2008);
    let engine = Mdq::from_world(mdq::services::domains::World {
        schema: w.schema,
        query: w.query,
        registry: w.registry,
    });
    let text = "q(Conf, City) :- conf('DB', Conf, S, E, City), weather(City, T, S), T >= 28 @1.0.";
    for metric in all_metrics() {
        let query = engine.parse(text).expect("parses");
        let optimized = engine
            .optimize(query, metric.as_ref(), OptimizerConfig::default())
            .expect("optimizes");
        let report = engine
            .execute(
                &optimized.candidate.plan,
                &ExecConfig {
                    cache: CacheSetting::OneCall,
                    k: Some(5),
                },
            )
            .expect("executes");
        assert!(
            !report.answers.is_empty(),
            "{} produced an unexecutable plan",
            metric.name()
        );
    }
}
