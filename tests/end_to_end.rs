//! Cross-crate integration: all executors agree, all domains run, and
//! failure paths surface as errors rather than wrong answers.

use mdq::prelude::*;
use mdq_bench::experiments::fig11::{build_shape, PlanShape};
use std::collections::HashMap;

fn sorted(mut v: Vec<Tuple>) -> Vec<Tuple> {
    v.sort();
    v
}

/// The four executors (stage-materialised, pull, parallel-dispatch, real
/// threads) produce the same answer set on the travel workload.
#[test]
fn all_executors_agree() {
    let w = travel_world(2008);
    let plan = build_shape(&w, PlanShape::O);
    let baseline = sorted(
        run(
            &plan,
            &w.schema,
            &w.registry,
            &ExecConfig {
                cache: CacheSetting::Optimal,
                k: None,
            },
        )
        .expect("pipeline")
        .answers,
    );

    let mut pull = TopKExecution::new(&plan, &w.schema, &w.registry, CacheSetting::Optimal, false)
        .expect("pull");
    assert_eq!(sorted(pull.answers(1 << 20)), baseline, "pull executor");

    let par = run_parallel_dispatch(
        &plan,
        &w.schema,
        &w.registry,
        &ParallelConfig {
            cache: CacheSetting::Optimal,
            ..ParallelConfig::default()
        },
    )
    .expect("parallel dispatch");
    assert_eq!(sorted(par.answers), baseline, "parallel dispatch");

    let thr = run_threaded(
        &plan,
        &w.schema,
        &w.registry,
        &ThreadedConfig {
            cache: CacheSetting::Optimal,
            time_scale: 0.0,
            channel_capacity: 16,
            k: None,
        },
    )
    .expect("threads");
    assert_eq!(sorted(thr.answers), baseline, "real threads");
}

/// Caching never changes the answers — only the number of calls.
#[test]
fn cache_settings_preserve_answers() {
    for shape in PlanShape::ALL {
        let mut per_cache: Vec<(u64, Vec<Tuple>)> = Vec::new();
        for cache in CacheSetting::ALL {
            let w = travel_world(2008);
            let plan = build_shape(&w, shape);
            let r = run(
                &plan,
                &w.schema,
                &w.registry,
                &ExecConfig { cache, k: None },
            )
            .expect("executes");
            per_cache.push((r.calls.values().sum(), sorted(r.answers)));
        }
        assert_eq!(per_cache[0].1, per_cache[1].1);
        assert_eq!(per_cache[1].1, per_cache[2].1);
        assert!(per_cache[0].0 >= per_cache[1].0, "one-call saves calls");
        assert!(per_cache[1].0 >= per_cache[2].0, "optimal saves more");
    }
}

/// Each simulated domain optimizes and executes through the facade.
#[test]
fn every_domain_runs_end_to_end() {
    let worlds: Vec<(&str, World, String, u64)> = vec![
        (
            "protein",
            mdq::services::domains::protein::protein_world(5),
            "q(H, M, D, S) :- kegg('glycolysis', H), interpro(H, D, 'yes'), \
             blast(H, M, 'mouse', S), uniprot(M, 'mouse', G), S >= 500."
                .to_string(),
            10,
        ),
        (
            "bibliography",
            mdq::services::domains::bibliography::bibliography_world(5),
            "q(A, T, P, F) :- pubsearch('service computing', A, T, Y, C), \
             projects(A, P, 'FP7', F), Y >= 2005."
                .to_string(),
            5,
        ),
        (
            "news",
            mdq::services::domains::news::news_world(),
            "q(City, V, P) :- events('mahler-2', City, V, D), \
             lowcost('Milano', City, P), P <= 60.0."
                .to_string(),
            3,
        ),
    ];
    for (name, world, text, k) in worlds {
        let engine = mdq::Mdq::from_world(world);
        let out = engine.run(&text, k).expect("runs");
        assert!(
            !out.answers().is_empty(),
            "domain `{name}` produced no answers"
        );
        assert!(out.virtual_time() > 0.0, "domain `{name}` has zero time");
    }
}

/// Answers arrive in an order consistent with the search services'
/// rankings: for the bibliography query, the first answer's author has
/// the best publication-relevance rank among all answered authors.
#[test]
fn global_order_respects_search_ranking() {
    let w = mdq::services::domains::bibliography::bibliography_world(5);
    let pubs_id = w.schema.service_by_name("pubsearch").expect("exists");
    let pubsearch = w.registry.get(pubs_id).expect("registered").clone();
    // ranking: author of the globally top publication hit
    let top_hit_author = pubsearch
        .fetch(0, &[Value::str("service computing")], 0)
        .tuples[0]
        .get(1)
        .clone();
    let engine = mdq::Mdq::from_world(w);
    let out = engine
        .run(
            "q(A, T, P, F) :- pubsearch('service computing', A, T, Y, C), \
             projects(A, P, 'FP7', F), Y >= 2005.",
            5,
        )
        .expect("runs");
    // top-ranked author coordinates an FP7 project in this world, so the
    // first answer must be theirs
    assert_eq!(out.answers()[0].get(0), &top_hit_author);
}

/// A query that needs an unregistered service fails at execution, not
/// with silent emptiness.
#[test]
fn missing_runtime_service_errors() {
    let schema = mdq::model::examples::running_example_schema();
    let mut engine = mdq::Mdq::new();
    *engine.schema_mut() = schema;
    // no registry entries at all
    match engine.run("q(C) :- conf('DB', C, S, E, City), weather(City, T, S).", 3) {
        Err(err) => assert!(matches!(err, mdq::MdqError::Exec(_)), "{err}"),
        Ok(_) => panic!("expected a MissingService error"),
    }
}

/// Failure injection: a service returning empty chunks early (decayed
/// stream shorter than the requested fetches) degrades gracefully.
#[test]
fn short_streams_degrade_gracefully() {
    let mut schema = Schema::new();
    let tiny = ServiceBuilder::new(&mut schema, "tiny")
        .attr_kinded("K", "DK", DomainKind::Str)
        .attr_kinded("V", "DV", DomainKind::Int)
        .pattern("io")
        .search()
        .chunked(10)
        .profile(ServiceProfile::new(10.0, 0.1))
        .register()
        .expect("registers");
    let mut engine = mdq::Mdq::new();
    *engine.schema_mut() = schema;
    // only 3 rows exist although the optimizer may ask for many pages
    let rows: Vec<Tuple> = (0..3)
        .map(|i| Tuple::new(vec![Value::str("k"), Value::Int(i)]))
        .collect();
    engine.registry_mut().register(
        tiny,
        SyntheticSource::new(
            "tiny",
            vec![AccessPattern::parse("io").expect("valid")],
            rows,
            Some(10),
            LatencyModel::fixed(0.1),
        ),
    );
    let out = engine.run("q(V) :- tiny('k', V).", 50).expect("runs");
    assert_eq!(out.answers().len(), 3, "all available tuples, no more");
}

/// Per-service counters aggregate across runs in the registry while the
/// per-run report stays isolated.
#[test]
fn registry_counters_accumulate() {
    let w = travel_world(2008);
    let plan = build_shape(&w, PlanShape::O);
    let mut totals: HashMap<&str, u64> = HashMap::new();
    for _ in 0..2 {
        let r = run(
            &plan,
            &w.schema,
            &w.registry,
            &ExecConfig {
                cache: CacheSetting::NoCache,
                k: None,
            },
        )
        .expect("executes");
        *totals.entry("weather").or_insert(0) += r.calls_to(w.ids.weather);
    }
    assert_eq!(totals["weather"], 142, "71 per run");
    let counter = w.registry.counter(w.ids.weather).expect("counter");
    assert_eq!(counter.calls(), 142, "registry counter saw both runs");
}
