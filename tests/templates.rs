//! Query templates end-to-end (§2.2): optimize once per template,
//! resubmit with different keywords.

use mdq::prelude::*;
use mdq::Mdq;

fn travel_engine() -> Mdq {
    let w = travel_world(2008);
    Mdq::from_world(mdq::services::domains::World {
        schema: w.schema,
        query: w.query,
        registry: w.registry,
    })
}

const TEMPLATE: &str = "q(Conf, City, Temp) :- \
    conf($topic, Conf, Start, End, City), \
    weather(City, Temp, Start), \
    Temp >= $min_temp @1.0.";

#[test]
fn prepare_once_run_many() {
    let engine = travel_engine();
    let prepared = engine
        .prepare(
            TEMPLATE,
            10,
            &[("topic", Value::str("DB")), ("min_temp", Value::Int(28))],
        )
        .expect("prepares");
    assert_eq!(prepared.placeholders(), &["topic", "min_temp"]);

    // hot threshold: the calibrated 16 hot tuples exist, capped at k=10
    let hot = engine
        .run_prepared(
            &prepared,
            &[("topic", Value::str("DB")), ("min_temp", Value::Int(28))],
        )
        .expect("runs");
    assert_eq!(hot.answers.len(), 10);

    // resubmit with different keywords: a lower threshold admits more
    // cities, an impossible one admits none — same plan, no re-optimize
    let all = engine
        .run_prepared(
            &prepared,
            &[("topic", Value::str("DB")), ("min_temp", Value::Int(-50))],
        )
        .expect("runs");
    assert_eq!(all.answers.len(), 10, "still capped at k");
    let none = engine
        .run_prepared(
            &prepared,
            &[("topic", Value::str("DB")), ("min_temp", Value::Int(99))],
        )
        .expect("runs");
    assert!(none.answers.is_empty());

    // a different topic flows through the same plan skeleton
    let ai = engine
        .run_prepared(
            &prepared,
            &[("topic", Value::str("AI")), ("min_temp", Value::Int(-50))],
        )
        .expect("runs");
    // AI conferences exist in the world but their dates have no weather
    // rows, so the pipe join yields nothing — structurally fine
    assert!(ai.answers.len() <= 10);
}

#[test]
fn binding_errors_surface() {
    let engine = travel_engine();
    let prepared = engine
        .prepare(
            TEMPLATE,
            5,
            &[("topic", Value::str("DB")), ("min_temp", Value::Int(28))],
        )
        .expect("prepares");
    match engine.run_prepared(&prepared, &[("topic", Value::str("DB"))]) {
        Err(MdqError::Template(TemplateError::Missing(name))) => {
            assert_eq!(name, "min_temp");
        }
        Err(other) => panic!("expected Missing, got {other}"),
        Ok(_) => panic!("expected Missing"),
    }
}

#[test]
fn template_reuse_saves_optimizer_work() {
    // run_prepared makes exactly the calls the plan needs — no probing,
    // and repeat runs with the same binding hit the same counts
    let engine = travel_engine();
    let prepared = engine
        .prepare(
            TEMPLATE,
            10,
            &[("topic", Value::str("DB")), ("min_temp", Value::Int(28))],
        )
        .expect("prepares");
    let a = engine
        .run_prepared(
            &prepared,
            &[("topic", Value::str("DB")), ("min_temp", Value::Int(28))],
        )
        .expect("runs");
    let b = engine
        .run_prepared(
            &prepared,
            &[("topic", Value::str("DB")), ("min_temp", Value::Int(28))],
        )
        .expect("runs");
    assert_eq!(a.answers, b.answers);
    let calls_a: u64 = a.calls.values().sum();
    let calls_b: u64 = b.calls.values().sum();
    assert_eq!(calls_a, calls_b);
}
