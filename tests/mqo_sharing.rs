//! Cross-query multi-query optimization, end to end: a batch of
//! concurrent queries sharing a 2-invoke prefix (the running example's
//! `conf('DB', …) → weather` chain) must produce exactly the answers of
//! sequential isolated runs while issuing far fewer total service calls
//! than PR 2's page-cache-only sharing on the same workload — and with
//! batching/sub-results disabled the serving path must behave exactly
//! as before (the counts are pinned relative, not absolute, so the
//! suite is robust to world recalibration; the absolute numbers are
//! committed in `BENCH_mqo.json`).
//!
//! The workload uses the *one-call* cache (§5.1's realistic client
//! cache): concurrent queries cycling twenty weather cities evict each
//! other's single entry per service, so page caching alone cannot
//! absorb the shared prefix — the signature-keyed sub-result store can,
//! because it materializes the prefix's *bindings* once and replays
//! them to every subscriber regardless of page-cache churn.

use mdq::cost::metrics::ExecutionTime;
use mdq::exec::cache::CacheSetting;
use mdq::exec::pipeline::ExecConfig;
use mdq::model::value::Tuple;
use mdq::optimizer::bnb::OptimizerConfig;
use mdq::services::domains::travel::travel_world;
use mdq::services::domains::World;
use mdq::{Mdq, QueryServer, RuntimeConfig};
use std::time::Duration;

const K: u64 = 5;
/// The batch size of the acceptance scenario.
const BATCH: usize = 16;

fn travel_engine() -> Mdq {
    let w = travel_world(2008);
    Mdq::from_world(World {
        schema: w.schema,
        query: w.query,
        registry: w.registry,
    })
}

/// Sixteen templates sharing the `conf('DB') → weather` invoke prefix:
/// only the price-budget constant differs, and it is applied at the
/// flight ⋈ hotel join — *outside* the prefix — so every member has a
/// distinct fingerprint (no plan-cache collisions) but an identical
/// prefix signature. The budgets sit near the cheapest-package
/// threshold, so every query has to search deep into the shared stream
/// (some exhaust it and return fewer than `k` answers — which the
/// isolated-run comparison must reproduce too).
fn overlapping_queries() -> Vec<String> {
    (0..BATCH)
        .map(|i| {
            let budget = 520 + (i as u32) * 10;
            format!(
                "q(Conf, City, HPrice, FPrice, Hotel) :- \
                 flight('Milano', City, Start, End, ST, ET, FPrice), \
                 hotel(Hotel, City, 'luxury', Start, End, HPrice), \
                 conf('DB', Conf, Start, End, City), \
                 weather(City, Temp, Start), \
                 Start >= '2007/3/14', End <= '2007/3/14' + 180, \
                 Temp >= 28, FPrice + HPrice < {budget}.0."
            )
        })
        .collect()
}

/// One isolated single-query run, configured exactly like the server's
/// execution path (same metric, `k`, one-call cache), on a private
/// gateway state — the paper's one-query-at-a-time semantics.
fn isolated_run(engine: &Mdq, text: &str) -> Vec<Tuple> {
    let query = engine.parse(text).expect("parses");
    let optimized = engine
        .optimize(
            query,
            &ExecutionTime,
            OptimizerConfig {
                k: K,
                cache: CacheSetting::OneCall,
                ..OptimizerConfig::default()
            },
        )
        .expect("optimizes");
    engine
        .execute(
            &optimized.candidate.plan,
            &ExecConfig {
                cache: CacheSetting::OneCall,
                k: Some(K as usize),
            },
        )
        .expect("executes")
        .answers
}

fn one_call_config() -> RuntimeConfig {
    RuntimeConfig {
        workers: 8,
        cache: CacheSetting::OneCall,
        ..RuntimeConfig::default()
    }
}

fn mqo_config() -> RuntimeConfig {
    RuntimeConfig {
        sub_results: 64,
        batch_window: Some(Duration::from_millis(25)),
        batch_max: BATCH,
        ..one_call_config()
    }
}

/// Submits the whole workload concurrently and collects every session.
fn drive(server: &QueryServer, queries: &[String]) -> Vec<mdq::runtime::QueryResult> {
    let sessions: Vec<_> = queries.iter().map(|q| server.submit(q, Some(K))).collect();
    sessions
        .into_iter()
        .map(|s| s.collect().expect("runs"))
        .collect()
}

#[test]
fn shared_prefix_batch_saves_40_percent_over_page_cache_only() {
    let queries = overlapping_queries();
    let engine = travel_engine();
    let expected: Vec<Vec<Tuple>> = queries.iter().map(|q| isolated_run(&engine, q)).collect();
    assert!(
        expected.iter().any(|a| !a.is_empty()),
        "the workload produces answers"
    );

    // arm A — PR 2 semantics: shared page cache only
    let baseline = QueryServer::new(travel_engine(), one_call_config());
    let base_results = drive(&baseline, &queries);
    for (r, e) in base_results.iter().zip(&expected) {
        assert_eq!(&r.answers, e, "baseline server matches isolated runs");
    }
    let base_calls = baseline.shared_state().total_calls();
    let bm = baseline.metrics();
    assert_eq!(
        (bm.sub_result_hits, bm.shared_prefix_hits),
        (0, 0),
        "MQO disabled: no sharing counted"
    );

    // arm B — MQO: admission batching + sub-result store
    let mqo = QueryServer::new(travel_engine(), mqo_config());
    let mqo_results = drive(&mqo, &queries);
    for (r, e) in mqo_results.iter().zip(&expected) {
        assert_eq!(
            &r.answers, e,
            "a replayed prefix must yield byte-identical answers"
        );
    }
    let mqo_calls = mqo.shared_state().total_calls();
    assert!(
        mqo_calls * 10 <= base_calls * 6,
        "acceptance: ≥40% fewer calls with prefix sharing \
         (mqo {mqo_calls} vs page-cache-only {base_calls})"
    );

    let m = mqo.metrics();
    assert!(
        m.sub_result_hits >= BATCH as u64 / 2,
        "most of the batch replays the materialized prefix \
         ({} replays)",
        m.sub_result_hits
    );
    assert!(m.sub_result_calls_saved > 0);
    assert!(
        m.shared_prefix_hits > 0,
        "the batcher saw the overlap at admission time"
    );
}

#[test]
fn mqo_accounting_reconciles_exactly_with_the_gateway() {
    let queries = overlapping_queries();
    let server = QueryServer::new(travel_engine(), mqo_config());
    let results = drive(&server, &queries);

    let m = server.metrics();
    let store = server.shared_state().sub_result_stats();

    // per-query attribution == server counters == store counters
    let per_query_hits: u64 = results.iter().map(|r| r.stats.sub_result_hits).sum();
    let per_query_saved: u64 = results.iter().map(|r| r.stats.sub_result_calls_saved).sum();
    assert_eq!(per_query_hits, m.sub_result_hits);
    assert_eq!(per_query_hits, store.hits);
    assert_eq!(per_query_saved, m.sub_result_calls_saved);
    assert_eq!(per_query_saved, store.calls_saved);
    let flagged = results.iter().filter(|r| r.stats.shared_prefix_hit).count() as u64;
    assert_eq!(flagged, m.shared_prefix_hits);

    // the per-service latency satellite: the split sums to the total
    let split: f64 = m.per_service_latency.iter().map(|(_, l)| l.total).sum();
    assert!(
        (split - m.total_service_latency).abs() < 1e-9,
        "per-service latency ({split:.9}) reconciles with the total \
         ({:.9})",
        m.total_service_latency
    );
    assert!(!m.per_service_latency.is_empty());
}

#[test]
fn disabled_mqo_is_byte_for_byte_pr2_serving() {
    // two servers, both with MQO off (the default config): same
    // workload, identical call counts and zero MQO accounting — the
    // sub-result and batching paths must be completely inert
    let queries = overlapping_queries();
    let a = QueryServer::new(travel_engine(), one_call_config());
    let b = QueryServer::new(travel_engine(), one_call_config());
    // sequential submission makes the one-call interleavings (and so
    // the call counts) deterministic per server
    let collect_seq = |server: &QueryServer| -> Vec<Vec<Tuple>> {
        queries
            .iter()
            .map(|q| server.submit(q, Some(K)).collect().expect("runs").answers)
            .collect()
    };
    assert_eq!(collect_seq(&a), collect_seq(&b));
    assert_eq!(
        a.shared_state().total_calls(),
        b.shared_state().total_calls(),
        "disabled MQO is deterministic and identical"
    );
    for server in [&a, &b] {
        let m = server.metrics();
        assert_eq!(m.sub_result_hits, 0);
        assert_eq!(m.sub_result_calls_saved, 0);
        assert_eq!(m.shared_prefix_hits, 0);
        assert_eq!(m.sub_results_materialized, 0);
        assert_eq!(m.sub_result_evictions, 0);
    }
}

#[test]
fn disjoint_prefixes_share_nothing_but_still_answer_correctly() {
    // eight queries whose *start-date constant* differs: that predicate
    // is applied at the chain's first invocation (`conf`), so every
    // prefix level of every member has a distinct signature — batching
    // finds no overlap, nothing replays across members, and answers
    // still match isolated runs
    let queries: Vec<String> = (0..8)
        .map(|i| {
            let day = 10 + i;
            format!(
                "q(Conf, City, HPrice, FPrice, Hotel) :- \
                 flight('Milano', City, Start, End, ST, ET, FPrice), \
                 hotel(Hotel, City, 'luxury', Start, End, HPrice), \
                 conf('DB', Conf, Start, End, City), \
                 weather(City, Temp, Start), \
                 Start >= '2007/3/{day}', End <= '2007/3/14' + 180, \
                 Temp >= 28, FPrice + HPrice < 2000.0."
            )
        })
        .collect();
    let engine = travel_engine();
    let expected: Vec<Vec<Tuple>> = queries.iter().map(|q| isolated_run(&engine, q)).collect();
    let server = QueryServer::new(travel_engine(), mqo_config());
    let results = drive(&server, &queries);
    for (r, e) in results.iter().zip(&expected) {
        assert_eq!(&r.answers, e);
    }
    let m = server.metrics();
    assert_eq!(
        m.shared_prefix_hits, 0,
        "disjoint prefixes: the batcher finds no overlap"
    );
    assert_eq!(m.sub_result_hits, 0, "nothing replays across members");
}

#[test]
fn bounded_page_cache_reports_evictions() {
    // the configurable-capacity satellite: a tiny optimal page cache
    // under the repeated workload must evict (and count it) while still
    // serving correct answers
    let queries = overlapping_queries();
    let engine = travel_engine();
    let expected: Vec<Vec<Tuple>> = queries
        .iter()
        .map(|q| {
            let query = engine.parse(q).expect("parses");
            let optimized = engine
                .optimize(
                    query,
                    &ExecutionTime,
                    OptimizerConfig {
                        k: K,
                        cache: CacheSetting::Optimal,
                        ..OptimizerConfig::default()
                    },
                )
                .expect("optimizes");
            engine
                .execute(
                    &optimized.candidate.plan,
                    &ExecConfig {
                        cache: CacheSetting::Optimal,
                        k: Some(K as usize),
                    },
                )
                .expect("executes")
                .answers
        })
        .collect();
    let server = QueryServer::new(
        travel_engine(),
        RuntimeConfig {
            workers: 4,
            cache: CacheSetting::Optimal,
            page_cache_entries: 4,
            ..RuntimeConfig::default()
        },
    );
    let results = drive(&server, &queries);
    for (r, e) in results.iter().zip(&expected) {
        assert_eq!(&r.answers, e, "evictions never corrupt answers");
    }
    let m = server.metrics();
    assert!(
        m.page_cache_evictions > 0,
        "4-entry cache under a 20-city workload must evict"
    );
    // and the unbounded default never evicts
    let unbounded = QueryServer::new(travel_engine(), RuntimeConfig::default());
    drive(&unbounded, &queries[..4]);
    assert_eq!(unbounded.metrics().page_cache_evictions, 0);
}
