//! Semantic equivalence of the plan space: every admissible topology is
//! a different *schedule* for the same conjunctive query, so — given
//! fetch budgets that cover the full data — all 19 α1 topologies of
//! Example 5.1 must produce exactly the same answer set on the travel
//! world. This pins the whole stack (topology enumeration → plan
//! lowering → join placement → execution) to the declarative semantics.

use mdq::prelude::*;
use std::sync::Arc;

#[test]
fn all_19_topologies_agree_on_answers() {
    let w = travel_world(2008);
    let query = Arc::new(w.query.clone());
    let choice = ApChoice(vec![0, 0, 0, 0]);
    let suppliers = SupplierMap::build(&query, &w.schema, &choice);
    let topologies = all_topologies(query.atoms.len(), &suppliers);
    assert_eq!(topologies.len(), 19);

    let mut reference: Option<Vec<Tuple>> = None;
    for (i, poset) in topologies.into_iter().enumerate() {
        let mut plan = build_plan(
            Arc::clone(&query),
            &w.schema,
            choice.clone(),
            poset.clone(),
            (0..query.atoms.len()).collect(),
            &StrategyRule::default(),
        )
        .expect("admissible topology lowers");
        // cover the whole data: the largest per-city result is 20 flights
        // (one chunk of 25) and 5 hotels (one chunk), so F = 2 suffices —
        // use a comfortable margin
        for pos in plan.chunked_positions(&w.schema) {
            plan.set_fetch(pos, 4);
        }
        let report = run(
            &plan,
            &w.schema,
            &w.registry,
            &ExecConfig {
                cache: CacheSetting::Optimal,
                k: None,
            },
        )
        .expect("executes");
        let mut answers = report.answers;
        answers.sort();
        match &reference {
            None => reference = Some(answers),
            Some(want) => assert_eq!(
                &answers, want,
                "topology #{i} ({poset}) disagrees with the reference answers"
            ),
        }
    }
    assert!(
        reference.map(|r| !r.is_empty()).unwrap_or(false),
        "the reference answer set is non-empty"
    );
}

/// The same holds across the three permissible pattern sequences: the
/// *accessible* answers may shrink (bounded scans), but answers produced
/// under α2/α4 are always a subset of the α1-complete set.
#[test]
fn alternative_sequences_answer_subsets() {
    let w = travel_world(2008);
    let query = Arc::new(w.query.clone());

    let full = {
        let choice = ApChoice(vec![0, 0, 0, 0]);
        let poset = Poset::from_pairs(
            4,
            &[
                (
                    mdq::model::examples::ATOM_CONF,
                    mdq::model::examples::ATOM_WEATHER,
                ),
                (
                    mdq::model::examples::ATOM_WEATHER,
                    mdq::model::examples::ATOM_FLIGHT,
                ),
                (
                    mdq::model::examples::ATOM_WEATHER,
                    mdq::model::examples::ATOM_HOTEL,
                ),
            ],
        )
        .expect("acyclic");
        let mut plan = build_plan(
            Arc::clone(&query),
            &w.schema,
            choice,
            poset,
            (0..4).collect(),
            &StrategyRule::default(),
        )
        .expect("builds");
        for pos in plan.chunked_positions(&w.schema) {
            plan.set_fetch(pos, 4);
        }
        let mut answers = run(
            &plan,
            &w.schema,
            &w.registry,
            &ExecConfig {
                cache: CacheSetting::Optimal,
                k: None,
            },
        )
        .expect("executes")
        .answers;
        answers.sort();
        answers
    };

    for choice in permissible_sequences(&query, &w.schema) {
        let suppliers = SupplierMap::build(&query, &w.schema, &choice);
        // one representative topology per sequence: max-parallel
        let Some(poset) = max_parallel_topology(&query, &w.schema, &choice) else {
            continue;
        };
        let _ = &suppliers;
        let mut plan = build_plan(
            Arc::clone(&query),
            &w.schema,
            choice.clone(),
            poset,
            (0..4).collect(),
            &StrategyRule::default(),
        )
        .expect("builds");
        for pos in plan.chunked_positions(&w.schema) {
            plan.set_fetch(pos, 4);
        }
        let report = run(
            &plan,
            &w.schema,
            &w.registry,
            &ExecConfig {
                cache: CacheSetting::Optimal,
                k: None,
            },
        )
        .expect("executes");
        for a in &report.answers {
            assert!(
                full.binary_search(a).is_ok(),
                "answer {a} under {choice} is not in the α1-complete set"
            );
        }
    }
}
