//! Chaos for standing queries: subscriptions over refreshing sources
//! that *also* fault, per seeded and scripted schedules.
//!
//! Invariants pinned here:
//! * **no lost or duplicated deltas** — after every refresh pass, each
//!   subscription's folded delta stream reconciles exactly with the
//!   server's own answer snapshot (folding panics on a retraction of a
//!   row that is not live);
//! * **determinism** — two servers driven identically from the same
//!   seeds emit byte-identical delta streams and refresh summaries,
//!   faults and all — at *every* `refresh_workers` setting;
//! * **metrics reconcile** — the server's cumulative refresh/delta
//!   counters equal the sums of the per-pass [`RefreshSummary`]s and
//!   the deltas the client actually polled, and the registry's call
//!   counters account for at least every driver attempt;
//! * **stale-kept on failure** — an invocation whose refresh exhausts
//!   its retries keeps its stale pages whole: it counts as `failed`,
//!   emits no delta, and the subscription keeps serving its last
//!   answers.

use mdq::model::value::{Tuple, Value};
use mdq::runtime::{RefreshSummary, DEFAULT_TENANT};
use mdq::services::domains::travel::travel_world;
use mdq::services::domains::World;
use mdq::services::fault::{FaultConfig, FaultPlan, FaultProfile, PlannedFault};
use mdq::services::refresh::{refreshing_registry, EpochClock, RefreshConfig, RefreshPolicy};
use mdq::{Mdq, QueryServer, RuntimeConfig};
use std::sync::mpsc;
use std::sync::Arc;

const K: u64 = 5;
const EPOCHS: u64 = 4;

fn travel_query(topic: &str, budget: u32) -> String {
    format!(
        "q(Conf, City, HPrice, FPrice, Hotel) :- \
         flight('Milano', City, Start, End, ST, ET, FPrice), \
         hotel(Hotel, City, 'luxury', Start, End, HPrice), \
         conf('{topic}', Conf, Start, End, City), \
         weather(City, Temp, Start), \
         Start >= '2007/3/14', End <= '2007/3/14' + 180, \
         Temp >= 28, FPrice + HPrice < {budget}.0."
    )
}

/// A refreshing travel engine whose `weather` and `flight` services
/// fault probabilistically (seeded), at rates the retry budgets absorb.
fn chaotic_engine(seed: u64, clock: &Arc<EpochClock>) -> Mdq {
    let w = travel_world(2008);
    let mut registry = refreshing_registry(&w.registry, clock, RefreshConfig::seeded(seed));
    for id in [w.ids.weather, w.ids.flight] {
        let inner = Arc::clone(registry.get(id).expect("registered"));
        let cfg = FaultConfig::seeded(seed ^ 0xC0FFEE ^ id.0 as u64)
            .with_errors(0.05)
            .with_rate_limits(0.03);
        registry.register(id, FaultProfile::seeded(inner, cfg));
    }
    Mdq::from_world(World {
        schema: w.schema,
        query: w.query,
        registry,
    })
}

/// One polled delta, flattened for stream comparison.
type DeltaRecord = (u64, u64, Vec<Tuple>, Vec<Tuple>);

/// Folds one delta into `rows` as a multiset; panics on a retraction
/// of a row that is not live (a lost or duplicated delta).
fn fold(rows: &mut Vec<Tuple>, added: &[Tuple], retracted: &[Tuple]) {
    for r in retracted {
        let at = rows
            .iter()
            .position(|t| t == r)
            .unwrap_or_else(|| panic!("retraction of a row not in the folded set: {r:?}"));
        rows.swap_remove(at);
    }
    rows.extend(added.iter().cloned());
}

fn sorted(mut rows: Vec<Tuple>) -> Vec<Tuple> {
    rows.sort();
    rows
}

/// Runs `f` on its own thread, panicking if it does not finish within
/// `secs` — fail fast instead of letting CI time out on a hang.
fn with_watchdog<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    let out = rx
        .recv_timeout(std::time::Duration::from_secs(secs))
        .expect("watchdog: subscription chaos run hung");
    handle.join().expect("runner thread panicked");
    out
}

/// Everything one chaotic run produced, for determinism comparison.
struct RunTrace {
    deltas: Vec<DeltaRecord>,
    summaries: Vec<RefreshSummary>,
    final_answers: Vec<Vec<Tuple>>,
}

/// Drives one chaotic server: subscribe 6 standing queries, run
/// `EPOCHS` refresh passes with `workers` refresh threads, poll + fold
/// + reconcile after each, and return the full trace.
fn chaotic_run(seed: u64, workers: usize) -> RunTrace {
    let clock = EpochClock::new();
    let server = QueryServer::new(
        chaotic_engine(seed, &clock),
        RuntimeConfig {
            refresh_workers: workers,
            ..RuntimeConfig::default()
        },
    );
    server.attach_refresh(Arc::clone(&clock), RefreshPolicy::every(1));

    let queries = [
        travel_query("DB", 850),
        travel_query("DB", 950),
        travel_query("DB", 1050),
        travel_query("AI", 850),
        travel_query("AI", 950),
        travel_query("AI", 1050),
    ];
    let mut subs = Vec::new();
    for text in &queries {
        let ticket = server
            .subscribe(DEFAULT_TENANT, text, Some(K))
            .expect("subscribe");
        subs.push((ticket.id, ticket.answers));
    }

    let mut trace = RunTrace {
        deltas: Vec::new(),
        summaries: Vec::new(),
        final_answers: Vec::new(),
    };
    for _ in 1..=EPOCHS {
        let summary = server.refresh();
        for (id, folded) in &mut subs {
            for delta in server
                .poll_deltas(DEFAULT_TENANT, *id)
                .expect("live subscription")
            {
                fold(folded, &delta.added, &delta.retracted);
                trace
                    .deltas
                    .push((*id, delta.epoch, delta.added, delta.retracted));
            }
            // exact reconciliation: the folded stream equals the
            // server's own snapshot — nothing lost, nothing duplicated
            assert_eq!(
                sorted(folded.clone()),
                sorted(
                    server
                        .subscription_answers(DEFAULT_TENANT, *id)
                        .expect("live")
                ),
                "seed {seed}: folded deltas diverge from the server snapshot"
            );
        }
        trace.summaries.push(summary);
    }

    // the server's cumulative counters reconcile with the per-pass
    // summaries and with what the client actually received
    let m = server.metrics();
    let sum = |f: fn(&RefreshSummary) -> u64| trace.summaries.iter().map(f).sum::<u64>();
    assert_eq!(m.refresh_passes, EPOCHS);
    assert_eq!(m.refresh_calls, sum(|s| s.calls));
    assert_eq!(m.refresh_failures, sum(|s| s.failed));
    assert_eq!(m.invocations_refreshed, sum(|s| s.refreshed));
    assert_eq!(m.invocations_changed, sum(|s| s.invocations_changed));
    assert_eq!(m.deltas_emitted, sum(|s| s.deltas_emitted));
    assert_eq!(m.delta_rows_added, sum(|s| s.rows_added));
    assert_eq!(m.delta_rows_retracted, sum(|s| s.rows_retracted));
    assert_eq!(m.deltas_emitted, trace.deltas.len() as u64);
    assert_eq!(
        m.delta_rows_added,
        trace.deltas.iter().map(|d| d.2.len() as u64).sum::<u64>()
    );
    assert_eq!(
        m.delta_rows_retracted,
        trace.deltas.iter().map(|d| d.3.len() as u64).sum::<u64>()
    );
    assert_eq!(m.subscriptions_active, subs.len() as u64);

    for (_, folded) in subs {
        trace.final_answers.push(sorted(folded));
    }
    trace
}

/// Faulting, refreshing sources: every subscription's delta stream
/// reconciles exactly, metrics account for every pass, and identically
/// seeded runs are byte-identical — faults included.
#[test]
fn chaotic_refresh_loses_and_duplicates_nothing() {
    with_watchdog(300, || {
        for seed in [3, 77] {
            let a = chaotic_run(seed, 1);
            assert!(
                !a.deltas.is_empty(),
                "seed {seed}: a drifting world must produce deltas"
            );
            let b = chaotic_run(seed, 1);
            assert_eq!(
                a.deltas, b.deltas,
                "seed {seed}: identical runs must emit byte-identical delta streams"
            );
            assert_eq!(a.final_answers, b.final_answers);
            for (x, y) in a.summaries.iter().zip(&b.summaries) {
                assert_eq!(
                    (x.calls, x.refreshed, x.invocations_changed, x.failed),
                    (y.calls, y.refreshed, y.invocations_changed, y.failed),
                    "seed {seed}: refresh passes must replay identically"
                );
            }
        }
    });
}

/// The pipeline's determinism contract under seeded faults: delta
/// streams, final answers, and per-pass counters — retries and
/// failures included — are byte-identical at every `refresh_workers`
/// setting. Faults make this the sharp edge of the contract: a racy
/// fan-out would reorder fault draws and diverge immediately.
#[test]
fn chaotic_refresh_is_worker_count_invariant() {
    with_watchdog(600, || {
        for seed in [3, 77] {
            let serial = chaotic_run(seed, 1);
            assert!(
                !serial.deltas.is_empty(),
                "seed {seed}: a drifting world must produce deltas"
            );
            for workers in [2, 8] {
                let parallel = chaotic_run(seed, workers);
                assert_eq!(
                    serial.deltas, parallel.deltas,
                    "seed {seed}: {workers} workers must emit the serial delta stream"
                );
                assert_eq!(serial.final_answers, parallel.final_answers);
                for (x, y) in serial.summaries.iter().zip(&parallel.summaries) {
                    assert_eq!(
                        (x.calls, x.refreshed, x.invocations_changed, x.failed),
                        (y.calls, y.refreshed, y.invocations_changed, y.failed),
                        "seed {seed}: {workers}-worker passes must replay the serial counters"
                    );
                }
            }
        }
    });
}

/// A permanently dead input: `conf('AI')` times out forever. The 'AI'
/// subscription materializes degraded (empty), every refresh pass
/// counts its invocation as failed and keeps the stale pages whole —
/// no delta is ever fabricated — while the healthy 'DB' subscription
/// keeps reconciling exactly.
#[test]
fn dead_source_keeps_stale_pages_and_emits_no_deltas() {
    with_watchdog(300, || {
        let clock = EpochClock::new();
        let w = travel_world(2008);
        let mut registry = refreshing_registry(&w.registry, &clock, RefreshConfig::seeded(19));
        let conf = Arc::clone(registry.get(w.ids.conf).expect("conf"));
        registry.register(
            w.ids.conf,
            FaultProfile::scripted(
                conf,
                FaultPlan::new().fail_inputs(
                    vec![Value::str("AI")],
                    u32::MAX,
                    PlannedFault::Timeout,
                ),
            ),
        );
        let engine = Mdq::from_world(World {
            schema: w.schema,
            query: w.query,
            registry,
        });
        let server = QueryServer::new(engine, RuntimeConfig::default());
        server.attach_refresh(Arc::clone(&clock), RefreshPolicy::every(1));

        let db = server
            .subscribe(DEFAULT_TENANT, &travel_query("DB", 950), Some(K))
            .expect("healthy subscription");
        let ai = server
            .subscribe(DEFAULT_TENANT, &travel_query("AI", 950), Some(K))
            .expect("degraded subscription still registers");
        assert!(
            ai.answers.is_empty(),
            "a dead conf('AI') endpoint can produce no answers"
        );

        let mut db_folded = db.answers;
        let mut failed = 0u64;
        for _ in 1..=EPOCHS {
            let summary = server.refresh();
            assert!(
                summary.failed >= 1,
                "the dead invocation must count as failed every due pass"
            );
            failed += summary.failed;
            for delta in server.poll_deltas(DEFAULT_TENANT, db.id).expect("live") {
                fold(&mut db_folded, &delta.added, &delta.retracted);
            }
            assert_eq!(
                sorted(db_folded.clone()),
                sorted(
                    server
                        .subscription_answers(DEFAULT_TENANT, db.id)
                        .expect("live")
                ),
                "the healthy subscription keeps reconciling"
            );
            assert!(
                server
                    .poll_deltas(DEFAULT_TENANT, ai.id)
                    .expect("live")
                    .is_empty(),
                "a stale-kept invocation must not fabricate deltas"
            );
            assert_eq!(
                server
                    .subscription_answers(DEFAULT_TENANT, ai.id)
                    .expect("live"),
                Vec::<Tuple>::new()
            );
        }
        assert_eq!(server.metrics().refresh_failures, failed);
    });
}
