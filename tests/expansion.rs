//! End-to-end off-query expansion (§7): the paper's `oldTown(City)`
//! scenario executed against synthetic services, demonstrating the
//! "subset of the answers" semantics.

use mdq::prelude::*;
use mdq::Mdq;

/// Builds a world where `conf` is reachable only by city (`ooi`) and
/// `weather` needs a city — no permissible sequence exists — plus an
/// `oldtown` service enumerating a subset of cities.
fn blocked_world() -> Mdq {
    let mut engine = Mdq::new();
    let conf = ServiceBuilder::new(engine.schema_mut(), "conf")
        .attr_kinded("Topic", "Topic", DomainKind::Str)
        .attr_kinded("Name", "ConfName", DomainKind::Str)
        .attr_kinded("City", "City", DomainKind::Str)
        .pattern("ooi")
        .profile(ServiceProfile::new(2.0, 1.0))
        .register()
        .expect("conf registers");
    let weather = ServiceBuilder::new(engine.schema_mut(), "weather")
        .attr_kinded("City", "City", DomainKind::Str)
        .attr_kinded("Temperature", "Temp", DomainKind::Float)
        .pattern("io")
        .profile(ServiceProfile::new(1.0, 1.0))
        .register()
        .expect("weather registers");
    let oldtown = ServiceBuilder::new(engine.schema_mut(), "oldtown")
        .attr_kinded("City", "City", DomainKind::Str)
        .pattern("o")
        .profile(ServiceProfile::new(3.0, 0.5))
        .register()
        .expect("oldtown registers");

    let cities = ["rome", "florence", "siena", "bologna", "turin"];
    let mut conf_rows = Vec::new();
    for (i, city) in cities.iter().enumerate() {
        conf_rows.push(Tuple::new(vec![
            Value::str("DB"),
            Value::str(format!("conf-{city}-{i}")),
            Value::str(*city),
        ]));
    }
    let weather_rows: Vec<Tuple> = cities
        .iter()
        .enumerate()
        .map(|(i, city)| Tuple::new(vec![Value::str(*city), Value::float(20.0 + 3.0 * i as f64)]))
        .collect();
    // oldtown knows only three of the five cities: the expansion's
    // answers must be exactly the conferences in those three
    let oldtown_rows: Vec<Tuple> = ["rome", "florence", "siena"]
        .iter()
        .map(|c| Tuple::new(vec![Value::str(*c)]))
        .collect();

    engine.registry_mut().register(
        conf,
        SyntheticSource::new(
            "conf",
            vec![AccessPattern::parse("ooi").expect("valid")],
            conf_rows,
            None,
            LatencyModel::fixed(1.0),
        ),
    );
    engine.registry_mut().register(
        weather,
        SyntheticSource::new(
            "weather",
            vec![AccessPattern::parse("io").expect("valid")],
            weather_rows,
            None,
            LatencyModel::fixed(1.0),
        ),
    );
    engine.registry_mut().register(
        oldtown,
        SyntheticSource::new(
            "oldtown",
            vec![AccessPattern::parse("o").expect("valid")],
            oldtown_rows,
            None,
            LatencyModel::fixed(0.5),
        ),
    );
    engine
}

const QUERY: &str = "q(Name, City, Temp) :- conf('DB', Name, City), weather(City, Temp).";

#[test]
fn plain_run_reports_not_executable() {
    let engine = blocked_world();
    match engine.run(QUERY, 10) {
        Err(MdqError::Optimize(e)) => {
            assert_eq!(e, OptimizeError::NotExecutable);
        }
        Err(other) => panic!("expected NotExecutable, got {other}"),
        Ok(_) => panic!("expected NotExecutable"),
    }
}

#[test]
fn expansion_executes_and_returns_subset() {
    let engine = blocked_world();
    let (outcome, expansion) = engine
        .run_with_expansion(QUERY, 10, 2)
        .expect("expanded run succeeds");
    assert!(!expansion.is_trivial());
    assert_eq!(expansion.added.len(), 1);
    // answers: exactly the conferences in oldtown's three cities
    let mut cities: Vec<String> = outcome
        .answers()
        .iter()
        .map(|a| format!("{}", a.get(1)))
        .collect();
    cities.sort();
    cities.dedup();
    assert_eq!(cities, vec!["'florence'", "'rome'", "'siena'"]);
    assert_eq!(outcome.answers().len(), 3, "one conference per known city");
    // every answer satisfies the original query's join semantics
    for a in outcome.answers() {
        assert!(format!("{}", a.get(0)).contains(&format!("{}", a.get(1)).replace('\'', "")));
    }
}

#[test]
fn expansion_budget_zero_fails() {
    let engine = blocked_world();
    match engine.run_with_expansion(QUERY, 10, 0) {
        Err(MdqError::Expansion(ExpansionError::NoUsefulService { blocked })) => {
            assert!(blocked.contains(&"City".to_string()));
        }
        Err(other) => panic!("expected expansion failure, got {other}"),
        Ok(_) => panic!("expected expansion failure"),
    }
}

#[test]
fn executable_queries_skip_expansion() {
    let engine = blocked_world();
    let (outcome, expansion) = engine
        .run_with_expansion(
            "q(City, Temp) :- oldtown(City), weather(City, Temp).",
            10,
            2,
        )
        .expect("runs");
    assert!(expansion.is_trivial());
    assert_eq!(outcome.answers().len(), 3);
}
