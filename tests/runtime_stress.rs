//! Concurrent-correctness stress tests for the `mdq-runtime` serving
//! layer, including the amortization acceptance check: a workload of
//! repeated-shape queries through the [`QueryServer`] must cost ≥ 2×
//! fewer service calls *and* ≥ 2× fewer optimizer invocations than the
//! same queries as independent single-query runs — with identical
//! answers.

use mdq::cost::metrics::ExecutionTime;
use mdq::exec::cache::CacheSetting;
use mdq::exec::gateway::{ServiceGateway, SharedServiceState};
use mdq::exec::pipeline::ExecConfig;
use mdq::model::value::{Tuple, Value};
use mdq::optimizer::bnb::OptimizerConfig;
use mdq::services::domains::travel::travel_world;
use mdq::services::domains::World;
use mdq::{Mdq, QueryServer, RuntimeConfig};
use std::sync::Arc;

const K: u64 = 5;

fn travel_engine() -> Mdq {
    let w = travel_world(2008);
    Mdq::from_world(World {
        schema: w.schema,
        query: w.query,
        registry: w.registry,
    })
}

fn travel_query(budget: u32) -> String {
    format!(
        "q(Conf, City, HPrice, FPrice, Hotel) :- \
         flight('Milano', City, Start, End, ST, ET, FPrice), \
         hotel(Hotel, City, 'luxury', Start, End, HPrice), \
         conf('DB', Conf, Start, End, City), \
         weather(City, Temp, Start), \
         Start >= '2007/3/14', End <= '2007/3/14' + 180, \
         Temp >= 28, FPrice + HPrice < {budget}.0."
    )
}

/// One independent single-query run, configured exactly like the
/// server's execution path (same optimizer metric/k/cache setting), on
/// its own private gateway state. Returns (answers, forwarded calls).
fn independent_run(engine: &Mdq, text: &str) -> (Vec<Tuple>, u64) {
    let query = engine.parse(text).expect("parses");
    let optimized = engine
        .optimize(
            query,
            &ExecutionTime,
            OptimizerConfig {
                k: K,
                cache: CacheSetting::Optimal,
                ..OptimizerConfig::default()
            },
        )
        .expect("optimizes");
    let report = engine
        .execute(
            &optimized.candidate.plan,
            &ExecConfig {
                cache: CacheSetting::Optimal,
                k: Some(K as usize),
            },
        )
        .expect("executes");
    (report.answers.clone(), report.calls.values().sum())
}

#[test]
fn concurrent_identical_queries_match_sequential_answers() {
    let engine = travel_engine();
    let text = travel_query(2000);
    let (expected, _) = independent_run(&engine, &text);
    assert_eq!(expected.len(), K as usize, "baseline produces k answers");

    let server = QueryServer::new(
        travel_engine(),
        RuntimeConfig {
            workers: 8,
            per_service_concurrency: 2,
            ..RuntimeConfig::default()
        },
    );
    let sessions: Vec<_> = (0..12).map(|_| server.submit(&text, Some(K))).collect();
    for session in sessions {
        let result = session.collect().expect("runs");
        assert_eq!(
            result.answers, expected,
            "a concurrent run returned different answers than the sequential baseline"
        );
    }
    let m = server.metrics();
    assert_eq!((m.completed, m.failed), (12, 0));
}

#[test]
fn concurrent_mixed_shapes_match_sequential_answers() {
    // four distinct templates (different constants ⇒ different plans,
    // different page demands) × 5 submissions each, all in flight at
    // once over one shared state
    let engine = travel_engine();
    let budgets = [1400u32, 1600, 1800, 2000];
    let expected: Vec<Vec<Tuple>> = budgets
        .iter()
        .map(|&b| independent_run(&engine, &travel_query(b)).0)
        .collect();

    let server = QueryServer::new(
        travel_engine(),
        RuntimeConfig {
            workers: 8,
            ..RuntimeConfig::default()
        },
    );
    let sessions: Vec<(usize, _)> = (0..20)
        .map(|i| {
            let which = i % budgets.len();
            (which, server.submit(&travel_query(budgets[which]), Some(K)))
        })
        .collect();
    for (which, session) in sessions {
        let result = session.collect().expect("runs");
        assert_eq!(
            result.answers, expected[which],
            "budget {} answers diverged under contention",
            budgets[which]
        );
    }
    assert_eq!(server.metrics().failed, 0);
}

#[test]
fn amortizes_calls_and_optimizer_invocations_2x() {
    // the acceptance criterion: 20 repeated-shape queries, server vs.
    // 20 independent single-query runs
    let text = travel_query(2000);

    // independent: every run parses, optimizes and executes on its own
    let engine = travel_engine();
    let mut independent_calls = 0u64;
    let mut expected: Option<Vec<Tuple>> = None;
    for _ in 0..20 {
        let (answers, calls) = independent_run(&engine, &text);
        independent_calls += calls;
        match &expected {
            Some(e) => assert_eq!(e, &answers, "independent runs are deterministic"),
            None => expected = Some(answers),
        }
    }
    let expected = expected.expect("twenty runs");
    let independent_optimizations = 20u64;

    // server: same twenty queries, concurrently, one shared state
    let server = QueryServer::new(travel_engine(), RuntimeConfig::default());
    let sessions: Vec<_> = (0..20).map(|_| server.submit(&text, Some(K))).collect();
    for session in sessions {
        let result = session.collect().expect("runs");
        assert_eq!(result.answers, expected, "identical answer sets");
    }
    let m = server.metrics();
    assert_eq!((m.completed, m.failed), (20, 0));
    assert!(
        m.total_service_calls * 2 <= independent_calls,
        "server forwarded {} calls, independent runs {} — expected ≥ 2× fewer",
        m.total_service_calls,
        independent_calls
    );
    assert!(
        m.optimizer_invocations * 2 <= independent_optimizations,
        "server optimized {}×, independent {}× — expected ≥ 2× fewer",
        m.optimizer_invocations,
        independent_optimizations
    );
    assert_eq!(
        m.optimizer_invocations, 1,
        "single-flight: one template, one optimization"
    );
}

#[test]
fn shared_page_cache_never_fabricates_or_drops_pages() {
    // 8 threads page through a chunked search service via gateways over
    // one shared state while also hammering a second key — every page
    // anyone observes must equal the uncontended reference stream
    let engine = Arc::new(Mdq::from_world(
        mdq::services::domains::bibliography::bibliography_world(7),
    ));
    let query = engine
        .parse(
            "q(Author, Title) :- pubsearch('service computing', Author, Title, Y, C), \
             projects(Author, P, 'FP7', F).",
        )
        .expect("parses");
    let plan = Arc::new(
        engine
            .optimize(query, &ExecutionTime, OptimizerConfig::default())
            .expect("optimizes")
            .candidate
            .plan,
    );
    let pubsearch = engine.schema().service_by_name("pubsearch").expect("id");
    let keys = [
        vec![Value::str("service computing")],
        vec![Value::str("data integration")],
    ];
    const PAGES: u32 = 4;

    // uncontended reference stream, private state
    let mut reference = ServiceGateway::new(
        &plan,
        engine.schema(),
        engine.registry(),
        CacheSetting::Optimal,
    )
    .expect("builds");
    let expected: Vec<Vec<Vec<Tuple>>> = keys
        .iter()
        .map(|key| {
            (0..PAGES)
                .map(|p| reference.fetch_page(pubsearch, 0, key, p).tuples)
                .collect()
        })
        .collect();

    let shared = Arc::new(SharedServiceState::new(CacheSetting::Optimal, 2));
    std::thread::scope(|scope| {
        for worker in 0..8 {
            let engine = Arc::clone(&engine);
            let plan = Arc::clone(&plan);
            let shared = Arc::clone(&shared);
            let keys = &keys;
            let expected = &expected;
            scope.spawn(move || {
                let mut g = ServiceGateway::with_shared(
                    &plan,
                    engine.schema(),
                    engine.registry(),
                    shared,
                    None,
                )
                .expect("builds");
                // pages are demanded in order per key (as the Invoke
                // operator does), but workers interleave the keys
                // differently, so stores and waits contend
                for page in 0..PAGES {
                    for k in 0..keys.len() {
                        let ki = (k + worker) % keys.len();
                        let fetch = g.fetch_page(pubsearch, 0, &keys[ki], page);
                        assert_eq!(
                            fetch.tuples, expected[ki][page as usize],
                            "worker {worker} saw a wrong page (key {ki}, page {page})"
                        );
                    }
                }
            });
        }
    });
    // single-flight + optimal cache: each distinct page forwarded once
    assert_eq!(
        shared.total_calls(),
        keys.len() as u64 * PAGES as u64,
        "no duplicated and no dropped forwards under contention"
    );
}
