//! Property-based test suites for the core invariants: topology
//! enumeration, rank-preserving joins, estimator monotonicity, cache
//! orderings, parser stability, and — most importantly — agreement
//! between branch and bound and the exhaustive oracle under randomised
//! service profiles.
//!
//! Cases are generated with the workspace's deterministic
//! [`Rng`](mdq::model::rng::Rng) (the workspace builds offline, without
//! `proptest`); every assertion carries the case number, so a failure
//! names the seed that reproduces it.

use mdq::model::rng::Rng;
use mdq::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Topology enumeration
// ---------------------------------------------------------------------

/// Every enumerated topology extends the required precedences, is a
/// valid strict partial order, and no two are equal.
#[test]
fn topologies_extend_constraints() {
    let mut rng = Rng::new(0x0007);
    for case in 0..64 {
        let n_pairs = rng.range_usize(0, 4);
        let pairs: Vec<(usize, usize)> = (0..n_pairs)
            .map(|_| (rng.range_usize(0, 4), rng.range_usize(0, 4)))
            .filter(|(a, b)| a != b)
            .collect();
        let Some(required) = Poset::from_pairs(4, &pairs) else {
            continue; // cyclic constraint set: nothing to enumerate
        };
        struct Constrained(Poset);
        impl Admissibility for Constrained {
            fn placeable(&self, b: usize, preds: &std::collections::HashSet<usize>) -> bool {
                (0..self.0.len()).all(|a| !self.0.lt(a, b) || preds.contains(&a))
            }
        }
        let all = all_topologies(4, &Constrained(required.clone()));
        assert!(!all.is_empty(), "case {case}: {pairs:?}");
        let mut seen = std::collections::HashSet::new();
        for p in &all {
            assert!(p.check_invariants(), "case {case}");
            assert!(
                p.extends(&required),
                "case {case}: {p} must extend the constraints {pairs:?}"
            );
            assert!(
                seen.insert(format!("{p:?}")),
                "case {case}: duplicate topology {p}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Rank-preserving joins
// ---------------------------------------------------------------------

fn make_stream(var_key: u32, var_val: u32, keys: &[u8]) -> Vec<Binding> {
    keys.iter()
        .enumerate()
        .map(|(i, &k)| {
            Binding::empty(4)
                .bind_atom(
                    &Atom {
                        service: ServiceId(0),
                        terms: vec![Term::Var(VarId(var_key)), Term::Var(VarId(var_val))],
                    },
                    &Tuple::new(vec![Value::Int(k as i64), Value::Int(i as i64)]),
                )
                .expect("binds")
        })
        .collect()
}

fn indices_of(results: &[Binding]) -> Vec<(i64, i64)> {
    results
        .iter()
        .map(|b| {
            let l = match b.get(VarId(1)) {
                Some(Value::Int(v)) => *v,
                _ => panic!("left index missing"),
            };
            let r = match b.get(VarId(2)) {
                Some(Value::Int(v)) => *v,
                _ => panic!("right index missing"),
            };
            (l, r)
        })
        .collect()
}

/// MS and NL compute exactly the brute-force equi-join result set, and
/// both emission orders are consistent with the input rankings.
#[test]
fn joins_correct_and_rank_consistent() {
    let mut rng = Rng::new(0x1013);
    for case in 0..128 {
        let left: Vec<u8> = (0..rng.range_usize(0, 12))
            .map(|_| rng.range_u64(0, 4) as u8)
            .collect();
        let right: Vec<u8> = (0..rng.range_usize(0, 12))
            .map(|_| rng.range_u64(0, 4) as u8)
            .collect();
        let expected: Vec<(i64, i64)> = {
            let mut v = Vec::new();
            for (i, a) in left.iter().enumerate() {
                for (j, b) in right.iter().enumerate() {
                    if a == b {
                        v.push((i as i64, j as i64));
                    }
                }
            }
            v.sort_unstable();
            v
        };
        let ms: Vec<Binding> = drain_all(
            MsJoin::new(
                Source(make_stream(0, 1, &left).into_iter()),
                Source(make_stream(0, 2, &right).into_iter()),
                vec![VarId(0)],
            ),
            DEFAULT_BATCH,
        );
        let nl: Vec<Binding> = drain_all(
            NlJoin::new(
                Source(make_stream(0, 1, &left).into_iter()),
                Source(make_stream(0, 2, &right).into_iter()),
                vec![VarId(0)],
                true,
            ),
            DEFAULT_BATCH,
        );
        for (name, got) in [("ms", indices_of(&ms)), ("nl", indices_of(&nl))] {
            let mut sorted = got.clone();
            sorted.sort_unstable();
            assert_eq!(
                sorted, expected,
                "case {case}: {name} result set on {left:?} ⋈ {right:?}"
            );
            // rank consistency: a componentwise-dominating pair never
            // appears after a dominated one
            for (pa, &a) in got.iter().enumerate() {
                for &b in got.iter().skip(pa + 1) {
                    assert!(
                        !(b.0 <= a.0 && b.1 <= a.1 && b != a),
                        "case {case}: {name}: {a:?} emitted before dominating {b:?}"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Estimator monotonicity and cache ordering
// ---------------------------------------------------------------------

fn fig6_plan_with(f_flight: u64, f_hotel: u64) -> (Plan, Schema) {
    use mdq::model::examples::*;
    let schema = running_example_schema();
    let query = Arc::new(running_example_query(&schema));
    let poset = Poset::from_pairs(
        4,
        &[
            (ATOM_CONF, ATOM_WEATHER),
            (ATOM_WEATHER, ATOM_FLIGHT),
            (ATOM_WEATHER, ATOM_HOTEL),
        ],
    )
    .expect("acyclic");
    let mut plan = build_plan(
        query,
        &schema,
        ApChoice(vec![0, 0, 0, 0]),
        poset,
        (0..4).collect(),
        &StrategyRule::default(),
    )
    .expect("builds");
    plan.set_fetch(ATOM_FLIGHT, f_flight);
    plan.set_fetch(ATOM_HOTEL, f_hotel);
    (plan, schema)
}

/// Output size and every metric are monotone in the fetch vector, and
/// per-node calls are ordered Optimal ≤ OneCall ≤ NoCache.
#[test]
fn estimates_monotone() {
    let mut rng = Rng::new(0x2025);
    for case in 0..64 {
        let f1 = rng.range_u64(1, 6);
        let f2 = rng.range_u64(1, 6);
        let d1 = rng.range_u64(0, 3);
        let d2 = rng.range_u64(0, 3);
        let sel = SelectivityModel::default();
        let (small, schema) = fig6_plan_with(f1, f2);
        let (big, _) = fig6_plan_with(f1 + d1, f2 + d2);
        for cache in CacheSetting::ALL {
            let est = Estimator::new(&schema, &sel, cache);
            let a = est.annotate(&small);
            let b = est.annotate(&big);
            assert!(
                b.out_size() >= a.out_size() - 1e-9,
                "case {case}: out_size monotone (F {f1},{f2} + {d1},{d2})"
            );
            for metric in all_metrics() {
                let ca = metric.cost(&small, &a, &schema);
                let cb = metric.cost(&big, &b, &schema);
                assert!(
                    cb >= ca - 1e-9,
                    "case {case}: {} monotone ({ca} vs {cb})",
                    metric.name()
                );
            }
        }
        let (plan, schema) = fig6_plan_with(f1, f2);
        let none = Estimator::new(&schema, &sel, CacheSetting::NoCache).annotate(&plan);
        let one = Estimator::new(&schema, &sel, CacheSetting::OneCall).annotate(&plan);
        let opt = Estimator::new(&schema, &sel, CacheSetting::Optimal).annotate(&plan);
        for i in 0..plan.nodes.len() {
            assert!(
                one.calls[i] <= none.calls[i] + 1e-9,
                "case {case}, node {i}"
            );
            assert!(opt.calls[i] <= one.calls[i] + 1e-9, "case {case}, node {i}");
        }
    }
}

// ---------------------------------------------------------------------
// Parser stability
// ---------------------------------------------------------------------

/// display → parse → display is a fixpoint for queries assembled from
/// random subsets of the running example's atoms.
#[test]
fn parser_display_fixpoint() {
    let mut rng = Rng::new(0x3031);
    for case in 0..64 {
        let use_hotel = rng.bool(0.5);
        let use_weather = rng.bool(0.5);
        let temp = rng.range_i64(20, 35);
        let schema = mdq::model::examples::running_example_schema();
        let mut text = String::from("q(Conf, City) :- conf('DB', Conf, Start, End, City)");
        if use_hotel {
            text.push_str(", hotel(Hotel, City, 'luxury', Start, End, HPrice)");
        }
        if use_weather {
            text.push_str(", weather(City, Temp, Start)");
            text.push_str(&format!(", Temp >= {temp}"));
        }
        text.push('.');
        let q1 = parse_query(&text, &schema).expect("parses");
        let d1 = format!("{}", q1.display(&schema));
        let q2 = parse_query(&d1, &schema).expect("reparses");
        let d2 = format!("{}", q2.display(&schema));
        assert_eq!(d1, d2, "case {case}: fixpoint for {text}");
    }
}

// ---------------------------------------------------------------------
// Branch and bound = exhaustive oracle under random profiles
// ---------------------------------------------------------------------

/// Under randomised service statistics (erspi, response times, chunk
/// sizes, join selectivity), the branch-and-bound optimum equals the
/// independent exhaustive optimum for both ETM and RRM.
#[test]
fn bnb_equals_exhaustive_random_profiles() {
    let mut rng = Rng::new(0x4047);
    for case in 0..12 {
        let conf_erspi = rng.range_f64(2.0, 30.0);
        let weather_erspi = rng.range_f64(0.05, 1.5);
        let tau_flight = rng.range_f64(1.0, 12.0);
        let tau_hotel = rng.range_f64(1.0, 12.0);
        let cs_flight = rng.range_u64(5, 30) as u32;
        let cs_hotel = rng.range_u64(2, 10) as u32;
        let sigma = rng.range_f64(0.005, 0.2);
        let mut schema = mdq::model::examples::running_example_schema();
        {
            let id = schema.service_by_name("conf").expect("conf");
            schema.service_mut(id).profile.erspi = conf_erspi;
        }
        {
            let id = schema.service_by_name("weather").expect("weather");
            schema.service_mut(id).profile.erspi = weather_erspi;
        }
        {
            let id = schema.service_by_name("flight").expect("flight");
            schema.service_mut(id).profile.response_time = tau_flight;
            schema.service_mut(id).chunking = Chunking::Chunked {
                chunk_size: cs_flight,
            };
        }
        {
            let id = schema.service_by_name("hotel").expect("hotel");
            schema.service_mut(id).profile.response_time = tau_hotel;
            schema.service_mut(id).chunking = Chunking::Chunked {
                chunk_size: cs_hotel,
            };
        }
        let mut query = mdq::model::examples::running_example_query(&schema);
        query.predicates[3].selectivity_hint = Some(sigma);
        let query = Arc::new(query);
        let sel = SelectivityModel::default();
        let strategy = StrategyRule::default();
        for metric in [&ExecutionTime as &dyn CostMetric, &RequestResponse] {
            let ctx = CostContext::new(&schema, &sel, CacheSetting::OneCall, metric);
            let oracle = exhaustive_optimum(&query, &ctx, &strategy, 8.0, 5);
            let bnb = optimize(
                Arc::clone(&query),
                &schema,
                metric,
                &OptimizerConfig {
                    k: 8,
                    max_fetch: 5,
                    ..OptimizerConfig::default()
                },
            )
            .expect("bnb runs");
            match oracle {
                Some((_, oracle_cost)) => {
                    assert!(
                        bnb.meets_k(),
                        "case {case}: oracle found a plan, bnb must too"
                    );
                    assert!(
                        (oracle_cost - bnb.candidate.cost).abs() < 1e-6,
                        "case {case}: {}: oracle {} vs bnb {}",
                        metric.name(),
                        oracle_cost,
                        bnb.candidate.cost
                    );
                }
                None => assert!(!bnb.meets_k(), "case {case}: no feasible plan exists"),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Execution invariance across seeds
// ---------------------------------------------------------------------

/// For any world seed, all cache settings agree on the answer set and
/// the calibrated call counts still hold (they are seed-independent).
#[test]
fn calibration_is_seed_independent() {
    use mdq_bench::experiments::fig11::{run_cell, PlanShape};
    let mut rng = Rng::new(0x5059);
    for case in 0..8 {
        let seed = rng.range_u64(0, 1000);
        let cell = run_cell(seed, PlanShape::S, CacheSetting::NoCache);
        assert_eq!(cell.weather, 71, "case {case}, seed {seed}");
        assert_eq!(cell.flight, 16, "case {case}, seed {seed}");
        assert_eq!(cell.hotel, 284, "case {case}, seed {seed}");
        let one = run_cell(seed, PlanShape::S, CacheSetting::OneCall);
        assert_eq!(one.hotel, 15, "case {case}, seed {seed}");
        assert_eq!(cell.answers, one.answers, "case {case}, seed {seed}");
    }
}
