//! Overload acceptance test for the TCP serving edge: drive far more
//! concurrent demand than the worker pool's capacity through real
//! loopback connections and check the three serving-tier promises:
//!
//! 1. **Deterministic shedding** — with both workers wedged and the
//!    admission queue full, the next query is refused *promptly* with
//!    the configured `retry-after` hint instead of queueing unboundedly;
//! 2. **Bounded admitted latency** — queries that are admitted finish
//!    (no starvation under a 10×-capacity closed-loop flood);
//! 3. **Exact accounting** — the counters in [`MetricsSnapshot`]
//!    reconcile, to the query, with what the clients observed on the
//!    wire: every submission is completed or shed, nothing double
//!    counted, nothing lost.

use mdq::model::value::Value;
use mdq::runtime::net::{NetClient, NetServer, QueryOutcome};
use mdq::runtime::{QueryServer, RuntimeConfig};
use mdq::services::domains::news::news_world;
use mdq::services::service::{Service, ServiceResponse};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

const QUERY: &str = "q(City, Venue, Price) :- events('mahler-2', City, Venue, D), \
                     lowcost('Milano', City, Price), Price <= 60.0.";

/// Wraps a real service behind a gate: every fetch blocks until the
/// test opens it. This wedges the worker pool deterministically so the
/// admission queue fills without any sleep-based timing.
struct GatedService {
    inner: Arc<dyn Service>,
    gate: Arc<(Mutex<bool>, Condvar)>,
}

impl Service for GatedService {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn fetch(&self, pattern: usize, inputs: &[Value], page: u32) -> ServiceResponse {
        let (open, released) = &*self.gate;
        let mut open = open.lock().unwrap();
        while !*open {
            open = released.wait(open).unwrap();
        }
        drop(open);
        self.inner.fetch(pattern, inputs, page)
    }
}

fn open_gate(gate: &Arc<(Mutex<bool>, Condvar)>) {
    let (open, released) = &**gate;
    *open.lock().unwrap() = true;
    released.notify_all();
}

/// Issues one query, retrying on `SHED` after the server's hint until
/// it completes. Returns (shed observations, server-side wall ms).
fn query_until_done(client: &mut NetClient, sheds: &AtomicU64) -> u64 {
    loop {
        match client.query(QUERY, Some(3)).expect("wire protocol intact") {
            QueryOutcome::Done {
                answers, wall_ms, ..
            } => {
                assert!(!answers.is_empty(), "news query yields answers");
                return wall_ms;
            }
            QueryOutcome::Shed { retry_after_ms } => {
                sheds.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(retry_after_ms));
            }
            QueryOutcome::Failed { reason } => panic!("query failed under load: {reason}"),
            QueryOutcome::Draining => panic!("server drained mid-test"),
        }
    }
}

#[test]
fn overload_sheds_promptly_and_counters_reconcile() {
    const WORKERS: usize = 2;
    const QUEUE: usize = 4;
    const CLIENTS: usize = 16;
    const PER_CLIENT: usize = 20;
    const RETRY_AFTER: Duration = Duration::from_millis(25);

    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let mut world = news_world();
    let id = world
        .schema
        .service_by_name("lowcost")
        .expect("news world has lowcost");
    let inner = Arc::clone(world.registry.get(id).expect("registered"));
    world.registry.register(
        id,
        GatedService {
            inner,
            gate: Arc::clone(&gate),
        },
    );

    let server = Arc::new(QueryServer::from_world(
        world,
        RuntimeConfig {
            workers: WORKERS,
            max_queue_depth: QUEUE,
            shed_retry_after: RETRY_AFTER,
            ..RuntimeConfig::default()
        },
    ));
    let net = NetServer::start(Arc::clone(&server), "127.0.0.1:0").expect("binds loopback");
    let addr = net.addr();
    let sheds = Arc::new(AtomicU64::new(0));

    // ---- phase 1: wedge the pool, fill the queue, prove the shed ----
    // The clients run in threads because a query blocks until its DONE
    // frame. First, exactly WORKERS queries: wait until both have been
    // popped and neither finished — the pool is now provably stuck in
    // the gated service, so *nothing* can drain the queue until the
    // gate opens. Only then fill the queue; without the first wait, a
    // worker could pop a filler between our depth check and the probe,
    // admitting the probe into a wedge it can never leave.
    let mut wedged: Vec<_> = (0..WORKERS)
        .map(|_| {
            let sheds = Arc::clone(&sheds);
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr).expect("connects");
                let wall = query_until_done(&mut client, &sheds);
                client.quit().expect("clean close");
                wall
            })
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let m = server.metrics();
        if m.submitted == WORKERS as u64 && m.completed == 0 && m.queue_depth == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "workers never wedged: {} submitted, {} completed, {} queued",
            m.submitted,
            m.completed,
            m.queue_depth
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    wedged.extend((0..QUEUE).map(|_| {
        let sheds = Arc::clone(&sheds);
        std::thread::spawn(move || {
            let mut client = NetClient::connect(addr).expect("connects");
            let wall = query_until_done(&mut client, &sheds);
            client.quit().expect("clean close");
            wall
        })
    }));
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.queue_depth() < QUEUE {
        assert!(
            Instant::now() < deadline,
            "queue never filled: depth {} of {QUEUE}",
            server.queue_depth()
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // capacity + queue exhausted: the next query must be shed promptly
    // with the configured hint, not queued behind the wedge
    let mut probe = NetClient::connect(addr).expect("connects");
    let asked = Instant::now();
    match probe.query(QUERY, Some(3)).expect("wire protocol intact") {
        QueryOutcome::Shed { retry_after_ms } => {
            sheds.fetch_add(1, Ordering::Relaxed);
            assert_eq!(retry_after_ms, RETRY_AFTER.as_millis() as u64);
        }
        other => panic!("expected a SHED frame at full queue, got {other:?}"),
    }
    assert!(
        asked.elapsed() < Duration::from_secs(5),
        "shed must not wait on the wedged workers"
    );

    open_gate(&gate);
    for t in wedged {
        t.join()
            .expect("wedged client completes after the gate opens");
    }
    // the probe retries into a drained queue and completes
    query_until_done(&mut probe, &sheds);
    probe.quit().expect("clean close");

    // ---- phase 2: closed-loop flood at ~10× worker capacity ----
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let sheds = Arc::clone(&sheds);
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr).expect("connects");
                client
                    .tenant(&format!("team-{}", c % 4))
                    .expect("tenant handshake");
                let mut walls = Vec::with_capacity(PER_CLIENT);
                for _ in 0..PER_CLIENT {
                    walls.push(query_until_done(&mut client, &sheds));
                }
                client.quit().expect("clean close");
                walls
            })
        })
        .collect();
    let mut walls: Vec<u64> = Vec::new();
    for t in clients {
        walls.extend(t.join().expect("client finishes its closed loop"));
    }

    // admitted queries finished with bounded server-side wall time (the
    // bound is deliberately generous: this asserts no starvation, not a
    // latency SLO)
    walls.sort_unstable();
    let p99 = walls[walls.len() * 99 / 100 - 1];
    assert!(p99 < 30_000, "p99 admitted wall time unbounded: {p99}ms");

    // ---- exact reconciliation: wire observations == counters ----
    let observed_done = (WORKERS + QUEUE + CLIENTS * PER_CLIENT + 1) as u64;
    let observed_shed = sheds.load(Ordering::Relaxed);
    let m = server.metrics();
    assert_eq!(
        m.completed, observed_done,
        "every DONE frame is counted once"
    );
    assert_eq!(m.submitted, m.completed, "every admission completed");
    assert_eq!(m.failed, 0, "no query failed");
    assert_eq!(m.worker_panics, 0, "no worker died");
    assert_eq!(
        m.rejected, observed_shed,
        "every SHED frame is counted once"
    );
    assert_eq!(m.shed_total(), m.rejected, "sheds reconcile by cause");
    assert_eq!(m.shed_tenant_budget, 0, "no budgets configured");
    assert!(
        m.rejected >= 1,
        "the full-queue probe shed at least one query"
    );
    assert_eq!(m.queue_depth, 0, "the queue drained");
    assert!(
        m.peak_queue_depth >= QUEUE as u64,
        "the wedge filled the queue"
    );
    assert_eq!(
        m.tenants.iter().map(|t| t.submitted).sum::<u64>(),
        m.submitted,
        "per-tenant submissions sum to the global counter"
    );
    assert_eq!(
        m.tenants.iter().map(|t| t.completed).sum::<u64>(),
        m.completed,
        "per-tenant completions sum to the global counter"
    );
    for t in m.tenants.iter().filter(|t| t.name.starts_with("team-")) {
        assert_eq!(
            t.completed,
            (CLIENTS / 4 * PER_CLIENT) as u64,
            "tenant {} completed its share",
            t.name
        );
    }
    assert!(
        m.connections >= (WORKERS + QUEUE + CLIENTS + 1) as u64,
        "every client connection was counted"
    );

    // graceful drain: no open connections survive shutdown
    net.shutdown();
    assert_eq!(net.open_connections(), 0, "drain closed every connection");
}
