//! Adaptive mid-flight re-optimization, end to end on the catalog
//! world: a deliberately mis-estimated workload must trigger a re-plan
//! that completes with strictly fewer total service calls than the
//! frozen plan, pages fetched before the splice must never be
//! re-requested, and a well-estimated workload must see zero re-plans
//! (no overhead when the estimates hold).

use mdq::cost::divergence::AdaptiveConfig;
use mdq::exec::adaptive::{run_adaptive, ReplanRequest};
use mdq::exec::cache::CacheSetting as ExecCache;
use mdq::exec::gateway::SharedServiceState;
use mdq::prelude::*;
use mdq::services::domains::catalog::{catalog_world, CatalogWorld, SEED_ITEMS};
use std::sync::Arc;

const K: u64 = 10;

fn engine_of(c: CatalogWorld) -> (Mdq, mdq::services::domains::catalog::CatalogIds) {
    (Mdq::from_world(c.world), c.ids)
}

fn query_text(c: &CatalogWorld) -> String {
    // the canonical catalog query, as text for the facade entry points
    let _ = c;
    "q(Item, Part, Vendor, Price) :- seed('widgets', Item), parts(Item, Part), \
     offers(Part, Vendor, Price), Price <= 100.0."
        .to_string()
}

/// The frozen plan executed as-is over a fresh memoizing shared state:
/// the baseline the adaptive run must beat.
fn frozen_calls(engine: &Mdq, text: &str) -> (u64, Plan) {
    let query = engine.parse(text).expect("parses");
    let optimized = engine
        .optimize(
            query,
            &ExecutionTime,
            OptimizerConfig {
                k: K,
                cache: mdq::cost::estimate::CacheSetting::Optimal,
                ..OptimizerConfig::default()
            },
        )
        .expect("optimizes");
    let shared = Arc::new(SharedServiceState::new(ExecCache::Optimal, 0));
    let report = run_with_shared(
        &optimized.candidate.plan,
        engine.schema(),
        engine.registry(),
        Arc::clone(&shared),
        None,
        Some(K as usize),
    )
    .expect("frozen run executes");
    (
        report.calls.values().sum(),
        optimized.candidate.plan.clone(),
    )
}

#[test]
fn mis_estimated_workload_replans_and_saves_calls() {
    let (engine, ids) = engine_of(catalog_world(true));
    let text = query_text(&catalog_world(true));
    let (frozen, frozen_plan) = frozen_calls(&engine, &text);

    let out = engine
        .run_adaptive(&text, K, &AdaptiveConfig::default())
        .expect("adaptive run executes");
    let adaptive: u64 = out.outcome.report.calls.values().sum();

    assert!(out.replans() >= 1, "the mis-estimate must force a re-plan");
    assert!(
        adaptive < frozen,
        "adaptive ({adaptive} calls) must beat the frozen plan ({frozen} calls)"
    );
    // the stale registration made the optimizer over-fetch the chunked
    // suffix; the savings are substantial, not marginal
    assert!(
        adaptive * 2 <= frozen,
        "adaptive ({adaptive}) should halve the frozen bill ({frozen})"
    );
    // answers are genuine top-k answers of the final plan
    assert_eq!(out.answers().len(), K as usize);
    for a in out.answers() {
        assert!(a.get(3).as_f64().expect("price") <= 100.0);
    }
    // the re-plan event names the drifted service
    assert_eq!(out.outcome.events.len(), out.replans() as usize);
    assert!(out.outcome.events[0]
        .services
        .contains(&"parts".to_string()));
    assert!(out.outcome.events[0].worst_ratio > 10.0);
    // the splice kept the executed prefix: seed and parts fetch factors
    // and patterns unchanged
    let fp = &out.outcome.final_plan;
    for atom in 0..2 {
        assert_eq!(fp.choice.0[atom], frozen_plan.choice.0[atom]);
    }
    // and the suffix was re-tuned down: strictly fewer offer pages
    let offers_pos = fp
        .atoms
        .iter()
        .position(|&a| fp.query.atoms[a].service == ids.offers)
        .expect("offers covered");
    assert!(
        fp.fetch_of(offers_pos) < frozen_plan.fetch_of(offers_pos),
        "re-planned F ({}) must undercut the frozen F ({})",
        fp.fetch_of(offers_pos),
        frozen_plan.fetch_of(offers_pos)
    );
}

#[test]
fn replan_never_repeats_a_cached_page() {
    // every (service, key, page) the adaptive execution demands is
    // forwarded exactly once: total forwarded calls equal the distinct
    // page-cache misses, splices notwithstanding
    let (engine, ids) = engine_of(catalog_world(true));
    let text = query_text(&catalog_world(true));
    let out = engine
        .run_adaptive(&text, K, &AdaptiveConfig::default())
        .expect("adaptive run executes");
    assert!(out.replans() >= 1);
    // the prefix was re-executed after the splice, yet seed and parts
    // forwarded exactly one call per distinct input
    assert_eq!(out.outcome.report.calls_to(ids.seed), 1);
    assert_eq!(
        out.outcome.report.calls_to(ids.parts),
        SEED_ITEMS as u64,
        "one parts call per seeded item, splice included"
    );
}

#[test]
fn below_threshold_divergence_causes_zero_replans() {
    let (engine, _) = engine_of(catalog_world(false));
    let text = query_text(&catalog_world(false));
    let (frozen, _) = frozen_calls(&engine, &text);

    let out = engine
        .run_adaptive(&text, K, &AdaptiveConfig::default())
        .expect("adaptive run executes");
    assert_eq!(out.replans(), 0, "truthful estimates must not re-plan");
    assert!(out.outcome.events.is_empty());
    let adaptive: u64 = out.outcome.report.calls.values().sum();
    assert_eq!(
        adaptive, frozen,
        "zero re-plans means zero overhead: identical call bills"
    );
    assert_eq!(out.answers().len(), K as usize);
}

#[test]
fn max_replans_zero_disables_adaptivity() {
    let (engine, _) = engine_of(catalog_world(true));
    let text = query_text(&catalog_world(true));
    let (frozen, _) = frozen_calls(&engine, &text);
    let out = engine
        .run_adaptive(
            &text,
            K,
            &AdaptiveConfig {
                max_replans: 0,
                ..AdaptiveConfig::default()
            },
        )
        .expect("adaptive run executes");
    assert_eq!(out.replans(), 0);
    let adaptive: u64 = out.outcome.report.calls.values().sum();
    assert_eq!(adaptive, frozen, "disabled adaptivity = the frozen plan");
}

/// A head that projects body variables away makes duplicate answers
/// legal output; the adaptive pull driver must preserve them — exactly
/// like the frozen driver when no splice happens, and with the same
/// multiset as the adaptive stage driver when one does.
#[test]
fn projection_duplicates_survive_adaptive_pull() {
    use mdq::exec::adaptive::AdaptiveTopK;
    let projected = "q(Item, Part) :- seed('widgets', Item), parts(Item, Part), \
         offers(Part, Vendor, Price), Price <= 100.0.";
    let plan_for = |engine: &Mdq| {
        let query = engine.parse(projected).expect("parses");
        engine
            .optimize(
                query,
                &ExecutionTime,
                OptimizerConfig {
                    k: K,
                    cache: mdq::cost::estimate::CacheSetting::Optimal,
                    ..OptimizerConfig::default()
                },
            )
            .expect("optimizes")
            .candidate
            .plan
    };

    // truthful world, zero re-plans: the adaptive pull stream must be
    // *identical* (order and duplicates) to the frozen pull stream
    let (engine, _) = engine_of(catalog_world(false));
    let plan = plan_for(&engine);
    let shared = Arc::new(SharedServiceState::new(ExecCache::Optimal, 0));
    let mut frozen = TopKExecution::with_shared(
        &plan,
        engine.schema(),
        engine.registry(),
        shared,
        None,
        false,
    )
    .expect("frozen pull builds");
    let frozen_answers = frozen.answers(1 << 20);
    let mut dedup = frozen_answers.clone();
    dedup.sort();
    dedup.dedup();
    assert!(
        dedup.len() < frozen_answers.len(),
        "the projection must produce duplicate heads"
    );
    let shared = Arc::new(SharedServiceState::new(ExecCache::Optimal, 0));
    let mut replanner = engine.replanner(
        &ExecutionTime,
        OptimizerConfig {
            k: K,
            cache: mdq::cost::estimate::CacheSetting::Optimal,
            ..OptimizerConfig::default()
        },
    );
    let mut adaptive = AdaptiveTopK::with_shared(
        &plan,
        engine.schema(),
        engine.registry(),
        shared,
        None,
        false,
        &AdaptiveConfig::default(),
    )
    .expect("adaptive pull builds");
    let adaptive_answers = adaptive.answers(1 << 20, &mut replanner);
    assert_eq!(adaptive.replans(), 0);
    assert_eq!(
        adaptive_answers, frozen_answers,
        "no splice: the adaptive stream is the frozen stream"
    );

    // mis-estimated world, ≥1 splice: the pull multiset must equal the
    // adaptive stage driver's on the same final plan — duplicates kept
    let (engine, _) = engine_of(catalog_world(true));
    let plan = plan_for(&engine);
    let shared = Arc::new(SharedServiceState::new(ExecCache::Optimal, 0));
    let mut replanner = engine.replanner(
        &ExecutionTime,
        OptimizerConfig {
            k: K,
            cache: mdq::cost::estimate::CacheSetting::Optimal,
            ..OptimizerConfig::default()
        },
    );
    let stage = run_adaptive(
        &plan,
        engine.schema(),
        engine.registry(),
        shared,
        None,
        None,
        &AdaptiveConfig::default(),
        &mut replanner,
    )
    .expect("stage driver executes");
    assert!(stage.replans >= 1);
    let shared = Arc::new(SharedServiceState::new(ExecCache::Optimal, 0));
    let mut replanner = engine.replanner(
        &ExecutionTime,
        OptimizerConfig {
            k: K,
            cache: mdq::cost::estimate::CacheSetting::Optimal,
            ..OptimizerConfig::default()
        },
    );
    let mut pull = AdaptiveTopK::with_shared(
        &plan,
        engine.schema(),
        engine.registry(),
        shared,
        None,
        false,
        &AdaptiveConfig::default(),
    )
    .expect("adaptive pull builds");
    let pulled = pull.answers(1 << 20, &mut replanner);
    assert_eq!(pull.replans(), stage.replans);
    let mut a = stage.report.answers.clone();
    let mut b = pulled;
    a.sort();
    b.sort();
    assert_eq!(a, b, "spliced pull keeps the duplicate multiset");
    let mut dedup = a.clone();
    dedup.dedup();
    assert!(dedup.len() < a.len(), "duplicates survive the splice");
}

#[test]
fn settled_divergence_does_not_rerun_the_optimizer() {
    // a replanner that refuses must be consulted once per diverging
    // service set, not at every subsequent suspension point
    let c = catalog_world(true);
    let engine = Mdq::from_world(c.world);
    let text = query_text(&catalog_world(true));
    let query = engine.parse(&text).expect("parses");
    let optimized = engine
        .optimize(
            query,
            &ExecutionTime,
            OptimizerConfig {
                k: K,
                cache: mdq::cost::estimate::CacheSetting::Optimal,
                ..OptimizerConfig::default()
            },
        )
        .expect("optimizes");
    let shared = Arc::new(SharedServiceState::new(ExecCache::Optimal, 0));
    let mut consults = 0u32;
    let mut refuse = |_req: &ReplanRequest<'_>| {
        consults += 1;
        None
    };
    let out = run_adaptive(
        &optimized.candidate.plan,
        engine.schema(),
        engine.registry(),
        shared,
        None,
        Some(K as usize),
        &AdaptiveConfig::default(),
        &mut refuse,
    )
    .expect("executes");
    assert_eq!(out.replans, 0);
    drop(out);
    assert_eq!(
        consults, 1,
        "a settled divergence must not re-trigger the re-planner"
    );
}
