//! Chaos stress for the `mdq-runtime` serving layer: an 8-worker
//! [`QueryServer`] over flaky services.
//!
//! Invariants pinned here:
//! * the 20-query flaky workload **completes** — zero hung sessions
//!   (a watchdog fails the test instead of letting CI time out), zero
//!   hard failures, and at least one `PartialResults` completion;
//! * the shared [`PageCache`] never serves a tuple from a failed page —
//!   a degraded page stays empty and is answered from the failed-page
//!   memo, not the cache;
//! * the server's retry/timeout metrics reconcile exactly with the
//!   shared gateway state's fault accounting *and* with the per-session
//!   statistics the workers reported.
//!
//! [`PageCache`]: mdq::exec::cache::PageCache

use mdq::cost::metrics::ExecutionTime;
use mdq::exec::gateway::{RetryPolicy, ServiceGateway};
use mdq::model::value::Value;
use mdq::optimizer::bnb::OptimizerConfig;
use mdq::runtime::session::QueryStats;
use mdq::services::domains::travel::travel_world;
use mdq::services::domains::World;
use mdq::services::fault::{FaultConfig, FaultPlan, FaultProfile, PlannedFault};
use mdq::{Mdq, QueryServer, RuntimeConfig};
use std::sync::mpsc;
use std::time::Duration;

const K: u64 = 5;

fn travel_query(topic: &str, budget: u32) -> String {
    format!(
        "q(Conf, City, HPrice, FPrice, Hotel) :- \
         flight('Milano', City, Start, End, ST, ET, FPrice), \
         hotel(Hotel, City, 'luxury', Start, End, HPrice), \
         conf('{topic}', Conf, Start, End, City), \
         weather(City, Temp, Start), \
         Start >= '2007/3/14', End <= '2007/3/14' + 180, \
         Temp >= 28, FPrice + HPrice < {budget}.0."
    )
}

/// A travel engine whose services are flaky:
/// * `conf` *always* fails for topic `'AI'` (a permanently dead
///   endpoint) while staying healthy for `'DB'`;
/// * `weather` and `flight` fault probabilistically (seeded), at rates
///   the default retry policy absorbs.
fn flaky_engine() -> Mdq {
    let mut w = travel_world(2008);
    let conf = w.ids.conf;
    let inner = w.registry.get(conf).expect("conf").clone();
    w.registry.register(
        conf,
        FaultProfile::scripted(
            inner,
            FaultPlan::new().fail_inputs(vec![Value::str("AI")], u32::MAX, PlannedFault::Timeout),
        ),
    );
    for id in [w.ids.weather, w.ids.flight] {
        let inner = w.registry.get(id).expect("registered").clone();
        let cfg = FaultConfig::seeded(0xC0FFEE ^ id.0 as u64)
            .with_errors(0.05)
            .with_rate_limits(0.03);
        w.registry.register(id, FaultProfile::seeded(inner, cfg));
    }
    Mdq::from_world(World {
        schema: w.schema,
        query: w.query,
        registry: w.registry,
    })
}

/// Runs `f` on its own thread, panicking if it does not finish within
/// `secs` — the "zero hung sessions" watchdog.
fn with_watchdog<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    let out = rx
        .recv_timeout(Duration::from_secs(secs))
        .expect("chaos workload hung: a session never completed");
    handle.join().expect("workload thread");
    out
}

#[test]
fn flaky_workload_completes_with_partials_and_reconciled_metrics() {
    let server = QueryServer::new(
        flaky_engine(),
        RuntimeConfig {
            workers: 8,
            per_service_concurrency: 2,
            retry: RetryPolicy::retries(3),
            ..RuntimeConfig::default()
        },
    );

    // 20 concurrent queries: 16 healthy-topic ('DB', mixed budgets so
    // several distinct plans contend) + 4 against the dead 'AI' topic
    let (all_stats, healthy_answer_counts) = {
        let sessions: Vec<(bool, _)> = (0..20)
            .map(|i| {
                if i % 5 == 4 {
                    (false, server.submit(&travel_query("AI", 2000), Some(K)))
                } else {
                    let budget = 1400 + 200 * (i as u32 % 4);
                    (true, server.submit(&travel_query("DB", budget), Some(K)))
                }
            })
            .collect();
        with_watchdog(120, move || {
            let mut stats: Vec<QueryStats> = Vec::new();
            let mut healthy_counts = Vec::new();
            for (healthy, session) in sessions {
                let result = session.collect().expect("no hard failures under chaos");
                if healthy {
                    healthy_counts.push(result.answers.len());
                    assert!(
                        !result.is_partial(),
                        "retries(3) absorb the seeded fault rates: {:?}",
                        result.stats.degraded_services
                    );
                } else {
                    assert!(result.is_partial(), "the dead topic must degrade");
                    assert_eq!(
                        result.stats.degraded_services,
                        vec!["conf".to_string()],
                        "partial results name the degraded service"
                    );
                    assert!(result.answers.is_empty(), "conf fed every downstream atom");
                }
                stats.push(result.stats);
            }
            (stats, healthy_counts)
        })
    };

    // every healthy query produced its k answers despite the faults
    assert!(
        healthy_answer_counts.iter().all(|&n| n == K as usize),
        "flaky-but-recovering services still serve k answers: {healthy_answer_counts:?}"
    );

    let m = server.metrics();
    assert_eq!((m.submitted, m.completed, m.failed), (20, 20, 0));
    assert!(
        m.partial_completions >= 4,
        "at least the four dead-topic queries completed partially: {}",
        m.partial_completions
    );

    // reconciliation 1: server counters == shared gateway accounting
    let shared = server.shared_state().total_fault_stats();
    assert_eq!(m.retries, shared.retries, "metrics vs gateway retries");
    assert_eq!(m.timeouts, shared.timeouts, "metrics vs gateway timeouts");
    assert_eq!(
        m.rate_limited, shared.rate_limited,
        "metrics vs gateway rate limits"
    );

    // reconciliation 2: per-session statistics sum to the same totals
    let session_retries: u64 = all_stats.iter().map(|s| s.retries).sum();
    let session_timeouts: u64 = all_stats.iter().map(|s| s.timeouts).sum();
    assert_eq!(
        session_retries, shared.retries,
        "sessions vs gateway retries"
    );
    assert_eq!(
        session_timeouts, shared.timeouts,
        "sessions vs gateway timeouts"
    );
    // the dead endpoint really timed out (and was retried) at least
    // once per distinct failing page
    assert!(
        shared.timeouts >= 4,
        "dead-topic timeouts: {}",
        shared.timeouts
    );

    server.shutdown();
}

#[test]
fn shared_cache_never_stores_tuples_from_failed_pages() {
    let server = QueryServer::new(
        flaky_engine(),
        RuntimeConfig {
            workers: 8,
            ..RuntimeConfig::default()
        },
    );
    // drive the dead topic (and a healthy one) through the server
    let sessions: Vec<_> = (0..8)
        .map(|i| {
            let topic = if i % 2 == 0 { "AI" } else { "DB" };
            server.submit(&travel_query(topic, 2000), Some(K))
        })
        .collect();
    with_watchdog(120, move || {
        for s in sessions {
            let _ = s.collect().expect("completes");
        }
    });

    // probe the shared state directly: the failed conf('AI') page must
    // come back degraded from the failed-page memo — empty, with no
    // forwarded call — never as a cache hit with fabricated tuples
    let engine = server.engine();
    let query = engine.parse(&travel_query("AI", 2000)).expect("parses");
    let plan = engine
        .optimize(query, &ExecutionTime, OptimizerConfig::default())
        .expect("optimizes")
        .candidate
        .plan;
    let conf = engine.schema().service_by_name("conf").expect("conf id");
    let mut probe = ServiceGateway::with_shared(
        &plan,
        engine.schema(),
        engine.registry(),
        std::sync::Arc::clone(server.shared_state()),
        None,
    )
    .expect("builds");
    let calls_before = server.shared_state().total_calls();
    let fetch = probe.fetch_page(conf, 0, &[Value::str("AI")], 0);
    assert!(fetch.tuples.is_empty(), "no fabricated tuples");
    assert!(fetch.fault.is_some(), "the memo preserves the fault");
    assert!(
        fetch.forwarded_latency.is_none(),
        "served without forwarding"
    );
    assert_eq!(
        server.shared_state().total_calls(),
        calls_before,
        "the probe forwarded nothing"
    );
    // ground truth: the underlying table does hold 'AI' rows — only the
    // fault kept them out of the cache
    let raw = engine
        .registry()
        .get(conf)
        .expect("conf")
        .fetch(0, &[Value::str("AI")], 0);
    assert!(
        !raw.tuples.is_empty(),
        "the fault-free view proves the page would have had tuples"
    );

    // and the healthy topic's pages are genuine cache hits
    let healthy = probe.fetch_page(conf, 0, &[Value::str("DB")], 0);
    assert!(healthy.fault.is_none());
    assert!(!healthy.tuples.is_empty());
    assert!(healthy.forwarded_latency.is_none(), "cache hit");

    server.shutdown();
}

/// Determinism at the serving layer: two identically-configured servers
/// given the same (sequentialised) workload agree on every session's
/// retry/timeout accounting and on the cumulative fault totals.
#[test]
fn chaos_accounting_replays_across_servers() {
    let run_once = || {
        let server = QueryServer::new(
            flaky_engine(),
            RuntimeConfig {
                workers: 1, // sequential: identical global call order
                retry: RetryPolicy::retries(3),
                ..RuntimeConfig::default()
            },
        );
        let stats: Vec<(u64, u64, Vec<String>)> = (0..6)
            .map(|i| {
                let topic = if i % 3 == 2 { "AI" } else { "DB" };
                let s = server
                    .submit(&travel_query(topic, 2000), Some(K))
                    .collect()
                    .expect("completes")
                    .stats;
                (s.retries, s.timeouts, s.degraded_services)
            })
            .collect();
        let totals = server.shared_state().total_fault_stats();
        server.shutdown();
        (stats, totals)
    };
    let (a, at) = with_watchdog(120, run_once);
    let (b, bt) = with_watchdog(120, run_once);
    assert_eq!(a, b, "per-session accounting replays");
    assert_eq!(at, bt, "cumulative accounting replays");
}
