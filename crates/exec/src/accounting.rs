//! Off-hot-path accounting for the shared execution state.
//!
//! Call, latency, fault and invocation-level cache counters used to
//! live inside the single `SharedServiceState` mutex, so every page
//! fetch serialized metrics against caching. They now accumulate in
//! **per-gateway cells** ([`AcctCell`]) — each execution's hot path
//! locks only its own uncontended cell — and readers *merge* the cells
//! (plus the retired totals of dropped gateways) on demand through the
//! [`Accounting`] registry.
//!
//! This module is the **only** place the counter fields are touched:
//! the hot path writes through `record_*`, readers go through
//! [`Accounting::merged`], and retired gateways fold in through
//! [`Accounting::retire`]. CI greps that nothing outside this module
//! reaches the fields directly, so hot-path lock traffic cannot creep
//! back in.

use crate::cache::CacheStats;
use crate::gateway::FaultStats;
use mdq_cost::divergence::ObservedService;
use mdq_model::schema::ServiceId;
use mdq_services::service::ServiceFault;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, Weak};

/// One merged (or per-worker) set of cumulative gateway counters.
#[derive(Clone, Debug, Default)]
pub(crate) struct Counters {
    /// Request-responses forwarded per service.
    pub calls: HashMap<ServiceId, u64>,
    /// Summed simulated latency of all forwarded calls.
    pub latency_sum: f64,
    /// Fault accounting per service.
    pub faults: HashMap<ServiceId, FaultStats>,
    /// Per-service observations of forwarded calls.
    pub observed: HashMap<ServiceId, ObservedService>,
    /// Invocation-level cache hit/miss counters per service.
    pub invocations: HashMap<ServiceId, CacheStats>,
}

impl Counters {
    /// Accumulates `self` into `into` — the single merge primitive every
    /// cross-worker read goes through.
    pub fn merge_into(&self, into: &mut Counters) {
        for (id, n) in &self.calls {
            *into.calls.entry(*id).or_insert(0) += n;
        }
        into.latency_sum += self.latency_sum;
        for (id, f) in &self.faults {
            into.faults.entry(*id).or_default().merge(f);
        }
        for (id, o) in &self.observed {
            into.observed.entry(*id).or_default().merge(o);
        }
        for (id, c) in &self.invocations {
            let e = into.invocations.entry(*id).or_default();
            e.hits += c.hits;
            e.misses += c.misses;
        }
    }
}

/// One gateway's private counter cell. The owning execution is the only
/// hot-path writer, so the mutex is uncontended; readers lock it briefly
/// during a merge.
pub(crate) struct AcctCell {
    counters: Mutex<Counters>,
}

impl AcctCell {
    fn update(&self, f: impl FnOnce(&mut Counters)) {
        f(&mut self.counters.lock().expect("accounting cell lock"));
    }

    /// Records one successful forwarded call.
    pub fn record_ok(&self, id: ServiceId, tuples: usize, latency: f64) {
        self.update(|c| {
            *c.calls.entry(id).or_insert(0) += 1;
            c.latency_sum += latency;
            c.observed.entry(id).or_default().record_ok(tuples, latency);
        });
    }

    /// Records one faulted forwarded attempt.
    pub fn record_fault(&self, id: ServiceId, fault: &ServiceFault, latency: f64) {
        self.update(|c| {
            *c.calls.entry(id).or_insert(0) += 1;
            c.latency_sum += latency;
            c.observed.entry(id).or_default().record_fault(latency);
            c.faults.entry(id).or_default().classify(fault);
        });
    }

    /// Records a retry issued after a faulted attempt, with its
    /// accounted backoff.
    pub fn record_retry(&self, id: ServiceId, backoff: f64) {
        self.update(|c| {
            let f = c.faults.entry(id).or_default();
            f.retries += 1;
            f.backoff_seconds += backoff;
        });
    }

    /// Records a page given up on (retry budget or call budget spent).
    pub fn record_exhausted(&self, id: ServiceId) {
        self.update(|c| c.faults.entry(id).or_default().exhausted += 1);
    }

    /// Records one invocation-level cache hit or miss.
    pub fn record_invocation(&self, id: ServiceId, hit: bool) {
        self.update(|c| {
            let s = c.invocations.entry(id).or_default();
            if hit {
                s.hits += 1;
            } else {
                s.misses += 1;
            }
        });
    }
}

struct Registry {
    /// Folded counters of every retired (dropped) gateway.
    retired: Counters,
    /// Live per-gateway cells.
    cells: Vec<Weak<AcctCell>>,
}

/// The cross-worker accounting registry owned by the shared state:
/// hands out cells, folds them back in on gateway drop, and merges
/// retired + live totals for every snapshot read.
pub(crate) struct Accounting {
    inner: Mutex<Registry>,
}

impl Default for Accounting {
    fn default() -> Self {
        Accounting {
            inner: Mutex::new(Registry {
                retired: Counters::default(),
                cells: Vec::new(),
            }),
        }
    }
}

impl Accounting {
    /// Registers a new per-gateway cell.
    pub fn register(&self) -> Arc<AcctCell> {
        let cell = Arc::new(AcctCell {
            counters: Mutex::new(Counters::default()),
        });
        let mut inner = self.inner.lock().expect("accounting registry lock");
        inner.cells.retain(|w| w.strong_count() > 0);
        inner.cells.push(Arc::downgrade(&cell));
        cell
    }

    /// Folds a dropping gateway's cell into the retired totals.
    pub fn retire(&self, cell: &Arc<AcctCell>) {
        let mut inner = self.inner.lock().expect("accounting registry lock");
        let counters = cell.counters.lock().expect("accounting cell lock");
        let mut retired = std::mem::take(&mut inner.retired);
        counters.merge_into(&mut retired);
        inner.retired = retired;
        drop(counters);
        inner
            .cells
            .retain(|w| w.upgrade().is_some_and(|c| !Arc::ptr_eq(&c, cell)));
    }

    /// Merges retired totals with every live cell — the read side of
    /// all cumulative accounting.
    pub fn merged(&self) -> Counters {
        let inner = self.inner.lock().expect("accounting registry lock");
        let mut out = Counters::default();
        inner.retired.merge_into(&mut out);
        for cell in inner.cells.iter().filter_map(Weak::upgrade) {
            cell.counters
                .lock()
                .expect("accounting cell lock")
                .merge_into(&mut out);
        }
        out
    }
}
