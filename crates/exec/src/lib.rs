//! # mdq-exec — the query-plan execution engine
//!
//! Implements the execution environment assumed by §5 of *Braga et al.,
//! "Optimization of Multi-Domain Queries on the Web", VLDB 2008*:
//! service orchestration, rank-preserving join methods, logical caching
//! and multi-threaded invocation.
//!
//! The crate is organised around one **batched operator kernel** with a
//! **single service-invocation path**:
//!
//! * [`operator`] — the pull-based, batch-native
//!   [`Operator`](operator::Operator) trait (`next_binding` for
//!   tuple-at-a-time semantics, `next_batch` moving whole
//!   [`Batch`](operator::Batch)es per hop) and the concrete
//!   [`Invoke`](operator::Invoke) / [`Join`](operator::Join) /
//!   [`Filter`](operator::Filter) / [`Select`](operator::Select)
//!   operators, plus [`compile`](operator::compile) for whole plans;
//! * [`gateway`] — the [`ServiceGateway`](gateway::ServiceGateway):
//!   registry lookup, paging (with batched cached-page runs), per-query
//!   accounting and admission control, behind single-threaded
//!   ([`LocalGateway`](gateway::LocalGateway)) or thread-safe
//!   ([`SharedGateway`](gateway::SharedGateway)) handles — over a
//!   [`SharedServiceState`](gateway::SharedServiceState): the client
//!   cache partitioned into independently locked shards, single-flight
//!   and the failed-page memo per shard, a dedicated flow-control lock
//!   for per-service concurrency limits, a separately locked sub-result
//!   store, and merge-on-read accounting (`accounting` cells) —
//!   `Arc`-shared by `mdq-runtime` across concurrent queries — with
//!   per-service [`RetryPolicy`](gateway::RetryPolicy) resilience:
//!   faulted calls are retried with accounted backoff and exhausted
//!   pages degrade into [`PartialResults`](gateway::PartialResults)
//!   instead of failing the query;
//! * [`cache`] — the three §5.1 client cache settings
//!   ([`PageCache`](cache::PageCache));
//! * [`binding`] — variable bindings flowing through operators;
//! * [`joins`] — rank-preserving hash-indexed nested-loop and
//!   merge-scan joins;
//! * [`plan_info`] — predicate placement and pattern metadata.
//!
//! The three executors are thin drivers over that kernel:
//!
//! * [`pipeline`] — the deterministic stage-materialised driver with
//!   virtual time (regenerates Fig. 11);
//! * [`topk`] — the pull-based driver: first-k answers with early
//!   halting and "ask for more" continuation (§2.2);
//! * [`threaded`] — parallel dispatch (virtual time) and a real
//!   OS-thread dataflow engine with scaled latencies;
//! * [`results`] — answer-table rendering (Fig. 10).
//!
//! [`adaptive`] closes the estimate→observation loop *mid-flight*: at
//! explicit suspension points the drivers compare the gateway's
//! observed per-service statistics against the schema estimates and,
//! past a configurable divergence, splice in a re-optimized plan suffix
//! — fetched pages replay from the shared cache, so a re-plan never
//! repeats a service call for data it already has.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub(crate) mod accounting;
pub mod adaptive;
pub mod binding;
pub mod cache;
pub mod gateway;
pub mod joins;
pub mod operator;
pub mod pipeline;
pub mod plan_info;
pub mod results;
pub mod threaded;
pub mod topk;

/// Convenient glob-import surface: `use mdq_exec::prelude::*;`.
pub mod prelude {
    pub use crate::adaptive::{
        run_adaptive, run_adaptive_dispatch, run_adaptive_with_batch, AdaptiveConfig,
        AdaptiveOutcome, AdaptiveTopK, ReplanEvent, ReplanRequest, Replanner,
    };
    pub use crate::binding::Binding;
    pub use crate::cache::{CacheSetting, CacheStats, PageCache, PageLookup, PageStore};
    pub use crate::gateway::{
        DegradedService, FaultStats, GatewayHandle, LocalGateway, PageFetch, PageShardStats,
        PartialResults, RetryPolicy, ServiceGateway, SharedGateway, SharedServiceState,
        SubResultStats, TenantCell, TenantId,
    };
    pub use crate::joins::{MsJoin, NlJoin};
    pub use crate::operator::{
        compile, compile_with, derive_rows_in, drain_all, drain_into, Batch, Filter, Invoke, Join,
        Operator, Probe, Select, Source, DEFAULT_BATCH,
    };
    pub use crate::pipeline::{
        run, run_with_batch, run_with_shared, ExecConfig, ExecError, ExecReport, NodeTrace,
    };
    pub use crate::plan_info::{analyze, PlanInfo};
    pub use crate::results::result_table;
    pub use crate::threaded::{
        run_parallel_dispatch, run_parallel_dispatch_with_batch, run_threaded, run_threaded_shared,
        run_threaded_with_batch, ParallelConfig, ThreadedConfig, ThreadedReport,
    };
    pub use crate::topk::TopKExecution;
    pub use mdq_obs::recorder::{QueryTrace, TraceRecorder};
    pub use mdq_obs::span::{OperatorStats, SpanKind, TraceEvent};
    pub use mdq_obs::{chrome_trace_json, jsonl, Histogram, LatencySummary};
}
