//! # mdq-exec — the query-plan execution engine
//!
//! Implements the execution environment assumed by §5 of *Braga et al.,
//! "Optimization of Multi-Domain Queries on the Web", VLDB 2008*:
//! service orchestration, rank-preserving join methods, logical caching
//! and multi-threaded invocation.
//!
//! * [`binding`] — variable bindings flowing through operators;
//! * [`cache`] — the three §5.1 client cache settings;
//! * [`joins`] — rank-preserving nested-loop and merge-scan joins;
//! * [`plan_info`] — predicate placement and pattern metadata;
//! * [`pipeline`] — the deterministic stage-materialised executor with
//!   virtual time (regenerates Fig. 11);
//! * [`topk`] — the pull-based executor: first-k answers with early
//!   halting and "ask for more" continuation (§2.2);
//! * [`threaded`] — parallel dispatch (virtual time) and a real
//!   OS-thread dataflow engine with scaled latencies;
//! * [`results`] — answer-table rendering (Fig. 10).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod binding;
pub mod cache;
pub mod joins;
pub mod pipeline;
pub mod plan_info;
pub mod results;
pub mod threaded;
pub mod topk;

/// Convenient glob-import surface: `use mdq_exec::prelude::*;`.
pub mod prelude {
    pub use crate::binding::Binding;
    pub use crate::cache::{CacheSetting, CacheStats, CachedResult, ClientCache};
    pub use crate::joins::{MsJoin, NlJoin};
    pub use crate::pipeline::{run, ExecConfig, ExecError, ExecReport, NodeTrace};
    pub use crate::plan_info::{analyze, PlanInfo};
    pub use crate::results::result_table;
    pub use crate::threaded::{
        run_parallel_dispatch, run_threaded, ParallelConfig, ThreadedConfig, ThreadedReport,
    };
    pub use crate::topk::TopKExecution;
}
