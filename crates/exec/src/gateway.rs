//! The service gateway — the *single* invocation path of the engine.
//!
//! Every executor (stage-materialised, pull-based top-k, parallel
//! dispatch, real threads) drives its service calls through one
//! [`ServiceGateway`]. The gateway owns:
//!
//! * **registry lookup** — runtime services are resolved once, up front,
//!   so a missing registration surfaces as
//!   [`ExecError::MissingService`] before any call is made;
//! * **paging** — page requests are forwarded in order and accounted as
//!   individual request-responses (the unit of every cost metric);
//! * **the three §5.1 cache settings** — a [`PageCache`] consulted
//!   before any forwarding.
//!
//! Drivers differ only in *how* they share the gateway:
//! [`LocalGateway`] (single-threaded, `Rc<RefCell>`) for the
//! materialised and pull executors, [`SharedGateway`] (`Arc<Mutex>`) for
//! the real-thread dataflow engine. Both implement [`GatewayHandle`],
//! the access trait the operators are generic over.

use crate::cache::{CacheSetting, CacheStats, PageCache, PageLookup};
use crate::operator::ExecError;
use mdq_model::schema::{Schema, ServiceId};
use mdq_model::value::{Tuple, Value};
use mdq_plan::dag::Plan;
use mdq_services::registry::ServiceRegistry;
use mdq_services::service::Service;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

/// One page of results, as served by the gateway (from cache or from the
/// service).
#[derive(Clone, Debug)]
pub struct PageFetch {
    /// The page's tuples, in rank order.
    pub tuples: Vec<Tuple>,
    /// Whether the service holds further pages for this invocation.
    pub has_more: bool,
    /// Latency of the forwarded request-response; `None` when the page
    /// was served from the client cache (cache hits are free).
    pub forwarded_latency: Option<f64>,
}

/// The single service-invocation and caching path shared by all
/// executors.
pub struct ServiceGateway {
    services: HashMap<ServiceId, Arc<dyn Service>>,
    cache: PageCache,
    calls: HashMap<ServiceId, u64>,
    latency_sum: f64,
    error: Option<ExecError>,
}

impl std::fmt::Debug for ServiceGateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceGateway")
            .field("services", &self.services.keys().collect::<Vec<_>>())
            .field("cache", &self.cache)
            .field("calls", &self.calls)
            .field("latency_sum", &self.latency_sum)
            .field("error", &self.error)
            .finish()
    }
}

impl ServiceGateway {
    /// Builds a gateway for `plan`, resolving every invoked service in
    /// the registry. Fails fast when a registration is missing.
    pub fn new(
        plan: &Plan,
        schema: &Schema,
        registry: &ServiceRegistry,
        cache: CacheSetting,
    ) -> Result<Self, ExecError> {
        let mut services = HashMap::new();
        for &atom in plan.atoms.iter() {
            let svc_id = plan.query.atoms[atom].service;
            let service = registry.get(svc_id).ok_or_else(|| {
                ExecError::MissingService(schema.service(svc_id).name.to_string())
            })?;
            services.insert(svc_id, Arc::clone(service));
        }
        Ok(ServiceGateway {
            services,
            cache: PageCache::new(cache),
            calls: HashMap::new(),
            latency_sum: 0.0,
            error: None,
        })
    }

    /// The active cache setting.
    pub fn cache_setting(&self) -> CacheSetting {
        self.cache.setting()
    }

    /// Serves page `page` of the invocation `(service, pattern, key)`:
    /// from the client cache when the setting allows, forwarding one
    /// request-response otherwise.
    pub fn fetch_page(
        &mut self,
        id: ServiceId,
        pattern: usize,
        key: &[Value],
        page: u32,
    ) -> PageFetch {
        match self.cache.lookup(id, key, page) {
            PageLookup::Hit(tuples, has_more) => PageFetch {
                tuples,
                has_more,
                forwarded_latency: None,
            },
            PageLookup::PastEnd => PageFetch {
                tuples: Vec::new(),
                has_more: false,
                forwarded_latency: None,
            },
            PageLookup::Unknown => {
                let service = self
                    .services
                    .get(&id)
                    .expect("gateway resolved all plan services at construction");
                let r = service.fetch(pattern, key, page);
                *self.calls.entry(id).or_insert(0) += 1;
                self.latency_sum += r.latency;
                self.cache
                    .store(id, key, page, r.tuples.clone(), r.has_more);
                PageFetch {
                    tuples: r.tuples,
                    has_more: r.has_more,
                    forwarded_latency: Some(r.latency),
                }
            }
        }
    }

    /// Records one invocation-level cache hit or miss for `id`.
    pub fn record_invocation(&mut self, id: ServiceId, hit: bool) {
        self.cache.record_invocation(id, hit);
    }

    /// Request-responses forwarded to `id` so far.
    pub fn calls_to(&self, id: ServiceId) -> u64 {
        self.calls.get(&id).copied().unwrap_or(0)
    }

    /// Per-service forwarded-call counts.
    pub fn calls(&self) -> &HashMap<ServiceId, u64> {
        &self.calls
    }

    /// Total request-responses forwarded so far.
    pub fn total_calls(&self) -> u64 {
        self.calls.values().sum()
    }

    /// Summed simulated latency of all forwarded calls.
    pub fn total_latency(&self) -> f64 {
        self.latency_sum
    }

    /// Invocation-level cache statistics for `id`.
    pub fn cache_stats(&self, id: ServiceId) -> CacheStats {
        self.cache.stats(id)
    }

    /// Marks the execution as failed; the first error wins.
    pub fn poison(&mut self, err: ExecError) {
        self.error.get_or_insert(err);
    }

    /// The recorded error, if any, without clearing it.
    pub fn error(&self) -> Option<&ExecError> {
        self.error.as_ref()
    }

    /// Takes the recorded error, if any.
    pub fn take_error(&mut self) -> Option<ExecError> {
        self.error.take()
    }
}

/// Shared access to a [`ServiceGateway`] — the one generic the operators
/// need, so the same [`Invoke`](crate::operator::Invoke) code runs
/// single-threaded and multi-threaded.
pub trait GatewayHandle: Clone {
    /// Runs `f` with exclusive access to the gateway.
    fn with<R>(&self, f: impl FnOnce(&mut ServiceGateway) -> R) -> R;
}

/// Single-threaded gateway sharing for the materialised and pull
/// drivers.
#[derive(Clone)]
pub struct LocalGateway(Rc<RefCell<ServiceGateway>>);

impl LocalGateway {
    /// Wraps a gateway.
    pub fn new(gateway: ServiceGateway) -> Self {
        LocalGateway(Rc::new(RefCell::new(gateway)))
    }
}

impl GatewayHandle for LocalGateway {
    fn with<R>(&self, f: impl FnOnce(&mut ServiceGateway) -> R) -> R {
        f(&mut self.0.borrow_mut())
    }
}

/// Thread-safe gateway sharing for the real-thread dataflow engine.
#[derive(Clone)]
pub struct SharedGateway(Arc<Mutex<ServiceGateway>>);

impl SharedGateway {
    /// Wraps a gateway.
    pub fn new(gateway: ServiceGateway) -> Self {
        SharedGateway(Arc::new(Mutex::new(gateway)))
    }
}

impl GatewayHandle for SharedGateway {
    fn with<R>(&self, f: impl FnOnce(&mut ServiceGateway) -> R) -> R {
        f(&mut self.0.lock().expect("gateway lock poisoned"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdq_model::binding::ApChoice;
    use mdq_model::examples::{ATOM_CONF, ATOM_FLIGHT, ATOM_HOTEL, ATOM_WEATHER};
    use mdq_plan::builder::{build_plan, StrategyRule};
    use mdq_plan::poset::Poset;
    use mdq_services::domains::travel::travel_world;

    fn plan_o(world: &mdq_services::domains::travel::TravelWorld) -> Plan {
        let poset = Poset::from_pairs(
            4,
            &[
                (ATOM_CONF, ATOM_WEATHER),
                (ATOM_WEATHER, ATOM_FLIGHT),
                (ATOM_WEATHER, ATOM_HOTEL),
            ],
        )
        .expect("valid");
        build_plan(
            Arc::new(world.query.clone()),
            &world.schema,
            ApChoice(vec![0, 0, 0, 0]),
            poset,
            (0..4).collect(),
            &StrategyRule::default(),
        )
        .expect("builds")
    }

    #[test]
    fn missing_service_fails_at_construction() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let empty = ServiceRegistry::new();
        let err = ServiceGateway::new(&plan, &w.schema, &empty, CacheSetting::OneCall)
            .expect_err("nothing registered");
        assert!(matches!(err, ExecError::MissingService(_)));
    }

    #[test]
    fn forwarding_counts_calls_and_latency() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let mut g = ServiceGateway::new(&plan, &w.schema, &w.registry, CacheSetting::OneCall)
            .expect("builds");
        let key = vec![Value::str("DB")];
        let first = g.fetch_page(w.ids.conf, 0, &key, 0);
        assert!(first.forwarded_latency.is_some());
        assert_eq!(g.calls_to(w.ids.conf), 1);
        let again = g.fetch_page(w.ids.conf, 0, &key, 0);
        assert!(again.forwarded_latency.is_none(), "served from cache");
        assert_eq!(g.calls_to(w.ids.conf), 1, "no extra forwarding");
        assert_eq!(again.tuples.len(), first.tuples.len());
        assert!(g.total_latency() > 0.0);
    }

    #[test]
    fn poison_keeps_first_error() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let mut g = ServiceGateway::new(&plan, &w.schema, &w.registry, CacheSetting::NoCache)
            .expect("builds");
        g.poison(ExecError::UnboundInput {
            service: "a".into(),
        });
        g.poison(ExecError::UnboundInput {
            service: "b".into(),
        });
        match g.take_error() {
            Some(ExecError::UnboundInput { service }) => assert_eq!(service, "a"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(g.take_error().is_none());
    }
}
