//! The service gateway — the *single* invocation path of the engine.
//!
//! Every executor (stage-materialised, pull-based top-k, parallel
//! dispatch, real threads) drives its service calls through one
//! [`ServiceGateway`]. The gateway owns:
//!
//! * **registry lookup** — runtime services are resolved once, up front,
//!   so a missing registration surfaces as
//!   [`ExecError::MissingService`] before any call is made;
//! * **paging** — page requests are forwarded in order and accounted as
//!   individual request-responses (the unit of every cost metric), and
//!   runs of already-cached pages are served in one batched probe
//!   ([`ServiceGateway::fetch_page_run`]) so the batched operator
//!   kernel pays one lock acquisition per run, not per tuple;
//! * **admission control** — an optional per-query *call budget*: once a
//!   query has forwarded that many request-responses, further fetches are
//!   refused and the execution fails with
//!   [`ExecError::CallBudgetExhausted`].
//!
//! * **resilience** — services may fault
//!   ([`ServiceFault`]): the
//!   gateway retries each page under a per-service [`RetryPolicy`]
//!   (bounded attempts, deterministic backoff accounting in simulated
//!   seconds, call-budget aware), and when retries exhaust it *degrades*
//!   the page instead of failing the query — the execution completes
//!   with [`PartialResults`] naming the degraded services and their
//!   [`FaultStats`].
//!
//! Cache and accounting live one level down, in a [`SharedServiceState`]
//! — but no longer behind one mutex. The shared state is **partitioned**
//! so concurrent executions stop serializing each other:
//!
//! * the §5.1 [`PageCache`] is split into independently locked *shards*,
//!   routed by `(service, input-key)` hash; single-flight page
//!   deduplication and the failed-page memo (a page whose retries
//!   exhausted is published so single-flight waiters wake with the fault
//!   instead of hanging or re-fetching) live with their shard, so two
//!   queries touching different invocations never contend;
//! * the per-service concurrency limit has its own tiny flow-control
//!   lock, held only to acquire or release a slot — never across a
//!   fetch;
//! * the sub-result store (materialized invoke prefixes) has its own
//!   lock and condition variable;
//! * cumulative call/latency/fault/observation accounting accumulates in
//!   per-gateway cells (`crate::accounting`) and is merged on
//!   snapshot, so metrics never serialize the page path at all.
//!
//! A stand-alone execution owns a private state
//! ([`ServiceGateway::new`] — the paper's one-query-at-a-time setting);
//! the `mdq-runtime` serving layer hands *one* `Arc`-shared state to
//! every concurrent query ([`ServiceGateway::with_shared`]), so pages
//! fetched by one query are hits for the next and service-call
//! accounting spans the whole workload.
//!
//! Drivers differ only in *how* they share the gateway:
//! [`LocalGateway`] (single-threaded, `Rc<RefCell>`) for the
//! materialised and pull executors, [`SharedGateway`] (`Arc<Mutex>`) for
//! the real-thread dataflow engine. Both implement [`GatewayHandle`],
//! the access trait the operators are generic over.

use crate::accounting::{Accounting, AcctCell};
use crate::binding::Binding;
use crate::cache::{CacheSetting, CacheStats, PageCache, PageLookup};
use crate::operator::ExecError;
use mdq_cost::divergence::ObservedService;
use mdq_cost::shared::SharedWorkOracle;
use mdq_model::fingerprint::SubplanSignature;
use mdq_model::query::VarId;
use mdq_model::schema::{Schema, ServiceId};
use mdq_model::value::{Tuple, Value};
use mdq_obs::histogram::{Histogram, LatencySummary, SERVICE_LATENCY_BOUNDS};
use mdq_obs::recorder::{QueryTrace, TraceRecorder};
use mdq_obs::span::{OperatorStats, SpanKind};
use mdq_plan::dag::Plan;
use mdq_services::registry::ServiceRegistry;
use mdq_services::service::{Service, ServiceFault};
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Condvar, Mutex};

/// Bounded-retry policy for faulted service calls.
///
/// Backoff is *accounted*, not slept: the simulated seconds of each
/// wait (`base_backoff · multiplier^attempt`, or the provider's
/// `retry_after` when larger) are charged to the page's forwarded
/// latency and recorded in [`FaultStats::backoff_seconds`], keeping
/// chaos runs deterministic and wall-clock free.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Retries allowed after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Simulated seconds waited before the first retry.
    pub base_backoff: f64,
    /// Backoff growth factor per further retry.
    pub multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff: 0.5,
            multiplier: 2.0,
        }
    }
}

impl RetryPolicy {
    /// No retries: every fault immediately degrades its page.
    pub const NONE: RetryPolicy = RetryPolicy {
        max_retries: 0,
        base_backoff: 0.0,
        multiplier: 1.0,
    };

    /// `retries` attempts with the default backoff schedule.
    pub fn retries(n: u32) -> Self {
        RetryPolicy {
            max_retries: n,
            ..RetryPolicy::default()
        }
    }

    /// Simulated seconds waited before retry number `attempt + 1`
    /// (after failed attempt index `attempt`).
    pub fn backoff(&self, attempt: u32) -> f64 {
        self.base_backoff * self.multiplier.powi(attempt.min(30) as i32)
    }
}

/// Per-service fault accounting, kept both per execution (in the
/// [`ServiceGateway`]) and cumulatively (in the
/// [`SharedServiceState`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultStats {
    /// Attempts that came back as provider errors.
    pub errors: u64,
    /// Attempts that timed out.
    pub timeouts: u64,
    /// Attempts that were throttled.
    pub rate_limited: u64,
    /// Retries issued after faulted attempts.
    pub retries: u64,
    /// Simulated seconds of backoff accounted before those retries.
    pub backoff_seconds: f64,
    /// Pages given up on after exhausting the retry budget.
    pub exhausted: u64,
}

impl FaultStats {
    /// Faulted attempts of any kind.
    pub fn total_faults(&self) -> u64 {
        self.errors + self.timeouts + self.rate_limited
    }

    pub(crate) fn classify(&mut self, fault: &ServiceFault) {
        match fault {
            ServiceFault::Error { .. } => self.errors += 1,
            ServiceFault::Timeout { .. } => self.timeouts += 1,
            ServiceFault::RateLimited { .. } => self.rate_limited += 1,
        }
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &FaultStats) {
        self.errors += other.errors;
        self.timeouts += other.timeouts;
        self.rate_limited += other.rate_limited;
        self.retries += other.retries;
        self.backoff_seconds += other.backoff_seconds;
        self.exhausted += other.exhausted;
    }
}

/// One degraded service of a partially completed execution.
#[derive(Clone, Debug, PartialEq)]
pub struct DegradedService {
    /// Service name (matches the schema signature).
    pub service: String,
    /// The fault accounting of this execution against that service.
    pub stats: FaultStats,
    /// The fault that exhausted the last retry budget.
    pub last_fault: ServiceFault,
}

/// The outcome of an execution that survived degraded services: the
/// answers produced are valid but possibly incomplete, and this names
/// which services degraded (sorted by name) instead of poisoning the
/// whole query.
#[derive(Clone, Debug, PartialEq)]
pub struct PartialResults {
    /// Every service that had at least one page degrade, sorted by
    /// name.
    pub degraded: Vec<DegradedService>,
}

impl PartialResults {
    /// Whether `service` is among the degraded.
    pub fn names(&self, service: &str) -> bool {
        self.degraded.iter().any(|d| d.service == service)
    }
}

impl std::fmt::Display for PartialResults {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "partial results; degraded:")?;
        for d in &self.degraded {
            write!(f, " {} ({})", d.service, d.last_fault)?;
        }
        Ok(())
    }
}

/// One page of results, as served by the gateway (from cache or from the
/// service).
#[derive(Clone, Debug)]
pub struct PageFetch {
    /// The page's tuples, in rank order.
    pub tuples: Vec<Tuple>,
    /// Whether the service holds further pages for this invocation.
    pub has_more: bool,
    /// Summed simulated seconds this page's forwarding consumed —
    /// attempt latencies (faulted ones included) plus accounted
    /// backoff; `None` when the page was served from the client cache
    /// or the failed-page memo (no forwarding happened).
    pub forwarded_latency: Option<f64>,
    /// The fault that permanently degraded this page, once the retry
    /// budget was exhausted. The page is then empty and final
    /// (`has_more = false`): execution continues with partial results.
    pub fault: Option<ServiceFault>,
}

impl PageFetch {
    fn empty() -> Self {
        PageFetch {
            tuples: Vec::new(),
            has_more: false,
            forwarded_latency: None,
            fault: None,
        }
    }

    fn failed(fault: ServiceFault, forwarded_latency: Option<f64>) -> Self {
        PageFetch {
            tuples: Vec::new(),
            has_more: false,
            forwarded_latency,
            fault: Some(fault),
        }
    }
}

/// Releases a single-flight claim on its page shard, then wakes the
/// shard's waiters. Lives across the whole `try_fetch`-and-retry
/// sequence so the claim is released even if the service panics.
struct FlightGuard {
    shared: Arc<SharedServiceState>,
    shard: usize,
    id: ServiceId,
    key: Vec<Value>,
    page: u32,
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        let shard = &self.shared.shards[self.shard];
        {
            // this drop runs during unwind when a service panics:
            // tolerate a poisoned lock — a second panic here would
            // abort the process
            let mut inner = shard
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            inner
                .fetching
                .remove(&(self.id, std::mem::take(&mut self.key), self.page));
        }
        shard.changed.notify_all();
    }
}

/// A held per-service concurrency slot. Dropping it releases the slot
/// under the flow-control lock and wakes limit waiters.
struct FlowSlot {
    shared: Arc<SharedServiceState>,
    id: ServiceId,
}

impl Drop for FlowSlot {
    fn drop(&mut self) {
        {
            // tolerates poison for the same reason as `FlightGuard`:
            // this path runs during unwind
            let mut flow = self
                .shared
                .flow
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(n) = flow.get_mut(&self.id) {
                *n = n.saturating_sub(1);
            }
        }
        self.shared.flow_changed.notify_all();
    }
}

/// How many independently locked page shards an unbounded shared state
/// uses. A *bounded* page cache collapses to a single shard so the
/// capacity bound and LRU order stay exactly global (eviction decisions
/// must see every invocation key).
const PAGE_SHARDS: usize = 8;

/// One independently locked partition of the page-serving state: a
/// slice of the §5.1 [`PageCache`] plus the single-flight set and
/// failed-page memo for the invocations routed here.
struct PageShard {
    inner: Mutex<ShardInner>,
    /// Signalled when a flight claim on this shard is released —
    /// single-flight waiters park here.
    changed: Condvar,
}

/// The interior of one [`PageShard`].
struct ShardInner {
    cache: PageCache,
    /// Pages currently being fetched from a service (single-flight:
    /// concurrent demands for the same page wait instead of duplicating
    /// the request-response).
    fetching: HashSet<(ServiceId, Vec<Value>, u32)>,
    /// Pages whose retry budget exhausted, with the terminal fault.
    /// Published *before* the single-flight claim is released, so a
    /// waiter blocked on the failing leader wakes with the error
    /// instead of hanging or re-fetching the fault storm. Entries are
    /// held until [`SharedServiceState::clear_failed_pages`] — no
    /// execution re-probes a condemned page, so recovery after an
    /// outage is an explicit operator action.
    failed: HashMap<(ServiceId, Vec<Value>, u32), ServiceFault>,
}

impl ShardInner {
    /// Whether `(id, key, page)` is being fetched right now. A linear
    /// scan: the set is bounded by concurrent in-flight fetches, and
    /// probing it borrowed avoids cloning the key on every cache probe.
    fn contains_flight(&self, id: ServiceId, key: &[Value], page: u32) -> bool {
        self.fetching
            .iter()
            .any(|(i, k, p)| *i == id && *p == page && k.as_slice() == key)
    }

    /// The terminal fault of a permanently degraded page, if any.
    /// Iterated borrowed for the same reason as [`contains_flight`]:
    /// probing must not clone the key, and the memo stays small (one
    /// entry per page that exhausted its retries).
    ///
    /// [`contains_flight`]: ShardInner::contains_flight
    fn failed_for(&self, id: ServiceId, key: &[Value], page: u32) -> Option<&ServiceFault> {
        self.failed
            .iter()
            .find(|((i, k, p), _)| *i == id && *p == page && k.as_slice() == key)
            .map(|(_, f)| f)
    }
}

fn build_shards(setting: CacheSetting, capacity: usize) -> Box<[PageShard]> {
    // a bounded cache needs one shard to keep its LRU order and
    // capacity bound exactly global; unbounded (and disabled) caches
    // shard freely because no store ever looks across invocations
    let shards = if capacity == 0 || capacity == usize::MAX {
        PAGE_SHARDS
    } else {
        1
    };
    (0..shards)
        .map(|_| PageShard {
            inner: Mutex::new(ShardInner {
                cache: PageCache::with_capacity(setting, capacity),
                fetching: HashSet::new(),
                failed: HashMap::new(),
            }),
            changed: Condvar::new(),
        })
        .collect()
}

/// The invocation set a materialized prefix (or a standing query's
/// answers) depends on, as `(service, pattern, key)` — the unit the
/// refresh pass diffs against to decide what survived an epoch.
pub type InvocationFrontier = HashSet<(ServiceId, usize, Vec<Value>)>;

/// One materialized invoke prefix: the bindings its chain produced,
/// `Arc`-shared so a replay is a refcount bump, never a deep copy. The
/// publisher's variable list and variable-space width ride along so a
/// subscriber in the *same* space clones the `Arc` directly, and one in
/// a different space can remap.
struct SubResultEntry {
    rows: SubResultRows,
    /// The chain variables the rows bind, in the signature's canonical
    /// order (the publisher's numbering).
    vars: Arc<[VarId]>,
    /// Variable-space width of the publishing execution.
    nvars: usize,
    /// Forwarded request-responses the materializing execution spent
    /// producing this prefix — what a replay saves its subscriber.
    cost_calls: u64,
    /// LRU recency stamp.
    used: u64,
    /// The tenant that published the entry (`None` for untenanted
    /// executions) — the hook for per-tenant store quotas.
    tenant: Option<TenantId>,
    /// The invocations the prefix's rows were computed from, recorded
    /// only by frontier-enabled (standing) publishers. `None` means the
    /// provenance is unknown: ad-hoc entries replay fine within an
    /// epoch but can never survive a refresh pass, and a standing
    /// replay must skip them (its own frontier would be incomplete).
    frontier: Option<Arc<InvocationFrontier>>,
}

/// The sub-result store's interior (guarded by its own lock — the page
/// shards never wait on a materialization and vice versa).
struct SubResultInner {
    /// Max materialized prefixes held (`0` disables the store).
    capacity: usize,
    tick: u64,
    entries: HashMap<SubplanSignature, SubResultEntry>,
    /// Signatures currently being materialized (single-flight: a query
    /// whose prefix is being computed waits and replays, instead of
    /// duplicating the chain's service calls).
    computing: HashSet<SubplanSignature>,
    stats: SubResultStats,
}

impl SubResultInner {
    fn new(capacity: usize) -> Self {
        SubResultInner {
            capacity,
            tick: 0,
            entries: HashMap::new(),
            computing: HashSet::new(),
            stats: SubResultStats::default(),
        }
    }
}

/// Counters of the signature-keyed sub-result store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubResultStats {
    /// Executions that replayed a materialized prefix.
    pub hits: u64,
    /// Executions whose chain had no materialized prefix to replay.
    pub misses: u64,
    /// Materialized prefixes dropped by the LRU bound.
    pub evictions: u64,
    /// Summed materializing cost of every replayed entry — the calls a
    /// cold, uncached subscriber would have forwarded to produce the
    /// prefix itself (an upper bound on the actual saving when the
    /// page cache would have absorbed part of the work).
    pub calls_saved: u64,
    /// Prefixes currently materialized.
    pub entries: u64,
    /// Materialized prefixes a tenant's own quota displaced (the
    /// publishing tenant's least-recent entry, never another
    /// tenant's — see [`SharedServiceState::set_tenant_sub_quota`]).
    pub quota_evictions: u64,
    /// Materialized prefixes dropped wholesale by refresh passes
    /// ([`SharedServiceState::invalidate_sub_results`]) — staleness,
    /// not capacity pressure.
    pub invalidated: u64,
    /// Materialized prefixes a refresh pass kept alive because every
    /// invocation they depend on came through the epoch unchanged
    /// ([`SharedServiceState::retain_sub_results`]).
    pub retained: u64,
}

/// The `Arc`-shared bindings of one materialized prefix.
pub(crate) type SubResultRows = Arc<Vec<Binding>>;

/// A materialized prefix handed to a subscriber for replay.
pub(crate) struct ReplayEntry {
    /// Chain level (1-based) the prefix covers.
    pub level: usize,
    /// The prefix's bindings, `Arc`-shared with the store.
    pub rows: SubResultRows,
    /// The publisher's chain variables, in canonical order.
    pub vars: Arc<[VarId]>,
    /// The publisher's variable-space width.
    pub nvars: usize,
    /// Forwarded calls the publisher spent producing the prefix.
    pub cost_calls: u64,
    /// The invocations the prefix was computed from (`None` for ad-hoc
    /// entries). A frontier-enabled subscriber merges this into its own
    /// frontier so replayed dependencies are still tracked.
    pub frontier: Option<Arc<InvocationFrontier>>,
}

/// What [`SharedServiceState::resolve_prefixes`] decided for one
/// execution's invoke-prefix chain.
pub(crate) enum PrefixResolution {
    /// The store is disabled — execute the plan as compiled.
    Disabled,
    /// Replay and/or materialize.
    Resolved {
        /// The longest materialized prefix to replay, if any.
        replay: Option<ReplayEntry>,
        /// Chain levels (1-based) this execution claimed for
        /// materialization: it must publish or abandon every one.
        claimed: Vec<usize>,
    },
}

/// A tenant identifier as the shared state accounts it. The serving
/// layer (`mdq-runtime`) owns the name→id mapping; down here a tenant
/// is just a key for budget and quota accounting.
pub type TenantId = u32;

/// One tenant's cumulative gateway-side accounting: forwarded calls
/// charged against an optional budget. Shared by every gateway
/// executing for the tenant, so the budget is enforced exactly across
/// concurrent executions (charges are compare-and-swap reservations —
/// the counter can never pass the budget).
pub struct TenantCell {
    /// Request-responses forwarded for this tenant, all executions.
    calls: AtomicU64,
    /// Cumulative forwarded-call budget; `u64::MAX` = unlimited.
    budget: AtomicU64,
    /// Max sub-result entries this tenant may hold materialized;
    /// `usize::MAX` = unlimited, `0` = the tenant never publishes.
    sub_quota: AtomicU64,
}

impl TenantCell {
    fn new() -> Self {
        TenantCell {
            calls: AtomicU64::new(0),
            budget: AtomicU64::new(u64::MAX),
            sub_quota: AtomicU64::new(u64::MAX),
        }
    }

    /// Forwarded calls charged so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(AtomicOrdering::Relaxed)
    }

    /// The cumulative call budget, if bounded.
    pub fn budget(&self) -> Option<u64> {
        match self.budget.load(AtomicOrdering::Relaxed) {
            u64::MAX => None,
            b => Some(b),
        }
    }

    /// Whether at least one further forwarded call fits the budget.
    pub fn has_room(&self) -> bool {
        self.calls.load(AtomicOrdering::Relaxed) < self.budget.load(AtomicOrdering::Relaxed)
    }

    /// Reserves one forwarded call against the budget. Exact under
    /// concurrency: the compare-and-swap loop means `calls` can never
    /// exceed the budget, no matter how many executions race.
    fn try_charge(&self) -> bool {
        let budget = self.budget.load(AtomicOrdering::Relaxed);
        self.calls
            .fetch_update(AtomicOrdering::Relaxed, AtomicOrdering::Relaxed, |n| {
                (n < budget).then_some(n + 1)
            })
            .is_ok()
    }
}

/// Cross-query shared execution state: the sharded client [`PageCache`]
/// with per-shard single-flight deduplication, the flow-control lock
/// enforcing per-service concurrency limits, the sub-result store, and
/// the merge-on-read accounting registry.
///
/// Every [`ServiceGateway`] sits on top of one of these. A private state
/// per execution reproduces the engine's historical behaviour exactly;
/// one state `Arc`-shared by many concurrent executions is what turns
/// the §5.1 cache into a *server-side* cache amortised across a
/// workload.
pub struct SharedServiceState {
    /// Independently locked page-serving partitions, routed by
    /// `(service, input-key)` hash.
    shards: Box<[PageShard]>,
    /// Request-responses currently in flight per service — only
    /// consulted when `per_service_limit > 0`, and only ever locked to
    /// acquire or release a slot, never across a fetch.
    flow: Mutex<HashMap<ServiceId, usize>>,
    flow_changed: Condvar,
    /// The signature-keyed sub-result store, behind its own lock.
    sub: Mutex<SubResultInner>,
    sub_changed: Condvar,
    /// Per-tenant budget/usage cells, resolved once per gateway — the
    /// hot path only ever touches the tenant's own atomics.
    tenants: Mutex<HashMap<TenantId, Arc<TenantCell>>>,
    /// Merge-on-read cumulative accounting (see [`crate::accounting`]).
    acct: Accounting,
    setting: CacheSetting,
    /// Max request-responses in flight per service; `0` = unlimited.
    per_service_limit: usize,
    /// Retry policy applied when a service has no override.
    retry: RetryPolicy,
    /// Per-service retry-policy overrides (immutable after build).
    retry_overrides: HashMap<ServiceId, RetryPolicy>,
    /// Span-trace recorder, when attached: every gateway built over
    /// this state then registers its own track (per-worker buffer) and
    /// records typed spans. `None` (the default) keeps the hot path at
    /// a single branch per record site.
    trace: Mutex<Option<Arc<TraceRecorder>>>,
}

/// Occupancy and eviction counters of one independently locked page
/// shard — shard-skew made observable after the cache split.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PageShardStats {
    /// Distinct invocation keys memoized in this shard.
    pub entries: u64,
    /// Invocation entries this shard dropped to respect the capacity
    /// bound.
    pub evictions: u64,
    /// Pages this shard memoizes as permanently degraded.
    pub failed_pages: u64,
}

impl std::fmt::Debug for SharedServiceState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let merged = self.acct.merged();
        f.debug_struct("SharedServiceState")
            .field("setting", &self.setting)
            .field("per_service_limit", &self.per_service_limit)
            .field("shards", &self.shards.len())
            .field("calls", &merged.calls)
            .field("latency_sum", &merged.latency_sum)
            .finish()
    }
}

impl SharedServiceState {
    /// A fresh state with the given cache setting and per-service
    /// concurrency limit (`0` = unlimited). The page cache is unbounded
    /// and the sub-result store disabled — the PR 2 serving behaviour;
    /// see [`SharedServiceState::with_page_capacity`] and
    /// [`SharedServiceState::with_sub_results`].
    pub fn new(setting: CacheSetting, per_service_limit: usize) -> Self {
        SharedServiceState {
            shards: build_shards(setting, usize::MAX),
            flow: Mutex::new(HashMap::new()),
            flow_changed: Condvar::new(),
            sub: Mutex::new(SubResultInner::new(0)),
            sub_changed: Condvar::new(),
            tenants: Mutex::new(HashMap::new()),
            acct: Accounting::default(),
            setting,
            per_service_limit,
            retry: RetryPolicy::default(),
            retry_overrides: HashMap::new(),
            trace: Mutex::new(None),
        }
    }

    /// Attaches (or detaches, with `None`) a span-trace recorder.
    /// Callable after sharing: gateways built from then on register a
    /// track and record spans; existing gateways are unaffected.
    pub fn set_trace(&self, recorder: Option<Arc<TraceRecorder>>) {
        *self.trace.lock().expect("trace slot lock") = recorder;
    }

    /// Builder-style [`SharedServiceState::set_trace`].
    pub fn with_trace(self, recorder: Arc<TraceRecorder>) -> Self {
        self.set_trace(Some(recorder));
        self
    }

    /// The attached span-trace recorder, if any.
    pub fn trace_recorder(&self) -> Option<Arc<TraceRecorder>> {
        self.trace.lock().expect("trace slot lock").clone()
    }

    /// Bounds the shared page cache to `capacity` distinct invocation
    /// keys (`0` disables client-side page caching; `usize::MAX` keeps
    /// it unbounded). Builder style, before sharing. A bounded cache
    /// collapses to a single shard so eviction order stays globally
    /// exact.
    pub fn with_page_capacity(mut self, capacity: usize) -> Self {
        self.shards = build_shards(self.setting, capacity);
        self
    }

    /// Enables the signature-keyed sub-result store with room for
    /// `capacity` materialized invoke prefixes (`0` — the default —
    /// disables cross-query sub-result sharing). Builder style, before
    /// sharing.
    pub fn with_sub_results(mut self, capacity: usize) -> Self {
        self.sub = Mutex::new(SubResultInner::new(capacity));
        self
    }

    /// Sets the default retry policy (builder style, before sharing).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Overrides the retry policy of one service (builder style,
    /// before sharing).
    pub fn with_service_retry(mut self, id: ServiceId, retry: RetryPolicy) -> Self {
        self.retry_overrides.insert(id, retry);
        self
    }

    /// The retry policy in force for `id`.
    pub fn retry_policy(&self, id: ServiceId) -> RetryPolicy {
        self.retry_overrides.get(&id).copied().unwrap_or(self.retry)
    }

    /// The cache setting this state was built with.
    pub fn setting(&self) -> CacheSetting {
        self.setting
    }

    /// How many independently locked page shards this state runs.
    pub fn page_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard an invocation's pages are routed to. Under `OneCall`
    /// the key is excluded from the hash: that setting keeps one cached
    /// invocation *per service*, and replacement is only exact when
    /// every key of a service lands on the same shard.
    fn shard_idx(&self, id: ServiceId, key: &[Value]) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        let mut h = std::collections::hash_map::DefaultHasher::new();
        id.hash(&mut h);
        if !matches!(self.setting, CacheSetting::OneCall) {
            key.hash(&mut h);
        }
        (h.finish() % self.shards.len() as u64) as usize
    }

    /// Blocks until a concurrency slot for `id` is free, then claims it.
    fn acquire_slot(self: &Arc<Self>, id: ServiceId) -> FlowSlot {
        let mut flow = self.flow.lock().expect("flow-control lock");
        while flow.get(&id).copied().unwrap_or(0) >= self.per_service_limit {
            flow = self.flow_changed.wait(flow).expect("flow-control lock");
        }
        *flow.entry(id).or_insert(0) += 1;
        FlowSlot {
            shared: Arc::clone(self),
            id,
        }
    }

    /// Cumulative request-responses forwarded per service.
    pub fn calls(&self) -> HashMap<ServiceId, u64> {
        self.acct.merged().calls
    }

    /// Cumulative request-responses forwarded, all services.
    pub fn total_calls(&self) -> u64 {
        self.acct.merged().calls.values().sum()
    }

    /// Cumulative simulated latency of all forwarded calls.
    pub fn total_latency(&self) -> f64 {
        self.acct.merged().latency_sum
    }

    /// Cumulative fault accounting per service, across every execution
    /// sharing this state.
    pub fn fault_stats(&self) -> HashMap<ServiceId, FaultStats> {
        self.acct.merged().faults
    }

    /// Cumulative fault accounting, all services.
    pub fn total_fault_stats(&self) -> FaultStats {
        let merged = self.acct.merged();
        let mut total = FaultStats::default();
        for s in merged.faults.values() {
            total.merge(s);
        }
        total
    }

    /// Snapshot of the cumulative per-service observations (tuples,
    /// latency and faults of every forwarded call) across all
    /// executions sharing this state.
    ///
    /// This is the serving layer's substitute for a sampling-profiler
    /// pass: feed the snapshot to
    /// [`refresh_profiles`](mdq_cost::divergence::refresh_profiles) to
    /// seed or re-seed the schema's [`ServiceProfile`]s from live
    /// gateway accounting.
    ///
    /// [`ServiceProfile`]: mdq_model::schema::ServiceProfile
    pub fn observed_snapshot(&self) -> HashMap<ServiceId, ObservedService> {
        self.acct.merged().observed
    }

    /// Pages currently memoized as permanently degraded.
    pub fn failed_pages(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.inner.lock().expect("page shard lock").failed.len())
            .sum()
    }

    /// Forgets every memoized page failure, returning how many were
    /// dropped. The memo is deliberately held until cleared — nothing
    /// re-probes a condemned page, so nothing can organically heal it —
    /// which makes this the recovery lever for a long-lived state after
    /// a service outage ends (re-exposed as
    /// `QueryServer::forget_failed_pages` in `mdq-runtime`).
    pub fn clear_failed_pages(&self) -> usize {
        let mut n = 0;
        for shard in self.shards.iter() {
            let mut inner = shard.inner.lock().expect("page shard lock");
            n += inner.failed.len();
            inner.failed.clear();
        }
        n
    }

    /// Cumulative invocation-level cache statistics for `id`.
    pub fn cache_stats(&self, id: ServiceId) -> CacheStats {
        self.acct
            .merged()
            .invocations
            .get(&id)
            .copied()
            .unwrap_or_default()
    }

    /// Cumulative invocation-level cache statistics, all services.
    pub fn total_cache_stats(&self) -> CacheStats {
        let merged = self.acct.merged();
        let mut total = CacheStats::default();
        for s in merged.invocations.values() {
            total.hits += s.hits;
            total.misses += s.misses;
        }
        total
    }

    /// Page-cache invocation entries dropped to respect the configured
    /// capacity bound, summed across shards.
    pub fn page_cache_evictions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.inner.lock().expect("page shard lock").cache.evictions())
            .sum()
    }

    /// Cumulative simulated latency of forwarded calls, per service —
    /// read off the per-service observations, which accumulate at
    /// exactly the sites the total does, so
    /// `Σ per_service_latency == total_latency` always.
    pub fn per_service_latency(&self) -> HashMap<ServiceId, f64> {
        self.acct
            .merged()
            .observed
            .iter()
            .map(|(id, o)| (*id, o.latency))
            .collect()
    }

    /// Count + mean + max (and exact total) of the per-attempt
    /// simulated latency, per service — derived from the observations'
    /// fixed-bucket histograms, and reconciling the same way as
    /// [`SharedServiceState::per_service_latency`]:
    /// `Σ total == total_latency` exactly.
    pub fn per_service_latency_summary(&self) -> HashMap<ServiceId, LatencySummary> {
        self.acct
            .merged()
            .observed
            .iter()
            .map(|(id, o)| (*id, o.latency_summary()))
            .collect()
    }

    /// The per-attempt simulated-latency distribution across every
    /// service, as one fixed-bucket [`Histogram`].
    pub fn service_latency_histogram(&self) -> Histogram {
        let mut h = Histogram::new(&SERVICE_LATENCY_BOUNDS);
        for o in self.acct.merged().observed.values() {
            h.merge(&o.latency_histogram());
        }
        h
    }

    /// Occupancy, eviction and failed-page counters of every page
    /// shard, in shard order — the per-shard view behind the global
    /// [`SharedServiceState::page_cache_evictions`] sum.
    pub fn page_shard_stats(&self) -> Vec<PageShardStats> {
        self.shards
            .iter()
            .map(|s| {
                let inner = s.inner.lock().expect("page shard lock");
                PageShardStats {
                    entries: inner.cache.entries() as u64,
                    evictions: inner.cache.evictions(),
                    failed_pages: inner.failed.len() as u64,
                }
            })
            .collect()
    }

    /// Registers a fresh accounting cell for a gateway over this state.
    pub(crate) fn register_cell(&self) -> Arc<AcctCell> {
        self.acct.register()
    }

    /// Folds a dropping gateway's accounting cell into the retired
    /// totals.
    pub(crate) fn retire_cell(&self, cell: &Arc<AcctCell>) {
        self.acct.retire(cell)
    }

    /// The budget/usage cell of `tenant`, created (unlimited) on first
    /// use. Gateways resolve their cell once, at construction — the
    /// per-call charge is then a pair of atomics, no map lookup.
    pub fn tenant_cell(&self, tenant: TenantId) -> Arc<TenantCell> {
        let mut tenants = self.tenants.lock().unwrap_or_else(|p| p.into_inner());
        Arc::clone(
            tenants
                .entry(tenant)
                .or_insert_with(|| Arc::new(TenantCell::new())),
        )
    }

    /// Sets (or clears, with `None`) the cumulative forwarded-call
    /// budget of `tenant`. Calls already charged stay charged: lowering
    /// a budget below the spend refuses every further call until the
    /// budget is raised again.
    pub fn set_tenant_budget(&self, tenant: TenantId, budget: Option<u64>) {
        self.tenant_cell(tenant)
            .budget
            .store(budget.unwrap_or(u64::MAX), AtomicOrdering::Relaxed);
    }

    /// Bounds how many materialized sub-result entries `tenant` may
    /// hold in the store at once (`None` = unlimited, `Some(0)` = the
    /// tenant never publishes). Publishing at the quota evicts the
    /// tenant's *own* least-recent entry — one tenant's materializations
    /// can never crowd out another's beyond the global LRU bound.
    pub fn set_tenant_sub_quota(&self, tenant: TenantId, quota: Option<u64>) {
        self.tenant_cell(tenant)
            .sub_quota
            .store(quota.unwrap_or(u64::MAX), AtomicOrdering::Relaxed);
    }

    /// Forwarded calls charged to `tenant` so far (0 for a tenant never
    /// seen).
    pub fn tenant_calls(&self, tenant: TenantId) -> u64 {
        self.tenants
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&tenant)
            .map(|c| c.calls())
            .unwrap_or(0)
    }

    /// Whether `tenant` has room for at least one further forwarded
    /// call — the serving layer's cheap admission probe.
    pub fn tenant_has_room(&self, tenant: TenantId) -> bool {
        self.tenants
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&tenant)
            .map(|c| c.has_room())
            .unwrap_or(true)
    }

    /// Counters of the sub-result store (all zero while disabled).
    pub fn sub_result_stats(&self) -> SubResultStats {
        let sub = self.sub.lock().expect("sub-result lock");
        SubResultStats {
            entries: sub.entries.len() as u64,
            ..sub.stats
        }
    }

    /// Decides, for one execution whose chain carries `sigs` (level 1
    /// first), what to replay from the sub-result store and what the
    /// execution must materialize. Single-flight: when a wanted level
    /// is being materialized by a concurrent execution, this blocks
    /// until that level is published (then replays it) or abandoned
    /// (then claims it). Every claimed level must later be
    /// [`publish_sub_result`]ed or [`abandon_sub_results`]ed.
    ///
    /// With `materialize = false` the call is read-only: the longest
    /// already-materialized prefix still replays (free work is free),
    /// but nothing is claimed and nothing is waited for — the caller
    /// has no evidence anyone will reuse this prefix and must not pay
    /// the eager-drain cost.
    ///
    /// With `frontier_only = true` only entries that carry a recorded
    /// [`InvocationFrontier`] are eligible to replay: a standing query
    /// replaying a provenance-less entry would record an incomplete
    /// frontier and miss refreshes. Frontier-less levels are still
    /// claimable, so the standing execution re-materializes them *with*
    /// provenance (overwriting the ad-hoc entry on publish).
    ///
    /// [`publish_sub_result`]: SharedServiceState::publish_sub_result
    /// [`abandon_sub_results`]: SharedServiceState::abandon_sub_results
    pub(crate) fn resolve_prefixes(
        &self,
        sigs: &[SubplanSignature],
        materialize: bool,
        frontier_only: bool,
    ) -> PrefixResolution {
        let mut sub = self.sub.lock().expect("sub-result lock");
        if sub.capacity == 0 || sigs.is_empty() {
            return PrefixResolution::Disabled;
        }
        loop {
            let hit = (0..sigs.len()).rev().find(|&i| {
                sub.entries
                    .get(&sigs[i])
                    .is_some_and(|e| !frontier_only || e.frontier.is_some())
            });
            let from = hit.map(|i| i + 1).unwrap_or(0);
            if materialize && (from..sigs.len()).any(|i| sub.computing.contains(&sigs[i])) {
                // a concurrent execution is materializing a level we
                // want: wait for its publish/abandon, then re-resolve
                sub = self.sub_changed.wait(sub).expect("sub-result lock");
                continue;
            }
            let replay = match hit {
                Some(i) => {
                    sub.tick += 1;
                    let tick = sub.tick;
                    sub.stats.hits += 1;
                    let entry = sub.entries.get_mut(&sigs[i]).expect("present");
                    entry.used = tick;
                    let replay = ReplayEntry {
                        level: i + 1,
                        rows: Arc::clone(&entry.rows),
                        vars: Arc::clone(&entry.vars),
                        nvars: entry.nvars,
                        cost_calls: entry.cost_calls,
                        frontier: entry.frontier.clone(),
                    };
                    sub.stats.calls_saved += replay.cost_calls;
                    Some(replay)
                }
                None => {
                    sub.stats.misses += 1;
                    None
                }
            };
            let mut claimed = Vec::new();
            if materialize {
                for (i, sig) in sigs.iter().enumerate().skip(from) {
                    if sub.computing.insert(*sig) {
                        claimed.push(i + 1);
                    }
                }
            }
            return PrefixResolution::Resolved { replay, claimed };
        }
    }

    /// Publishes a materialized prefix under `sig`: releases the
    /// single-flight claim, stores the bindings (LRU-evicting when
    /// full) and wakes every waiter. `vars` is the chain's canonical
    /// variable list and `nvars` the publisher's variable-space width —
    /// a subscriber in the same space replays the `Arc` directly.
    /// `tenant` attributes the entry for per-tenant store quotas: a
    /// tenant at its quota evicts its *own* least-recent entry (never
    /// another tenant's), and a tenant with quota 0 releases the claim
    /// without storing at all.
    /// `frontier` records the invocations the rows were computed from;
    /// frontier-enabled (standing) publishers pass it so the entry can
    /// survive refresh passes and replay into other standing queries.
    #[allow(clippy::too_many_arguments)] // one parameter per entry fact
    pub(crate) fn publish_sub_result(
        &self,
        sig: SubplanSignature,
        rows: Vec<Binding>,
        vars: Arc<[VarId]>,
        nvars: usize,
        cost_calls: u64,
        tenant: Option<TenantId>,
        frontier: Option<Arc<InvocationFrontier>>,
    ) {
        // resolve the quota before taking the sub-result lock — the
        // tenant map and the store have independent locks, never nested
        let quota = tenant.map(|t| self.tenant_cell(t).sub_quota.load(AtomicOrdering::Relaxed));
        {
            let mut sub = self.sub.lock().expect("sub-result lock");
            sub.computing.remove(&sig);
            if sub.capacity > 0 && quota != Some(0) {
                if let (Some(tenant), Some(quota)) = (tenant, quota) {
                    let held = sub
                        .entries
                        .values()
                        .filter(|e| e.tenant == Some(tenant))
                        .count() as u64;
                    if held >= quota && !sub.entries.contains_key(&sig) {
                        if let Some(own_oldest) = sub
                            .entries
                            .iter()
                            .filter(|(_, e)| e.tenant == Some(tenant))
                            .min_by_key(|(_, e)| e.used)
                            .map(|(k, _)| *k)
                        {
                            sub.entries.remove(&own_oldest);
                            sub.stats.quota_evictions += 1;
                        }
                    }
                }
                if sub.entries.len() >= sub.capacity && !sub.entries.contains_key(&sig) {
                    if let Some(oldest) = sub
                        .entries
                        .iter()
                        .min_by_key(|(_, e)| e.used)
                        .map(|(k, _)| *k)
                    {
                        sub.entries.remove(&oldest);
                        sub.stats.evictions += 1;
                    }
                }
                sub.tick += 1;
                let used = sub.tick;
                sub.entries.insert(
                    sig,
                    SubResultEntry {
                        rows: Arc::new(rows),
                        vars,
                        nvars,
                        cost_calls,
                        used,
                        tenant,
                        frontier,
                    },
                );
            }
        }
        self.sub_changed.notify_all();
    }

    /// Releases single-flight claims without publishing (the
    /// materializing execution errored, exhausted its budget or saw a
    /// degraded page — a partial prefix must never replay to others).
    pub(crate) fn abandon_sub_results(&self, sigs: &[SubplanSignature]) {
        if sigs.is_empty() {
            return;
        }
        {
            let mut sub = self.sub.lock().expect("sub-result lock");
            for sig in sigs {
                sub.computing.remove(sig);
            }
        }
        self.sub_changed.notify_all();
    }

    // ---- standing-query support: frontier pins + refresh installs ----

    /// Takes one pin on `(id, key)` in the shared page cache on behalf
    /// of a live subscription frontier: the invocation's pages survive
    /// bounded-LRU eviction and [`invalidate_unpinned_pages`] until
    /// every pin is released. Refcounted, so overlapping frontiers
    /// compose.
    ///
    /// [`invalidate_unpinned_pages`]: SharedServiceState::invalidate_unpinned_pages
    pub fn pin_invocation(&self, id: ServiceId, key: &[Value]) {
        let shard = &self.shards[self.shard_idx(id, key)];
        shard
            .inner
            .lock()
            .expect("page shard lock")
            .cache
            .pin(id, key);
    }

    /// Releases one pin on `(id, key)`. Returns whether one was held.
    pub fn unpin_invocation(&self, id: ServiceId, key: &[Value]) -> bool {
        let shard = &self.shards[self.shard_idx(id, key)];
        shard
            .inner
            .lock()
            .expect("page shard lock")
            .cache
            .unpin(id, key)
    }

    /// Distinct invocations currently pinned, summed across shards.
    pub fn pinned_invocations(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.inner
                    .lock()
                    .expect("page shard lock")
                    .cache
                    .pinned_invocations()
            })
            .sum()
    }

    /// A copy of `(id, key)`'s cached pages and exhaustion flag without
    /// touching LRU recency — the snapshot a refresh driver tracks.
    pub fn export_invocation(
        &self,
        id: ServiceId,
        key: &[Value],
    ) -> Option<(Vec<Vec<Tuple>>, bool)> {
        let shard = &self.shards[self.shard_idx(id, key)];
        shard
            .inner
            .lock()
            .expect("page shard lock")
            .cache
            .export(id, key)
    }

    /// Installs a refreshed page set for `(id, key)` wholesale and
    /// forgets any failed-page memo entries of the invocation — the
    /// refresh observed the service answering, so prior condemnations
    /// are stale. Standing-query re-evaluations then read the new
    /// epoch's pages straight from the cache.
    pub fn install_invocation(
        &self,
        id: ServiceId,
        key: &[Value],
        pages: Vec<Vec<Tuple>>,
        exhausted: bool,
    ) {
        let shard = &self.shards[self.shard_idx(id, key)];
        let mut inner = shard.inner.lock().expect("page shard lock");
        inner.cache.replace(id, key, pages, exhausted);
        inner
            .failed
            .retain(|(i, k, _), _| !(*i == id && k.as_slice() == key));
    }

    /// Drops every *unpinned* cached invocation across all shards,
    /// returning how many were dropped. A refresh pass runs this first:
    /// pages outside any subscription frontier may predate the new
    /// epoch, and serving them would mix generations within one answer.
    pub fn invalidate_unpinned_pages(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.inner
                    .lock()
                    .expect("page shard lock")
                    .cache
                    .invalidate_unpinned()
            })
            .sum()
    }

    /// Drops every materialized sub-result entry (single-flight claims
    /// of in-flight materializations are left to their owners),
    /// returning how many entries were dropped. Materialized prefixes
    /// embed fetched pages, so a refresh pass invalidates them all —
    /// a stale prefix replayed into a standing query would silently
    /// resurrect the previous epoch.
    pub fn invalidate_sub_results(&self) -> u64 {
        let mut sub = self.sub.lock().expect("sub-result lock");
        let dropped = sub.entries.len() as u64;
        sub.entries.clear();
        sub.stats.invalidated += dropped;
        dropped
    }

    /// Epoch-scoped sub-result invalidation: keeps every entry whose
    /// recorded [`InvocationFrontier`] satisfies `retain` (typically
    /// "every invocation is still tracked and came through the refresh
    /// unchanged"), drops the rest — including all provenance-less
    /// entries, whose dependencies are unknown. Returns
    /// `(dropped, retained)` and bumps the matching stats.
    pub fn retain_sub_results(&self, retain: impl Fn(&InvocationFrontier) -> bool) -> (u64, u64) {
        let mut sub = self.sub.lock().expect("sub-result lock");
        let before = sub.entries.len() as u64;
        sub.entries
            .retain(|_, e| e.frontier.as_deref().is_some_and(&retain));
        let retained = sub.entries.len() as u64;
        let dropped = before - retained;
        sub.stats.invalidated += dropped;
        sub.stats.retained += retained;
        (dropped, retained)
    }
}

/// The serving layer's shared state *is* the optimizer's shared-work
/// oracle: a prefix counts as materialized when its rows are stored or
/// a concurrent execution is publishing them right now (it will be
/// free by the time a plan starting with it executes).
impl SharedWorkOracle for SharedServiceState {
    fn is_materialized(&self, sig: SubplanSignature) -> bool {
        let sub = self.sub.lock().expect("sub-result lock");
        sub.entries.contains_key(&sig) || sub.computing.contains(&sig)
    }
}

/// The single service-invocation and caching path of one execution.
///
/// Per-execution accounting (`calls_to`, `total_latency`, `cache_stats`,
/// the poisoned error, the call budget) lives here; the page cache and
/// cumulative accounting live in the [`SharedServiceState`] underneath,
/// which may be private to this execution or shared across a workload.
pub struct ServiceGateway {
    services: HashMap<ServiceId, Arc<dyn Service>>,
    shared: Arc<SharedServiceState>,
    /// This gateway's cell in the shared accounting registry: the hot
    /// path's only cumulative-accounting touch point, retired back into
    /// the shared totals on drop.
    acct: Arc<AcctCell>,
    calls: HashMap<ServiceId, u64>,
    latency_sum: f64,
    stats: HashMap<ServiceId, CacheStats>,
    budget: Option<u64>,
    /// The tenant this execution is attributed to, with its budget
    /// cell resolved once — every forwarded attempt is charged against
    /// it (reserve-then-forward, so concurrent executions of the same
    /// tenant can never overshoot the cumulative budget).
    tenant: Option<(TenantId, Arc<TenantCell>)>,
    error: Option<ExecError>,
    faults: HashMap<ServiceId, FaultStats>,
    /// Per-service observations of this execution's forwarded calls —
    /// what the adaptive drivers compare against the schema estimates.
    observed: HashMap<ServiceId, ObservedService>,
    /// Services with at least one degraded page, with the terminal
    /// fault observed (ordered, so partial results report stably).
    degraded: BTreeSet<ServiceId>,
    last_faults: HashMap<ServiceId, ServiceFault>,
    /// This execution's span track, when the shared state has a
    /// recorder attached (`None` costs one branch per record site).
    trace: Option<QueryTrace>,
    /// Per-plan-node runtime statistics (EXPLAIN ANALYZE): fetch-side
    /// fields accumulate here, attributed to [`Self::active_node`];
    /// row/batch fields are flushed in by the operators.
    node_stats: Vec<OperatorStats>,
    /// The plan node whose fetches the gateway is currently serving.
    active_node: Option<usize>,
    /// When enabled, every invocation this execution demanded —
    /// cache-served or forwarded — as `(service, pattern, key)`: the
    /// *frontier* a standing query's answers depend on. `None` (the
    /// default) keeps the hot path at one branch per page demand.
    frontier: Option<HashSet<(ServiceId, usize, Vec<Value>)>>,
}

impl std::fmt::Debug for ServiceGateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceGateway")
            .field("services", &self.services.keys().collect::<Vec<_>>())
            .field("calls", &self.calls)
            .field("latency_sum", &self.latency_sum)
            .field("budget", &self.budget)
            .field("error", &self.error)
            .finish()
    }
}

impl Drop for ServiceGateway {
    fn drop(&mut self) {
        self.shared.retire_cell(&self.acct);
    }
}

impl ServiceGateway {
    /// Builds a gateway for `plan` over a *private* state — the paper's
    /// one-query-at-a-time setting. Resolves every invoked service in
    /// the registry; fails fast when a registration is missing.
    pub fn new(
        plan: &Plan,
        schema: &Schema,
        registry: &ServiceRegistry,
        cache: CacheSetting,
    ) -> Result<Self, ExecError> {
        Self::with_shared(
            plan,
            schema,
            registry,
            Arc::new(SharedServiceState::new(cache, 0)),
            None,
        )
    }

    /// Builds a gateway for `plan` over an existing (typically
    /// `Arc`-shared, cross-query) state, with an optional per-query
    /// forwarded-call budget.
    pub fn with_shared(
        plan: &Plan,
        schema: &Schema,
        registry: &ServiceRegistry,
        shared: Arc<SharedServiceState>,
        budget: Option<u64>,
    ) -> Result<Self, ExecError> {
        let mut services = HashMap::new();
        for &atom in plan.atoms.iter() {
            let svc_id = plan.query.atoms[atom].service;
            let service = registry.get(svc_id).ok_or_else(|| {
                ExecError::MissingService(schema.service(svc_id).name.to_string())
            })?;
            services.insert(svc_id, Arc::clone(service));
        }
        let acct = shared.register_cell();
        let trace = shared.trace_recorder().map(|r| r.register("query"));
        Ok(ServiceGateway {
            services,
            shared,
            acct,
            calls: HashMap::new(),
            latency_sum: 0.0,
            stats: HashMap::new(),
            budget: budget.filter(|&b| b > 0),
            tenant: None,
            error: None,
            faults: HashMap::new(),
            observed: HashMap::new(),
            degraded: BTreeSet::new(),
            last_faults: HashMap::new(),
            trace,
            node_stats: vec![OperatorStats::default(); plan.nodes.len()],
            active_node: None,
            frontier: None,
        })
    }

    /// Starts recording this execution's invocation frontier: every
    /// `(service, pattern, key)` demanded from now on, whether served
    /// from cache or forwarded. Standing queries enable this before
    /// compiling so their dependency set is complete.
    pub fn enable_frontier(&mut self) {
        self.frontier.get_or_insert_with(HashSet::new);
    }

    /// Whether frontier recording is enabled.
    pub fn frontier_enabled(&self) -> bool {
        self.frontier.is_some()
    }

    /// The recorded invocation frontier (`None` unless enabled).
    pub fn frontier(&self) -> Option<&HashSet<(ServiceId, usize, Vec<Value>)>> {
        self.frontier.as_ref()
    }

    /// A snapshot of the recorded frontier so far (`None` unless
    /// enabled) — what a standing publisher attaches to a sub-result
    /// entry right after draining its level.
    pub fn frontier_snapshot(&self) -> Option<Arc<InvocationFrontier>> {
        self.frontier.as_ref().map(|f| Arc::new(f.clone()))
    }

    /// Merges `extra` invocations into the frontier, if enabled — how a
    /// replayed prefix's recorded dependencies stay tracked even though
    /// this execution never demanded them itself.
    pub fn extend_frontier(&mut self, extra: &InvocationFrontier) {
        if let Some(frontier) = &mut self.frontier {
            frontier.extend(extra.iter().cloned());
        }
    }

    /// Takes the recorded frontier, leaving recording enabled (empty).
    pub fn take_frontier(&mut self) -> Option<HashSet<(ServiceId, usize, Vec<Value>)>> {
        self.frontier.as_mut().map(std::mem::take)
    }

    /// Records one invocation demand on the frontier, if enabled.
    fn note_frontier(&mut self, id: ServiceId, pattern: usize, key: &[Value]) {
        if let Some(frontier) = &mut self.frontier {
            frontier.insert((id, pattern, key.to_vec()));
        }
    }

    /// The active cache setting.
    pub fn cache_setting(&self) -> CacheSetting {
        self.shared.setting()
    }

    /// The state underneath (shared across queries when this gateway was
    /// built with [`ServiceGateway::with_shared`]).
    pub fn shared_state(&self) -> &Arc<SharedServiceState> {
        &self.shared
    }

    /// Attributes this execution to `tenant`: every forwarded attempt
    /// is charged to the tenant's cumulative budget cell in the shared
    /// state, and exhaustion poisons the execution with
    /// [`ExecError::TenantBudgetExhausted`]. Must be set before the
    /// first fetch; calls already forwarded are not re-attributed.
    pub fn set_tenant(&mut self, tenant: TenantId) {
        let cell = self.shared.tenant_cell(tenant);
        self.tenant = Some((tenant, cell));
    }

    /// The tenant this execution is attributed to, if any.
    pub fn tenant_id(&self) -> Option<TenantId> {
        self.tenant.as_ref().map(|(t, _)| *t)
    }

    /// Serves page `page` of the invocation `(service, pattern, key)`:
    /// from the client cache when the setting allows, forwarding one
    /// request-response otherwise.
    ///
    /// Forwarding is subject to admission control (the per-query call
    /// budget — exhaustion poisons the execution and serves an empty
    /// page), single-flight deduplication (a page already being fetched
    /// by a concurrent execution is awaited, not re-requested), the
    /// per-service concurrency limit, and the per-service
    /// [`RetryPolicy`]: faulted attempts are retried with accounted
    /// backoff while the retry and call budgets allow; a page whose
    /// retries exhaust is memoized as failed and served as a degraded
    /// (empty, final) page — see [`ServiceGateway::partial_results`].
    pub fn fetch_page(
        &mut self,
        id: ServiceId,
        pattern: usize,
        key: &[Value],
        page: u32,
    ) -> PageFetch {
        self.note_frontier(id, pattern, key);
        let shared = Arc::clone(&self.shared);
        let shard_i = shared.shard_idx(id, key);
        let shard = &shared.shards[shard_i];
        let mut slot: Option<FlowSlot> = None;
        let mut inner = shard.inner.lock().expect("page shard lock");
        let guard = loop {
            match inner.cache.lookup(id, key, page) {
                PageLookup::Hit(tuples, has_more) => {
                    drop(inner);
                    drop(slot);
                    self.note_cached(id, 1);
                    return PageFetch {
                        tuples,
                        has_more,
                        forwarded_latency: None,
                        fault: None,
                    };
                }
                PageLookup::PastEnd => return PageFetch::empty(),
                PageLookup::Unknown => {}
            }
            // a page that already exhausted someone's retry budget is
            // served from the failed-page memo: no fault storm, and a
            // single-flight waiter woken by a failing leader lands here
            if let Some(fault) = inner.failed_for(id, key, page) {
                let fault = fault.clone();
                drop(inner);
                drop(slot);
                self.note_degraded(id, fault.clone());
                if let Some(t) = &self.trace {
                    t.instant(SpanKind::DegradedPage {
                        service: self.service_label(id),
                    });
                }
                return PageFetch::failed(fault, None);
            }
            // another execution is fetching this very page: wait for it,
            // then re-probe the cache (under `NoCache` the store is a
            // no-op and we fall through to forwarding our own request).
            // Any held concurrency slot is released first — slots count
            // forwarded fetches, not sleepers
            if inner.contains_flight(id, key, page) {
                slot = None;
                inner = shard.changed.wait(inner).expect("page shard lock");
                continue;
            }
            // admission control: the query's forwarded-call budget
            if let Some(budget) = self.budget {
                if self.total_calls() >= budget {
                    drop(inner);
                    drop(slot);
                    self.poison(ExecError::CallBudgetExhausted { budget });
                    return PageFetch::empty();
                }
            }
            // admission control: the tenant's cumulative budget (cheap
            // non-reserving probe — the actual reservation happens once
            // the single-flight claim is held, right before forwarding)
            if let Some((tenant, cell)) = &self.tenant {
                if !cell.has_room() {
                    let err = ExecError::TenantBudgetExhausted {
                        tenant: *tenant,
                        budget: cell.budget().unwrap_or(0),
                    };
                    drop(inner);
                    drop(slot);
                    self.poison(err);
                    return PageFetch::empty();
                }
            }
            // per-service concurrency limit: slots come from the
            // flow-control lock, never held together with a shard lock
            if shared.per_service_limit > 0 && slot.is_none() {
                drop(inner);
                slot = Some(shared.acquire_slot(id));
                inner = shard.inner.lock().expect("page shard lock");
                continue; // re-probe: the page may have landed meanwhile
            }
            inner.fetching.insert((id, key.to_vec(), page));
            drop(inner);
            // releases the claim and notifies, on return AND on unwind —
            // a panicking service must not wedge the waiters
            break FlightGuard {
                shared: Arc::clone(&shared),
                shard: shard_i,
                id,
                key: key.to_vec(),
                page,
            };
        };

        let service = Arc::clone(
            self.services
                .get(&id)
                .expect("gateway resolved all plan services at construction"),
        );
        // reserve the first attempt against the tenant budget *before*
        // forwarding: a CAS on the cell, so racing executions of one
        // tenant cannot collectively overshoot. Losing the race releases
        // the flight claim (guard drop wakes the waiters).
        if let Some((tenant, cell)) = &self.tenant {
            if !cell.try_charge() {
                let err = ExecError::TenantBudgetExhausted {
                    tenant: *tenant,
                    budget: cell.budget().unwrap_or(0),
                };
                drop(guard);
                drop(slot);
                self.poison(err);
                return PageFetch::empty();
            }
        }
        let policy = shared.retry_policy(id);
        let mut attempt: u32 = 0;
        // simulated seconds this page consumed: attempt latencies
        // (faulted ones included) plus accounted backoff
        let mut spent = 0.0;
        loop {
            match service.try_fetch(pattern, key, page) {
                Ok(r) => {
                    spent += r.latency;
                    self.acct.record_ok(id, r.tuples.len(), r.latency);
                    {
                        let mut inner = shard.inner.lock().expect("page shard lock");
                        inner
                            .cache
                            .store(id, key, page, r.tuples.clone(), r.has_more);
                    }
                    drop(guard);
                    drop(slot);
                    *self.calls.entry(id).or_insert(0) += 1;
                    self.latency_sum += r.latency;
                    self.observed
                        .entry(id)
                        .or_default()
                        .record_ok(r.tuples.len(), r.latency);
                    if let Some(ns) = self.node_acc() {
                        ns.calls += 1;
                        ns.sim_seconds += r.latency;
                    }
                    if let Some(t) = &self.trace {
                        t.record(
                            SpanKind::ServiceCall {
                                service: self.service_label(id),
                                page: u64::from(page),
                                tuples: r.tuples.len() as u64,
                                ok: true,
                            },
                            r.latency,
                        );
                    }
                    return PageFetch {
                        tuples: r.tuples,
                        has_more: r.has_more,
                        forwarded_latency: Some(spent),
                        fault: None,
                    };
                }
                Err(fault) => {
                    let fault_latency = fault.latency();
                    spent += fault_latency;
                    *self.calls.entry(id).or_insert(0) += 1;
                    self.latency_sum += fault_latency;
                    self.observed
                        .entry(id)
                        .or_default()
                        .record_fault(fault_latency);
                    let local = self.faults.entry(id).or_default();
                    local.classify(&fault);
                    // a retry is allowed while the policy, the
                    // per-query call budget and the tenant budget all
                    // have room; the tenant charge is a reservation, so
                    // it is only attempted once the cheaper gates pass
                    let budget_ok = self
                        .budget
                        .map(|b| self.calls.values().sum::<u64>() < b)
                        .unwrap_or(true);
                    let retrying = attempt < policy.max_retries
                        && budget_ok
                        && self
                            .tenant
                            .as_ref()
                            .map(|(_, cell)| cell.try_charge())
                            .unwrap_or(true);
                    let wait = if retrying {
                        let base = policy.backoff(attempt);
                        let wait = match &fault {
                            ServiceFault::RateLimited { retry_after, .. } => retry_after.max(base),
                            _ => base,
                        };
                        local.retries += 1;
                        local.backoff_seconds += wait;
                        spent += wait;
                        Some(wait)
                    } else {
                        local.exhausted += 1;
                        None
                    };
                    if let Some(ns) = self.node_acc() {
                        ns.calls += 1;
                        ns.sim_seconds += fault_latency;
                        if let Some(w) = wait {
                            ns.retries += 1;
                            ns.sim_seconds += w;
                        }
                    }
                    if let Some(t) = &self.trace {
                        t.record(
                            SpanKind::ServiceCall {
                                service: self.service_label(id),
                                page: u64::from(page),
                                tuples: 0,
                                ok: false,
                            },
                            fault_latency,
                        );
                        if let Some(w) = wait {
                            t.record(
                                SpanKind::Retry {
                                    service: self.service_label(id),
                                },
                                w,
                            );
                        }
                    }
                    self.acct.record_fault(id, &fault, fault_latency);
                    match wait {
                        Some(wait) => self.acct.record_retry(id, wait),
                        None => {
                            self.acct.record_exhausted(id);
                            // publish the terminal fault while still
                            // holding the single-flight claim: waiters
                            // wake into the memo. ONLY a genuinely
                            // exhausted retry policy condemns the page
                            // globally — one query running out of its
                            // own call budget says nothing about the
                            // page, and other queries must stay free
                            // to retry
                            if attempt >= policy.max_retries {
                                let mut inner = shard.inner.lock().expect("page shard lock");
                                inner.failed.insert((id, key.to_vec(), page), fault.clone());
                            }
                        }
                    }
                    if wait.is_some() {
                        attempt += 1;
                        continue;
                    }
                    drop(guard);
                    drop(slot);
                    self.note_degraded(id, fault.clone());
                    return PageFetch::failed(fault, Some(spent));
                }
            }
        }
    }

    /// Serves up to `max_pages` consecutive pages of one invocation
    /// starting at `first_page`, pushing one [`PageFetch`] per page
    /// served.
    ///
    /// Runs of already-cached pages are drained under a **single**
    /// shard-lock acquisition — the batched kernel's amortization of
    /// per-page lock traffic — ending early at the invocation's last
    /// page. Forwarding stays exactly as lazy as tuple-at-a-time
    /// demand: only when the *first* requested page is uncached does
    /// the run forward that one page through the full
    /// [`fetch_page`](ServiceGateway::fetch_page) path (single-flight,
    /// flow control, retries); a run that served cached pages stops
    /// *before* the first miss, leaving it to a later demand that may
    /// never come.
    pub fn fetch_page_run(
        &mut self,
        id: ServiceId,
        pattern: usize,
        key: &[Value],
        first_page: u32,
        max_pages: usize,
        out: &mut Vec<PageFetch>,
    ) {
        self.note_frontier(id, pattern, key);
        let end = first_page.saturating_add(max_pages.min(u32::MAX as usize) as u32);
        let mut page = first_page;
        let mut served: u64 = 0;
        let mut stop = false;
        {
            let shared = Arc::clone(&self.shared);
            let shard = &shared.shards[shared.shard_idx(id, key)];
            let mut inner = shard.inner.lock().expect("page shard lock");
            while page < end {
                match inner.cache.lookup(id, key, page) {
                    PageLookup::Hit(tuples, has_more) => {
                        let last = !has_more;
                        out.push(PageFetch {
                            tuples,
                            has_more,
                            forwarded_latency: None,
                            fault: None,
                        });
                        page += 1;
                        served += 1;
                        if last {
                            stop = true;
                            break;
                        }
                    }
                    PageLookup::PastEnd => {
                        out.push(PageFetch::empty());
                        stop = true;
                        break;
                    }
                    PageLookup::Unknown => break,
                }
            }
        }
        if served > 0 {
            self.note_cached(id, served);
        }
        if stop || page > first_page || page >= end {
            // served at least one cached page (or exhausted the run):
            // the next uncached page is *not* forwarded speculatively
            return;
        }
        out.push(self.fetch_page(id, pattern, key, page));
    }

    /// Records that `id` served a degraded page to this execution.
    fn note_degraded(&mut self, id: ServiceId, fault: ServiceFault) {
        self.degraded.insert(id);
        self.last_faults.insert(id, fault);
    }

    /// The service's display name for span labels.
    fn service_label(&self, id: ServiceId) -> String {
        self.services
            .get(&id)
            .map(|s| s.name().to_string())
            .unwrap_or_else(|| format!("service#{}", id.0))
    }

    /// The fetch-side stats slot of the active node, if one is set.
    fn node_acc(&mut self) -> Option<&mut OperatorStats> {
        self.active_node.and_then(|n| self.node_stats.get_mut(n))
    }

    /// Records `pages` pages served from the shared cache to the
    /// active node.
    fn note_cached(&mut self, id: ServiceId, pages: u64) {
        if let Some(ns) = self.node_acc() {
            ns.cached_pages += pages;
        }
        if let Some(t) = &self.trace {
            t.instant(SpanKind::CachedPages {
                service: self.service_label(id),
                pages,
            });
        }
    }

    /// This execution's span track, when the shared state is traced.
    /// Drivers clone it to record driver-level spans (re-plan splices,
    /// sub-result replays, query start/done) onto the same track the
    /// gateway's call spans land on.
    pub fn trace(&self) -> Option<QueryTrace> {
        self.trace.clone()
    }

    /// Records a span of `dur` accounted seconds on this execution's
    /// track; a no-op when untraced.
    pub fn trace_span(&self, kind: SpanKind, dur: f64) {
        if let Some(t) = &self.trace {
            t.record(kind, dur);
        }
    }

    /// Declares which plan node the following fetches belong to —
    /// the invoke operators bracket their page runs with this so
    /// call/retry/latency accounting lands on the right
    /// [`OperatorStats`] row.
    pub fn set_active_node(&mut self, node: Option<usize>) {
        self.active_node = node;
    }

    /// Per-plan-node runtime statistics collected so far (EXPLAIN
    /// ANALYZE's observed side). Indexed by plan node; `rows_in` is
    /// left to the renderer (derived from the plan topology).
    pub fn node_stats(&self) -> &[OperatorStats] {
        &self.node_stats
    }

    /// Flushes one operator hop into the node's stats: `rows` bindings
    /// produced over `batches` batched hops (a per-binding pull passes
    /// `batches = 0`). Traced executions also get an `operator_batch`
    /// instant per batched hop.
    pub fn record_node_output(&mut self, node: usize, rows: u64, batches: u64) {
        if let Some(ns) = self.node_stats.get_mut(node) {
            ns.rows_out += rows;
            ns.batches += batches;
        }
        if batches > 0 {
            if let Some(t) = &self.trace {
                t.instant(SpanKind::OperatorBatch {
                    node: node as u64,
                    rows,
                });
            }
        }
    }

    /// Records `rows` bindings replayed into `node` from the
    /// sub-result store.
    pub fn record_node_replay(&mut self, node: usize, rows: u64) {
        if let Some(ns) = self.node_stats.get_mut(node) {
            ns.sub_result_rows += rows;
        }
    }

    /// Resets the per-node statistics for a plan of `nodes` nodes —
    /// the adaptive drivers call this when they splice in a re-planned
    /// suffix, so the stats always describe the plan that finished.
    pub fn reset_node_stats(&mut self, nodes: usize) {
        self.node_stats = vec![OperatorStats::default(); nodes];
        self.active_node = None;
    }

    /// Records one invocation-level cache hit or miss for `id`, both in
    /// this execution's statistics and in the shared accounting.
    pub fn record_invocation(&mut self, id: ServiceId, hit: bool) {
        let stats = self.stats.entry(id).or_default();
        if hit {
            stats.hits += 1;
        } else {
            stats.misses += 1;
        }
        self.acct.record_invocation(id, hit);
    }

    /// Request-responses this execution forwarded to `id` so far.
    pub fn calls_to(&self, id: ServiceId) -> u64 {
        self.calls.get(&id).copied().unwrap_or(0)
    }

    /// This execution's per-service forwarded-call counts.
    pub fn calls(&self) -> &HashMap<ServiceId, u64> {
        &self.calls
    }

    /// Total request-responses this execution forwarded so far.
    pub fn total_calls(&self) -> u64 {
        self.calls.values().sum()
    }

    /// Summed simulated latency of this execution's forwarded calls.
    pub fn total_latency(&self) -> f64 {
        self.latency_sum
    }

    /// This execution's invocation-level cache statistics for `id`.
    pub fn cache_stats(&self, id: ServiceId) -> CacheStats {
        self.stats.get(&id).copied().unwrap_or_default()
    }

    /// This execution's fault accounting per service.
    pub fn fault_stats(&self) -> &HashMap<ServiceId, FaultStats> {
        &self.faults
    }

    /// This execution's per-service observations of forwarded calls —
    /// the live statistics the adaptive drivers compare against the
    /// schema's registered [`ServiceProfile`]s. Cache hits are not
    /// observations (no call was forwarded) and do not appear here.
    ///
    /// [`ServiceProfile`]: mdq_model::schema::ServiceProfile
    pub fn observed_stats(&self) -> &HashMap<ServiceId, ObservedService> {
        &self.observed
    }

    /// This execution's fault accounting for `id`.
    pub fn fault_stats_for(&self, id: ServiceId) -> FaultStats {
        self.faults.get(&id).copied().unwrap_or_default()
    }

    /// Retries this execution issued against `id`.
    pub fn retries_to(&self, id: ServiceId) -> u64 {
        self.fault_stats_for(id).retries
    }

    /// Whether any service served this execution a degraded page.
    pub fn is_degraded(&self) -> bool {
        !self.degraded.is_empty()
    }

    /// The partial-results report of this execution: `None` when every
    /// page was served healthily, otherwise the degraded services in
    /// name order with their fault accounting.
    pub fn partial_results(&self) -> Option<PartialResults> {
        if self.degraded.is_empty() {
            return None;
        }
        let mut degraded: Vec<DegradedService> = self
            .degraded
            .iter()
            .map(|id| DegradedService {
                service: self
                    .services
                    .get(id)
                    .map(|s| s.name().to_string())
                    .unwrap_or_else(|| format!("service#{}", id.0)),
                stats: self.fault_stats_for(*id),
                last_fault: self
                    .last_faults
                    .get(id)
                    .cloned()
                    .expect("degraded services record their terminal fault"),
            })
            .collect();
        degraded.sort_by(|a, b| a.service.cmp(&b.service));
        Some(PartialResults { degraded })
    }

    /// Marks the execution as failed; the first error wins.
    pub fn poison(&mut self, err: ExecError) {
        self.error.get_or_insert(err);
    }

    /// The recorded error, if any, without clearing it.
    pub fn error(&self) -> Option<&ExecError> {
        self.error.as_ref()
    }

    /// Takes the recorded error, if any.
    pub fn take_error(&mut self) -> Option<ExecError> {
        self.error.take()
    }
}

/// Shared access to a [`ServiceGateway`] — the one generic the operators
/// need, so the same [`Invoke`](crate::operator::Invoke) code runs
/// single-threaded and multi-threaded.
pub trait GatewayHandle: Clone {
    /// Runs `f` with exclusive access to the gateway.
    fn with<R>(&self, f: impl FnOnce(&mut ServiceGateway) -> R) -> R;
}

/// Single-threaded gateway sharing for the materialised and pull
/// drivers.
#[derive(Clone)]
pub struct LocalGateway(Rc<RefCell<ServiceGateway>>);

impl LocalGateway {
    /// Wraps a gateway.
    pub fn new(gateway: ServiceGateway) -> Self {
        LocalGateway(Rc::new(RefCell::new(gateway)))
    }
}

impl GatewayHandle for LocalGateway {
    fn with<R>(&self, f: impl FnOnce(&mut ServiceGateway) -> R) -> R {
        f(&mut self.0.borrow_mut())
    }
}

/// Thread-safe gateway sharing for the real-thread dataflow engine.
#[derive(Clone)]
pub struct SharedGateway(Arc<Mutex<ServiceGateway>>);

impl SharedGateway {
    /// Wraps a gateway.
    pub fn new(gateway: ServiceGateway) -> Self {
        SharedGateway(Arc::new(Mutex::new(gateway)))
    }
}

impl GatewayHandle for SharedGateway {
    fn with<R>(&self, f: impl FnOnce(&mut ServiceGateway) -> R) -> R {
        f(&mut self.0.lock().expect("gateway lock poisoned"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdq_model::binding::ApChoice;
    use mdq_model::examples::{ATOM_CONF, ATOM_FLIGHT, ATOM_HOTEL, ATOM_WEATHER};
    use mdq_plan::builder::{build_plan, StrategyRule};
    use mdq_plan::poset::Poset;
    use mdq_services::domains::travel::travel_world;

    fn plan_o(world: &mdq_services::domains::travel::TravelWorld) -> Plan {
        let poset = Poset::from_pairs(
            4,
            &[
                (ATOM_CONF, ATOM_WEATHER),
                (ATOM_WEATHER, ATOM_FLIGHT),
                (ATOM_WEATHER, ATOM_HOTEL),
            ],
        )
        .expect("valid");
        build_plan(
            Arc::new(world.query.clone()),
            &world.schema,
            ApChoice(vec![0, 0, 0, 0]),
            poset,
            (0..4).collect(),
            &StrategyRule::default(),
        )
        .expect("builds")
    }

    #[test]
    fn missing_service_fails_at_construction() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let empty = ServiceRegistry::new();
        let err = ServiceGateway::new(&plan, &w.schema, &empty, CacheSetting::OneCall)
            .expect_err("nothing registered");
        assert!(matches!(err, ExecError::MissingService(_)));
    }

    #[test]
    fn forwarding_counts_calls_and_latency() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let mut g = ServiceGateway::new(&plan, &w.schema, &w.registry, CacheSetting::OneCall)
            .expect("builds");
        let key = vec![Value::str("DB")];
        let first = g.fetch_page(w.ids.conf, 0, &key, 0);
        assert!(first.forwarded_latency.is_some());
        assert_eq!(g.calls_to(w.ids.conf), 1);
        let again = g.fetch_page(w.ids.conf, 0, &key, 0);
        assert!(again.forwarded_latency.is_none(), "served from cache");
        assert_eq!(g.calls_to(w.ids.conf), 1, "no extra forwarding");
        assert_eq!(again.tuples.len(), first.tuples.len());
        assert!(g.total_latency() > 0.0);
    }

    #[test]
    fn poison_keeps_first_error() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let mut g = ServiceGateway::new(&plan, &w.schema, &w.registry, CacheSetting::NoCache)
            .expect("builds");
        g.poison(ExecError::UnboundInput {
            service: "a".into(),
        });
        g.poison(ExecError::UnboundInput {
            service: "b".into(),
        });
        match g.take_error() {
            Some(ExecError::UnboundInput { service }) => assert_eq!(service, "a"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(g.take_error().is_none());
    }

    #[test]
    fn tenant_cell_charges_never_overshoot() {
        let shared = SharedServiceState::new(CacheSetting::Optimal, 0);
        shared.set_tenant_budget(7, Some(5));
        let cell = shared.tenant_cell(7);
        let granted = (0..20).filter(|_| cell.try_charge()).count();
        assert_eq!(granted, 5, "exactly the budget is granted");
        assert_eq!(shared.tenant_calls(7), 5);
        assert!(!shared.tenant_has_room(7));
        // raising the budget re-opens the gate without resetting spend
        shared.set_tenant_budget(7, Some(6));
        assert!(shared.tenant_has_room(7));
        assert!(cell.try_charge());
        assert!(!cell.try_charge());
    }

    #[test]
    fn tenant_budget_poisons_and_halts_forwarding() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let shared = Arc::new(SharedServiceState::new(CacheSetting::NoCache, 0));
        shared.set_tenant_budget(3, Some(1));
        let mut g =
            ServiceGateway::with_shared(&plan, &w.schema, &w.registry, Arc::clone(&shared), None)
                .expect("builds");
        g.set_tenant(3);
        assert_eq!(g.tenant_id(), Some(3));
        let first = g.fetch_page(w.ids.conf, 0, &[Value::str("DB")], 0);
        assert!(first.forwarded_latency.is_some(), "first call has room");
        let second = g.fetch_page(w.ids.conf, 0, &[Value::str("AI")], 0);
        assert!(second.tuples.is_empty(), "refused call serves empty page");
        match g.take_error() {
            Some(ExecError::TenantBudgetExhausted {
                tenant: 3,
                budget: 1,
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(shared.tenant_calls(3), 1, "the refusal charged nothing");
    }

    #[test]
    fn untenanted_gateway_never_touches_tenant_budgets() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let shared = Arc::new(SharedServiceState::new(CacheSetting::NoCache, 0));
        shared.set_tenant_budget(1, Some(0));
        let mut g =
            ServiceGateway::with_shared(&plan, &w.schema, &w.registry, Arc::clone(&shared), None)
                .expect("builds");
        let f = g.fetch_page(w.ids.conf, 0, &[Value::str("DB")], 0);
        assert!(f.forwarded_latency.is_some(), "no tenant, no gate");
        assert_eq!(shared.tenant_calls(1), 0);
    }

    #[test]
    fn shared_state_serves_cross_gateway_hits() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let shared = Arc::new(SharedServiceState::new(CacheSetting::Optimal, 0));
        let key = vec![Value::str("DB")];
        let mut g1 =
            ServiceGateway::with_shared(&plan, &w.schema, &w.registry, Arc::clone(&shared), None)
                .expect("builds");
        let first = g1.fetch_page(w.ids.conf, 0, &key, 0);
        assert!(first.forwarded_latency.is_some());
        // a *second* gateway over the same state hits without forwarding
        let mut g2 =
            ServiceGateway::with_shared(&plan, &w.schema, &w.registry, Arc::clone(&shared), None)
                .expect("builds");
        let again = g2.fetch_page(w.ids.conf, 0, &key, 0);
        assert!(again.forwarded_latency.is_none(), "cross-query cache hit");
        assert_eq!(again.tuples.len(), first.tuples.len());
        assert_eq!(g2.total_calls(), 0, "g2 forwarded nothing");
        assert_eq!(shared.total_calls(), 1, "one call across the workload");
    }

    #[test]
    fn dropped_gateways_fold_into_shared_totals() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let shared = Arc::new(SharedServiceState::new(CacheSetting::Optimal, 0));
        let key = vec![Value::str("DB")];
        {
            let mut g = ServiceGateway::with_shared(
                &plan,
                &w.schema,
                &w.registry,
                Arc::clone(&shared),
                None,
            )
            .expect("builds");
            g.fetch_page(w.ids.conf, 0, &key, 0);
            g.record_invocation(w.ids.conf, false);
        }
        // the gateway is gone; its cell must have retired into the
        // shared totals
        assert_eq!(shared.total_calls(), 1);
        assert!(shared.total_latency() > 0.0);
        assert_eq!(shared.cache_stats(w.ids.conf).misses, 1);
    }

    #[test]
    fn page_run_drains_cached_pages_in_one_call() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let shared = Arc::new(SharedServiceState::new(CacheSetting::Optimal, 0));
        let key = vec![Value::str("DB")];
        let mut g1 =
            ServiceGateway::with_shared(&plan, &w.schema, &w.registry, Arc::clone(&shared), None)
                .expect("builds");
        let mut pages: u32 = 0;
        loop {
            let f = g1.fetch_page(w.ids.conf, 0, &key, pages);
            pages += 1;
            if !f.has_more {
                break;
            }
        }
        let forwarded = shared.total_calls();
        assert_eq!(forwarded, u64::from(pages), "each page forwarded once");
        let mut g2 =
            ServiceGateway::with_shared(&plan, &w.schema, &w.registry, Arc::clone(&shared), None)
                .expect("builds");
        let mut run = Vec::new();
        g2.fetch_page_run(w.ids.conf, 0, &key, 0, pages as usize + 3, &mut run);
        assert_eq!(run.len(), pages as usize, "run ends at the stream end");
        assert!(
            run.iter().all(|f| f.forwarded_latency.is_none()),
            "every page in the run came from cache"
        );
        assert_eq!(shared.total_calls(), forwarded, "no re-forwarding");
    }

    #[test]
    fn page_run_forwards_lazily() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let mut g = ServiceGateway::new(&plan, &w.schema, &w.registry, CacheSetting::Optimal)
            .expect("builds");
        let key = vec![Value::str("DB")];
        // cold: a run of 4 forwards exactly ONE page — pages past the
        // first miss wait for actual demand
        let mut run = Vec::new();
        g.fetch_page_run(w.ids.conf, 0, &key, 0, 4, &mut run);
        assert_eq!(run.len(), 1, "only the demanded page is forwarded");
        assert!(run[0].forwarded_latency.is_some());
        assert_eq!(g.total_calls(), 1);
        // part-warm: the cached page is served, and the run stops
        // *before* forwarding the next page
        let mut run2 = Vec::new();
        g.fetch_page_run(w.ids.conf, 0, &key, 0, 4, &mut run2);
        assert_eq!(run2.len(), 1);
        assert!(run2[0].forwarded_latency.is_none(), "cache hit");
        assert_eq!(g.total_calls(), 1, "no speculative forwarding");
    }

    #[test]
    fn call_budget_poisons_and_refuses() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let shared = Arc::new(SharedServiceState::new(CacheSetting::NoCache, 0));
        let mut g = ServiceGateway::with_shared(&plan, &w.schema, &w.registry, shared, Some(2))
            .expect("builds");
        let key = vec![Value::str("DB")];
        assert!(g
            .fetch_page(w.ids.conf, 0, &key, 0)
            .forwarded_latency
            .is_some());
        assert!(g
            .fetch_page(w.ids.conf, 0, &key, 1)
            .forwarded_latency
            .is_some());
        let refused = g.fetch_page(w.ids.conf, 0, &key, 2);
        assert!(refused.forwarded_latency.is_none());
        assert!(refused.tuples.is_empty() && !refused.has_more);
        assert_eq!(g.total_calls(), 2, "budget capped forwarding");
        assert!(matches!(
            g.take_error(),
            Some(ExecError::CallBudgetExhausted { budget: 2 })
        ));
    }

    #[test]
    fn concurrent_same_page_is_fetched_once() {
        // 8 threads demand the same page through 8 gateways over one
        // shared state: single-flight + the shared cache must forward
        // exactly one request-response, and everyone sees the same page.
        let w = Arc::new(travel_world(2008));
        let plan = Arc::new(plan_o(&w));
        let shared = Arc::new(SharedServiceState::new(CacheSetting::Optimal, 2));
        let key = vec![Value::str("DB")];
        let pages: Vec<Vec<Tuple>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let w = Arc::clone(&w);
                    let plan = Arc::clone(&plan);
                    let shared = Arc::clone(&shared);
                    let key = key.clone();
                    scope.spawn(move || {
                        let mut g = ServiceGateway::with_shared(
                            &plan,
                            &w.schema,
                            &w.registry,
                            shared,
                            None,
                        )
                        .expect("builds");
                        g.fetch_page(w.ids.conf, 0, &key, 0).tuples
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("joins"))
                .collect()
        });
        assert_eq!(shared.total_calls(), 1, "single-flight deduplicates");
        for p in &pages[1..] {
            assert_eq!(p, &pages[0], "every waiter sees the fetched page");
        }
    }

    #[test]
    fn bounded_cache_uses_one_shard_unbounded_uses_many() {
        let unbounded = SharedServiceState::new(CacheSetting::Optimal, 0);
        assert!(unbounded.page_shards() > 1);
        let bounded = SharedServiceState::new(CacheSetting::Optimal, 0).with_page_capacity(4);
        assert_eq!(
            bounded.page_shards(),
            1,
            "global LRU needs a single eviction domain"
        );
        let disabled = SharedServiceState::new(CacheSetting::NoCache, 0).with_page_capacity(0);
        assert!(disabled.page_shards() > 1, "no cache, no eviction domain");
    }
}
