//! Variable bindings flowing through plan operators.
//!
//! During execution, a stream tuple is a partial assignment of the
//! query's variables. Invoke nodes extend bindings with service results
//! (unifying against constants and already-bound variables — the pipe
//! join); parallel join nodes merge bindings from two branches.

use mdq_model::query::{Atom, ConjunctiveQuery, Predicate, Term, VarId};
use mdq_model::value::{Tuple, Value};
use std::sync::Arc;

/// A (partial) assignment of query variables, cheap to clone.
///
/// The ordering and hash are positional over the bound values — what
/// lets the adaptive pull driver track emitted bindings as a multiset
/// across plan splices.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Binding {
    values: Arc<[Option<Value>]>,
}

impl Binding {
    /// The empty binding over `nvars` variables.
    pub fn empty(nvars: usize) -> Self {
        Binding {
            values: vec![None; nvars].into(),
        }
    }

    /// The value bound to `v`, if any.
    #[inline]
    pub fn get(&self, v: VarId) -> Option<&Value> {
        self.values[v.0 as usize].as_ref()
    }

    /// Whether `v` is bound.
    pub fn is_bound(&self, v: VarId) -> bool {
        self.get(v).is_some()
    }

    /// Extends the binding with a service result tuple for `atom`:
    /// unifies every position (constants and bound variables must match
    /// the returned value under join equality; unbound variables are
    /// bound). Returns `None` when unification fails — the tuple is
    /// filtered out, implementing both output-constant selections and
    /// pipe-join equality.
    pub fn bind_atom(&self, atom: &Atom, result: &Tuple) -> Option<Binding> {
        debug_assert_eq!(atom.terms.len(), result.arity());
        let mut new: Option<Vec<Option<Value>>> = None;
        for (i, term) in atom.terms.iter().enumerate() {
            let actual = result.get(i);
            match term {
                Term::Const(c) => {
                    if !c.join_eq(actual) {
                        return None;
                    }
                }
                Term::Var(v) => {
                    let slot = v.0 as usize;
                    let current = new
                        .as_ref()
                        .map(|n| n[slot].as_ref())
                        .unwrap_or_else(|| self.values[slot].as_ref());
                    match current {
                        Some(bound) => {
                            if !bound.join_eq(actual) {
                                return None;
                            }
                        }
                        None => {
                            let n = new.get_or_insert_with(|| self.values.to_vec());
                            n[slot] = Some(actual.clone());
                        }
                    }
                }
            }
        }
        Some(match new {
            Some(n) => Binding { values: n.into() },
            None => self.clone(),
        })
    }

    /// Merges two bindings from parallel branches, requiring the shared
    /// `on` variables to agree (the parallel-join condition); other
    /// variables are unioned. Returns `None` on disagreement anywhere.
    pub fn merge(&self, other: &Binding, on: &[VarId]) -> Option<Binding> {
        debug_assert_eq!(self.values.len(), other.values.len());
        for v in on {
            match (self.get(*v), other.get(*v)) {
                (Some(a), Some(b)) if a.join_eq(b) => {}
                (None, None) => {}
                _ => return None,
            }
        }
        let mut out = self.values.to_vec();
        for (slot, val) in other.values.iter().enumerate() {
            match (&out[slot], val) {
                (None, Some(v)) => out[slot] = Some(v.clone()),
                (Some(a), Some(b)) if !a.join_eq(b) => return None,
                _ => {}
            }
        }
        Some(Binding { values: out.into() })
    }

    /// Evaluates a predicate under this binding (`None` = not yet
    /// applicable because a variable is unbound).
    pub fn eval_predicate(&self, p: &Predicate) -> Option<bool> {
        p.eval(&|v| self.get(v).cloned())
    }

    /// Projects the binding onto the query head, producing an answer
    /// tuple. Unbound head variables become `Null` (cannot happen for
    /// safe queries executed to completion).
    pub fn project_head(&self, query: &ConjunctiveQuery) -> Tuple {
        query
            .head
            .iter()
            .map(|v| self.get(*v).cloned().unwrap_or(Value::Null))
            .collect()
    }

    /// A binding over `nvars` variables with `vars[i]` bound to
    /// `row[i]` — how a materialized sub-result row (values in canonical
    /// variable order) replays into a subscriber's own variable space.
    pub fn from_row(nvars: usize, vars: &[VarId], row: &[Value]) -> Self {
        debug_assert_eq!(vars.len(), row.len());
        let mut values = vec![None; nvars];
        for (v, val) in vars.iter().zip(row) {
            values[v.0 as usize] = Some(val.clone());
        }
        Binding {
            values: values.into(),
        }
    }

    /// The values of `vars`, in order — the canonical row a materialized
    /// sub-result stores. Every listed variable must be bound (prefix
    /// invocations bind all their atoms' variables).
    pub fn to_row(&self, vars: &[VarId]) -> Vec<Value> {
        vars.iter()
            .map(|v| {
                self.get(*v)
                    .cloned()
                    .expect("prefix bindings bind every chain variable")
            })
            .collect()
    }

    /// Whether two bindings share the same underlying value storage —
    /// true exactly when one is an `Arc` clone of the other. This is
    /// the observability hook for the zero-copy replay guarantee: a
    /// materialized sub-result replayed to a subscriber in the same
    /// variable space must share storage with the stored row, never
    /// deep-copy it.
    pub fn shares_storage(&self, other: &Binding) -> bool {
        Arc::ptr_eq(&self.values, &other.values)
    }

    /// The input-key values for an atom under an access pattern's input
    /// positions: constants inline, variables from the binding. `None`
    /// if an input variable is unbound (the plan is being executed out
    /// of order — a bug).
    pub fn input_key(&self, atom: &Atom, input_positions: &[usize]) -> Option<Vec<Value>> {
        input_positions
            .iter()
            .map(|&i| match &atom.terms[i] {
                Term::Const(c) => Some(c.clone()),
                Term::Var(v) => self.get(*v).cloned(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdq_model::query::{CmpOp, Expr};

    fn atom_xy() -> Atom {
        // s('k', X, Y)
        Atom {
            service: mdq_model::schema::ServiceId(0),
            terms: vec![
                Term::Const(Value::str("k")),
                Term::Var(VarId(0)),
                Term::Var(VarId(1)),
            ],
        }
    }

    #[test]
    fn bind_atom_binds_and_filters() {
        let b = Binding::empty(2);
        let atom = atom_xy();
        let t = Tuple::new(vec![Value::str("k"), Value::Int(1), Value::Int(2)]);
        let b2 = b.bind_atom(&atom, &t).expect("unifies");
        assert_eq!(b2.get(VarId(0)), Some(&Value::Int(1)));
        assert_eq!(b2.get(VarId(1)), Some(&Value::Int(2)));
        // constant mismatch filters
        let bad = Tuple::new(vec![Value::str("other"), Value::Int(1), Value::Int(2)]);
        assert!(b.bind_atom(&atom, &bad).is_none());
        // bound-variable mismatch filters (pipe-join equality)
        let t3 = Tuple::new(vec![Value::str("k"), Value::Int(9), Value::Int(2)]);
        assert!(b2.bind_atom(&atom, &t3).is_none());
        // agreeing rebind passes
        let t4 = Tuple::new(vec![Value::str("k"), Value::Int(1), Value::Int(2)]);
        assert!(b2.bind_atom(&atom, &t4).is_some());
    }

    #[test]
    fn repeated_variable_in_atom_must_agree() {
        // s(X, X, Y)
        let atom = Atom {
            service: mdq_model::schema::ServiceId(0),
            terms: vec![
                Term::Var(VarId(0)),
                Term::Var(VarId(0)),
                Term::Var(VarId(1)),
            ],
        };
        let b = Binding::empty(2);
        let ok = Tuple::new(vec![Value::Int(5), Value::Int(5), Value::Int(1)]);
        assert!(b.bind_atom(&atom, &ok).is_some());
        let bad = Tuple::new(vec![Value::Int(5), Value::Int(6), Value::Int(1)]);
        assert!(b.bind_atom(&atom, &bad).is_none());
    }

    #[test]
    fn merge_requires_agreement_on_shared() {
        let atom = atom_xy();
        let base = Binding::empty(2);
        let l = base
            .bind_atom(
                &atom,
                &Tuple::new(vec![Value::str("k"), Value::Int(1), Value::Int(2)]),
            )
            .expect("unifies");
        let mut r = Binding::empty(2);
        r = r
            .bind_atom(
                &Atom {
                    service: mdq_model::schema::ServiceId(1),
                    terms: vec![Term::Var(VarId(0))],
                },
                &Tuple::new(vec![Value::Int(1)]),
            )
            .expect("unifies");
        let merged = l.merge(&r, &[VarId(0)]).expect("agree on X");
        assert_eq!(merged.get(VarId(1)), Some(&Value::Int(2)));
        // disagreement on the join variable
        let r2 = Binding::empty(2)
            .bind_atom(
                &Atom {
                    service: mdq_model::schema::ServiceId(1),
                    terms: vec![Term::Var(VarId(0))],
                },
                &Tuple::new(vec![Value::Int(7)]),
            )
            .expect("unifies");
        assert!(l.merge(&r2, &[VarId(0)]).is_none());
    }

    #[test]
    fn predicate_and_projection() {
        let atom = atom_xy();
        let b = Binding::empty(2)
            .bind_atom(
                &atom,
                &Tuple::new(vec![Value::str("k"), Value::Int(3), Value::Int(4)]),
            )
            .expect("unifies");
        let p = Predicate::new(
            Expr::Add(Box::new(Expr::var(VarId(0))), Box::new(Expr::var(VarId(1)))),
            CmpOp::Lt,
            Expr::constant(10i64),
        );
        assert_eq!(b.eval_predicate(&p), Some(true));
        let mut q = ConjunctiveQuery::new("q");
        let x = q.var("X");
        let y = q.var("Y");
        q.head_var(y);
        q.head_var(x);
        let t = b.project_head(&q);
        assert_eq!(t.values(), &[Value::Int(4), Value::Int(3)]);
    }

    #[test]
    fn input_key_extraction() {
        let atom = atom_xy();
        let b = Binding::empty(2)
            .bind_atom(
                &atom,
                &Tuple::new(vec![Value::str("k"), Value::Int(3), Value::Int(4)]),
            )
            .expect("unifies");
        // inputs at positions 0 (const) and 1 (X)
        let key = b.input_key(&atom, &[0, 1]).expect("all bound");
        assert_eq!(key, vec![Value::str("k"), Value::Int(3)]);
        let fresh = Binding::empty(2);
        assert!(fresh.input_key(&atom, &[1]).is_none(), "X unbound");
    }
}
