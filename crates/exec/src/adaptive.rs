//! Adaptive mid-flight re-optimization: plan splicing at explicit
//! suspension points.
//!
//! The optimizer commits to a plan using *estimated* service statistics;
//! the gateway observes the real ones
//! ([`ServiceGateway::observed_stats`]). The adaptive drivers close that
//! loop **during** execution:
//!
//! 1. execution proceeds to a *suspension point* — an explicit operator
//!    boundary where no service call is in flight (a completed invoke
//!    stage for the materialised drivers, an answer boundary for the
//!    pull driver);
//! 2. the observed per-service statistics are compared against the
//!    schema estimates
//!    ([`diverging_services`]
//!    under the session's [`AdaptiveConfig`]);
//! 3. when the drift crosses the configured ratio, a [`Replanner`] is
//!    asked to re-optimize the *unexecuted suffix* of the DAG against
//!    refreshed profiles, and the returned plan is **spliced in**: the
//!    execution restarts under the new plan over the *same* gateway, so
//!    every page fetched before the splice is served from the shared
//!    [`PageCache`](crate::cache::PageCache) — a re-plan never repeats a
//!    service call for data it already has (run the gateway state with
//!    [`CacheSetting::Optimal`](crate::cache::CacheSetting) to make that
//!    guarantee unconditional).
//!
//! Three drivers implement the loop, all deterministic:
//!
//! * [`run_adaptive`] — the stage-materialised engine (suspends after
//!   every invoke stage);
//! * [`run_adaptive_dispatch`] — the same stage loop with each stage's
//!   invocations fanned out over real OS threads (stage outputs are
//!   reassembled in input order, so answers and — under the memoizing
//!   cache — call counts match the sequential driver exactly);
//! * [`AdaptiveTopK`] — the pull-based top-k driver (suspends between
//!   answers; re-plans cover the whole plan, since a pull execution
//!   never provably completes an atom).
//!
//! Re-planning is rate-limited per query ([`AdaptiveConfig`]): a
//! bounded number of re-plans, a check cadence in forwarded calls, and
//! a *settled* set so a divergence the re-planner has already examined
//! (and declined to act on) does not re-trigger the optimizer at every
//! subsequent suspension point.

use crate::binding::Binding;
use crate::gateway::{GatewayHandle, LocalGateway, ServiceGateway, SharedGateway};
use crate::operator::{
    compile, derive_rows_in, drain_all, ExecError, Filter, Invoke, Join, Operator, Probe, Select,
    Source, DEFAULT_BATCH,
};
use crate::pipeline::{ExecReport, NodeTrace};
use crate::plan_info::analyze;
use mdq_cost::divergence::{diverging_services, ObservedService, ServiceDivergence};
use mdq_model::schema::{Schema, ServiceId};
use mdq_model::value::Tuple;
use mdq_plan::dag::{NodeKind, Plan};
use mdq_services::registry::ServiceRegistry;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

pub use mdq_cost::divergence::AdaptiveConfig;

/// Everything a [`Replanner`] gets to see at a suspension point.
pub struct ReplanRequest<'a> {
    /// The currently running plan.
    pub plan: &'a Plan,
    /// Query-atom indices whose invoke stages have fully executed, in
    /// execution order. Empty for the pull driver (its continuation
    /// semantics never complete an atom provably), in which case the
    /// whole plan is up for re-optimization.
    pub executed: &'a [usize],
    /// Per-service observations of this execution's forwarded calls.
    pub observed: &'a HashMap<ServiceId, ObservedService>,
    /// The services that tripped the divergence threshold (sorted by
    /// service id).
    pub diverged: &'a [ServiceDivergence],
    /// Re-plans already performed for this query.
    pub replans_so_far: u32,
}

/// Re-optimizes the unexecuted suffix of a plan against observed
/// statistics. Return `Some(plan)` to splice a better plan in, `None`
/// to confirm the running plan (the divergence is then marked settled
/// and does not re-trigger until a *new* service starts diverging).
///
/// The optimizer-backed implementation lives in `mdq-core`
/// (`OptimizerReplanner`); closures implement the trait directly, which
/// the tests use for scripted re-plans.
pub trait Replanner {
    /// Decides whether to splice a new plan in at this suspension point.
    fn replan(&mut self, req: &ReplanRequest<'_>) -> Option<Plan>;
}

impl<F: FnMut(&ReplanRequest<'_>) -> Option<Plan>> Replanner for F {
    fn replan(&mut self, req: &ReplanRequest<'_>) -> Option<Plan> {
        self(req)
    }
}

/// One performed re-plan (splice), for explain/debug output.
#[derive(Clone, Debug)]
pub struct ReplanEvent {
    /// How many invoke stages had executed when the splice happened
    /// (0 for the pull driver).
    pub after_stages: usize,
    /// Names of the services that tripped the threshold.
    pub services: Vec<String>,
    /// The worst observed divergence ratio among them.
    pub worst_ratio: f64,
}

/// The outcome of an adaptive execution.
#[derive(Clone, Debug)]
pub struct AdaptiveOutcome {
    /// The execution report of the *final* plan. Calls, cache, fault
    /// and partial-results accounting span the whole adaptive
    /// execution, splices included; answers, bindings and the node
    /// trace describe the final plan's pass.
    pub report: ExecReport,
    /// Re-plans performed (0 = the estimates held up).
    pub replans: u32,
    /// One entry per performed re-plan.
    pub events: Vec<ReplanEvent>,
    /// The plan that produced the answers (identical to the input plan
    /// when `replans == 0`).
    pub final_plan: Plan,
    /// The execution's final per-service observations — feed to
    /// [`refresh_profiles`](mdq_cost::divergence::refresh_profiles) to
    /// seed the schema for later queries (or to explain the final plan
    /// under the statistics that were actually observed).
    pub observed: HashMap<ServiceId, ObservedService>,
}

/// The shared re-plan decision logic: cadence, rate limiting and the
/// settled set. Deterministic — its decisions depend only on the
/// gateway's observed statistics at the suspension point.
struct Controller {
    cfg: AdaptiveConfig,
    replans: u32,
    events: Vec<ReplanEvent>,
    last_check_calls: u64,
    /// Services whose divergence the re-planner has already examined;
    /// cleared when a splice happens.
    settled: BTreeSet<ServiceId>,
}

impl Controller {
    fn new(cfg: AdaptiveConfig) -> Self {
        Controller {
            cfg,
            replans: 0,
            events: Vec::new(),
            last_check_calls: 0,
            settled: BTreeSet::new(),
        }
    }

    /// Runs the divergence check at a suspension point; returns the
    /// spliced plan when the re-planner produced one.
    fn consider<G: GatewayHandle>(
        &mut self,
        plan: &Plan,
        schema: &Schema,
        executed: &[usize],
        gateway: &G,
        replanner: &mut dyn Replanner,
    ) -> Option<Plan> {
        if self.replans >= self.cfg.max_replans {
            return None;
        }
        let total = gateway.with(|g| g.total_calls());
        if total.saturating_sub(self.last_check_calls) < self.cfg.check_every_calls.max(1) {
            return None;
        }
        self.last_check_calls = total;
        let observed = gateway.with(|g| g.observed_stats().clone());
        let diverged = diverging_services(schema, &observed, &self.cfg);
        if diverged.is_empty() || diverged.iter().all(|d| self.settled.contains(&d.service)) {
            return None;
        }
        let req = ReplanRequest {
            plan,
            executed,
            observed: &observed,
            diverged: &diverged,
            replans_so_far: self.replans,
        };
        let outcome = replanner.replan(&req);
        // either way the re-planner has now seen these services; only a
        // *new* diverging service re-triggers it (a splice re-arms all)
        if outcome.is_some() {
            self.settled.clear();
            self.replans += 1;
            let services: Vec<String> = diverged
                .iter()
                .map(|d| schema.service(d.service).name.to_string())
                .collect();
            let worst_ratio = diverged.iter().fold(1.0, |m, d| d.ratio.max(m));
            gateway.with(|g| {
                g.trace_span(
                    mdq_obs::span::SpanKind::Replan {
                        services: services.join(","),
                        worst_ratio,
                    },
                    0.0,
                )
            });
            self.events.push(ReplanEvent {
                after_stages: executed.len(),
                services,
                worst_ratio,
            });
        }
        self.settled.extend(diverged.iter().map(|d| d.service));
        outcome
    }
}

/// Drains one invoke stage: `inputs` through the node's invoke + filter
/// operators, either in place or fanned out over `threads` OS threads
/// (outputs reassembled in input order). Returns the stage's output
/// stream and its summed forwarded latency.
#[allow(clippy::too_many_arguments)] // private stage helper: plan context + tuning knobs
fn run_invoke_stage(
    plan: &Plan,
    schema: &Schema,
    info: &crate::plan_info::PlanInfo,
    node: usize,
    inputs: Vec<Binding>,
    gateway: &SharedGateway,
    threads: usize,
    batch: usize,
) -> (Vec<Binding>, f64) {
    if threads <= 1 || inputs.len() <= 1 {
        let mut invoke = Invoke::for_node(
            plan,
            schema,
            info,
            node,
            Source(inputs.into_iter()),
            gateway.clone(),
            false,
            0.0,
        );
        let out = drain_all(
            Probe::new(
                Filter::for_node(plan, info, node, &mut invoke),
                gateway.clone(),
                node,
            ),
            batch,
        );
        return (out, invoke.busy());
    }
    // contiguous chunks keep the reassembled output in input order, so
    // the fan-out is answer-identical to the sequential stage
    let chunk = inputs.len().div_ceil(threads);
    let chunks: Vec<Vec<Binding>> = inputs.chunks(chunk).map(|c| c.to_vec()).collect::<Vec<_>>();
    let results: Vec<(Vec<Binding>, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let gateway = gateway.clone();
                scope.spawn(move || {
                    let mut invoke = Invoke::for_node(
                        plan,
                        schema,
                        info,
                        node,
                        Source(chunk.into_iter()),
                        gateway.clone(),
                        false,
                        0.0,
                    );
                    let out = drain_all(
                        Probe::new(
                            Filter::for_node(plan, info, node, &mut invoke),
                            gateway,
                            node,
                        ),
                        batch,
                    );
                    (out, invoke.busy())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stage worker joins"))
            .collect()
    });
    let mut out = Vec::new();
    let mut busy = 0.0;
    for (part, lat) in results {
        out.extend(part);
        busy += lat;
    }
    (out, busy)
}

/// The adaptive stage-materialised engine shared by [`run_adaptive`]
/// and [`run_adaptive_dispatch`].
#[allow(clippy::too_many_arguments)] // entry points bundle these below
fn run_adaptive_stages(
    plan: &Plan,
    schema: &Schema,
    registry: &ServiceRegistry,
    shared: Arc<crate::gateway::SharedServiceState>,
    budget: Option<u64>,
    k: Option<usize>,
    cfg: &AdaptiveConfig,
    replanner: &mut dyn Replanner,
    threads: usize,
    batch: usize,
) -> Result<AdaptiveOutcome, ExecError> {
    let batch = batch.max(1);
    let gateway = SharedGateway::new(ServiceGateway::with_shared(
        plan, schema, registry, shared, budget,
    )?);
    let mut plan = plan.clone();
    let mut ctl = Controller::new(*cfg);
    'restart: loop {
        // per-node statistics describe the plan that finishes — node
        // indices change across splices, so each pass starts clean
        // (like `node_trace`; calls/cache/fault accounting still spans
        // the whole adaptive execution)
        gateway.with(|g| g.reset_node_stats(plan.nodes.len()));
        let info = analyze(&plan, schema);
        let n = plan.nodes.len();
        let total_invokes = plan
            .nodes
            .iter()
            .filter(|nd| matches!(nd.kind, NodeKind::Invoke { .. }))
            .count();
        let mut streams: Vec<Vec<Binding>> = vec![Vec::new(); n];
        let mut trace = vec![NodeTrace::default(); n];
        let mut executed: Vec<usize> = Vec::new();

        for i in 0..n {
            let node = &plan.nodes[i];
            match &node.kind {
                NodeKind::Input => {
                    streams[i] = vec![Binding::empty(plan.query.var_count())];
                    gateway.with(|g| g.record_node_output(i, 1, 0));
                    trace[i] = NodeTrace {
                        busy: 0.0,
                        completion: 0.0,
                        in_tuples: 0,
                        out_tuples: 1,
                    };
                }
                NodeKind::Invoke { atom } => {
                    let up = node.inputs[0].0;
                    let inputs = streams[up].clone();
                    let in_tuples = inputs.len();
                    let (out, busy) =
                        run_invoke_stage(&plan, schema, &info, i, inputs, &gateway, threads, batch);
                    if let Some(err) = gateway.with(|g| g.take_error()) {
                        return Err(err);
                    }
                    trace[i] = NodeTrace {
                        busy,
                        completion: trace[up].completion + busy,
                        in_tuples,
                        out_tuples: out.len(),
                    };
                    streams[i] = out;
                    executed.push(*atom);
                    // suspension point: the stage is complete, no call
                    // is in flight — safe to splice a new suffix in
                    if executed.len() < total_invokes {
                        if let Some(new_plan) =
                            ctl.consider(&plan, schema, &executed, &gateway, replanner)
                        {
                            plan = new_plan;
                            continue 'restart;
                        }
                    }
                }
                NodeKind::Join {
                    left,
                    right,
                    strategy,
                    on,
                } => {
                    let (l, r) = (left.0, right.0);
                    let joined = drain_all(
                        Probe::new(
                            Filter::for_node(
                                &plan,
                                &info,
                                i,
                                Join::new(
                                    Source(streams[l].iter().cloned()),
                                    Source(streams[r].iter().cloned()),
                                    strategy,
                                    on.clone(),
                                ),
                            ),
                            gateway.clone(),
                            i,
                        ),
                        batch,
                    );
                    trace[i] = NodeTrace {
                        busy: 0.0,
                        completion: trace[l].completion.max(trace[r].completion),
                        in_tuples: streams[l].len() + streams[r].len(),
                        out_tuples: joined.len(),
                    };
                    streams[i] = joined;
                }
                NodeKind::Output => {
                    let up = node.inputs[0].0;
                    let filtered =
                        Filter::for_node(&plan, &info, i, Source(streams[up].iter().cloned()));
                    let out: Vec<Binding> = match k {
                        Some(k) => drain_all(
                            Probe::new(Select::new(filtered, k), gateway.clone(), i),
                            batch,
                        ),
                        None => drain_all(Probe::new(filtered, gateway.clone(), i), batch),
                    };
                    trace[i] = NodeTrace {
                        busy: 0.0,
                        completion: trace[up].completion,
                        in_tuples: streams[up].len(),
                        out_tuples: out.len(),
                    };
                    streams[i] = out;
                }
            }
        }

        let out_idx = plan.output_node().0;
        let bindings = std::mem::take(&mut streams[out_idx]);
        let answers = bindings
            .iter()
            .map(|b| b.project_head(&plan.query))
            .collect();
        let (calls, cache_stats, fault_stats, partial, observed, mut operator_stats) = gateway
            .with(|g| {
                (
                    g.calls().clone(),
                    registry.ids().map(|id| (id, g.cache_stats(id))).collect(),
                    g.fault_stats().clone(),
                    g.partial_results(),
                    g.observed_stats().clone(),
                    g.node_stats().to_vec(),
                )
            });
        derive_rows_in(&plan, &mut operator_stats);
        let report = ExecReport {
            answers,
            bindings,
            virtual_time: trace[out_idx].completion,
            calls,
            cache_stats,
            node_trace: trace,
            fault_stats,
            partial,
            operator_stats,
        };
        return Ok(AdaptiveOutcome {
            report,
            replans: ctl.replans,
            events: ctl.events,
            final_plan: plan,
            observed,
        });
    }
}

/// Adaptive stage-materialised execution over a shared gateway state:
/// the pipeline driver with a divergence check (and possible plan
/// splice) after every completed invoke stage.
///
/// `k` truncates the answer list like
/// [`ExecConfig::k`](crate::pipeline::ExecConfig); `budget` is the
/// per-query forwarded-call budget.
#[allow(clippy::too_many_arguments)] // serving-layer entry point: one knob per policy
pub fn run_adaptive(
    plan: &Plan,
    schema: &Schema,
    registry: &ServiceRegistry,
    shared: Arc<crate::gateway::SharedServiceState>,
    budget: Option<u64>,
    k: Option<usize>,
    cfg: &AdaptiveConfig,
    replanner: &mut dyn Replanner,
) -> Result<AdaptiveOutcome, ExecError> {
    run_adaptive_stages(
        plan,
        schema,
        registry,
        shared,
        budget,
        k,
        cfg,
        replanner,
        1,
        DEFAULT_BATCH,
    )
}

/// [`run_adaptive`] with an explicit operator batch size. Answers,
/// call counts, retries and re-plan decisions are invariant under
/// `batch` — the equivalence suite sweeps it to prove as much.
#[allow(clippy::too_many_arguments)] // serving-layer entry point: one knob per policy
pub fn run_adaptive_with_batch(
    plan: &Plan,
    schema: &Schema,
    registry: &ServiceRegistry,
    shared: Arc<crate::gateway::SharedServiceState>,
    budget: Option<u64>,
    k: Option<usize>,
    cfg: &AdaptiveConfig,
    replanner: &mut dyn Replanner,
    batch: usize,
) -> Result<AdaptiveOutcome, ExecError> {
    run_adaptive_stages(
        plan, schema, registry, shared, budget, k, cfg, replanner, 1, batch,
    )
}

/// Like [`run_adaptive`], with every invoke stage's calls dispatched
/// over `threads` real OS threads (the adaptive variant of the threaded
/// driver). Stage outputs are reassembled in input order, so the run is
/// answer-identical to [`run_adaptive`]; under the memoizing cache
/// setting the call counts are identical too (single-flight
/// deduplicates concurrent demands for one page).
#[allow(clippy::too_many_arguments)] // serving-layer entry point: one knob per policy
pub fn run_adaptive_dispatch(
    plan: &Plan,
    schema: &Schema,
    registry: &ServiceRegistry,
    shared: Arc<crate::gateway::SharedServiceState>,
    budget: Option<u64>,
    k: Option<usize>,
    threads: usize,
    cfg: &AdaptiveConfig,
    replanner: &mut dyn Replanner,
) -> Result<AdaptiveOutcome, ExecError> {
    run_adaptive_stages(
        plan,
        schema,
        registry,
        shared,
        budget,
        k,
        cfg,
        replanner,
        threads.max(2),
        DEFAULT_BATCH,
    )
}

/// The adaptive pull-based top-k execution: answers are pulled one at a
/// time; between answers (the pull driver's suspension points) the
/// divergence check runs, and a splice recompiles the new plan over the
/// *same* gateway — fetched pages replay from cache, and the bindings
/// already handed out are tracked as a multiset so the spliced stream
/// skips exactly one instance of each before emitting further answers
/// (a splice never re-emits, while legitimate duplicate answers —
/// projection queries, duplicate source tuples — still flow exactly as
/// in the frozen driver; with zero re-plans no skipping happens at
/// all).
pub struct AdaptiveTopK<'a> {
    schema: &'a Schema,
    registry: &'a ServiceRegistry,
    plan: Plan,
    gateway: LocalGateway,
    iter: Box<dyn Operator>,
    ctl: Controller,
    /// Every binding emitted so far, in emission order (all splices).
    emitted: Vec<Binding>,
    /// Instances of already-emitted bindings the current (spliced)
    /// stream must still skip — rebuilt from `emitted` at each splice,
    /// empty before the first one.
    skip: BTreeMap<Binding, usize>,
    elastic: bool,
}

impl<'a> AdaptiveTopK<'a> {
    /// Prepares an adaptive pull execution over an existing (typically
    /// `Arc`-shared) gateway state — the serving-layer entry point.
    pub fn with_shared(
        plan: &Plan,
        schema: &'a Schema,
        registry: &'a ServiceRegistry,
        shared: Arc<crate::gateway::SharedServiceState>,
        budget: Option<u64>,
        elastic: bool,
        cfg: &AdaptiveConfig,
    ) -> Result<Self, ExecError> {
        Self::with_shared_tenant(plan, schema, registry, shared, budget, elastic, cfg, None)
    }

    /// [`AdaptiveTopK::with_shared`] attributed to a tenant: every
    /// forwarded call — across every spliced plan, since re-plans keep
    /// the same gateway — is charged against the tenant's cumulative
    /// budget in the shared state.
    #[allow(clippy::too_many_arguments)] // serving-layer entry point: one knob per policy
    pub fn with_shared_tenant(
        plan: &Plan,
        schema: &'a Schema,
        registry: &'a ServiceRegistry,
        shared: Arc<crate::gateway::SharedServiceState>,
        budget: Option<u64>,
        elastic: bool,
        cfg: &AdaptiveConfig,
        tenant: Option<crate::gateway::TenantId>,
    ) -> Result<Self, ExecError> {
        let mut inner = ServiceGateway::with_shared(plan, schema, registry, shared, budget)?;
        if let Some(t) = tenant {
            inner.set_tenant(t);
        }
        let gateway = LocalGateway::new(inner);
        let info = analyze(plan, schema);
        let iter = compile(plan, schema, &info, &gateway, elastic);
        Ok(AdaptiveTopK {
            schema,
            registry,
            plan: plan.clone(),
            gateway,
            iter,
            ctl: Controller::new(*cfg),
            emitted: Vec::new(),
            skip: BTreeMap::new(),
            elastic,
        })
    }

    /// Runs the suspension-point check; splices and recompiles when the
    /// re-planner produced a better plan.
    fn maybe_replan(&mut self, replanner: &mut dyn Replanner) {
        // the pull driver re-plans the whole plan: its continuation
        // semantics never fully execute an atom, so nothing is pinned
        if let Some(new_plan) =
            self.ctl
                .consider(&self.plan, self.schema, &[], &self.gateway, replanner)
        {
            self.plan = new_plan;
            let info = analyze(&self.plan, self.schema);
            self.iter = compile(&self.plan, self.schema, &info, &self.gateway, self.elastic);
            // node indices changed: per-node stats restart under the
            // spliced plan (the dropped tree's probes flushed into the
            // old numbering just above, so this wipes them cleanly)
            self.gateway
                .with(|g| g.reset_node_stats(self.plan.nodes.len()));
            // the spliced stream replays from the start: skip exactly
            // one instance of every binding already handed out
            self.skip.clear();
            for b in &self.emitted {
                *self.skip.entry(b.clone()).or_insert(0) += 1;
            }
        }
    }

    /// Pulls the next answer not yet emitted, re-planning at answer
    /// boundaries when the observations have drifted. `None` once the
    /// (possibly spliced) plan is exhausted — check
    /// [`AdaptiveTopK::error`] to distinguish failure from exhaustion.
    pub fn next_answer(&mut self, replanner: &mut dyn Replanner) -> Option<Tuple> {
        loop {
            self.maybe_replan(replanner);
            let binding = self.iter.next_binding()?;
            if let Some(n) = self.skip.get_mut(&binding) {
                // an instance already emitted before the last splice
                *n -= 1;
                if *n == 0 {
                    self.skip.remove(&binding);
                }
                continue;
            }
            let answer = binding.project_head(&self.plan.query);
            self.emitted.push(binding);
            return Some(answer);
        }
    }

    /// Pulls up to `k` further answers.
    pub fn answers(&mut self, k: usize, replanner: &mut dyn Replanner) -> Vec<Tuple> {
        let mut out = Vec::with_capacity(k.min(1024));
        for _ in 0..k {
            match self.next_answer(replanner) {
                Some(a) => out.push(a),
                None => break,
            }
        }
        out
    }

    /// Re-plans performed so far.
    pub fn replans(&self) -> u32 {
        self.ctl.replans
    }

    /// One event per performed re-plan.
    pub fn events(&self) -> &[ReplanEvent] {
        &self.ctl.events
    }

    /// The currently running plan (the splice result after a re-plan).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The registry this execution resolves services from.
    pub fn registry(&self) -> &ServiceRegistry {
        self.registry
    }

    /// Request-responses forwarded to `id` so far (all splices).
    pub fn calls_to(&self, id: ServiceId) -> u64 {
        self.gateway.with(|g| g.calls_to(id))
    }

    /// Total request-responses forwarded so far (all splices).
    pub fn total_calls(&self) -> u64 {
        self.gateway.with(|g| g.total_calls())
    }

    /// Summed simulated latency of the forwarded calls.
    pub fn total_latency(&self) -> f64 {
        self.gateway.with(|g| g.total_latency())
    }

    /// Fault accounting per service so far (spans all splices — a
    /// retry spent before a re-plan stays counted exactly once).
    pub fn fault_stats(&self) -> HashMap<ServiceId, crate::gateway::FaultStats> {
        self.gateway.with(|g| g.fault_stats().clone())
    }

    /// Per-service observations of this execution's forwarded calls so
    /// far (all splices).
    pub fn observed_stats(&self) -> HashMap<ServiceId, ObservedService> {
        self.gateway.with(|g| g.observed_stats().clone())
    }

    /// The partial-results report so far.
    pub fn partial_results(&self) -> Option<crate::gateway::PartialResults> {
        self.gateway.with(|g| g.partial_results())
    }

    /// The execution error that poisoned the stream, if any.
    pub fn error(&self) -> Option<ExecError> {
        self.gateway.with(|g| g.error().cloned())
    }

    /// This execution's span track, when the shared state carries a
    /// trace recorder.
    pub fn trace(&self) -> Option<mdq_obs::recorder::QueryTrace> {
        self.gateway.with(|g| g.trace())
    }

    /// **Finalizes** the execution and returns the per-node runtime
    /// statistics of the current (possibly spliced) plan — see
    /// [`AdaptiveTopK::plan`] for the matching topology. The operator
    /// tree is dropped so every probe flushes; subsequent pulls return
    /// no further answers.
    pub fn operator_stats(&mut self) -> Vec<mdq_obs::span::OperatorStats> {
        self.iter = Box::new(Source(std::iter::empty()));
        let mut stats = self.gateway.with(|g| g.node_stats().to_vec());
        derive_rows_in(&self.plan, &mut stats);
        stats
    }
}
