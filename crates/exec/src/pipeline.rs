//! The stage-materialised executor with virtual time.
//!
//! Mirrors the paper's experimental engine (§6): each plan node runs to
//! completion over its whole input before its successors start; parallel
//! branches (incomparable in the topology) overlap in time. *Virtual
//! time* is accounted per node — an invoke node's completion time is its
//! upstream's completion plus the summed latency of the service calls it
//! actually forwarded (cache hits are free); a join completes when both
//! inputs have. The plan's execution time is the Output node's
//! completion — the "total time" bars of Fig. 11, deterministic and
//! independent of the host machine.

use crate::binding::Binding;
use crate::cache::{CacheSetting, CachedResult, CacheStats, ClientCache};
use crate::joins::{MsJoin, NlJoin};
use crate::plan_info::analyze;
use mdq_plan::dag::{JoinStrategy, NodeKind, Plan, Side};
use mdq_model::schema::{Schema, ServiceId};
use mdq_model::value::Tuple;
use mdq_services::registry::ServiceRegistry;
use mdq_services::service::Service;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Execution options.
#[derive(Clone, Copy, Debug)]
pub struct ExecConfig {
    /// Client-side cache setting (§5.1).
    pub cache: CacheSetting,
    /// Truncate the answer list to the best `k` (calls are still made —
    /// the stage-materialised engine does not halt early; see
    /// [`crate::topk`] for the pulling executor that does).
    pub k: Option<usize>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            cache: CacheSetting::OneCall,
            k: None,
        }
    }
}

/// Per-node execution trace.
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeTrace {
    /// Summed latency of the calls this node forwarded (0 for joins).
    pub busy: f64,
    /// Virtual completion time.
    pub completion: f64,
    /// Tuples received.
    pub in_tuples: usize,
    /// Tuples emitted.
    pub out_tuples: usize,
}

/// The outcome of executing a plan.
#[derive(Clone, Debug)]
pub struct ExecReport {
    /// Answers projected on the query head, in emission (rank) order.
    pub answers: Vec<Tuple>,
    /// Full bindings (for downstream composition / resumption).
    pub bindings: Vec<Binding>,
    /// The Output node's virtual completion time, seconds.
    pub virtual_time: f64,
    /// Request-responses forwarded to each service during this run.
    pub calls: HashMap<ServiceId, u64>,
    /// Client-cache statistics per service.
    pub cache_stats: HashMap<ServiceId, CacheStats>,
    /// Per-node trace, indexed like `plan.nodes`.
    pub node_trace: Vec<NodeTrace>,
}

impl ExecReport {
    /// Calls forwarded to `id` (0 when the service was never invoked).
    pub fn calls_to(&self, id: ServiceId) -> u64 {
        self.calls.get(&id).copied().unwrap_or(0)
    }
}

/// Execution failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// A plan atom's service has no runtime registration.
    MissingService(String),
    /// An input variable was unbound when a node needed it (an
    /// inadmissible plan slipped through — a bug upstream).
    UnboundInput {
        /// Service name of the starving atom.
        service: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MissingService(s) => write!(f, "service `{s}` is not registered"),
            ExecError::UnboundInput { service } => {
                write!(f, "input variable unbound when invoking `{service}`")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Invokes `service` for one input key, fetching `pages` pages (stopping
/// early when the service reports exhaustion). Returns the cached-result
/// record plus the number of request-responses and their summed latency.
pub(crate) fn fetch_pages(
    service: &Arc<dyn Service>,
    pattern: usize,
    key: &[mdq_model::value::Value],
    pages: u32,
) -> (CachedResult, u64, f64) {
    let mut tuples = Vec::new();
    let mut latency = 0.0;
    let mut calls = 0u64;
    let mut exhausted = false;
    let mut page = 0u32;
    while page < pages {
        let r = service.fetch(pattern, key, page);
        calls += 1;
        latency += r.latency;
        tuples.extend(r.tuples);
        page += 1;
        if !r.has_more {
            exhausted = true;
            break;
        }
    }
    (
        CachedResult {
            tuples,
            pages: page,
            exhausted,
        },
        calls,
        latency,
    )
}

/// Executes `plan` against the registered services.
pub fn run(
    plan: &Plan,
    schema: &Schema,
    registry: &ServiceRegistry,
    config: &ExecConfig,
) -> Result<ExecReport, ExecError> {
    let info = analyze(plan, schema);
    let n = plan.nodes.len();
    let mut streams: Vec<Vec<Binding>> = vec![Vec::new(); n];
    let mut trace = vec![NodeTrace::default(); n];
    let mut cache = ClientCache::new(config.cache);
    let mut calls: HashMap<ServiceId, u64> = HashMap::new();

    for i in 0..n {
        let node = &plan.nodes[i];
        match &node.kind {
            NodeKind::Input => {
                streams[i] = vec![Binding::empty(plan.query.var_count())];
                trace[i] = NodeTrace {
                    busy: 0.0,
                    completion: 0.0,
                    in_tuples: 0,
                    out_tuples: 1,
                };
            }
            NodeKind::Invoke { atom } => {
                let up = node.inputs[0].0;
                let atom_ref = &plan.query.atoms[*atom];
                let svc_id = atom_ref.service;
                let sig = schema.service(svc_id);
                let service = registry
                    .get(svc_id)
                    .ok_or_else(|| ExecError::MissingService(sig.name.to_string()))?;
                let pos = plan.position_of(*atom).expect("plan covers atom");
                let pages = plan.fetch_of(pos) as u32;
                let mut busy = 0.0;
                let mut out = Vec::new();
                for b in &streams[up] {
                    let key = b
                        .input_key(atom_ref, &info.input_positions[i])
                        .ok_or_else(|| ExecError::UnboundInput {
                            service: sig.name.to_string(),
                        })?;
                    let result = match cache.lookup(svc_id, &key, pages) {
                        Some(hit) => hit,
                        None => {
                            let (res, c, lat) =
                                fetch_pages(service, info.pattern_of_node[i], &key, pages);
                            *calls.entry(svc_id).or_insert(0) += c;
                            busy += lat;
                            cache.store(svc_id, key, res.clone());
                            res
                        }
                    };
                    for t in &result.tuples {
                        if let Some(nb) = b.bind_atom(atom_ref, t) {
                            if info.preds_at_node[i]
                                .iter()
                                .all(|&p| nb.eval_predicate(&plan.query.predicates[p]) == Some(true))
                            {
                                out.push(nb);
                            }
                        }
                    }
                }
                trace[i] = NodeTrace {
                    busy,
                    completion: trace[up].completion + busy,
                    in_tuples: streams[up].len(),
                    out_tuples: out.len(),
                };
                streams[i] = out;
            }
            NodeKind::Join {
                left,
                right,
                strategy,
                on,
            } => {
                let (l, r) = (left.0, right.0);
                let joined: Vec<Binding> = match strategy {
                    JoinStrategy::MergeScan => MsJoin::new(
                        streams[l].iter().cloned(),
                        streams[r].iter().cloned(),
                        on.clone(),
                    )
                    .collect(),
                    JoinStrategy::NestedLoop { outer: Side::Left } => NlJoin::new(
                        streams[l].iter().cloned(),
                        streams[r].iter().cloned(),
                        on.clone(),
                        true,
                    )
                    .collect(),
                    JoinStrategy::NestedLoop { outer: Side::Right } => NlJoin::new(
                        streams[r].iter().cloned(),
                        streams[l].iter().cloned(),
                        on.clone(),
                        false,
                    )
                    .collect(),
                };
                let filtered: Vec<Binding> = joined
                    .into_iter()
                    .filter(|b| {
                        info.preds_at_node[i].iter().all(|&p| {
                            b.eval_predicate(&plan.query.predicates[p]) == Some(true)
                        })
                    })
                    .collect();
                trace[i] = NodeTrace {
                    busy: 0.0,
                    completion: trace[l].completion.max(trace[r].completion),
                    in_tuples: streams[l].len() + streams[r].len(),
                    out_tuples: filtered.len(),
                };
                streams[i] = filtered;
            }
            NodeKind::Output => {
                let up = node.inputs[0].0;
                let mut out: Vec<Binding> = streams[up]
                    .iter()
                    .filter(|b| {
                        info.preds_at_node[i].iter().all(|&p| {
                            b.eval_predicate(&plan.query.predicates[p]) == Some(true)
                        })
                    })
                    .cloned()
                    .collect();
                if let Some(k) = config.k {
                    out.truncate(k);
                }
                trace[i] = NodeTrace {
                    busy: 0.0,
                    completion: trace[up].completion,
                    in_tuples: streams[up].len(),
                    out_tuples: out.len(),
                };
                streams[i] = out;
            }
        }
    }

    let out_idx = plan.output_node().0;
    let bindings = std::mem::take(&mut streams[out_idx]);
    let answers = bindings.iter().map(|b| b.project_head(&plan.query)).collect();
    let mut cache_stats = HashMap::new();
    for id in registry.ids() {
        cache_stats.insert(id, cache.stats(id));
    }
    Ok(ExecReport {
        answers,
        bindings,
        virtual_time: trace[out_idx].completion,
        calls,
        cache_stats,
        node_trace: trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdq_model::binding::ApChoice;
    use mdq_model::examples::{ATOM_CONF, ATOM_FLIGHT, ATOM_HOTEL, ATOM_WEATHER};
    use mdq_plan::builder::{build_plan, StrategyRule};
    use mdq_plan::poset::Poset;
    use mdq_services::domains::travel::{travel_world, TravelWorld};
    use std::sync::Arc;

    fn plan_o(world: &TravelWorld) -> Plan {
        let poset = Poset::from_pairs(
            4,
            &[
                (ATOM_CONF, ATOM_WEATHER),
                (ATOM_WEATHER, ATOM_FLIGHT),
                (ATOM_WEATHER, ATOM_HOTEL),
            ],
        )
        .expect("valid");
        build_plan(
            Arc::new(world.query.clone()),
            &world.schema,
            ApChoice(vec![0, 0, 0, 0]),
            poset,
            (0..4).collect(),
            &StrategyRule::default(),
        )
        .expect("builds")
    }

    #[test]
    fn plan_o_call_counts_match_fig11_no_cache() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let report = run(
            &plan,
            &w.schema,
            &w.registry,
            &ExecConfig {
                cache: CacheSetting::NoCache,
                k: None,
            },
        )
        .expect("executes");
        assert_eq!(report.calls_to(w.ids.conf), 1);
        assert_eq!(report.calls_to(w.ids.weather), 71);
        assert_eq!(report.calls_to(w.ids.flight), 16);
        assert_eq!(report.calls_to(w.ids.hotel), 16);
        assert!(!report.answers.is_empty());
    }

    #[test]
    fn plan_o_optimal_cache_counts() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let report = run(
            &plan,
            &w.schema,
            &w.registry,
            &ExecConfig {
                cache: CacheSetting::Optimal,
                k: None,
            },
        )
        .expect("executes");
        assert_eq!(report.calls_to(w.ids.weather), 54);
        assert_eq!(report.calls_to(w.ids.flight), 11);
        assert_eq!(report.calls_to(w.ids.hotel), 11);
    }

    #[test]
    fn answers_satisfy_all_predicates() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let report = run(&plan, &w.schema, &w.registry, &ExecConfig::default())
            .expect("executes");
        // head: Conf City HPrice FPrice Start StartTime End EndTime Hotel
        for a in &report.answers {
            let h = a.get(2).as_f64().expect("HPrice");
            let f = a.get(3).as_f64().expect("FPrice");
            assert!(f + h < 2000.0, "price predicate enforced: {a}");
        }
    }

    #[test]
    fn k_truncates_answers() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let full = run(&plan, &w.schema, &w.registry, &ExecConfig::default())
            .expect("executes");
        let topk = run(
            &plan,
            &w.schema,
            &w.registry,
            &ExecConfig {
                cache: CacheSetting::OneCall,
                k: Some(10),
            },
        )
        .expect("executes");
        assert_eq!(topk.answers.len(), 10.min(full.answers.len()));
        assert_eq!(&full.answers[..topk.answers.len()], &topk.answers[..]);
    }

    #[test]
    fn virtual_time_parallel_branch_is_max() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let report = run(
            &plan,
            &w.schema,
            &w.registry,
            &ExecConfig {
                cache: CacheSetting::NoCache,
                k: None,
            },
        )
        .expect("executes");
        // flight branch dominates hotel branch; join completion = max
        let flight_node = plan
            .nodes
            .iter()
            .position(|n| matches!(n.kind, NodeKind::Invoke { atom } if atom == ATOM_FLIGHT))
            .expect("flight");
        let hotel_node = plan
            .nodes
            .iter()
            .position(|n| matches!(n.kind, NodeKind::Invoke { atom } if atom == ATOM_HOTEL))
            .expect("hotel");
        let join_node = plan
            .nodes
            .iter()
            .position(|n| matches!(n.kind, NodeKind::Join { .. }))
            .expect("join");
        let t = &report.node_trace;
        assert!(t[flight_node].completion > t[hotel_node].completion);
        assert!(
            (t[join_node].completion
                - t[flight_node].completion.max(t[hotel_node].completion))
            .abs()
                < 1e-9
        );
        assert!((report.virtual_time - t[join_node].completion).abs() < 1e-9);
    }

    #[test]
    fn missing_service_is_reported() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let empty = mdq_services::registry::ServiceRegistry::new();
        let err = run(&plan, &w.schema, &empty, &ExecConfig::default())
            .expect_err("no services registered");
        assert!(matches!(err, ExecError::MissingService(_)));
    }
}
