//! The stage-materialised executor with virtual time.
//!
//! Mirrors the paper's experimental engine (§6): each plan node runs to
//! completion over its whole input before its successors start; parallel
//! branches (incomparable in the topology) overlap in time. *Virtual
//! time* is accounted per node — an invoke node's completion time is its
//! upstream's completion plus the summed latency of the service calls it
//! actually forwarded (cache hits are free); a join completes when both
//! inputs have. The plan's execution time is the Output node's
//! completion — the "total time" bars of Fig. 11, deterministic and
//! independent of the host machine.
//!
//! This module is a thin *driver* over the [operator
//! kernel](crate::operator): per node it drains one operator into a
//! materialised stream and reads the invoke operator's forwarded
//! latencies for the time accounting. The same driver, under the
//! parallel-dispatch stage-time model, implements the §6
//! multithreading experiment (see
//! [`run_parallel_dispatch`](crate::threaded::run_parallel_dispatch)).

use crate::binding::Binding;
use crate::cache::{CacheSetting, CacheStats};
use crate::gateway::{
    FaultStats, GatewayHandle, LocalGateway, PartialResults, ServiceGateway, SharedServiceState,
};
use crate::operator::{
    derive_rows_in, drain_all, Filter, Invoke, Join, Probe, Select, Source, DEFAULT_BATCH,
};
use crate::plan_info::analyze;
use mdq_model::rng::Rng;
use mdq_model::schema::{Schema, ServiceId};
use mdq_model::value::Tuple;
use mdq_obs::span::OperatorStats;
use mdq_plan::dag::{NodeKind, Plan};
use mdq_services::registry::ServiceRegistry;
use std::collections::HashMap;

pub use crate::operator::ExecError;

/// Execution options.
#[derive(Clone, Copy, Debug)]
pub struct ExecConfig {
    /// Client-side cache setting (§5.1).
    pub cache: CacheSetting,
    /// Truncate the answer list to the best `k` (calls are still made —
    /// the stage-materialised engine does not halt early; see
    /// [`crate::topk`] for the pulling executor that does).
    pub k: Option<usize>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            cache: CacheSetting::OneCall,
            k: None,
        }
    }
}

/// Per-node execution trace.
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeTrace {
    /// Summed latency of the calls this node forwarded (0 for joins).
    pub busy: f64,
    /// Virtual completion time.
    pub completion: f64,
    /// Tuples received.
    pub in_tuples: usize,
    /// Tuples emitted.
    pub out_tuples: usize,
}

/// The outcome of executing a plan.
#[derive(Clone, Debug)]
pub struct ExecReport {
    /// Answers projected on the query head, in emission (rank) order.
    pub answers: Vec<Tuple>,
    /// Full bindings (for downstream composition / resumption).
    pub bindings: Vec<Binding>,
    /// The Output node's virtual completion time, seconds.
    pub virtual_time: f64,
    /// Request-responses forwarded to each service during this run.
    pub calls: HashMap<ServiceId, u64>,
    /// Client-cache statistics per service.
    pub cache_stats: HashMap<ServiceId, CacheStats>,
    /// Per-node trace, indexed like `plan.nodes`.
    pub node_trace: Vec<NodeTrace>,
    /// Per-node runtime statistics (EXPLAIN ANALYZE's observed side),
    /// indexed like `plan.nodes`.
    pub operator_stats: Vec<OperatorStats>,
    /// Fault accounting per service (empty with healthy services).
    pub fault_stats: HashMap<ServiceId, FaultStats>,
    /// `Some` when at least one service degraded: the answers are valid
    /// but possibly incomplete, and this names the degraded services.
    pub partial: Option<PartialResults>,
}

impl ExecReport {
    /// Calls forwarded to `id` (0 when the service was never invoked).
    pub fn calls_to(&self, id: ServiceId) -> u64 {
        self.calls.get(&id).copied().unwrap_or(0)
    }

    /// Retries issued against `id` during this run.
    pub fn retries_to(&self, id: ServiceId) -> u64 {
        self.fault_stats.get(&id).map(|s| s.retries).unwrap_or(0)
    }

    /// Whether the run completed with every service healthy.
    pub fn is_complete(&self) -> bool {
        self.partial.is_none()
    }
}

/// How a stage's busy time is derived from its forwarded-call latencies.
pub(crate) enum StageModel {
    /// One call at a time: busy = summed latency (the paper's
    /// experimental engine).
    Sequential,
    /// All of a stage's calls dispatched to parallel workers at once
    /// (§6's multithreading test): busy collapses towards the slowest
    /// call, input order is shuffled to model racy completions.
    ParallelDispatch {
        /// Worker threads available per stage.
        threads: usize,
        /// Virtual seconds of thread-management overhead per input.
        spawn_overhead: f64,
        /// Seed for the completion-order shuffle.
        shuffle_seed: u64,
    },
}

/// Deterministic shuffle: the workspace PRNG seeded per (run, node).
fn shuffle<T>(items: &mut [T], seed: u64) {
    Rng::new(seed).shuffle(items);
}

/// The materialised driver shared by [`run`] and
/// [`run_parallel_dispatch`](crate::threaded::run_parallel_dispatch):
/// drains one kernel operator per plan node, in node order, accounting
/// stage time under the given model.
pub(crate) fn run_materialised(
    plan: &Plan,
    schema: &Schema,
    registry: &ServiceRegistry,
    gateway: ServiceGateway,
    k: Option<usize>,
    stage: &StageModel,
    batch: usize,
) -> Result<ExecReport, ExecError> {
    let info = analyze(plan, schema);
    let gateway = LocalGateway::new(gateway);
    let n = plan.nodes.len();
    let mut streams: Vec<Vec<Binding>> = vec![Vec::new(); n];
    let mut trace = vec![NodeTrace::default(); n];

    for i in 0..n {
        let node = &plan.nodes[i];
        match &node.kind {
            NodeKind::Input => {
                streams[i] = vec![Binding::empty(plan.query.var_count())];
                gateway.with(|g| g.record_node_output(i, 1, 0));
                trace[i] = NodeTrace {
                    busy: 0.0,
                    completion: 0.0,
                    in_tuples: 0,
                    out_tuples: 1,
                };
            }
            NodeKind::Invoke { .. } => {
                let up = node.inputs[0].0;
                let mut inputs = streams[up].clone();
                if let StageModel::ParallelDispatch { shuffle_seed, .. } = stage {
                    shuffle(&mut inputs, shuffle_seed ^ ((i as u64) << 7));
                }
                let in_tuples = inputs.len();
                let mut invoke = Invoke::for_node(
                    plan,
                    schema,
                    &info,
                    i,
                    Source(inputs.into_iter()),
                    gateway.clone(),
                    false,
                    0.0,
                );
                let out: Vec<Binding> = drain_all(
                    Probe::new(
                        Filter::for_node(plan, &info, i, &mut invoke),
                        gateway.clone(),
                        i,
                    ),
                    batch,
                );
                if let Some(err) = gateway.with(|g| g.take_error()) {
                    return Err(err);
                }
                let lats = invoke.input_latencies();
                let busy = match stage {
                    StageModel::Sequential => lats.iter().sum(),
                    StageModel::ParallelDispatch {
                        threads,
                        spawn_overhead,
                        ..
                    } => {
                        let total: f64 = lats.iter().sum();
                        let slowest = lats.iter().copied().fold(0.0, f64::max);
                        slowest.max(total / (*threads).max(1) as f64)
                            + spawn_overhead * in_tuples as f64
                    }
                };
                trace[i] = NodeTrace {
                    busy,
                    completion: trace[up].completion + busy,
                    in_tuples,
                    out_tuples: out.len(),
                };
                streams[i] = out;
            }
            NodeKind::Join {
                left,
                right,
                strategy,
                on,
            } => {
                let (l, r) = (left.0, right.0);
                let joined: Vec<Binding> = drain_all(
                    Probe::new(
                        Filter::for_node(
                            plan,
                            &info,
                            i,
                            Join::new(
                                Source(streams[l].iter().cloned()),
                                Source(streams[r].iter().cloned()),
                                strategy,
                                on.clone(),
                            ),
                        ),
                        gateway.clone(),
                        i,
                    ),
                    batch,
                );
                trace[i] = NodeTrace {
                    busy: 0.0,
                    completion: trace[l].completion.max(trace[r].completion),
                    in_tuples: streams[l].len() + streams[r].len(),
                    out_tuples: joined.len(),
                };
                streams[i] = joined;
            }
            NodeKind::Output => {
                let up = node.inputs[0].0;
                let filtered =
                    Filter::for_node(plan, &info, i, Source(streams[up].iter().cloned()));
                let out: Vec<Binding> = match k {
                    Some(k) => drain_all(
                        Probe::new(Select::new(filtered, k), gateway.clone(), i),
                        batch,
                    ),
                    None => drain_all(Probe::new(filtered, gateway.clone(), i), batch),
                };
                trace[i] = NodeTrace {
                    busy: 0.0,
                    completion: trace[up].completion,
                    in_tuples: streams[up].len(),
                    out_tuples: out.len(),
                };
                streams[i] = out;
            }
        }
    }

    let out_idx = plan.output_node().0;
    let bindings = std::mem::take(&mut streams[out_idx]);
    let answers = bindings
        .iter()
        .map(|b| b.project_head(&plan.query))
        .collect();
    let (calls, cache_stats, fault_stats, partial, mut operator_stats) = gateway.with(|g| {
        (
            g.calls().clone(),
            registry.ids().map(|id| (id, g.cache_stats(id))).collect(),
            g.fault_stats().clone(),
            g.partial_results(),
            g.node_stats().to_vec(),
        )
    });
    derive_rows_in(plan, &mut operator_stats);
    Ok(ExecReport {
        answers,
        bindings,
        virtual_time: trace[out_idx].completion,
        calls,
        cache_stats,
        node_trace: trace,
        fault_stats,
        partial,
        operator_stats,
    })
}

/// Executes `plan` against the registered services.
pub fn run(
    plan: &Plan,
    schema: &Schema,
    registry: &ServiceRegistry,
    config: &ExecConfig,
) -> Result<ExecReport, ExecError> {
    run_with_batch(plan, schema, registry, config, DEFAULT_BATCH)
}

/// [`run`] with an explicit operator batch size. Batching is
/// semantically invisible — demand-exact `next_batch` produces the same
/// answers and call counts at every size — so this knob exists for the
/// equivalence sweep and for tuning, not for behaviour.
pub fn run_with_batch(
    plan: &Plan,
    schema: &Schema,
    registry: &ServiceRegistry,
    config: &ExecConfig,
    batch: usize,
) -> Result<ExecReport, ExecError> {
    run_materialised(
        plan,
        schema,
        registry,
        ServiceGateway::new(plan, schema, registry, config.cache)?,
        config.k,
        &StageModel::Sequential,
        batch,
    )
}

/// Executes `plan` over an existing (typically `Arc`-shared,
/// cross-query) [`SharedServiceState`], with an optional per-query
/// forwarded-call budget — the serving-layer entry point. The state's
/// cache setting governs; pages another query fetched through the same
/// state are hits here.
pub fn run_with_shared(
    plan: &Plan,
    schema: &Schema,
    registry: &ServiceRegistry,
    shared: std::sync::Arc<SharedServiceState>,
    budget: Option<u64>,
    k: Option<usize>,
) -> Result<ExecReport, ExecError> {
    run_materialised(
        plan,
        schema,
        registry,
        ServiceGateway::with_shared(plan, schema, registry, shared, budget)?,
        k,
        &StageModel::Sequential,
        DEFAULT_BATCH,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdq_model::binding::ApChoice;
    use mdq_model::examples::{ATOM_CONF, ATOM_FLIGHT, ATOM_HOTEL, ATOM_WEATHER};
    use mdq_plan::builder::{build_plan, StrategyRule};
    use mdq_plan::poset::Poset;
    use mdq_services::domains::travel::{travel_world, TravelWorld};
    use std::sync::Arc;

    fn plan_o(world: &TravelWorld) -> Plan {
        let poset = Poset::from_pairs(
            4,
            &[
                (ATOM_CONF, ATOM_WEATHER),
                (ATOM_WEATHER, ATOM_FLIGHT),
                (ATOM_WEATHER, ATOM_HOTEL),
            ],
        )
        .expect("valid");
        build_plan(
            Arc::new(world.query.clone()),
            &world.schema,
            ApChoice(vec![0, 0, 0, 0]),
            poset,
            (0..4).collect(),
            &StrategyRule::default(),
        )
        .expect("builds")
    }

    #[test]
    fn plan_o_call_counts_match_fig11_no_cache() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let report = run(
            &plan,
            &w.schema,
            &w.registry,
            &ExecConfig {
                cache: CacheSetting::NoCache,
                k: None,
            },
        )
        .expect("executes");
        assert_eq!(report.calls_to(w.ids.conf), 1);
        assert_eq!(report.calls_to(w.ids.weather), 71);
        assert_eq!(report.calls_to(w.ids.flight), 16);
        assert_eq!(report.calls_to(w.ids.hotel), 16);
        assert!(!report.answers.is_empty());
    }

    #[test]
    fn plan_o_optimal_cache_counts() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let report = run(
            &plan,
            &w.schema,
            &w.registry,
            &ExecConfig {
                cache: CacheSetting::Optimal,
                k: None,
            },
        )
        .expect("executes");
        assert_eq!(report.calls_to(w.ids.weather), 54);
        assert_eq!(report.calls_to(w.ids.flight), 11);
        assert_eq!(report.calls_to(w.ids.hotel), 11);
    }

    #[test]
    fn answers_satisfy_all_predicates() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let report = run(&plan, &w.schema, &w.registry, &ExecConfig::default()).expect("executes");
        // head: Conf City HPrice FPrice Start StartTime End EndTime Hotel
        for a in &report.answers {
            let h = a.get(2).as_f64().expect("HPrice");
            let f = a.get(3).as_f64().expect("FPrice");
            assert!(f + h < 2000.0, "price predicate enforced: {a}");
        }
    }

    #[test]
    fn k_truncates_answers() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let full = run(&plan, &w.schema, &w.registry, &ExecConfig::default()).expect("executes");
        let topk = run(
            &plan,
            &w.schema,
            &w.registry,
            &ExecConfig {
                cache: CacheSetting::OneCall,
                k: Some(10),
            },
        )
        .expect("executes");
        assert_eq!(topk.answers.len(), 10.min(full.answers.len()));
        assert_eq!(&full.answers[..topk.answers.len()], &topk.answers[..]);
    }

    #[test]
    fn virtual_time_parallel_branch_is_max() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let report = run(
            &plan,
            &w.schema,
            &w.registry,
            &ExecConfig {
                cache: CacheSetting::NoCache,
                k: None,
            },
        )
        .expect("executes");
        // flight branch dominates hotel branch; join completion = max
        let flight_node = plan
            .nodes
            .iter()
            .position(|n| matches!(n.kind, NodeKind::Invoke { atom } if atom == ATOM_FLIGHT))
            .expect("flight");
        let hotel_node = plan
            .nodes
            .iter()
            .position(|n| matches!(n.kind, NodeKind::Invoke { atom } if atom == ATOM_HOTEL))
            .expect("hotel");
        let join_node = plan
            .nodes
            .iter()
            .position(|n| matches!(n.kind, NodeKind::Join { .. }))
            .expect("join");
        let t = &report.node_trace;
        assert!(t[flight_node].completion > t[hotel_node].completion);
        assert!(
            (t[join_node].completion - t[flight_node].completion.max(t[hotel_node].completion))
                .abs()
                < 1e-9
        );
        assert!((report.virtual_time - t[join_node].completion).abs() < 1e-9);
    }

    #[test]
    fn missing_service_is_reported() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let empty = mdq_services::registry::ServiceRegistry::new();
        let err = run(&plan, &w.schema, &empty, &ExecConfig::default())
            .expect_err("no services registered");
        assert!(matches!(err, ExecError::MissingService(_)));
    }
}
