//! The pull-based top-k executor.
//!
//! §2.2: "we retrieve only the fraction of tuples of proliferative
//! services that are sufficient to obtain the first k query answers …
//! we also assume that a plan execution can be continued, by producing
//! more answers". This executor [`compile`]s the plan into one lazy
//! operator tree over a shared [`ServiceGateway`] and *pulls* answers
//! one at a time: services are fetched page by page exactly as demanded
//! downstream, so asking for `k` answers halts all proliferative
//! retrieval as early as the join strategies allow — and asking again
//! resumes where it stopped.
//!
//! In *elastic* mode the phase-3 fetch factors are treated as a starting
//! hint rather than a hard page budget: a node keeps paging (within the
//! service's actual data) while downstream demand is unmet.

use crate::cache::CacheSetting;
use crate::gateway::{GatewayHandle, LocalGateway, ServiceGateway, SharedServiceState};
use crate::operator::{compile, ExecError, Operator};
use crate::plan_info::analyze;
use mdq_model::schema::{Schema, ServiceId};
use mdq_model::value::Tuple;
use mdq_plan::dag::Plan;
use mdq_services::registry::ServiceRegistry;
use std::sync::Arc;

/// A running pull execution: ask for answers one at a time, or in
/// batches; execution state (fetched pages, cache, upstream cursors)
/// persists between calls — the §2.2 "ask for more" continuation.
pub struct TopKExecution {
    iter: Box<dyn Operator>,
    gateway: LocalGateway,
    query: Arc<mdq_model::query::ConjunctiveQuery>,
}

impl TopKExecution {
    /// Prepares a pull execution of `plan`. With `elastic = true` the
    /// fetch factors become soft hints (paging continues on demand).
    pub fn new(
        plan: &Plan,
        schema: &Schema,
        registry: &ServiceRegistry,
        cache: CacheSetting,
        elastic: bool,
    ) -> Result<Self, ExecError> {
        Self::over(
            plan,
            schema,
            ServiceGateway::new(plan, schema, registry, cache)?,
            elastic,
        )
    }

    /// Prepares a pull execution over an existing (typically
    /// `Arc`-shared, cross-query) [`SharedServiceState`], with an
    /// optional per-query forwarded-call budget — the serving-layer
    /// entry point.
    pub fn with_shared(
        plan: &Plan,
        schema: &Schema,
        registry: &ServiceRegistry,
        shared: Arc<SharedServiceState>,
        budget: Option<u64>,
        elastic: bool,
    ) -> Result<Self, ExecError> {
        Self::over(
            plan,
            schema,
            ServiceGateway::with_shared(plan, schema, registry, shared, budget)?,
            elastic,
        )
    }

    fn over(
        plan: &Plan,
        schema: &Schema,
        gateway: ServiceGateway,
        elastic: bool,
    ) -> Result<Self, ExecError> {
        let info = analyze(plan, schema);
        let gateway = LocalGateway::new(gateway);
        let iter = compile(plan, schema, &info, &gateway, elastic);
        Ok(TopKExecution {
            iter,
            gateway,
            query: Arc::clone(&plan.query),
        })
    }

    /// Pulls the next answer (projected on the query head). A stream
    /// can also end because execution failed mid-pull (an inadmissible
    /// plan reaching an unbound input) — check [`TopKExecution::error`]
    /// to distinguish that from genuine exhaustion.
    pub fn next_answer(&mut self) -> Option<Tuple> {
        self.iter
            .next_binding()
            .map(|b| b.project_head(&self.query))
    }

    /// The execution error that poisoned the stream, if any. Mirrors
    /// the `Err` the materialised driver returns for the same plan.
    pub fn error(&self) -> Option<ExecError> {
        self.gateway.with(|g| g.error().cloned())
    }

    /// Pulls up to `k` further answers.
    pub fn answers(&mut self, k: usize) -> Vec<Tuple> {
        let mut out = Vec::with_capacity(k.min(1024));
        for _ in 0..k {
            match self.next_answer() {
                Some(a) => out.push(a),
                None => break,
            }
        }
        out
    }

    /// Request-responses forwarded to `id` so far.
    pub fn calls_to(&self, id: ServiceId) -> u64 {
        self.gateway.with(|g| g.calls_to(id))
    }

    /// Total request-responses so far.
    pub fn total_calls(&self) -> u64 {
        self.gateway.with(|g| g.total_calls())
    }

    /// Summed simulated latency of all forwarded calls.
    pub fn total_latency(&self) -> f64 {
        self.gateway.with(|g| g.total_latency())
    }

    /// Fault accounting per service so far (empty while healthy).
    pub fn fault_stats(&self) -> std::collections::HashMap<ServiceId, crate::gateway::FaultStats> {
        self.gateway.with(|g| g.fault_stats().clone())
    }

    /// Retries issued against `id` so far.
    pub fn retries_to(&self, id: ServiceId) -> u64 {
        self.gateway.with(|g| g.retries_to(id))
    }

    /// The partial-results report so far: `Some` once any service has
    /// served this execution a degraded page.
    pub fn partial_results(&self) -> Option<crate::gateway::PartialResults> {
        self.gateway.with(|g| g.partial_results())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run, ExecConfig};
    use mdq_model::binding::ApChoice;
    use mdq_model::examples::{ATOM_CONF, ATOM_FLIGHT, ATOM_HOTEL, ATOM_WEATHER};
    use mdq_plan::builder::{build_plan, StrategyRule};
    use mdq_plan::poset::Poset;
    use mdq_services::domains::travel::travel_world;

    fn plan_o(world: &mdq_services::domains::travel::TravelWorld) -> Plan {
        let poset = Poset::from_pairs(
            4,
            &[
                (ATOM_CONF, ATOM_WEATHER),
                (ATOM_WEATHER, ATOM_FLIGHT),
                (ATOM_WEATHER, ATOM_HOTEL),
            ],
        )
        .expect("valid");
        build_plan(
            Arc::new(world.query.clone()),
            &world.schema,
            ApChoice(vec![0, 0, 0, 0]),
            poset,
            (0..4).collect(),
            &StrategyRule::default(),
        )
        .expect("builds")
    }

    #[test]
    fn pull_answers_match_materialised_run() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let full = run(&plan, &w.schema, &w.registry, &ExecConfig::default()).expect("executes");
        let mut pull =
            TopKExecution::new(&plan, &w.schema, &w.registry, CacheSetting::OneCall, false)
                .expect("builds");
        let pulled = pull.answers(usize::MAX >> 1);
        let mut a = full.answers.clone();
        let mut b = pulled.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "same answer set as the materialised executor");
    }

    #[test]
    fn early_halt_saves_calls() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        // pull just one answer: far fewer calls than the full run
        let mut pull =
            TopKExecution::new(&plan, &w.schema, &w.registry, CacheSetting::OneCall, false)
                .expect("builds");
        let first = pull.next_answer();
        assert!(first.is_some());
        let calls_after_one = pull.total_calls();
        let full = run(
            &plan,
            &w.schema,
            &w.registry,
            &ExecConfig {
                cache: CacheSetting::OneCall,
                k: None,
            },
        )
        .expect("executes");
        let full_calls: u64 = full.calls.values().sum();
        assert!(
            calls_after_one < full_calls,
            "pull {calls_after_one} < full {full_calls}"
        );
    }

    #[test]
    fn continuation_produces_more_answers() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let mut pull =
            TopKExecution::new(&plan, &w.schema, &w.registry, CacheSetting::OneCall, false)
                .expect("builds");
        let first_batch = pull.answers(5);
        assert_eq!(first_batch.len(), 5);
        let second_batch = pull.answers(5);
        assert_eq!(second_batch.len(), 5);
        assert_ne!(first_batch, second_batch, "progresses through results");
    }

    #[test]
    fn elastic_mode_pages_beyond_fetch_factor() {
        let w = travel_world(2008);
        let mut plan = plan_o(&w);
        // F = 1 page per service; elastic mode may still fetch deeper
        plan.set_fetch(ATOM_FLIGHT, 1);
        plan.set_fetch(ATOM_HOTEL, 1);
        let mut strict =
            TopKExecution::new(&plan, &w.schema, &w.registry, CacheSetting::Optimal, false)
                .expect("builds");
        let strict_all = strict.answers(100_000).len();
        let mut elastic =
            TopKExecution::new(&plan, &w.schema, &w.registry, CacheSetting::Optimal, true)
                .expect("builds");
        let elastic_all = elastic.answers(100_000).len();
        assert!(
            elastic_all >= strict_all,
            "elastic ({elastic_all}) ⊇ strict ({strict_all})"
        );
    }
}
