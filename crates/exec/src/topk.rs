//! The pull-based top-k executor.
//!
//! §2.2: "we retrieve only the fraction of tuples of proliferative
//! services that are sufficient to obtain the first k query answers …
//! we also assume that a plan execution can be continued, by producing
//! more answers". This executor [`compile`](crate::operator::compile)s
//! the plan into one lazy
//! operator tree over a shared [`ServiceGateway`] and *pulls* answers
//! one at a time: services are fetched page by page exactly as demanded
//! downstream, so asking for `k` answers halts all proliferative
//! retrieval as early as the join strategies allow — and asking again
//! resumes where it stopped.
//!
//! In *elastic* mode the phase-3 fetch factors are treated as a starting
//! hint rather than a hard page budget: a node keeps paging (within the
//! service's actual data) while downstream demand is unmet.

use crate::binding::Binding;
use crate::cache::CacheSetting;
use crate::gateway::{
    GatewayHandle, LocalGateway, PrefixResolution, ServiceGateway, SharedServiceState, TenantId,
};
use crate::operator::{
    compile_with, drain_all, ExecError, Filter, Invoke, Operator, Source, DEFAULT_BATCH,
};
use crate::plan_info::{analyze, PlanInfo};
use mdq_model::fingerprint::SubplanSignature;
use mdq_model::schema::{Schema, ServiceId};
use mdq_model::value::{Tuple, Value};
use mdq_plan::dag::Plan;
use mdq_plan::signature::invoke_prefixes;
use mdq_services::registry::ServiceRegistry;
use std::sync::Arc;

/// A running pull execution: ask for answers one at a time, or in
/// batches; execution state (fetched pages, cache, upstream cursors)
/// persists between calls — the §2.2 "ask for more" continuation.
pub struct TopKExecution {
    iter: Box<dyn Operator>,
    gateway: LocalGateway,
    query: Arc<mdq_model::query::ConjunctiveQuery>,
    /// Materialized prefixes this execution replayed (0 or 1).
    sub_result_hits: u64,
    /// Forwarded calls the replay saved (the replayed entry's
    /// materializing cost).
    sub_calls_saved: u64,
}

/// What sub-result resolution produced for one pull execution.
struct PrefixOutcome {
    /// Stream standing in for a plan node's whole subtree, if any.
    override_op: Option<(usize, Box<dyn Operator>)>,
    sub_result_hits: u64,
    calls_saved: u64,
}

impl PrefixOutcome {
    fn none() -> Self {
        PrefixOutcome {
            override_op: None,
            sub_result_hits: 0,
            calls_saved: 0,
        }
    }
}

/// Releases unpublished single-flight claims on drop, so a panicking
/// materialization can never leave waiters blocked.
struct SubClaims {
    shared: Arc<SharedServiceState>,
    remaining: Vec<SubplanSignature>,
}

impl SubClaims {
    fn mark_published(&mut self, sig: SubplanSignature) {
        self.remaining.retain(|s| *s != sig);
    }
}

impl Drop for SubClaims {
    fn drop(&mut self) {
        self.shared.abandon_sub_results(&self.remaining);
    }
}

/// The multi-query-optimization hook of the pull executor: probes the
/// shared state's sub-result store for this plan's invoke-prefix chain.
/// The longest already-materialized prefix *replays* (its bindings
/// stand in for the chain's subtree — zero service calls); the levels
/// beyond it are claimed single-flight and *eagerly materialized* (the
/// chain is drained here, its rows published for every later
/// subscriber). With the store disabled — the default — this is a no-op
/// and execution is exactly the pre-MQO pull engine.
///
/// A materialization that turns unhealthy (poisoned gateway, degraded
/// page) publishes nothing: a partial prefix must never replay to
/// others, and the drained stream still serves *this* execution, which
/// observed the degradation itself.
fn prepare_shared_prefix(
    plan: &Plan,
    schema: &Schema,
    info: &PlanInfo,
    gateway: &LocalGateway,
    elastic: bool,
    materialize: bool,
) -> PrefixOutcome {
    if elastic {
        // elastic paging is demand-driven: its streams are not a
        // deterministic function of the plan, so they never share
        return PrefixOutcome::none();
    }
    let shared = gateway.with(|g| Arc::clone(g.shared_state()));
    let prefixes = invoke_prefixes(plan);
    if prefixes.is_empty() {
        return PrefixOutcome::none();
    }
    let sigs: Vec<SubplanSignature> = prefixes.iter().map(|p| p.signature).collect();
    // a frontier-recording (standing) execution may only replay entries
    // whose own frontier was recorded, and merges it into its own — a
    // provenance-less replay would leave the subscription blind to
    // refreshes of the prefix's invocations
    let frontier_mode = gateway.with(|g| g.frontier_enabled());
    let (replay, claimed) = match shared.resolve_prefixes(&sigs, materialize, frontier_mode) {
        PrefixResolution::Disabled => return PrefixOutcome::none(),
        PrefixResolution::Resolved { replay, claimed } => (replay, claimed),
    };

    let nvars = plan.query.var_count();
    let mut hits = 0u64;
    let mut base_cost = 0u64;
    let mut level = 0usize;
    let mut replayed_rows = 0u64;
    let mut base: Box<dyn Operator> = match replay {
        Some(entry) => {
            hits = 1;
            base_cost = entry.cost_calls;
            level = entry.level;
            replayed_rows = entry.rows.len() as u64;
            if let Some(entry_frontier) = &entry.frontier {
                gateway.with(|g| g.extend_frontier(entry_frontier));
            }
            let sub_vars = prefixes[entry.level - 1].vars.clone();
            let rows = entry.rows;
            if entry.nvars == nvars && entry.vars.as_ref() == sub_vars.as_slice() {
                // same variable space: the stored bindings ARE the
                // replay — every pull is an `Arc` bump, never a deep
                // copy of the materialized set
                Box::new(Source((0..rows.len()).map(move |i| rows[i].clone())))
            } else {
                // different numbering: remap through the canonical row
                // lazily, per pull
                let pub_vars = entry.vars;
                Box::new(Source((0..rows.len()).map(move |i| {
                    Binding::from_row(nvars, &sub_vars, &rows[i].to_row(&pub_vars))
                })))
            }
        }
        None => Box::new(Source(std::iter::once(Binding::empty(nvars)))),
    };
    if hits > 0 {
        let node = prefixes[level - 1].node;
        gateway.with(|g| {
            g.record_node_replay(node, replayed_rows);
            g.trace_span(
                mdq_obs::span::SpanKind::SubResultReplay {
                    level: level as u64,
                    rows: replayed_rows,
                    calls_saved: base_cost,
                },
                0.0,
            );
        });
    }

    let mut claims = SubClaims {
        shared: Arc::clone(&shared),
        remaining: claimed.iter().map(|&l| sigs[l - 1]).collect(),
    };
    let tenant = gateway.with(|g| g.tenant_id());
    let start_calls = gateway.with(|g| g.total_calls());
    for &lvl in &claimed {
        let node = prefixes[lvl - 1].node;
        let invoke = Invoke::for_node(plan, schema, info, node, base, gateway.clone(), false, 0.0);
        // the eager drain runs batched: whole pages flow through the
        // chain per gateway-lock acquisition instead of tuple-at-a-time
        let drained: Vec<Binding> =
            drain_all(Filter::for_node(plan, info, node, invoke), DEFAULT_BATCH);
        let healthy = gateway.with(|g| g.error().is_none() && !g.is_degraded());
        if healthy {
            let cost = base_cost + gateway.with(|g| g.total_calls()) - start_calls;
            // publishing shares the drained bindings (`Arc` bumps) —
            // the store never holds a deep copy of the rows. A standing
            // publisher attaches its frontier so far: after this level's
            // drain it is exactly the prefix's invocation set.
            shared.publish_sub_result(
                sigs[lvl - 1],
                drained.clone(),
                prefixes[lvl - 1].vars.clone().into(),
                nvars,
                cost,
                tenant,
                gateway.with(|g| g.frontier_snapshot()),
            );
            claims.mark_published(sigs[lvl - 1]);
            gateway.with(|g| {
                g.trace_span(
                    mdq_obs::span::SpanKind::SubResultMaterialize {
                        level: lvl as u64,
                        rows: drained.len() as u64,
                    },
                    0.0,
                )
            });
        }
        base = Box::new(Source(drained.into_iter()));
        level = lvl;
        if !healthy {
            // the guard abandons the remaining claims on drop
            break;
        }
    }
    drop(claims);

    if level == 0 {
        return PrefixOutcome::none();
    }
    PrefixOutcome {
        override_op: Some((prefixes[level - 1].node, base)),
        sub_result_hits: hits,
        calls_saved: base_cost,
    }
}

impl TopKExecution {
    /// Prepares a pull execution of `plan`. With `elastic = true` the
    /// fetch factors become soft hints (paging continues on demand).
    pub fn new(
        plan: &Plan,
        schema: &Schema,
        registry: &ServiceRegistry,
        cache: CacheSetting,
        elastic: bool,
    ) -> Result<Self, ExecError> {
        Self::over(
            plan,
            schema,
            ServiceGateway::new(plan, schema, registry, cache)?,
            elastic,
            true,
        )
    }

    /// Prepares a pull execution over an existing (typically
    /// `Arc`-shared, cross-query) [`SharedServiceState`], with an
    /// optional per-query forwarded-call budget — the serving-layer
    /// entry point. Sub-result sharing (when the state's store is
    /// enabled) is fully opportunistic: already-materialized prefixes
    /// replay, unmaterialized ones are claimed and materialized here;
    /// see [`TopKExecution::with_shared_mqo`] to keep the replay but
    /// skip the eager materialization.
    pub fn with_shared(
        plan: &Plan,
        schema: &Schema,
        registry: &ServiceRegistry,
        shared: Arc<SharedServiceState>,
        budget: Option<u64>,
        elastic: bool,
    ) -> Result<Self, ExecError> {
        Self::with_shared_mqo(plan, schema, registry, shared, budget, elastic, true)
    }

    /// [`TopKExecution::with_shared`] with explicit control over
    /// sub-result *materialization*: with `materialize = false` the
    /// execution still replays an already-materialized prefix (free
    /// work is free) but never eagerly drains its own chain to publish
    /// one. The admission batcher passes `false` for queries whose
    /// prefix overlaps nothing — paying the eager-drain cost for a
    /// prefix nobody else wants is the classic MQO anti-pattern.
    #[allow(clippy::too_many_arguments)] // serving-layer entry point: one knob per policy
    pub fn with_shared_mqo(
        plan: &Plan,
        schema: &Schema,
        registry: &ServiceRegistry,
        shared: Arc<SharedServiceState>,
        budget: Option<u64>,
        elastic: bool,
        materialize: bool,
    ) -> Result<Self, ExecError> {
        Self::with_shared_tenant(
            plan,
            schema,
            registry,
            shared,
            budget,
            elastic,
            materialize,
            None,
        )
    }

    /// [`TopKExecution::with_shared_mqo`] attributed to a tenant: every
    /// forwarded call (the eager prefix drain included — it runs during
    /// construction) is charged against the tenant's cumulative budget
    /// in the shared state, and prefixes this execution materializes
    /// are published under the tenant's sub-result store quota.
    #[allow(clippy::too_many_arguments)] // serving-layer entry point: one knob per policy
    pub fn with_shared_tenant(
        plan: &Plan,
        schema: &Schema,
        registry: &ServiceRegistry,
        shared: Arc<SharedServiceState>,
        budget: Option<u64>,
        elastic: bool,
        materialize: bool,
        tenant: Option<TenantId>,
    ) -> Result<Self, ExecError> {
        let mut gateway = ServiceGateway::with_shared(plan, schema, registry, shared, budget)?;
        if let Some(t) = tenant {
            gateway.set_tenant(t);
        }
        Self::over(plan, schema, gateway, elastic, materialize)
    }

    /// Prepares a *standing* pull execution — the subscription path.
    /// The one deliberate difference from
    /// [`TopKExecution::with_shared_tenant`]: the gateway records the
    /// execution's invocation **frontier** (every `(service, pattern,
    /// key)` it demands, cache-served or forwarded — the dependency
    /// set a refresh pass intersects with its changed invocations).
    ///
    /// Standing executions *do* join the sub-result store, with two
    /// frontier-specific rules enforced underneath: they only replay
    /// entries that carry a recorded [`InvocationFrontier`] (merged
    /// into this execution's own frontier, so replayed dependencies
    /// still refresh), and the entries they publish carry one (so a
    /// refresh pass can retain exactly the entries whose invocations
    /// came through an epoch unchanged — a stale prefix can no longer
    /// resurrect a previous epoch). Fetch factors stay strict for the
    /// same reproducibility reason elastic mode is excluded from
    /// sharing. `materialize` is the batch MQO decision, as in
    /// [`TopKExecution::with_shared_mqo`]: the refresh pipeline passes
    /// `true` only when the prefix overlaps another standing query (or
    /// is already materialized).
    ///
    /// [`InvocationFrontier`]: crate::gateway::InvocationFrontier
    pub fn standing(
        plan: &Plan,
        schema: &Schema,
        registry: &ServiceRegistry,
        shared: Arc<SharedServiceState>,
        budget: Option<u64>,
        materialize: bool,
        tenant: Option<TenantId>,
    ) -> Result<Self, ExecError> {
        let mut gateway = ServiceGateway::with_shared(plan, schema, registry, shared, budget)?;
        if let Some(t) = tenant {
            gateway.set_tenant(t);
        }
        gateway.enable_frontier();
        Self::over(plan, schema, gateway, false, materialize)
    }

    /// The invocation frontier recorded so far: every `(service,
    /// pattern, input-key)` this execution demanded. Empty unless the
    /// execution was prepared with [`TopKExecution::standing`].
    pub fn frontier(&self) -> Vec<(ServiceId, usize, Vec<Value>)> {
        self.gateway.with(|g| {
            g.frontier()
                .map(|f| f.iter().cloned().collect())
                .unwrap_or_default()
        })
    }

    fn over(
        plan: &Plan,
        schema: &Schema,
        gateway: ServiceGateway,
        elastic: bool,
        materialize: bool,
    ) -> Result<Self, ExecError> {
        let info = analyze(plan, schema);
        let gateway = LocalGateway::new(gateway);
        let prep = prepare_shared_prefix(plan, schema, &info, &gateway, elastic, materialize);
        let iter = compile_with(plan, schema, &info, &gateway, elastic, prep.override_op);
        Ok(TopKExecution {
            iter,
            gateway,
            query: Arc::clone(&plan.query),
            sub_result_hits: prep.sub_result_hits,
            sub_calls_saved: prep.calls_saved,
        })
    }

    /// Pulls the next answer (projected on the query head). A stream
    /// can also end because execution failed mid-pull (an inadmissible
    /// plan reaching an unbound input) — check [`TopKExecution::error`]
    /// to distinguish that from genuine exhaustion.
    pub fn next_answer(&mut self) -> Option<Tuple> {
        self.iter
            .next_binding()
            .map(|b| b.project_head(&self.query))
    }

    /// The execution error that poisoned the stream, if any. Mirrors
    /// the `Err` the materialised driver returns for the same plan.
    pub fn error(&self) -> Option<ExecError> {
        self.gateway.with(|g| g.error().cloned())
    }

    /// Pulls up to `k` further answers, in batches of at most
    /// [`DEFAULT_BATCH`]. Batched demand is exact: `next_batch(n)` does
    /// precisely the work of `n` single pulls, so early halting and
    /// call counts are identical to answer-at-a-time pulling.
    pub fn answers(&mut self, k: usize) -> Vec<Tuple> {
        let mut out = Vec::with_capacity(k.min(1024));
        let mut batch = crate::operator::Batch::new();
        while out.len() < k {
            let want = (k - out.len()).min(DEFAULT_BATCH);
            batch.clear();
            let got = self.iter.next_batch(want, &mut batch);
            out.extend(batch.drain(..).map(|b| b.project_head(&self.query)));
            if got < want {
                break;
            }
        }
        out
    }

    /// Request-responses forwarded to `id` so far.
    pub fn calls_to(&self, id: ServiceId) -> u64 {
        self.gateway.with(|g| g.calls_to(id))
    }

    /// Total request-responses so far.
    pub fn total_calls(&self) -> u64 {
        self.gateway.with(|g| g.total_calls())
    }

    /// Summed simulated latency of all forwarded calls.
    pub fn total_latency(&self) -> f64 {
        self.gateway.with(|g| g.total_latency())
    }

    /// Fault accounting per service so far (empty while healthy).
    pub fn fault_stats(&self) -> std::collections::HashMap<ServiceId, crate::gateway::FaultStats> {
        self.gateway.with(|g| g.fault_stats().clone())
    }

    /// Retries issued against `id` so far.
    pub fn retries_to(&self, id: ServiceId) -> u64 {
        self.gateway.with(|g| g.retries_to(id))
    }

    /// The partial-results report so far: `Some` once any service has
    /// served this execution a degraded page.
    pub fn partial_results(&self) -> Option<crate::gateway::PartialResults> {
        self.gateway.with(|g| g.partial_results())
    }

    /// Materialized invoke prefixes this execution replayed from the
    /// shared sub-result store (0 with the store disabled, at most 1 —
    /// the longest materialized prefix of the plan's chain).
    pub fn sub_result_hits(&self) -> u64 {
        self.sub_result_hits
    }

    /// Forwarded service calls the replay saved this execution — the
    /// materializing cost of the replayed entry. Reconciles with the
    /// shared state's cumulative
    /// [`SubResultStats::calls_saved`](crate::gateway::SubResultStats).
    pub fn sub_result_calls_saved(&self) -> u64 {
        self.sub_calls_saved
    }

    /// This execution's span track, when the shared state carries a
    /// trace recorder. The serving layer records `query_start` /
    /// `query_done` correlation events here.
    pub fn trace(&self) -> Option<mdq_obs::recorder::QueryTrace> {
        self.gateway.with(|g| g.trace())
    }

    /// **Finalizes** the execution and returns its per-node runtime
    /// statistics (EXPLAIN ANALYZE's observed side) for `plan` — which
    /// must be the plan this execution was prepared from. The operator
    /// tree is dropped so every probe flushes its counts (this is what
    /// makes the numbers exact under top-k early halting); subsequent
    /// pulls return no further answers.
    pub fn operator_stats(&mut self, plan: &Plan) -> Vec<mdq_obs::span::OperatorStats> {
        self.iter = Box::new(Source(std::iter::empty()));
        let mut stats = self.gateway.with(|g| g.node_stats().to_vec());
        crate::operator::derive_rows_in(plan, &mut stats);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run, ExecConfig};
    use mdq_model::binding::ApChoice;
    use mdq_model::examples::{ATOM_CONF, ATOM_FLIGHT, ATOM_HOTEL, ATOM_WEATHER};
    use mdq_plan::builder::{build_plan, StrategyRule};
    use mdq_plan::poset::Poset;
    use mdq_services::domains::travel::travel_world;

    fn plan_o(world: &mdq_services::domains::travel::TravelWorld) -> Plan {
        let poset = Poset::from_pairs(
            4,
            &[
                (ATOM_CONF, ATOM_WEATHER),
                (ATOM_WEATHER, ATOM_FLIGHT),
                (ATOM_WEATHER, ATOM_HOTEL),
            ],
        )
        .expect("valid");
        build_plan(
            Arc::new(world.query.clone()),
            &world.schema,
            ApChoice(vec![0, 0, 0, 0]),
            poset,
            (0..4).collect(),
            &StrategyRule::default(),
        )
        .expect("builds")
    }

    #[test]
    fn pull_answers_match_materialised_run() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let full = run(&plan, &w.schema, &w.registry, &ExecConfig::default()).expect("executes");
        let mut pull =
            TopKExecution::new(&plan, &w.schema, &w.registry, CacheSetting::OneCall, false)
                .expect("builds");
        let pulled = pull.answers(usize::MAX >> 1);
        let mut a = full.answers.clone();
        let mut b = pulled.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "same answer set as the materialised executor");
    }

    #[test]
    fn early_halt_saves_calls() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        // pull just one answer: far fewer calls than the full run
        let mut pull =
            TopKExecution::new(&plan, &w.schema, &w.registry, CacheSetting::OneCall, false)
                .expect("builds");
        let first = pull.next_answer();
        assert!(first.is_some());
        let calls_after_one = pull.total_calls();
        let full = run(
            &plan,
            &w.schema,
            &w.registry,
            &ExecConfig {
                cache: CacheSetting::OneCall,
                k: None,
            },
        )
        .expect("executes");
        let full_calls: u64 = full.calls.values().sum();
        assert!(
            calls_after_one < full_calls,
            "pull {calls_after_one} < full {full_calls}"
        );
    }

    #[test]
    fn continuation_produces_more_answers() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let mut pull =
            TopKExecution::new(&plan, &w.schema, &w.registry, CacheSetting::OneCall, false)
                .expect("builds");
        let first_batch = pull.answers(5);
        assert_eq!(first_batch.len(), 5);
        let second_batch = pull.answers(5);
        assert_eq!(second_batch.len(), 5);
        assert_ne!(first_batch, second_batch, "progresses through results");
    }

    #[test]
    fn sub_result_store_replays_shared_prefixes() {
        // two pull executions of the same plan over one shared state
        // with the sub-result store on: the first materializes the
        // conf → weather prefix, the second replays it without touching
        // either service — and still produces identical answers
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let shared = Arc::new(
            crate::gateway::SharedServiceState::new(CacheSetting::NoCache, 0).with_sub_results(8),
        );
        let mut first = TopKExecution::with_shared(
            &plan,
            &w.schema,
            &w.registry,
            Arc::clone(&shared),
            None,
            false,
        )
        .expect("builds");
        let a = first.answers(usize::MAX >> 1);
        assert_eq!(first.sub_result_hits(), 0, "nothing to replay yet");
        let stats = shared.sub_result_stats();
        assert!(stats.entries >= 2, "conf and conf→weather materialized");
        let conf_calls = shared.calls().get(&w.ids.conf).copied().unwrap_or(0);
        let weather_calls = shared.calls().get(&w.ids.weather).copied().unwrap_or(0);

        let mut second = TopKExecution::with_shared(
            &plan,
            &w.schema,
            &w.registry,
            Arc::clone(&shared),
            None,
            false,
        )
        .expect("builds");
        let b = second.answers(usize::MAX >> 1);
        assert_eq!(a, b, "replayed prefix yields identical answers");
        assert_eq!(second.sub_result_hits(), 1);
        assert!(second.sub_result_calls_saved() > 0);
        // no-cache shared state: only the replay can explain the flat
        // call counts on the prefix services
        assert_eq!(
            shared.calls().get(&w.ids.conf).copied().unwrap_or(0),
            conf_calls,
            "conf not re-invoked"
        );
        assert_eq!(
            shared.calls().get(&w.ids.weather).copied().unwrap_or(0),
            weather_calls,
            "weather not re-invoked"
        );
        assert_eq!(shared.sub_result_stats().hits, 1);
        assert_eq!(
            shared.sub_result_stats().calls_saved,
            second.sub_result_calls_saved(),
            "per-execution attribution reconciles with the store"
        );
    }

    #[test]
    fn replay_shares_stored_rows_without_copying() {
        // materialize a prefix, then assert the replay path is zero-copy
        // end to end: the store hands out the same `Arc` of rows on
        // every resolution, and a same-variable-space subscriber's
        // replayed bindings share value storage with the stored ones
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let shared = Arc::new(
            crate::gateway::SharedServiceState::new(CacheSetting::NoCache, 0).with_sub_results(8),
        );
        let mut first = TopKExecution::with_shared(
            &plan,
            &w.schema,
            &w.registry,
            Arc::clone(&shared),
            None,
            false,
        )
        .expect("builds");
        first.answers(usize::MAX >> 1);
        let sigs: Vec<SubplanSignature> =
            invoke_prefixes(&plan).iter().map(|p| p.signature).collect();
        let resolve =
            |shared: &SharedServiceState| match shared.resolve_prefixes(&sigs, false, false) {
                PrefixResolution::Resolved {
                    replay: Some(entry),
                    ..
                } => entry,
                _ => panic!("a prefix was materialized above"),
            };
        let r1 = resolve(&shared);
        let r2 = resolve(&shared);
        assert!(!r1.rows.is_empty(), "the prefix produced rows");
        assert!(
            Arc::ptr_eq(&r1.rows, &r2.rows),
            "the store hands out one shared Arc, never a copied row set"
        );
        for (a, b) in r1.rows.iter().zip(r2.rows.iter()) {
            assert!(a.shares_storage(b), "per-row storage is shared too");
        }
        // the subscriber-facing fast path: same plan, same variable
        // space — replayed bindings ARE the stored bindings
        let info = analyze(&plan, &w.schema);
        let gateway = LocalGateway::new(
            ServiceGateway::with_shared(&plan, &w.schema, &w.registry, Arc::clone(&shared), None)
                .expect("builds"),
        );
        let prep = prepare_shared_prefix(&plan, &w.schema, &info, &gateway, false, false);
        let (_, mut op) = prep.override_op.expect("the materialized prefix replays");
        let replayed = op.next_binding().expect("has rows");
        assert!(
            replayed.shares_storage(&r1.rows[0]),
            "same-space replay emits Arc clones of the stored rows, not deep copies"
        );
    }

    #[test]
    fn disabled_store_changes_nothing() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        // default shared state: store capacity 0
        let shared = Arc::new(crate::gateway::SharedServiceState::new(
            CacheSetting::NoCache,
            0,
        ));
        let mut a = TopKExecution::with_shared(
            &plan,
            &w.schema,
            &w.registry,
            Arc::clone(&shared),
            None,
            false,
        )
        .expect("builds");
        let one = a.next_answer();
        assert!(one.is_some());
        assert_eq!(a.sub_result_hits(), 0);
        let stats = shared.sub_result_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
        // lazy as ever: one answer must not have drained the plan
        let mut full = TopKExecution::with_shared(
            &plan,
            &w.schema,
            &w.registry,
            Arc::new(crate::gateway::SharedServiceState::new(
                CacheSetting::NoCache,
                0,
            )),
            None,
            false,
        )
        .expect("builds");
        full.answers(usize::MAX >> 1);
        assert!(
            a.total_calls() < full.total_calls(),
            "no eager materialization with the store off"
        );
    }

    #[test]
    fn standing_records_complete_frontier_and_shares_with_provenance() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let shared = Arc::new(
            crate::gateway::SharedServiceState::new(CacheSetting::Optimal, 0).with_sub_results(8),
        );
        // an ad-hoc run materializes prefixes into the store
        let mut adhoc = TopKExecution::with_shared(
            &plan,
            &w.schema,
            &w.registry,
            Arc::clone(&shared),
            None,
            false,
        )
        .expect("builds");
        let expected = adhoc.answers(usize::MAX >> 1);
        assert!(shared.sub_result_stats().entries > 0);

        // the standing execution must not replay them — ad-hoc entries
        // carry no frontier, and its own frontier has to cover the
        // whole plan, prefix services included. It re-materializes the
        // levels itself (with provenance) instead.
        let mut standing = TopKExecution::standing(
            &plan,
            &w.schema,
            &w.registry,
            Arc::clone(&shared),
            None,
            true,
            None,
        )
        .expect("builds");
        let got = standing.answers(usize::MAX >> 1);
        assert_eq!(
            got, expected,
            "same answers, provenance-less entries skipped"
        );
        assert_eq!(standing.sub_result_hits(), 0, "no frontier-less replay");
        let frontier = standing.frontier();
        assert!(!frontier.is_empty());
        let services: std::collections::HashSet<ServiceId> =
            frontier.iter().map(|(id, _, _)| *id).collect();
        for id in [w.ids.conf, w.ids.weather, w.ids.flight, w.ids.hotel] {
            assert!(services.contains(&id), "frontier covers every service");
        }
        // a second standing run replays the frontier-carrying entry the
        // first one published, forwards nothing, and still records the
        // same complete frontier — the replayed entry's recorded
        // dependencies merge into it
        let mut warm = TopKExecution::standing(
            &plan,
            &w.schema,
            &w.registry,
            Arc::clone(&shared),
            None,
            true,
            None,
        )
        .expect("builds");
        warm.answers(usize::MAX >> 1);
        assert_eq!(warm.total_calls(), 0, "fully replay/cache-served");
        assert_eq!(
            warm.sub_result_hits(),
            1,
            "frontier-carrying entries replay"
        );
        let mut a: Vec<_> = frontier.clone();
        let mut b = warm.frontier();
        a.sort();
        b.sort();
        assert_eq!(a, b, "frontier is demand-identical, not forward-identical");
    }

    #[test]
    fn elastic_mode_pages_beyond_fetch_factor() {
        let w = travel_world(2008);
        let mut plan = plan_o(&w);
        // F = 1 page per service; elastic mode may still fetch deeper
        plan.set_fetch(ATOM_FLIGHT, 1);
        plan.set_fetch(ATOM_HOTEL, 1);
        let mut strict =
            TopKExecution::new(&plan, &w.schema, &w.registry, CacheSetting::Optimal, false)
                .expect("builds");
        let strict_all = strict.answers(100_000).len();
        let mut elastic =
            TopKExecution::new(&plan, &w.schema, &w.registry, CacheSetting::Optimal, true)
                .expect("builds");
        let elastic_all = elastic.answers(100_000).len();
        assert!(
            elastic_all >= strict_all,
            "elastic ({elastic_all}) ⊇ strict ({strict_all})"
        );
    }
}
