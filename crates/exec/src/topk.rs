//! The pull-based top-k executor.
//!
//! §2.2: "we retrieve only the fraction of tuples of proliferative
//! services that are sufficient to obtain the first k query answers …
//! we also assume that a plan execution can be continued, by producing
//! more answers". This executor builds one lazy iterator per plan node
//! and *pulls* answers one at a time: services are fetched page by page
//! exactly as demanded downstream, so asking for `k` answers halts all
//! proliferative retrieval as early as the join strategies allow — and
//! asking again resumes where it stopped.
//!
//! In *elastic* mode the phase-3 fetch factors are treated as a starting
//! hint rather than a hard page budget: a node keeps paging (within the
//! service's actual data) while downstream demand is unmet.

use crate::binding::Binding;
use crate::cache::CacheSetting;
use crate::plan_info::analyze;
use crate::joins::{MsJoin, NlJoin};
use crate::pipeline::ExecError;
use mdq_plan::dag::{JoinStrategy, NodeKind, Plan, Side};
use mdq_model::query::{Atom, Predicate};
use mdq_model::schema::{Schema, ServiceId};
use mdq_model::value::{Tuple, Value};
use mdq_services::registry::ServiceRegistry;
use mdq_services::service::Service;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

/// Pages fetched so far for one invocation key.
#[derive(Clone, Debug, Default)]
struct PageStore {
    pages: Vec<Vec<Tuple>>,
    exhausted: bool,
}

/// Shared pull-execution state: the page-granular client cache and the
/// per-service accounting.
struct Shared {
    setting: CacheSetting,
    one_call: HashMap<ServiceId, (Vec<Value>, PageStore)>,
    optimal: HashMap<(ServiceId, Vec<Value>), PageStore>,
    calls: HashMap<ServiceId, u64>,
    latency_sum: f64,
}

impl Shared {
    fn new(setting: CacheSetting) -> Self {
        Shared {
            setting,
            one_call: HashMap::new(),
            optimal: HashMap::new(),
            calls: HashMap::new(),
            latency_sum: 0.0,
        }
    }

    /// Returns page `page` for the invocation, fetching it if needed.
    /// `None` when the service has no such page.
    fn get_page(
        &mut self,
        id: ServiceId,
        service: &Arc<dyn Service>,
        pattern: usize,
        key: &[Value],
        page: u32,
    ) -> Option<Vec<Tuple>> {
        let store = match self.setting {
            CacheSetting::NoCache => None,
            CacheSetting::OneCall => self
                .one_call
                .get(&id)
                .filter(|(k, _)| k.as_slice() == key)
                .map(|(_, s)| s),
            CacheSetting::Optimal => self.optimal.get(&(id, key.to_vec())),
        };
        if let Some(s) = store {
            if (page as usize) < s.pages.len() {
                return Some(s.pages[page as usize].clone());
            }
            if s.exhausted {
                return None;
            }
        }
        // fetch the missing page (sequential access guaranteed by the
        // iterator protocol: pages are demanded in order)
        let r = service.fetch(pattern, key, page);
        *self.calls.entry(id).or_insert(0) += 1;
        self.latency_sum += r.latency;
        let tuples = r.tuples.clone();
        let record = |s: &mut PageStore| {
            // pages may arrive beyond a cold cache; pad defensively
            while s.pages.len() < page as usize {
                s.pages.push(Vec::new());
            }
            if s.pages.len() == page as usize {
                s.pages.push(r.tuples.clone());
            }
            if !r.has_more {
                s.exhausted = true;
            }
        };
        match self.setting {
            CacheSetting::NoCache => {}
            CacheSetting::OneCall => {
                let entry = self.one_call.entry(id).or_insert_with(|| (key.to_vec(), PageStore::default()));
                if entry.0.as_slice() != key {
                    *entry = (key.to_vec(), PageStore::default());
                }
                record(&mut entry.1);
            }
            CacheSetting::Optimal => {
                let entry = self
                    .optimal
                    .entry((id, key.to_vec()))
                    .or_default();
                record(entry);
            }
        }
        if tuples.is_empty() && page > 0 {
            // an empty trailing page means exhaustion
            return None;
        }
        if tuples.is_empty() {
            None
        } else {
            Some(tuples)
        }
    }
}

struct InvokeIter {
    upstream: Box<dyn Iterator<Item = Binding>>,
    shared: Rc<RefCell<Shared>>,
    service: Arc<dyn Service>,
    svc_id: ServiceId,
    pattern: usize,
    input_positions: Vec<usize>,
    atom: Atom,
    preds: Vec<Predicate>,
    /// Page budget per input (phase-3 fetch factor); `None` = elastic.
    max_pages: Option<u32>,
    current: Option<CurrentInput>,
}

struct CurrentInput {
    binding: Binding,
    key: Vec<Value>,
    next_page: u32,
    buf: VecDeque<Tuple>,
    done: bool,
}

impl Iterator for InvokeIter {
    type Item = Binding;

    fn next(&mut self) -> Option<Binding> {
        loop {
            if let Some(cur) = &mut self.current {
                if let Some(t) = cur.buf.pop_front() {
                    if let Some(nb) = cur.binding.bind_atom(&self.atom, &t) {
                        if self
                            .preds
                            .iter()
                            .all(|p| nb.eval_predicate(p) == Some(true))
                        {
                            return Some(nb);
                        }
                    }
                    continue;
                }
                let within_budget = self
                    .max_pages
                    .map(|m| cur.next_page < m)
                    .unwrap_or(true);
                if !cur.done && within_budget {
                    let fetched = self.shared.borrow_mut().get_page(
                        self.svc_id,
                        &self.service,
                        self.pattern,
                        &cur.key,
                        cur.next_page,
                    );
                    cur.next_page += 1;
                    match fetched {
                        Some(tuples) => {
                            cur.buf = tuples.into();
                        }
                        None => cur.done = true,
                    }
                    continue;
                }
                self.current = None;
            }
            let binding = self.upstream.next()?;
            let key = binding
                .input_key(&self.atom, &self.input_positions)
                .expect("admissible plans bind inputs before invocation");
            self.current = Some(CurrentInput {
                binding,
                key,
                next_page: 0,
                buf: VecDeque::new(),
                done: false,
            });
        }
    }
}

struct FilterPreds<I> {
    inner: I,
    preds: Vec<Predicate>,
}

impl<I: Iterator<Item = Binding>> Iterator for FilterPreds<I> {
    type Item = Binding;
    fn next(&mut self) -> Option<Binding> {
        self.inner
            .by_ref()
            .find(|b| self.preds.iter().all(|p| b.eval_predicate(p) == Some(true)))
    }
}

/// A running pull execution: ask for answers one at a time, or in
/// batches; execution state (fetched pages, cache, upstream cursors)
/// persists between calls — the §2.2 "ask for more" continuation.
pub struct TopKExecution {
    iter: Box<dyn Iterator<Item = Binding>>,
    shared: Rc<RefCell<Shared>>,
    query: Arc<mdq_model::query::ConjunctiveQuery>,
}

impl TopKExecution {
    /// Prepares a pull execution of `plan`. With `elastic = true` the
    /// fetch factors become soft hints (paging continues on demand).
    pub fn new(
        plan: &Plan,
        schema: &Schema,
        registry: &ServiceRegistry,
        cache: CacheSetting,
        elastic: bool,
    ) -> Result<Self, ExecError> {
        let info = analyze(plan, schema);
        let shared = Rc::new(RefCell::new(Shared::new(cache)));
        // recursively build iterators from the output node down
        fn build(
            plan: &Plan,
            schema: &Schema,
            registry: &ServiceRegistry,
            info: &crate::plan_info::PlanInfo,
            shared: &Rc<RefCell<Shared>>,
            elastic: bool,
            node: usize,
        ) -> Result<Box<dyn Iterator<Item = Binding>>, ExecError> {
            let preds: Vec<Predicate> = info.preds_at_node[node]
                .iter()
                .map(|&p| plan.query.predicates[p].clone())
                .collect();
            match &plan.nodes[node].kind {
                NodeKind::Input => Ok(Box::new(
                    std::iter::once(Binding::empty(plan.query.var_count())),
                )),
                NodeKind::Output => {
                    let up = plan.nodes[node].inputs[0].0;
                    let inner = build(plan, schema, registry, info, shared, elastic, up)?;
                    Ok(Box::new(FilterPreds { inner, preds }))
                }
                NodeKind::Invoke { atom } => {
                    let up = plan.nodes[node].inputs[0].0;
                    let upstream = build(plan, schema, registry, info, shared, elastic, up)?;
                    let atom_ref = plan.query.atoms[*atom].clone();
                    let svc_id = atom_ref.service;
                    let sig = schema.service(svc_id);
                    let service = registry
                        .get(svc_id)
                        .ok_or_else(|| ExecError::MissingService(sig.name.to_string()))?
                        .clone();
                    let pos = plan.position_of(*atom).expect("covered");
                    Ok(Box::new(InvokeIter {
                        upstream,
                        shared: Rc::clone(shared),
                        service,
                        svc_id,
                        pattern: info.pattern_of_node[node],
                        input_positions: info.input_positions[node].clone(),
                        atom: atom_ref,
                        preds,
                        max_pages: if elastic {
                            None
                        } else {
                            Some(plan.fetch_of(pos) as u32)
                        },
                        current: None,
                    }))
                }
                NodeKind::Join {
                    left,
                    right,
                    strategy,
                    on,
                } => {
                    let l = build(plan, schema, registry, info, shared, elastic, left.0)?;
                    let r = build(plan, schema, registry, info, shared, elastic, right.0)?;
                    let joined: Box<dyn Iterator<Item = Binding>> = match strategy {
                        JoinStrategy::MergeScan => Box::new(MsJoin::new(l, r, on.clone())),
                        JoinStrategy::NestedLoop { outer: Side::Left } => {
                            Box::new(NlJoin::new(l, r, on.clone(), true))
                        }
                        JoinStrategy::NestedLoop { outer: Side::Right } => {
                            Box::new(NlJoin::new(r, l, on.clone(), false))
                        }
                    };
                    Ok(Box::new(FilterPreds {
                        inner: joined,
                        preds,
                    }))
                }
            }
        }
        let iter = build(
            plan,
            schema,
            registry,
            &info,
            &shared,
            elastic,
            plan.output_node().0,
        )?;
        Ok(TopKExecution {
            iter,
            shared,
            query: Arc::clone(&plan.query),
        })
    }

    /// Pulls the next answer (projected on the query head).
    pub fn next_answer(&mut self) -> Option<Tuple> {
        self.iter.next().map(|b| b.project_head(&self.query))
    }

    /// Pulls up to `k` further answers.
    pub fn answers(&mut self, k: usize) -> Vec<Tuple> {
        let mut out = Vec::with_capacity(k.min(1024));
        for _ in 0..k {
            match self.next_answer() {
                Some(a) => out.push(a),
                None => break,
            }
        }
        out
    }

    /// Request-responses forwarded to `id` so far.
    pub fn calls_to(&self, id: ServiceId) -> u64 {
        self.shared.borrow().calls.get(&id).copied().unwrap_or(0)
    }

    /// Total request-responses so far.
    pub fn total_calls(&self) -> u64 {
        self.shared.borrow().calls.values().sum()
    }

    /// Summed simulated latency of all forwarded calls.
    pub fn total_latency(&self) -> f64 {
        self.shared.borrow().latency_sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run, ExecConfig};
    use mdq_model::binding::ApChoice;
    use mdq_model::examples::{ATOM_CONF, ATOM_FLIGHT, ATOM_HOTEL, ATOM_WEATHER};
    use mdq_plan::builder::{build_plan, StrategyRule};
    use mdq_plan::poset::Poset;
    use mdq_services::domains::travel::travel_world;

    fn plan_o(world: &mdq_services::domains::travel::TravelWorld) -> Plan {
        let poset = Poset::from_pairs(
            4,
            &[
                (ATOM_CONF, ATOM_WEATHER),
                (ATOM_WEATHER, ATOM_FLIGHT),
                (ATOM_WEATHER, ATOM_HOTEL),
            ],
        )
        .expect("valid");
        build_plan(
            Arc::new(world.query.clone()),
            &world.schema,
            ApChoice(vec![0, 0, 0, 0]),
            poset,
            (0..4).collect(),
            &StrategyRule::default(),
        )
        .expect("builds")
    }

    #[test]
    fn pull_answers_match_materialised_run() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let full = run(&plan, &w.schema, &w.registry, &ExecConfig::default())
            .expect("executes");
        let mut pull = TopKExecution::new(
            &plan,
            &w.schema,
            &w.registry,
            CacheSetting::OneCall,
            false,
        )
        .expect("builds");
        let pulled = pull.answers(usize::MAX >> 1);
        let mut a = full.answers.clone();
        let mut b = pulled.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "same answer set as the materialised executor");
    }

    #[test]
    fn early_halt_saves_calls() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        // pull just one answer: far fewer calls than the full run
        let mut pull =
            TopKExecution::new(&plan, &w.schema, &w.registry, CacheSetting::OneCall, false)
                .expect("builds");
        let first = pull.next_answer();
        assert!(first.is_some());
        let calls_after_one = pull.total_calls();
        let full = run(
            &plan,
            &w.schema,
            &w.registry,
            &ExecConfig {
                cache: CacheSetting::OneCall,
                k: None,
            },
        )
        .expect("executes");
        let full_calls: u64 = full.calls.values().sum();
        assert!(
            calls_after_one < full_calls,
            "pull {calls_after_one} < full {full_calls}"
        );
    }

    #[test]
    fn continuation_produces_more_answers() {
        let w = travel_world(2008);
        let plan = plan_o(&w);
        let mut pull =
            TopKExecution::new(&plan, &w.schema, &w.registry, CacheSetting::OneCall, false)
                .expect("builds");
        let first_batch = pull.answers(5);
        assert_eq!(first_batch.len(), 5);
        let second_batch = pull.answers(5);
        assert_eq!(second_batch.len(), 5);
        assert_ne!(first_batch, second_batch, "progresses through results");
    }

    #[test]
    fn elastic_mode_pages_beyond_fetch_factor() {
        let w = travel_world(2008);
        let mut plan = plan_o(&w);
        // F = 1 page per service; elastic mode may still fetch deeper
        plan.set_fetch(ATOM_FLIGHT, 1);
        plan.set_fetch(ATOM_HOTEL, 1);
        let mut strict =
            TopKExecution::new(&plan, &w.schema, &w.registry, CacheSetting::Optimal, false)
                .expect("builds");
        let strict_all = strict.answers(100_000).len();
        let mut elastic =
            TopKExecution::new(&plan, &w.schema, &w.registry, CacheSetting::Optimal, true)
                .expect("builds");
        let elastic_all = elastic.answers(100_000).len();
        assert!(
            elastic_all >= strict_all,
            "elastic ({elastic_all}) ⊇ strict ({strict_all})"
        );
    }
}
