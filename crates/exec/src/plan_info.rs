//! Pre-execution plan analysis shared by all executors.

use mdq_model::binding::ApChoice;
use mdq_model::schema::Schema;
use mdq_plan::dag::{NodeKind, Plan};
use std::collections::HashSet;

/// Per-node execution metadata derived from a plan.
#[derive(Clone, Debug)]
pub struct PlanInfo {
    /// For each plan node, the indices of the query predicates that first
    /// become fully bound there (and must be applied there).
    pub preds_at_node: Vec<Vec<usize>>,
    /// For each plan node (invoke nodes only), the input positions of the
    /// atom's chosen access pattern.
    pub input_positions: Vec<Vec<usize>>,
    /// For each plan node (invoke nodes only), the chosen pattern index.
    pub pattern_of_node: Vec<usize>,
}

/// Analyzes `plan`, mirroring the predicate-placement rule of the cost
/// estimator: a predicate applies at the first node where all its
/// variables are bound.
pub fn analyze(plan: &Plan, schema: &Schema) -> PlanInfo {
    let n = plan.nodes.len();
    let mut preds_at_node = vec![Vec::new(); n];
    let mut input_positions = vec![Vec::new(); n];
    let mut pattern_of_node = vec![0usize; n];
    let mut applied: Vec<HashSet<usize>> = vec![HashSet::new(); n];

    let ApChoice(choice) = &plan.choice;
    for i in 0..n {
        let node = &plan.nodes[i];
        let mut inherited: HashSet<usize> = HashSet::new();
        for inp in &node.inputs {
            inherited.extend(applied[inp.0].iter().copied());
        }
        for (k, p) in plan.query.predicates.iter().enumerate() {
            if !inherited.contains(&k) && p.vars().iter().all(|v| node.bound_vars.contains(v)) {
                preds_at_node[i].push(k);
                inherited.insert(k);
            }
        }
        applied[i] = inherited;
        if let NodeKind::Invoke { atom } = node.kind {
            let pattern = choice[atom];
            pattern_of_node[i] = pattern;
            let sig = schema.service(plan.query.atoms[atom].service);
            input_positions[i] = sig.patterns[pattern].inputs().collect();
        }
    }
    PlanInfo {
        preds_at_node,
        input_positions,
        pattern_of_node,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdq_model::examples::{
        running_example_query, running_example_schema, ATOM_CONF, ATOM_FLIGHT, ATOM_HOTEL,
        ATOM_WEATHER,
    };
    use mdq_plan::builder::{build_plan, StrategyRule};
    use mdq_plan::poset::Poset;
    use std::sync::Arc;

    #[test]
    fn predicates_placed_at_first_full_binding() {
        let schema = running_example_schema();
        let query = Arc::new(running_example_query(&schema));
        let poset = Poset::from_pairs(
            4,
            &[
                (ATOM_CONF, ATOM_WEATHER),
                (ATOM_WEATHER, ATOM_FLIGHT),
                (ATOM_WEATHER, ATOM_HOTEL),
            ],
        )
        .expect("valid");
        let plan = build_plan(
            Arc::clone(&query),
            &schema,
            ApChoice(vec![0, 0, 0, 0]),
            poset,
            (0..4).collect(),
            &StrategyRule::default(),
        )
        .expect("builds");
        let info = analyze(&plan, &schema);
        // conf node applies the two date predicates (0, 1)
        let conf_node = plan
            .nodes
            .iter()
            .position(|n| matches!(n.kind, NodeKind::Invoke { atom } if atom == ATOM_CONF))
            .expect("conf node");
        assert_eq!(info.preds_at_node[conf_node], vec![0, 1]);
        // weather node applies the temperature predicate (2)
        let weather_node = plan
            .nodes
            .iter()
            .position(|n| matches!(n.kind, NodeKind::Invoke { atom } if atom == ATOM_WEATHER))
            .expect("weather node");
        assert_eq!(info.preds_at_node[weather_node], vec![2]);
        // the price predicate (3) applies at the flight⋈hotel join
        let join_node = plan
            .nodes
            .iter()
            .position(|n| matches!(n.kind, NodeKind::Join { .. }))
            .expect("join node");
        assert_eq!(info.preds_at_node[join_node], vec![3]);
        // input positions follow the chosen patterns
        let flight_node = plan
            .nodes
            .iter()
            .position(|n| matches!(n.kind, NodeKind::Invoke { atom } if atom == ATOM_FLIGHT))
            .expect("flight node");
        assert_eq!(info.input_positions[flight_node], vec![0, 1, 2, 3]);
        let hotel_node = plan
            .nodes
            .iter()
            .position(|n| matches!(n.kind, NodeKind::Invoke { atom } if atom == ATOM_HOTEL))
            .expect("hotel node");
        assert_eq!(info.input_positions[hotel_node], vec![1, 2, 3, 4]);
    }
}
