//! Multi-threaded execution (§5 "multi-threading", §6's separate test).
//!
//! Two flavours:
//!
//! * [`run_parallel_dispatch`] — the §6 experiment model in virtual time:
//!   within each stage, *all* available calls are dispatched to parallel
//!   worker threads at once. Stage time collapses towards the slowest
//!   single call (plus thread-management overhead), but completion order
//!   is randomised — which, exactly as the paper reports, largely defeats
//!   the one-call cache (284 → ~212 hotel calls instead of → 16).
//!
//! * [`run_threaded`] — a real OS-thread dataflow engine: one worker per
//!   plan node connected by crossbeam channels, service latencies slept
//!   at a configurable scale. Used to validate that the pipelined,
//!   concurrent execution produces the same answers as the deterministic
//!   executors, and that dropping the answer stream cancels upstream
//!   fetching (top-k halting).

use crate::binding::Binding;
use crate::cache::{CacheSetting, ClientCache};
use crate::joins::{MsJoin, NlJoin};
use crate::pipeline::{fetch_pages, ExecError, ExecReport, NodeTrace};
use crate::plan_info::analyze;
use mdq_plan::dag::{JoinStrategy, NodeKind, Plan, Side};
use mdq_model::schema::{Schema, ServiceId};
use mdq_services::registry::ServiceRegistry;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Options for [`run_parallel_dispatch`].
#[derive(Clone, Copy, Debug)]
pub struct ParallelConfig {
    /// Client cache setting.
    pub cache: CacheSetting,
    /// Worker threads available per stage.
    pub threads: usize,
    /// Virtual seconds of thread-management overhead per dispatched call
    /// (the paper attributes a sizeable share of its 76 s to this).
    pub spawn_overhead: f64,
    /// Seed for the completion-order shuffle.
    pub shuffle_seed: u64,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            cache: CacheSetting::OneCall,
            threads: 16,
            spawn_overhead: 0.05,
            shuffle_seed: 1,
        }
    }
}

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn shuffle<T>(items: &mut [T], seed: u64) {
    // Fisher–Yates with a splitmix stream (deterministic, dependency-free)
    for i in (1..items.len()).rev() {
        let j = (splitmix64(seed ^ (i as u64)) % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// Stage-materialised execution where every stage dispatches all its
/// calls to `threads` parallel workers. Virtual stage time:
/// `max(slowest call, total latency / threads) + overhead · dispatched`.
/// Input order is shuffled per stage to model racy completions.
pub fn run_parallel_dispatch(
    plan: &Plan,
    schema: &Schema,
    registry: &ServiceRegistry,
    config: &ParallelConfig,
) -> Result<ExecReport, ExecError> {
    let info = analyze(plan, schema);
    let n = plan.nodes.len();
    let mut streams: Vec<Vec<Binding>> = vec![Vec::new(); n];
    let mut trace = vec![NodeTrace::default(); n];
    let mut cache = ClientCache::new(config.cache);
    let mut calls: HashMap<ServiceId, u64> = HashMap::new();

    for i in 0..n {
        let node = &plan.nodes[i];
        match &node.kind {
            NodeKind::Input => {
                streams[i] = vec![Binding::empty(plan.query.var_count())];
                trace[i].out_tuples = 1;
            }
            NodeKind::Invoke { atom } => {
                let up = node.inputs[0].0;
                let atom_ref = &plan.query.atoms[*atom];
                let svc_id = atom_ref.service;
                let sig = schema.service(svc_id);
                let service = registry
                    .get(svc_id)
                    .ok_or_else(|| ExecError::MissingService(sig.name.to_string()))?;
                let pos = plan.position_of(*atom).expect("covered");
                let pages = plan.fetch_of(pos) as u32;

                let mut inputs: Vec<Binding> = streams[up].clone();
                shuffle(&mut inputs, config.shuffle_seed ^ (i as u64) << 7);

                let mut latencies: Vec<f64> = Vec::new();
                let mut out = Vec::new();
                for b in &inputs {
                    let key = b
                        .input_key(atom_ref, &info.input_positions[i])
                        .ok_or_else(|| ExecError::UnboundInput {
                            service: sig.name.to_string(),
                        })?;
                    let result = match cache.lookup(svc_id, &key, pages) {
                        Some(hit) => hit,
                        None => {
                            let (res, c, lat) =
                                fetch_pages(service, info.pattern_of_node[i], &key, pages);
                            *calls.entry(svc_id).or_insert(0) += c;
                            latencies.push(lat);
                            cache.store(svc_id, key, res.clone());
                            res
                        }
                    };
                    for t in &result.tuples {
                        if let Some(nb) = b.bind_atom(atom_ref, t) {
                            if info.preds_at_node[i].iter().all(|&p| {
                                nb.eval_predicate(&plan.query.predicates[p]) == Some(true)
                            }) {
                                out.push(nb);
                            }
                        }
                    }
                }
                let total: f64 = latencies.iter().sum();
                let slowest = latencies.iter().copied().fold(0.0, f64::max);
                let busy = slowest.max(total / config.threads.max(1) as f64)
                    + config.spawn_overhead * inputs.len() as f64;
                trace[i] = NodeTrace {
                    busy,
                    completion: trace[up].completion + busy,
                    in_tuples: inputs.len(),
                    out_tuples: out.len(),
                };
                streams[i] = out;
            }
            NodeKind::Join {
                left,
                right,
                strategy,
                on,
            } => {
                let (l, r) = (left.0, right.0);
                let joined: Vec<Binding> = match strategy {
                    JoinStrategy::MergeScan => MsJoin::new(
                        streams[l].iter().cloned(),
                        streams[r].iter().cloned(),
                        on.clone(),
                    )
                    .collect(),
                    JoinStrategy::NestedLoop { outer: Side::Left } => NlJoin::new(
                        streams[l].iter().cloned(),
                        streams[r].iter().cloned(),
                        on.clone(),
                        true,
                    )
                    .collect(),
                    JoinStrategy::NestedLoop { outer: Side::Right } => NlJoin::new(
                        streams[r].iter().cloned(),
                        streams[l].iter().cloned(),
                        on.clone(),
                        false,
                    )
                    .collect(),
                };
                let filtered: Vec<Binding> = joined
                    .into_iter()
                    .filter(|b| {
                        info.preds_at_node[i]
                            .iter()
                            .all(|&p| b.eval_predicate(&plan.query.predicates[p]) == Some(true))
                    })
                    .collect();
                trace[i] = NodeTrace {
                    busy: 0.0,
                    completion: trace[l].completion.max(trace[r].completion),
                    in_tuples: streams[l].len() + streams[r].len(),
                    out_tuples: filtered.len(),
                };
                streams[i] = filtered;
            }
            NodeKind::Output => {
                let up = node.inputs[0].0;
                streams[i] = streams[up].clone();
                trace[i] = NodeTrace {
                    busy: 0.0,
                    completion: trace[up].completion,
                    in_tuples: streams[up].len(),
                    out_tuples: streams[up].len(),
                };
            }
        }
    }

    let out_idx = plan.output_node().0;
    let bindings = std::mem::take(&mut streams[out_idx]);
    let answers = bindings.iter().map(|b| b.project_head(&plan.query)).collect();
    let mut cache_stats = HashMap::new();
    for id in registry.ids() {
        cache_stats.insert(id, cache.stats(id));
    }
    Ok(ExecReport {
        answers,
        bindings,
        virtual_time: trace[out_idx].completion,
        calls,
        cache_stats,
        node_trace: trace,
    })
}

/// Options for the real-thread dataflow engine.
#[derive(Clone, Copy, Debug)]
pub struct ThreadedConfig {
    /// Client cache setting (shared across workers behind a mutex).
    pub cache: CacheSetting,
    /// Real seconds slept per simulated second (e.g. `1e-4`: a 9.7 s
    /// flight call sleeps 0.97 ms).
    pub time_scale: f64,
    /// Bounded channel capacity between workers.
    pub channel_capacity: usize,
    /// Stop after this many answers (dropping the stream cancels
    /// upstream work).
    pub k: Option<usize>,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            cache: CacheSetting::OneCall,
            time_scale: 1e-5,
            channel_capacity: 64,
            k: None,
        }
    }
}

/// Result of a real-thread run.
#[derive(Clone, Debug)]
pub struct ThreadedReport {
    /// Answers projected on the head, in arrival order.
    pub answers: Vec<mdq_model::value::Tuple>,
    /// Real elapsed wall-clock seconds.
    pub elapsed: f64,
    /// Request-responses forwarded per service.
    pub calls: HashMap<ServiceId, u64>,
}

struct ChannelStream {
    rx: crossbeam::channel::Receiver<Binding>,
}

impl Iterator for ChannelStream {
    type Item = Binding;
    fn next(&mut self) -> Option<Binding> {
        self.rx.recv().ok()
    }
}

/// Runs `plan` with one OS thread per node, crossbeam channels between
/// them, and service latencies slept at `time_scale`.
pub fn run_threaded(
    plan: &Plan,
    schema: &Schema,
    registry: &ServiceRegistry,
    config: &ThreadedConfig,
) -> Result<ThreadedReport, ExecError> {
    use crossbeam::channel::bounded;

    let info = Arc::new(analyze(plan, schema));
    let cache = Arc::new(Mutex::new(ClientCache::new(config.cache)));
    let calls: Arc<Mutex<HashMap<ServiceId, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    let n = plan.nodes.len();

    // one sender per (producer, consumer) edge; build consumer-side recvs
    let mut senders: Vec<Vec<crossbeam::channel::Sender<Binding>>> = vec![Vec::new(); n];
    let mut receivers: Vec<Vec<crossbeam::channel::Receiver<Binding>>> = vec![Vec::new(); n];
    for (i, node) in plan.nodes.iter().enumerate() {
        for inp in &node.inputs {
            let (tx, rx) = bounded::<Binding>(config.channel_capacity);
            senders[inp.0].push(tx);
            receivers[i].push(rx);
        }
    }
    let (answer_tx, answer_rx) = bounded::<Binding>(config.channel_capacity);
    senders[plan.output_node().0].push(answer_tx);

    // validate services up front (workers can't return errors cleanly)
    for atom in plan.atoms.iter() {
        let svc_id = plan.query.atoms[*atom].service;
        if registry.get(svc_id).is_none() {
            return Err(ExecError::MissingService(
                schema.service(svc_id).name.to_string(),
            ));
        }
    }

    let started = std::time::Instant::now();
    std::thread::scope(|scope| {
        for i in 0..n {
            let node = plan.nodes[i].clone();
            let my_senders = std::mem::take(&mut senders[i]);
            let mut my_receivers = std::mem::take(&mut receivers[i]);
            let info = Arc::clone(&info);
            let cache = Arc::clone(&cache);
            let calls = Arc::clone(&calls);
            let query = Arc::clone(&plan.query);
            let plan_ref = &*plan;
            let schema_ref = schema;
            let registry_ref = registry;
            let time_scale = config.time_scale;
            scope.spawn(move || {
                let send_all = |b: Binding| -> bool {
                    for tx in &my_senders {
                        if tx.send(b.clone()).is_err() {
                            return false; // downstream hung up: cancel
                        }
                    }
                    true
                };
                let passes = |b: &Binding| {
                    info.preds_at_node[i]
                        .iter()
                        .all(|&p| b.eval_predicate(&query.predicates[p]) == Some(true))
                };
                match &node.kind {
                    NodeKind::Input => {
                        send_all(Binding::empty(query.var_count()));
                    }
                    NodeKind::Output => {
                        let rx = my_receivers.pop().expect("output has one input");
                        for b in (ChannelStream { rx }) {
                            if !passes(&b) {
                                continue;
                            }
                            if !send_all(b) {
                                break;
                            }
                        }
                    }
                    NodeKind::Invoke { atom } => {
                        let rx = my_receivers.pop().expect("invoke has one input");
                        let atom_ref = &query.atoms[*atom];
                        let svc_id = atom_ref.service;
                        let service = registry_ref
                            .get(svc_id)
                            .expect("validated above")
                            .clone();
                        let pos = plan_ref.position_of(*atom).expect("covered");
                        let pages = plan_ref.fetch_of(pos) as u32;
                        let _ = schema_ref;
                        'outer: for b in (ChannelStream { rx }) {
                            let Some(key) = b.input_key(atom_ref, &info.input_positions[i])
                            else {
                                continue;
                            };
                            let cached = cache.lock().lookup(svc_id, &key, pages);
                            let result = match cached {
                                Some(hit) => hit,
                                None => {
                                    let (res, c, lat) = fetch_pages(
                                        &service,
                                        info.pattern_of_node[i],
                                        &key,
                                        pages,
                                    );
                                    *calls.lock().entry(svc_id).or_insert(0) += c;
                                    if lat * time_scale > 0.0 {
                                        std::thread::sleep(std::time::Duration::from_secs_f64(
                                            lat * time_scale,
                                        ));
                                    }
                                    cache.lock().store(svc_id, key, res.clone());
                                    res
                                }
                            };
                            for t in &result.tuples {
                                if let Some(nb) = b.bind_atom(atom_ref, t) {
                                    if passes(&nb) && !send_all(nb) {
                                        break 'outer;
                                    }
                                }
                            }
                        }
                    }
                    NodeKind::Join { strategy, on, .. } => {
                        let right_rx = my_receivers.pop().expect("join right");
                        let left_rx = my_receivers.pop().expect("join left");
                        let l = ChannelStream { rx: left_rx };
                        let r = ChannelStream { rx: right_rx };
                        let joined: Box<dyn Iterator<Item = Binding>> = match strategy {
                            JoinStrategy::MergeScan => Box::new(MsJoin::new(l, r, on.clone())),
                            JoinStrategy::NestedLoop { outer: Side::Left } => {
                                Box::new(NlJoin::new(l, r, on.clone(), true))
                            }
                            JoinStrategy::NestedLoop { outer: Side::Right } => {
                                Box::new(NlJoin::new(r, l, on.clone(), false))
                            }
                        };
                        for b in joined {
                            if !passes(&b) {
                                continue;
                            }
                            if !send_all(b) {
                                break;
                            }
                        }
                    }
                }
                // dropping my_senders closes downstream channels
            });
        }

        // collect answers on the scope's main thread
        let mut answers = Vec::new();
        for b in answer_rx.iter() {
            answers.push(b.project_head(&plan.query));
            if let Some(k) = config.k {
                if answers.len() >= k {
                    break; // dropping answer_rx cancels the pipeline
                }
            }
        }
        drop(answer_rx);
        let elapsed = started.elapsed().as_secs_f64();
        let calls_map = calls.lock().clone();
        Ok(ThreadedReport {
            answers,
            elapsed,
            calls: calls_map,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run, ExecConfig};
    use mdq_model::binding::ApChoice;
    use mdq_model::examples::{ATOM_CONF, ATOM_FLIGHT, ATOM_HOTEL, ATOM_WEATHER};
    use mdq_plan::builder::{build_plan, StrategyRule};
    use mdq_plan::poset::Poset;
    use mdq_services::domains::travel::travel_world;

    fn plan_s(world: &mdq_services::domains::travel::TravelWorld) -> Plan {
        let poset = Poset::from_pairs(
            4,
            &[
                (ATOM_CONF, ATOM_WEATHER),
                (ATOM_WEATHER, ATOM_FLIGHT),
                (ATOM_FLIGHT, ATOM_HOTEL),
            ],
        )
        .expect("valid");
        build_plan(
            Arc::new(world.query.clone()),
            &world.schema,
            ApChoice(vec![0, 0, 0, 0]),
            poset,
            (0..4).collect(),
            &StrategyRule::default(),
        )
        .expect("builds")
    }

    #[test]
    fn parallel_dispatch_degrades_one_call_cache() {
        // §6: with multithreading, hotel's one-call savings largely vanish
        // (284 → ~212 instead of → 15)
        let w = travel_world(2008);
        let plan = plan_s(&w);
        let seq = run(
            &plan,
            &w.schema,
            &w.registry,
            &ExecConfig {
                cache: CacheSetting::OneCall,
                k: None,
            },
        )
        .expect("sequential");
        let par = run_parallel_dispatch(&plan, &w.schema, &w.registry, &ParallelConfig::default())
            .expect("parallel");
        let seq_hotel = seq.calls_to(w.ids.hotel);
        let par_hotel = par.calls_to(w.ids.hotel);
        assert_eq!(seq_hotel, 15, "sequential one-call absorbs the blocks");
        assert!(
            par_hotel > 150 && par_hotel <= 284,
            "randomised order defeats the cache: {par_hotel}"
        );
        // and the parallel run is much faster in virtual time
        assert!(par.virtual_time < seq.virtual_time / 2.0);
    }

    #[test]
    fn parallel_dispatch_same_answer_set() {
        let w = travel_world(2008);
        let plan = plan_s(&w);
        let seq = run(&plan, &w.schema, &w.registry, &ExecConfig::default())
            .expect("sequential");
        let par = run_parallel_dispatch(&plan, &w.schema, &w.registry, &ParallelConfig::default())
            .expect("parallel");
        let mut a = seq.answers.clone();
        let mut b = par.answers.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn real_threads_match_sequential_answers() {
        let w = travel_world(2008);
        let plan = plan_s(&w);
        let seq = run(&plan, &w.schema, &w.registry, &ExecConfig::default())
            .expect("sequential");
        let thr = run_threaded(
            &plan,
            &w.schema,
            &w.registry,
            &ThreadedConfig {
                cache: CacheSetting::NoCache,
                time_scale: 0.0,
                channel_capacity: 8,
                k: None,
            },
        )
        .expect("threads");
        let mut a = seq.answers.clone();
        let mut b = thr.answers.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn real_threads_topk_halts_early() {
        let w = travel_world(2008);
        let plan = plan_s(&w);
        let thr = run_threaded(
            &plan,
            &w.schema,
            &w.registry,
            &ThreadedConfig {
                cache: CacheSetting::NoCache,
                time_scale: 0.0,
                channel_capacity: 4,
                k: Some(5),
            },
        )
        .expect("threads");
        assert_eq!(thr.answers.len(), 5);
        let total: u64 = thr.calls.values().sum();
        // the full no-cache run makes 1 + 71 + 16 + 284 = 372 calls;
        // halting after 5 answers must cut that substantially
        assert!(total < 372, "early halt saved calls: {total}");
    }
}
