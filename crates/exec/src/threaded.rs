//! Multi-threaded execution (§5 "multi-threading", §6's separate test).
//!
//! Two flavours, both thin drivers over the [operator
//! kernel](crate::operator):
//!
//! * [`run_parallel_dispatch`] — the §6 experiment model in virtual time:
//!   the same materialised driver as [`crate::pipeline::run`], under the
//!   parallel stage-time model — within each stage, *all* available calls
//!   are dispatched to parallel worker threads at once. Stage time
//!   collapses towards the slowest single call (plus thread-management
//!   overhead), but completion order is randomised — which, exactly as
//!   the paper reports, largely defeats the one-call cache
//!   (284 → ~212 hotel calls instead of → 16).
//!
//! * [`run_threaded`] — a real OS-thread dataflow engine: one worker per
//!   plan node connected by bounded channels, each worker driving its
//!   node's kernel operator over a channel-fed upstream, service calls
//!   shared through one thread-safe gateway, latencies slept at a
//!   configurable scale. Used to validate that the pipelined, concurrent
//!   execution produces the same answers as the deterministic executors,
//!   and that dropping the answer stream cancels upstream fetching
//!   (top-k halting).

use crate::binding::Binding;
use crate::cache::CacheSetting;
use crate::gateway::{
    FaultStats, GatewayHandle, PartialResults, ServiceGateway, SharedGateway, SharedServiceState,
};
use crate::operator::{
    derive_rows_in, Batch, ExecError, Filter, Invoke, Join, Operator, Probe, DEFAULT_BATCH,
};
use crate::pipeline::{run_materialised, ExecReport, StageModel};
use crate::plan_info::analyze;
use mdq_model::schema::{Schema, ServiceId};
use mdq_obs::span::OperatorStats;
use mdq_plan::dag::{NodeKind, Plan};
use mdq_services::registry::ServiceRegistry;
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;

/// Options for [`run_parallel_dispatch`].
#[derive(Clone, Copy, Debug)]
pub struct ParallelConfig {
    /// Client cache setting.
    pub cache: CacheSetting,
    /// Worker threads available per stage.
    pub threads: usize,
    /// Virtual seconds of thread-management overhead per dispatched call
    /// (the paper attributes a sizeable share of its 76 s to this).
    pub spawn_overhead: f64,
    /// Seed for the completion-order shuffle.
    pub shuffle_seed: u64,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            cache: CacheSetting::OneCall,
            threads: 16,
            spawn_overhead: 0.05,
            shuffle_seed: 1,
        }
    }
}

/// Stage-materialised execution where every stage dispatches all its
/// calls to `threads` parallel workers. Virtual stage time:
/// `max(slowest call, total latency / threads) + overhead · dispatched`.
/// Input order is shuffled per stage to model racy completions.
pub fn run_parallel_dispatch(
    plan: &Plan,
    schema: &Schema,
    registry: &ServiceRegistry,
    config: &ParallelConfig,
) -> Result<ExecReport, ExecError> {
    run_parallel_dispatch_with_batch(plan, schema, registry, config, DEFAULT_BATCH)
}

/// [`run_parallel_dispatch`] with an explicit operator batch size —
/// answers and call counts are invariant under `batch` (the
/// equivalence suite sweeps it).
pub fn run_parallel_dispatch_with_batch(
    plan: &Plan,
    schema: &Schema,
    registry: &ServiceRegistry,
    config: &ParallelConfig,
    batch: usize,
) -> Result<ExecReport, ExecError> {
    run_materialised(
        plan,
        schema,
        registry,
        ServiceGateway::new(plan, schema, registry, config.cache)?,
        None,
        &StageModel::ParallelDispatch {
            threads: config.threads,
            spawn_overhead: config.spawn_overhead,
            shuffle_seed: config.shuffle_seed,
        },
        batch,
    )
}

/// Options for the real-thread dataflow engine.
#[derive(Clone, Copy, Debug)]
pub struct ThreadedConfig {
    /// Client cache setting (shared across workers behind a mutex).
    pub cache: CacheSetting,
    /// Real seconds slept per simulated second (e.g. `1e-4`: a 9.7 s
    /// flight call sleeps 0.97 ms).
    pub time_scale: f64,
    /// Bounded channel capacity between workers.
    pub channel_capacity: usize,
    /// Stop after this many answers (dropping the stream cancels
    /// upstream work).
    pub k: Option<usize>,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            cache: CacheSetting::OneCall,
            time_scale: 1e-5,
            channel_capacity: 64,
            k: None,
        }
    }
}

/// Result of a real-thread run.
#[derive(Clone, Debug)]
pub struct ThreadedReport {
    /// Answers projected on the head, in arrival order.
    pub answers: Vec<mdq_model::value::Tuple>,
    /// Real elapsed wall-clock seconds.
    pub elapsed: f64,
    /// Request-responses forwarded per service.
    pub calls: HashMap<ServiceId, u64>,
    /// Fault accounting per service (empty with healthy services).
    pub fault_stats: HashMap<ServiceId, FaultStats>,
    /// `Some` when at least one service degraded during the run.
    pub partial: Option<PartialResults>,
    /// Per-node runtime statistics (EXPLAIN ANALYZE's observed side),
    /// indexed like `plan.nodes`.
    pub operator_stats: Vec<OperatorStats>,
}

impl ThreadedReport {
    /// Retries issued against `id` during this run.
    pub fn retries_to(&self, id: ServiceId) -> u64 {
        self.fault_stats.get(&id).map(|s| s.retries).unwrap_or(0)
    }
}

struct ChannelStream {
    rx: mpsc::Receiver<Binding>,
}

impl Operator for ChannelStream {
    fn next_binding(&mut self) -> Option<Binding> {
        self.rx.recv().ok()
    }
}

/// A producer-side edge: bounded towards streaming consumers (so top-k
/// cancellation back-pressures upstream fetching), unbounded towards
/// join consumers. A join must be able to buffer one side while the
/// other lags — with bounded edges, a fan-out ancestor feeding both
/// sides of a join deadlocks as soon as the join drains one side far
/// ahead of the other (nested-loop joins materialise a whole side
/// first). The buffering is bounded by the stream size, which the
/// stage-materialised engine holds in memory anyway.
enum EdgeSender {
    Bounded(mpsc::SyncSender<Binding>),
    Unbounded(mpsc::Sender<Binding>),
}

impl EdgeSender {
    fn send(&self, b: Binding) -> Result<(), ()> {
        match self {
            EdgeSender::Bounded(tx) => tx.send(b).map_err(|_| ()),
            EdgeSender::Unbounded(tx) => tx.send(b).map_err(|_| ()),
        }
    }
}

/// Runs `plan` with one OS thread per node, bounded channels between
/// them, and service latencies slept at `time_scale`.
pub fn run_threaded(
    plan: &Plan,
    schema: &Schema,
    registry: &ServiceRegistry,
    config: &ThreadedConfig,
) -> Result<ThreadedReport, ExecError> {
    run_threaded_with_batch(plan, schema, registry, config, DEFAULT_BATCH)
}

/// [`run_threaded`] with an explicit operator batch size: each worker
/// pulls up to `batch` bindings per kernel call before forwarding them
/// downstream. Answers, call counts and retries are invariant under
/// `batch` — only the per-hop amortisation changes.
pub fn run_threaded_with_batch(
    plan: &Plan,
    schema: &Schema,
    registry: &ServiceRegistry,
    config: &ThreadedConfig,
    batch: usize,
) -> Result<ThreadedReport, ExecError> {
    run_threaded_over(
        plan,
        schema,
        ServiceGateway::new(plan, schema, registry, config.cache)?,
        config,
        batch,
    )
}

/// [`run_threaded`] over an existing (typically `Arc`-shared,
/// cross-query) [`SharedServiceState`], with an optional per-query
/// forwarded-call budget — the serving-layer entry point, and the way
/// to run the dataflow engine under an attached trace recorder (the
/// state's cache setting governs; `config.cache` is ignored).
pub fn run_threaded_shared(
    plan: &Plan,
    schema: &Schema,
    registry: &ServiceRegistry,
    shared: Arc<SharedServiceState>,
    budget: Option<u64>,
    config: &ThreadedConfig,
) -> Result<ThreadedReport, ExecError> {
    run_threaded_over(
        plan,
        schema,
        ServiceGateway::with_shared(plan, schema, registry, shared, budget)?,
        config,
        DEFAULT_BATCH,
    )
}

/// The dataflow engine shared by the entry points above.
fn run_threaded_over(
    plan: &Plan,
    schema: &Schema,
    gateway: ServiceGateway,
    config: &ThreadedConfig,
    batch: usize,
) -> Result<ThreadedReport, ExecError> {
    let batch = batch.max(1);
    let info = Arc::new(analyze(plan, schema));
    let gateway = SharedGateway::new(gateway);
    let n = plan.nodes.len();

    // one sender per (producer, consumer) edge; build consumer-side recvs
    let mut senders: Vec<Vec<EdgeSender>> = (0..n).map(|_| Vec::new()).collect();
    let mut receivers: Vec<Vec<mpsc::Receiver<Binding>>> = (0..n).map(|_| Vec::new()).collect();
    for (i, node) in plan.nodes.iter().enumerate() {
        let into_join = matches!(node.kind, NodeKind::Join { .. });
        for inp in &node.inputs {
            let (tx, rx) = if into_join {
                let (tx, rx) = mpsc::channel::<Binding>();
                (EdgeSender::Unbounded(tx), rx)
            } else {
                let (tx, rx) = mpsc::sync_channel::<Binding>(config.channel_capacity.max(1));
                (EdgeSender::Bounded(tx), rx)
            };
            senders[inp.0].push(tx);
            receivers[i].push(rx);
        }
    }
    let (answer_tx, answer_rx) = mpsc::sync_channel::<Binding>(config.channel_capacity.max(1));
    senders[plan.output_node().0].push(EdgeSender::Bounded(answer_tx));

    let started = std::time::Instant::now();
    let answers = std::thread::scope(|scope| {
        for i in 0..n {
            let node = plan.nodes[i].clone();
            let my_senders = std::mem::take(&mut senders[i]);
            let mut my_receivers = std::mem::take(&mut receivers[i]);
            let info = Arc::clone(&info);
            let gateway = gateway.clone();
            let query = Arc::clone(&plan.query);
            let plan_ref = &*plan;
            let schema_ref = schema;
            let time_scale = config.time_scale;
            scope.spawn(move || {
                let send_all = |b: Binding| -> bool {
                    for tx in &my_senders {
                        if tx.send(b.clone()).is_err() {
                            return false; // downstream hung up: cancel
                        }
                    }
                    true
                };
                let forward = |op: &mut dyn Operator| {
                    let mut buf = Batch::new();
                    loop {
                        let got = op.next_batch(batch, &mut buf);
                        for b in buf.drain(..) {
                            if !send_all(b) {
                                return;
                            }
                        }
                        if got < batch {
                            return;
                        }
                    }
                };
                match &node.kind {
                    NodeKind::Input => {
                        gateway.with(|g| g.record_node_output(i, 1, 0));
                        send_all(Binding::empty(query.var_count()));
                    }
                    NodeKind::Output => {
                        let rx = my_receivers.pop().expect("output has one input");
                        let mut stream = Probe::new(
                            Filter::for_node(plan_ref, &info, i, ChannelStream { rx }),
                            gateway.clone(),
                            i,
                        );
                        forward(&mut stream);
                    }
                    NodeKind::Invoke { .. } => {
                        let rx = my_receivers.pop().expect("invoke has one input");
                        let invoke = Invoke::for_node(
                            plan_ref,
                            schema_ref,
                            &info,
                            i,
                            ChannelStream { rx },
                            gateway.clone(),
                            false,
                            time_scale,
                        );
                        let mut stream = Probe::new(
                            Filter::for_node(plan_ref, &info, i, invoke),
                            gateway.clone(),
                            i,
                        );
                        forward(&mut stream);
                    }
                    NodeKind::Join { strategy, on, .. } => {
                        let right_rx = my_receivers.pop().expect("join right");
                        let left_rx = my_receivers.pop().expect("join left");
                        let joined = Join::new(
                            ChannelStream { rx: left_rx },
                            ChannelStream { rx: right_rx },
                            strategy,
                            on.clone(),
                        );
                        let mut stream = Probe::new(
                            Filter::for_node(plan_ref, &info, i, joined),
                            gateway.clone(),
                            i,
                        );
                        forward(&mut stream);
                    }
                }
                // dropping my_senders closes downstream channels
            });
        }

        // collect answers on the scope's main thread
        let mut answers = Vec::new();
        for b in answer_rx.iter() {
            answers.push(b.project_head(&plan.query));
            if let Some(k) = config.k {
                if answers.len() >= k {
                    break; // dropping answer_rx cancels the pipeline
                }
            }
        }
        drop(answer_rx);
        answers
    });
    let elapsed = started.elapsed().as_secs_f64();
    let (calls, error, fault_stats, partial, mut operator_stats) = gateway.with(|g| {
        (
            g.calls().clone(),
            g.take_error(),
            g.fault_stats().clone(),
            g.partial_results(),
            g.node_stats().to_vec(),
        )
    });
    derive_rows_in(plan, &mut operator_stats);
    if let Some(err) = error {
        return Err(err);
    }
    Ok(ThreadedReport {
        answers,
        elapsed,
        calls,
        fault_stats,
        partial,
        operator_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run, ExecConfig};
    use mdq_model::binding::ApChoice;
    use mdq_model::examples::{ATOM_CONF, ATOM_FLIGHT, ATOM_HOTEL, ATOM_WEATHER};
    use mdq_plan::builder::{build_plan, StrategyRule};
    use mdq_plan::poset::Poset;
    use mdq_services::domains::travel::travel_world;

    fn plan_s(world: &mdq_services::domains::travel::TravelWorld) -> Plan {
        let poset = Poset::from_pairs(
            4,
            &[
                (ATOM_CONF, ATOM_WEATHER),
                (ATOM_WEATHER, ATOM_FLIGHT),
                (ATOM_FLIGHT, ATOM_HOTEL),
            ],
        )
        .expect("valid");
        build_plan(
            Arc::new(world.query.clone()),
            &world.schema,
            ApChoice(vec![0, 0, 0, 0]),
            poset,
            (0..4).collect(),
            &StrategyRule::default(),
        )
        .expect("builds")
    }

    #[test]
    fn parallel_dispatch_degrades_one_call_cache() {
        // §6: with multithreading, hotel's one-call savings largely vanish
        // (284 → ~212 instead of → 15)
        let w = travel_world(2008);
        let plan = plan_s(&w);
        let seq = run(
            &plan,
            &w.schema,
            &w.registry,
            &ExecConfig {
                cache: CacheSetting::OneCall,
                k: None,
            },
        )
        .expect("sequential");
        let par = run_parallel_dispatch(&plan, &w.schema, &w.registry, &ParallelConfig::default())
            .expect("parallel");
        let seq_hotel = seq.calls_to(w.ids.hotel);
        let par_hotel = par.calls_to(w.ids.hotel);
        assert_eq!(seq_hotel, 15, "sequential one-call absorbs the blocks");
        assert!(
            par_hotel > 150 && par_hotel <= 284,
            "randomised order defeats the cache: {par_hotel}"
        );
        // and the parallel run is much faster in virtual time
        assert!(par.virtual_time < seq.virtual_time / 2.0);
    }

    #[test]
    fn parallel_dispatch_same_answer_set() {
        let w = travel_world(2008);
        let plan = plan_s(&w);
        let seq = run(&plan, &w.schema, &w.registry, &ExecConfig::default()).expect("sequential");
        let par = run_parallel_dispatch(&plan, &w.schema, &w.registry, &ParallelConfig::default())
            .expect("parallel");
        let mut a = seq.answers.clone();
        let mut b = par.answers.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn real_threads_match_sequential_answers() {
        let w = travel_world(2008);
        let plan = plan_s(&w);
        let seq = run(&plan, &w.schema, &w.registry, &ExecConfig::default()).expect("sequential");
        let thr = run_threaded(
            &plan,
            &w.schema,
            &w.registry,
            &ThreadedConfig {
                cache: CacheSetting::NoCache,
                time_scale: 0.0,
                channel_capacity: 8,
                k: None,
            },
        )
        .expect("threads");
        let mut a = seq.answers.clone();
        let mut b = thr.answers.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn real_threads_topk_halts_early() {
        let w = travel_world(2008);
        let plan = plan_s(&w);
        let thr = run_threaded(
            &plan,
            &w.schema,
            &w.registry,
            &ThreadedConfig {
                cache: CacheSetting::NoCache,
                time_scale: 0.0,
                channel_capacity: 4,
                k: Some(5),
            },
        )
        .expect("threads");
        assert_eq!(thr.answers.len(), 5);
        let total: u64 = thr.calls.values().sum();
        // the full no-cache run makes 1 + 71 + 16 + 284 = 372 calls;
        // halting after 5 answers must cut that substantially
        assert!(total < 372, "early halt saved calls: {total}");
    }

    #[test]
    fn missing_service_fails_before_spawning() {
        let w = travel_world(2008);
        let plan = plan_s(&w);
        let empty = ServiceRegistry::new();
        let err = run_threaded(&plan, &w.schema, &empty, &ThreadedConfig::default())
            .expect_err("no services registered");
        assert!(matches!(err, ExecError::MissingService(_)));
    }
}
