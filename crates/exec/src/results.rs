//! Answer-table rendering (the Fig. 10 "screenshot").

use mdq_model::query::ConjunctiveQuery;
use mdq_model::value::Tuple;
use std::fmt::Write as _;

/// Formats answers as an aligned text table with the head variables as
/// column headers — what the paper's execution engine showed its users.
pub fn result_table(query: &ConjunctiveQuery, answers: &[Tuple], limit: usize) -> String {
    let headers: Vec<String> = query
        .head
        .iter()
        .map(|v| query.var_name(*v).to_string())
        .collect();
    let shown = answers.iter().take(limit);
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    let rows: Vec<Vec<String>> = shown
        .map(|t| {
            t.values()
                .iter()
                .map(|v| format!("{v}"))
                .collect::<Vec<_>>()
        })
        .collect();
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let rule = |out: &mut String| {
        for w in &widths {
            let _ = write!(out, "+-{:-<w$}-", "", w = w);
        }
        let _ = writeln!(out, "+");
    };
    rule(&mut out);
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(out, "| {:w$} ", h, w = widths[i]);
    }
    let _ = writeln!(out, "|");
    rule(&mut out);
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(
                out,
                "| {:w$} ",
                cell,
                w = widths.get(i).copied().unwrap_or(0)
            );
        }
        let _ = writeln!(out, "|");
    }
    rule(&mut out);
    if answers.len() > limit {
        let _ = writeln!(out, "({} more answers)", answers.len() - limit);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdq_model::value::Value;

    #[test]
    fn renders_aligned_table() {
        let mut q = ConjunctiveQuery::new("q");
        let a = q.var("City");
        let b = q.var("Price");
        q.head_var(a);
        q.head_var(b);
        let answers = vec![
            Tuple::new(vec![Value::str("lisbon"), Value::float(123.5)]),
            Tuple::new(vec![Value::str("r"), Value::float(9.0)]),
            Tuple::new(vec![Value::str("zanzibar-city"), Value::float(55.25)]),
        ];
        let table = result_table(&q, &answers, 2);
        assert!(table.contains("City"), "{table}");
        assert!(table.contains("Price"), "{table}");
        assert!(table.contains("'lisbon'"), "{table}");
        assert!(!table.contains("zanzibar"), "limited to 2 rows:\n{table}");
        assert!(table.contains("(1 more answers)"), "{table}");
        // all rows share the same width
        let lines: Vec<&str> = table.lines().filter(|l| l.starts_with('|')).collect();
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }
}
