//! Logical caching (§5.1): the three client-side cache settings.
//!
//! Caches map `(service, input key)` to the tuples previously fetched for
//! that invocation. *One-call* keeps only the most recent entry per
//! service — enough to absorb the "immediate second-call" redundancy that
//! blocks of uniform tuples from proliferative services produce; *optimal*
//! memoizes everything.

use mdq_model::schema::ServiceId;
use mdq_model::value::{Tuple, Value};
use std::collections::HashMap;

pub use mdq_cost::estimate::CacheSetting;

/// The tuples previously fetched for one invocation key.
#[derive(Clone, Debug)]
pub struct CachedResult {
    /// Concatenated pages, in rank order.
    pub tuples: Vec<Tuple>,
    /// Number of pages fetched.
    pub pages: u32,
    /// Whether the service reported no further pages.
    pub exhausted: bool,
}

/// Per-service hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Invocations answered from the cache.
    pub hits: u64,
    /// Invocations forwarded to the service.
    pub misses: u64,
}

/// A client-side logical cache in one of the three §5.1 settings.
pub struct ClientCache {
    setting: CacheSetting,
    one_call: HashMap<ServiceId, (Vec<Value>, CachedResult)>,
    optimal: HashMap<(ServiceId, Vec<Value>), CachedResult>,
    stats: HashMap<ServiceId, CacheStats>,
}

impl ClientCache {
    /// A fresh cache with the given setting.
    pub fn new(setting: CacheSetting) -> Self {
        ClientCache {
            setting,
            one_call: HashMap::new(),
            optimal: HashMap::new(),
            stats: HashMap::new(),
        }
    }

    /// The active setting.
    pub fn setting(&self) -> CacheSetting {
        self.setting
    }

    /// Looks up an invocation needing `pages` pages. A cached entry
    /// serves the request if it has at least as many pages or is
    /// exhausted. Records a hit/miss.
    pub fn lookup(&mut self, service: ServiceId, key: &[Value], pages: u32) -> Option<CachedResult> {
        let found = match self.setting {
            CacheSetting::NoCache => None,
            CacheSetting::OneCall => self.one_call.get(&service).and_then(|(k, r)| {
                (k.as_slice() == key && (r.pages >= pages || r.exhausted)).then(|| r.clone())
            }),
            CacheSetting::Optimal => self
                .optimal
                .get(&(service, key.to_vec()))
                .filter(|r| r.pages >= pages || r.exhausted)
                .cloned(),
        };
        let stats = self.stats.entry(service).or_default();
        if found.is_some() {
            stats.hits += 1;
        } else {
            stats.misses += 1;
        }
        found
    }

    /// Stores the result of a performed invocation.
    pub fn store(&mut self, service: ServiceId, key: Vec<Value>, result: CachedResult) {
        match self.setting {
            CacheSetting::NoCache => {}
            CacheSetting::OneCall => {
                self.one_call.insert(service, (key, result));
            }
            CacheSetting::Optimal => {
                self.optimal.insert((service, key), result);
            }
        }
    }

    /// Per-service statistics.
    pub fn stats(&self, service: ServiceId) -> CacheStats {
        self.stats.get(&service).copied().unwrap_or_default()
    }

    /// Sum of statistics over all services.
    pub fn total_stats(&self) -> CacheStats {
        self.stats.values().fold(CacheStats::default(), |a, s| CacheStats {
            hits: a.hits + s.hits,
            misses: a.misses + s.misses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> Vec<Value> {
        vec![Value::str(s)]
    }

    fn result(n: usize) -> CachedResult {
        CachedResult {
            tuples: (0..n).map(|i| Tuple::new(vec![Value::Int(i as i64)])).collect(),
            pages: 1,
            exhausted: true,
        }
    }

    #[test]
    fn no_cache_never_hits() {
        let mut c = ClientCache::new(CacheSetting::NoCache);
        let s = ServiceId(0);
        assert!(c.lookup(s, &key("a"), 1).is_none());
        c.store(s, key("a"), result(2));
        assert!(c.lookup(s, &key("a"), 1).is_none());
        assert_eq!(c.stats(s), CacheStats { hits: 0, misses: 2 });
    }

    #[test]
    fn one_call_remembers_only_last() {
        let mut c = ClientCache::new(CacheSetting::OneCall);
        let s = ServiceId(0);
        assert!(c.lookup(s, &key("a"), 1).is_none());
        c.store(s, key("a"), result(2));
        assert!(c.lookup(s, &key("a"), 1).is_some(), "immediate second call");
        c.store(s, key("b"), result(1));
        assert!(c.lookup(s, &key("a"), 1).is_none(), "a was evicted by b");
        assert!(c.lookup(s, &key("b"), 1).is_some());
        assert_eq!(c.stats(s), CacheStats { hits: 2, misses: 2 });
    }

    #[test]
    fn one_call_is_per_service() {
        let mut c = ClientCache::new(CacheSetting::OneCall);
        c.store(ServiceId(0), key("a"), result(1));
        c.store(ServiceId(1), key("b"), result(1));
        assert!(c.lookup(ServiceId(0), &key("a"), 1).is_some());
        assert!(c.lookup(ServiceId(1), &key("b"), 1).is_some());
    }

    #[test]
    fn optimal_remembers_everything() {
        let mut c = ClientCache::new(CacheSetting::Optimal);
        let s = ServiceId(0);
        for k in ["a", "b", "c"] {
            assert!(c.lookup(s, &key(k), 1).is_none());
            c.store(s, key(k), result(1));
        }
        for k in ["a", "b", "c"] {
            assert!(c.lookup(s, &key(k), 1).is_some());
        }
        assert_eq!(c.stats(s), CacheStats { hits: 3, misses: 3 });
    }

    #[test]
    fn page_aware_lookup() {
        let mut c = ClientCache::new(CacheSetting::Optimal);
        let s = ServiceId(0);
        c.store(
            s,
            key("a"),
            CachedResult {
                tuples: vec![],
                pages: 2,
                exhausted: false,
            },
        );
        assert!(c.lookup(s, &key("a"), 2).is_some(), "enough pages cached");
        assert!(c.lookup(s, &key("a"), 3).is_none(), "needs a deeper fetch");
        c.store(
            s,
            key("b"),
            CachedResult {
                tuples: vec![],
                pages: 1,
                exhausted: true,
            },
        );
        assert!(c.lookup(s, &key("b"), 5).is_some(), "exhausted serves any depth");
        let t = c.total_stats();
        assert_eq!(t.hits + t.misses, 3);
    }
}
