//! Logical caching (§5.1): the three client-side cache settings.
//!
//! The cache maps `(service, input key)` to the *pages* previously
//! fetched for that invocation, in fetch order. *One-call* keeps only the
//! most recent key per service — enough to absorb the "immediate
//! second-call" redundancy that blocks of uniform tuples from
//! proliferative services produce; *optimal* memoizes everything;
//! *no cache* forwards every request.
//!
//! This is the storage half of the execution engine's single
//! service-invocation path: the [`ServiceGateway`](crate::gateway)
//! consults a [`PageCache`] before forwarding any page request, and every
//! executor drives its service calls through that gateway.

use mdq_model::schema::ServiceId;
use mdq_model::value::{Tuple, Value};
use std::collections::HashMap;

pub use mdq_cost::estimate::CacheSetting;

/// The pages previously fetched for one invocation key.
#[derive(Clone, Debug, Default)]
pub struct PageStore {
    /// Fetched pages, in page order.
    pub pages: Vec<Vec<Tuple>>,
    /// Whether the service reported no further pages after the last one.
    pub exhausted: bool,
}

/// Per-service hit/miss counters (one event per *invocation*, i.e. per
/// input binding reaching an invoke operator — not per page).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Invocations answered entirely from the cache.
    pub hits: u64,
    /// Invocations that forwarded at least one request.
    pub misses: u64,
}

/// Outcome of a cache probe for one page.
#[derive(Clone, Debug)]
pub enum PageLookup {
    /// The page is cached: its tuples, and whether more pages follow.
    Hit(Vec<Tuple>, bool),
    /// The invocation is known to be exhausted before this page — the
    /// service has no such page, no request needed.
    PastEnd,
    /// The cache cannot answer; the request must be forwarded.
    Unknown,
}

/// A client-side logical page cache in one of the three §5.1 settings,
/// optionally bounded to a number of distinct invocation keys
/// ([`PageCache::with_capacity`]) — a production cache cannot memoize
/// an unbounded workload, so the *optimal* setting becomes an LRU over
/// invocations and replacements are counted as evictions.
#[derive(Debug)]
pub struct PageCache {
    setting: CacheSetting,
    /// Max distinct invocation keys held (`usize::MAX` = unbounded, the
    /// paper's idealised optimal cache; `0` disables caching entirely).
    capacity: usize,
    tick: u64,
    one_call: HashMap<ServiceId, (Vec<Value>, PageStore)>,
    optimal: HashMap<(ServiceId, Vec<Value>), (PageStore, u64)>,
    stats: HashMap<ServiceId, CacheStats>,
    evictions: u64,
    /// Refcounted pins held by live subscription frontiers: a pinned
    /// invocation is never evicted (bounded LRU) nor invalidated — the
    /// standing-query delta computation re-reads exactly these pages.
    pins: HashMap<(ServiceId, Vec<Value>), u32>,
}

impl PageCache {
    /// A fresh unbounded cache with the given setting.
    pub fn new(setting: CacheSetting) -> Self {
        Self::with_capacity(setting, usize::MAX)
    }

    /// A fresh cache bounded to `capacity` distinct invocation keys
    /// (`0` disables caching — every lookup misses, every store is
    /// dropped — mirroring `PlanCache::new(0)`).
    pub fn with_capacity(setting: CacheSetting, capacity: usize) -> Self {
        PageCache {
            setting,
            capacity,
            tick: 0,
            one_call: HashMap::new(),
            optimal: HashMap::new(),
            stats: HashMap::new(),
            evictions: 0,
            pins: HashMap::new(),
        }
    }

    /// The active setting.
    pub fn setting(&self) -> CacheSetting {
        self.setting
    }

    /// Invocation entries dropped to respect the capacity bound (LRU
    /// evictions under *optimal*, key replacements under *one-call*).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Distinct invocation keys currently memoized — the cache's
    /// occupancy (0 under *no-cache*).
    pub fn entries(&self) -> usize {
        match self.setting {
            CacheSetting::NoCache => 0,
            CacheSetting::OneCall => self.one_call.len(),
            CacheSetting::Optimal => self.optimal.len(),
        }
    }

    fn store_of(&mut self, service: ServiceId, key: &[Value]) -> Option<&PageStore> {
        if self.capacity == 0 {
            return None;
        }
        match self.setting {
            CacheSetting::NoCache => None,
            CacheSetting::OneCall => self
                .one_call
                .get(&service)
                .filter(|(k, _)| k.as_slice() == key)
                .map(|(_, s)| s),
            CacheSetting::Optimal => {
                self.tick += 1;
                let tick = self.tick;
                self.optimal
                    .get_mut(&(service, key.to_vec()))
                    .map(|(s, used)| {
                        *used = tick;
                        &*s
                    })
            }
        }
    }

    /// Probes the cache for page `page` of an invocation (refreshing
    /// the invocation's LRU recency under a bounded *optimal* setting).
    pub fn lookup(&mut self, service: ServiceId, key: &[Value], page: u32) -> PageLookup {
        let Some(store) = self.store_of(service, key) else {
            return PageLookup::Unknown;
        };
        let p = page as usize;
        if p < store.pages.len() {
            let has_more = p + 1 < store.pages.len() || !store.exhausted;
            return PageLookup::Hit(store.pages[p].clone(), has_more);
        }
        if store.exhausted {
            PageLookup::PastEnd
        } else {
            PageLookup::Unknown
        }
    }

    /// Stores a freshly fetched page. Pages are demanded in order per
    /// invocation, so `page` is normally at most one past the stored
    /// prefix; a non-contiguous store (an invocation whose earlier pages
    /// were fetched before the one-call cache evicted its key) is
    /// dropped — caching a stream with a hole would fabricate empty
    /// pages on later lookups.
    pub fn store(
        &mut self,
        service: ServiceId,
        key: &[Value],
        page: u32,
        tuples: Vec<Tuple>,
        has_more: bool,
    ) {
        if self.capacity == 0 {
            return;
        }
        let store = match self.setting {
            CacheSetting::NoCache => return,
            CacheSetting::OneCall => {
                if let Some((resident, _)) = self.one_call.get(&service) {
                    if resident.as_slice() != key
                        && self.pins.contains_key(&(service, resident.clone()))
                    {
                        // a live subscription frontier pins the resident
                        // key: drop the new store instead of replacing
                        return;
                    }
                }
                let entry = self
                    .one_call
                    .entry(service)
                    .or_insert_with(|| (key.to_vec(), PageStore::default()));
                if entry.0.as_slice() != key {
                    if page != 0 {
                        // mid-stream for a new key: keep the old entry
                        // rather than caching a stream with a hole
                        return;
                    }
                    // the one-call cache replaces its per-service entry
                    *entry = (key.to_vec(), PageStore::default());
                    self.evictions += 1;
                }
                &mut entry.1
            }
            CacheSetting::Optimal => {
                let full_key = (service, key.to_vec());
                if self.optimal.len() >= self.capacity && !self.optimal.contains_key(&full_key) {
                    self.evict_unpinned();
                }
                self.tick += 1;
                let tick = self.tick;
                let (store, used) = self.optimal.entry(full_key).or_default();
                *used = tick;
                store
            }
        };
        if (page as usize) > store.pages.len() {
            return; // non-contiguous: drop instead of padding with holes
        }
        if store.pages.len() == page as usize {
            store.pages.push(tuples);
        }
        if !has_more {
            store.exhausted = true;
        }
    }

    /// Evicts the least-recently-used *unpinned* invocation (bounded
    /// *optimal* only). When every resident invocation is pinned by a
    /// live subscription frontier, nothing is evicted — the cache
    /// temporarily exceeds its capacity rather than tearing pages out
    /// from under a standing query's delta computation.
    fn evict_unpinned(&mut self) {
        if let Some(oldest) = self
            .optimal
            .iter()
            .filter(|(k, _)| !self.pins.contains_key(k))
            .min_by_key(|(_, (_, used))| *used)
            .map(|(k, _)| k.clone())
        {
            self.optimal.remove(&oldest);
            self.evictions += 1;
        }
    }

    /// Takes one pin on an invocation (refcounted). Pinned invocations
    /// survive bounded-LRU eviction, one-call replacement and
    /// [`PageCache::invalidate_unpinned`]. Pins are independent of
    /// residency: pinning a key that is not (yet) cached is allowed.
    pub fn pin(&mut self, service: ServiceId, key: &[Value]) {
        *self.pins.entry((service, key.to_vec())).or_insert(0) += 1;
    }

    /// Releases one pin. Returns whether a pin was held.
    pub fn unpin(&mut self, service: ServiceId, key: &[Value]) -> bool {
        let full_key = (service, key.to_vec());
        match self.pins.get_mut(&full_key) {
            Some(n) if *n > 1 => {
                *n -= 1;
                true
            }
            Some(_) => {
                self.pins.remove(&full_key);
                true
            }
            None => false,
        }
    }

    /// Whether the invocation currently holds at least one pin.
    pub fn is_pinned(&self, service: ServiceId, key: &[Value]) -> bool {
        self.pins.contains_key(&(service, key.to_vec()))
    }

    /// Distinct invocations currently pinned.
    pub fn pinned_invocations(&self) -> usize {
        self.pins.len()
    }

    /// A copy of an invocation's cached pages and exhaustion flag,
    /// without touching LRU recency — the snapshot a refresh driver
    /// tracks and diffs against. `None` when not resident (or the
    /// setting keeps no per-key store for it).
    pub fn export(&self, service: ServiceId, key: &[Value]) -> Option<(Vec<Vec<Tuple>>, bool)> {
        match self.setting {
            CacheSetting::NoCache => None,
            CacheSetting::OneCall => self
                .one_call
                .get(&service)
                .filter(|(k, _)| k.as_slice() == key)
                .map(|(_, s)| (s.pages.clone(), s.exhausted)),
            CacheSetting::Optimal => self
                .optimal
                .get(&(service, key.to_vec()))
                .map(|(s, _)| (s.pages.clone(), s.exhausted)),
        }
    }

    /// Installs a whole refreshed page set for an invocation, replacing
    /// any stale store (the page-at-a-time contiguity rules of
    /// [`PageCache::store`] do not apply — the set arrives complete
    /// from a refresh pass). Only the *optimal* setting installs; the
    /// capacity bound is honoured with pin-aware eviction.
    pub fn replace(
        &mut self,
        service: ServiceId,
        key: &[Value],
        pages: Vec<Vec<Tuple>>,
        exhausted: bool,
    ) {
        if self.capacity == 0 || self.setting != CacheSetting::Optimal {
            return;
        }
        let full_key = (service, key.to_vec());
        if self.optimal.len() >= self.capacity && !self.optimal.contains_key(&full_key) {
            self.evict_unpinned();
        }
        self.tick += 1;
        self.optimal
            .insert(full_key, (PageStore { pages, exhausted }, self.tick));
    }

    /// Drops every *unpinned* invocation (all settings), returning how
    /// many were dropped. A refresh pass runs this first so re-demanded
    /// pages outside any subscription frontier are re-fetched at the
    /// new epoch instead of served from a stale ad-hoc store; pinned
    /// invocations are exempt because the pass itself refreshes them.
    /// Not counted as evictions (capacity pressure) in
    /// [`PageCache::evictions`].
    pub fn invalidate_unpinned(&mut self) -> usize {
        let before = self.entries();
        match self.setting {
            CacheSetting::NoCache => {}
            CacheSetting::OneCall => {
                let pins = &self.pins;
                self.one_call
                    .retain(|service, (key, _)| pins.contains_key(&(*service, key.clone())));
            }
            CacheSetting::Optimal => {
                let pins = &self.pins;
                self.optimal.retain(|k, _| pins.contains_key(k));
            }
        }
        before - self.entries()
    }

    /// Records one invocation-level hit or miss.
    pub fn record_invocation(&mut self, service: ServiceId, hit: bool) {
        let stats = self.stats.entry(service).or_default();
        if hit {
            stats.hits += 1;
        } else {
            stats.misses += 1;
        }
    }

    /// Per-service statistics.
    pub fn stats(&self, service: ServiceId) -> CacheStats {
        self.stats.get(&service).copied().unwrap_or_default()
    }

    /// Sum of statistics over all services.
    pub fn total_stats(&self) -> CacheStats {
        self.stats
            .values()
            .fold(CacheStats::default(), |a, s| CacheStats {
                hits: a.hits + s.hits,
                misses: a.misses + s.misses,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> Vec<Value> {
        vec![Value::str(s)]
    }

    fn page(n: usize) -> Vec<Tuple> {
        (0..n)
            .map(|i| Tuple::new(vec![Value::Int(i as i64)]))
            .collect()
    }

    #[test]
    fn no_cache_never_hits() {
        let mut c = PageCache::new(CacheSetting::NoCache);
        let s = ServiceId(0);
        c.store(s, &key("a"), 0, page(2), false);
        assert!(matches!(c.lookup(s, &key("a"), 0), PageLookup::Unknown));
    }

    #[test]
    fn one_call_remembers_only_last_key() {
        let mut c = PageCache::new(CacheSetting::OneCall);
        let s = ServiceId(0);
        c.store(s, &key("a"), 0, page(2), false);
        assert!(matches!(c.lookup(s, &key("a"), 0), PageLookup::Hit(t, false) if t.len() == 2));
        c.store(s, &key("b"), 0, page(1), true);
        assert!(
            matches!(c.lookup(s, &key("a"), 0), PageLookup::Unknown),
            "a was evicted by b"
        );
        assert!(matches!(c.lookup(s, &key("b"), 0), PageLookup::Hit(t, true) if t.len() == 1));
    }

    #[test]
    fn one_call_is_per_service() {
        let mut c = PageCache::new(CacheSetting::OneCall);
        c.store(ServiceId(0), &key("a"), 0, page(1), false);
        c.store(ServiceId(1), &key("b"), 0, page(1), false);
        assert!(matches!(
            c.lookup(ServiceId(0), &key("a"), 0),
            PageLookup::Hit(..)
        ));
        assert!(matches!(
            c.lookup(ServiceId(1), &key("b"), 0),
            PageLookup::Hit(..)
        ));
    }

    #[test]
    fn optimal_remembers_everything() {
        let mut c = PageCache::new(CacheSetting::Optimal);
        let s = ServiceId(0);
        for k in ["a", "b", "c"] {
            assert!(matches!(c.lookup(s, &key(k), 0), PageLookup::Unknown));
            c.store(s, &key(k), 0, page(1), false);
        }
        for k in ["a", "b", "c"] {
            assert!(matches!(c.lookup(s, &key(k), 0), PageLookup::Hit(..)));
        }
    }

    #[test]
    fn exhaustion_marks_later_pages_past_end() {
        let mut c = PageCache::new(CacheSetting::Optimal);
        let s = ServiceId(0);
        c.store(s, &key("a"), 0, page(2), true);
        c.store(s, &key("a"), 1, page(1), false);
        assert!(
            matches!(c.lookup(s, &key("a"), 0), PageLookup::Hit(_, true)),
            "page 0 has a successor"
        );
        assert!(
            matches!(c.lookup(s, &key("a"), 1), PageLookup::Hit(_, false)),
            "page 1 is the last"
        );
        assert!(
            matches!(c.lookup(s, &key("a"), 2), PageLookup::PastEnd),
            "deeper requests need no forwarding"
        );
        // an open (non-exhausted) prefix cannot answer deeper requests
        c.store(s, &key("b"), 0, page(2), true);
        assert!(matches!(c.lookup(s, &key("b"), 1), PageLookup::Unknown));
    }

    #[test]
    fn non_contiguous_store_is_dropped() {
        // one-call: a key whose earlier pages predate an eviction must
        // not evict the current entry or cache a stream with a hole
        let mut c = PageCache::new(CacheSetting::OneCall);
        let s = ServiceId(0);
        c.store(s, &key("a"), 0, page(2), true);
        c.store(s, &key("b"), 1, page(1), false);
        assert!(
            matches!(c.lookup(s, &key("a"), 0), PageLookup::Hit(..)),
            "a survives the mid-stream store of b"
        );
        assert!(matches!(c.lookup(s, &key("b"), 0), PageLookup::Unknown));
        // and no setting ever fabricates an empty page below a hole
        let mut o = PageCache::new(CacheSetting::Optimal);
        o.store(s, &key("a"), 2, page(1), false);
        assert!(matches!(o.lookup(s, &key("a"), 0), PageLookup::Unknown));
        assert!(matches!(o.lookup(s, &key("a"), 2), PageLookup::Unknown));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = PageCache::with_capacity(CacheSetting::Optimal, 0);
        let s = ServiceId(0);
        c.store(s, &key("a"), 0, page(2), false);
        assert!(matches!(c.lookup(s, &key("a"), 0), PageLookup::Unknown));
        assert_eq!(c.evictions(), 0, "nothing stored, nothing evicted");
    }

    #[test]
    fn bounded_optimal_evicts_lru_invocations() {
        let mut c = PageCache::with_capacity(CacheSetting::Optimal, 2);
        let s = ServiceId(0);
        c.store(s, &key("a"), 0, page(1), false);
        c.store(s, &key("b"), 0, page(1), false);
        // touch a so b is the coldest
        assert!(matches!(c.lookup(s, &key("a"), 0), PageLookup::Hit(..)));
        c.store(s, &key("c"), 0, page(1), false);
        assert_eq!(c.evictions(), 1);
        assert!(matches!(c.lookup(s, &key("b"), 0), PageLookup::Unknown));
        assert!(matches!(c.lookup(s, &key("a"), 0), PageLookup::Hit(..)));
        assert!(matches!(c.lookup(s, &key("c"), 0), PageLookup::Hit(..)));
    }

    #[test]
    fn one_call_replacements_count_as_evictions() {
        let mut c = PageCache::new(CacheSetting::OneCall);
        let s = ServiceId(0);
        c.store(s, &key("a"), 0, page(1), false);
        assert_eq!(c.evictions(), 0, "first entry replaces nothing");
        c.store(s, &key("b"), 0, page(1), false);
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn bounded_eviction_skips_pinned_invocations() {
        // regression: a live subscription frontier pins `a`; bounded
        // LRU pressure must evict around it even though `a` is coldest
        let mut c = PageCache::with_capacity(CacheSetting::Optimal, 2);
        let s = ServiceId(0);
        c.store(s, &key("a"), 0, page(1), false);
        c.pin(s, &key("a"));
        c.store(s, &key("b"), 0, page(1), false);
        // touch b so a is strictly least-recently-used
        assert!(matches!(c.lookup(s, &key("b"), 0), PageLookup::Hit(..)));
        c.store(s, &key("c"), 0, page(1), false);
        assert_eq!(c.evictions(), 1);
        assert!(
            matches!(c.lookup(s, &key("a"), 0), PageLookup::Hit(..)),
            "pinned a survives"
        );
        assert!(
            matches!(c.lookup(s, &key("b"), 0), PageLookup::Unknown),
            "unpinned b was the victim"
        );
        // unpin: a becomes evictable again once it is the coldest
        assert!(c.unpin(s, &key("a")));
        assert!(matches!(c.lookup(s, &key("c"), 0), PageLookup::Hit(..)));
        c.store(s, &key("d"), 0, page(1), false);
        assert!(matches!(c.lookup(s, &key("a"), 0), PageLookup::Unknown));
    }

    #[test]
    fn all_pinned_cache_overflows_rather_than_evicting() {
        let mut c = PageCache::with_capacity(CacheSetting::Optimal, 1);
        let s = ServiceId(0);
        c.store(s, &key("a"), 0, page(1), false);
        c.pin(s, &key("a"));
        c.store(s, &key("b"), 0, page(1), false);
        assert_eq!(c.evictions(), 0, "no unpinned victim existed");
        assert_eq!(c.entries(), 2, "temporarily over capacity");
        assert!(matches!(c.lookup(s, &key("a"), 0), PageLookup::Hit(..)));
        assert!(matches!(c.lookup(s, &key("b"), 0), PageLookup::Hit(..)));
    }

    #[test]
    fn pins_are_refcounted() {
        let mut c = PageCache::new(CacheSetting::Optimal);
        let s = ServiceId(0);
        c.pin(s, &key("a"));
        c.pin(s, &key("a"));
        assert!(c.is_pinned(s, &key("a")));
        assert_eq!(c.pinned_invocations(), 1);
        assert!(c.unpin(s, &key("a")));
        assert!(c.is_pinned(s, &key("a")), "one pin still held");
        assert!(c.unpin(s, &key("a")));
        assert!(!c.is_pinned(s, &key("a")));
        assert!(!c.unpin(s, &key("a")), "no pin left to release");
    }

    #[test]
    fn one_call_does_not_replace_a_pinned_resident() {
        let mut c = PageCache::new(CacheSetting::OneCall);
        let s = ServiceId(0);
        c.store(s, &key("a"), 0, page(2), false);
        c.pin(s, &key("a"));
        c.store(s, &key("b"), 0, page(1), true);
        assert!(
            matches!(c.lookup(s, &key("a"), 0), PageLookup::Hit(..)),
            "pinned resident survives"
        );
        assert!(matches!(c.lookup(s, &key("b"), 0), PageLookup::Unknown));
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn export_replace_round_trip() {
        let mut c = PageCache::new(CacheSetting::Optimal);
        let s = ServiceId(0);
        c.store(s, &key("a"), 0, page(2), true);
        c.store(s, &key("a"), 1, page(1), false);
        let (pages, exhausted) = c.export(s, &key("a")).expect("resident");
        assert_eq!((pages.len(), exhausted), (2, true));
        assert!(c.export(s, &key("zzz")).is_none());
        // a refresh shrinks the invocation to one open page
        c.replace(s, &key("a"), vec![page(3)], false);
        assert!(matches!(c.lookup(s, &key("a"), 0), PageLookup::Hit(t, true) if t.len() == 3));
        assert!(
            matches!(c.lookup(s, &key("a"), 1), PageLookup::Unknown),
            "stale page 1 gone"
        );
    }

    #[test]
    fn invalidate_unpinned_spares_pinned_entries() {
        let mut c = PageCache::new(CacheSetting::Optimal);
        let s = ServiceId(0);
        c.store(s, &key("a"), 0, page(1), false);
        c.store(s, &key("b"), 0, page(1), false);
        c.store(s, &key("c"), 0, page(1), false);
        c.pin(s, &key("b"));
        assert_eq!(c.invalidate_unpinned(), 2);
        assert!(matches!(c.lookup(s, &key("a"), 0), PageLookup::Unknown));
        assert!(matches!(c.lookup(s, &key("b"), 0), PageLookup::Hit(..)));
        assert!(matches!(c.lookup(s, &key("c"), 0), PageLookup::Unknown));
        assert_eq!(c.evictions(), 0, "invalidations are not evictions");
    }

    #[test]
    fn invocation_stats_accumulate() {
        let mut c = PageCache::new(CacheSetting::OneCall);
        let s = ServiceId(0);
        c.record_invocation(s, false);
        c.record_invocation(s, true);
        c.record_invocation(s, true);
        assert_eq!(c.stats(s), CacheStats { hits: 2, misses: 1 });
        let t = c.total_stats();
        assert_eq!(t.hits + t.misses, 3);
        assert_eq!(c.stats(ServiceId(9)), CacheStats::default());
    }
}
