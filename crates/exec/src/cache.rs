//! Logical caching (§5.1): the three client-side cache settings.
//!
//! The cache maps `(service, input key)` to the *pages* previously
//! fetched for that invocation, in fetch order. *One-call* keeps only the
//! most recent key per service — enough to absorb the "immediate
//! second-call" redundancy that blocks of uniform tuples from
//! proliferative services produce; *optimal* memoizes everything;
//! *no cache* forwards every request.
//!
//! This is the storage half of the execution engine's single
//! service-invocation path: the [`ServiceGateway`](crate::gateway)
//! consults a [`PageCache`] before forwarding any page request, and every
//! executor drives its service calls through that gateway.

use mdq_model::schema::ServiceId;
use mdq_model::value::{Tuple, Value};
use std::collections::HashMap;

pub use mdq_cost::estimate::CacheSetting;

/// The pages previously fetched for one invocation key.
#[derive(Clone, Debug, Default)]
pub struct PageStore {
    /// Fetched pages, in page order.
    pub pages: Vec<Vec<Tuple>>,
    /// Whether the service reported no further pages after the last one.
    pub exhausted: bool,
}

/// Per-service hit/miss counters (one event per *invocation*, i.e. per
/// input binding reaching an invoke operator — not per page).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Invocations answered entirely from the cache.
    pub hits: u64,
    /// Invocations that forwarded at least one request.
    pub misses: u64,
}

/// Outcome of a cache probe for one page.
#[derive(Clone, Debug)]
pub enum PageLookup {
    /// The page is cached: its tuples, and whether more pages follow.
    Hit(Vec<Tuple>, bool),
    /// The invocation is known to be exhausted before this page — the
    /// service has no such page, no request needed.
    PastEnd,
    /// The cache cannot answer; the request must be forwarded.
    Unknown,
}

/// A client-side logical page cache in one of the three §5.1 settings,
/// optionally bounded to a number of distinct invocation keys
/// ([`PageCache::with_capacity`]) — a production cache cannot memoize
/// an unbounded workload, so the *optimal* setting becomes an LRU over
/// invocations and replacements are counted as evictions.
#[derive(Debug)]
pub struct PageCache {
    setting: CacheSetting,
    /// Max distinct invocation keys held (`usize::MAX` = unbounded, the
    /// paper's idealised optimal cache; `0` disables caching entirely).
    capacity: usize,
    tick: u64,
    one_call: HashMap<ServiceId, (Vec<Value>, PageStore)>,
    optimal: HashMap<(ServiceId, Vec<Value>), (PageStore, u64)>,
    stats: HashMap<ServiceId, CacheStats>,
    evictions: u64,
}

impl PageCache {
    /// A fresh unbounded cache with the given setting.
    pub fn new(setting: CacheSetting) -> Self {
        Self::with_capacity(setting, usize::MAX)
    }

    /// A fresh cache bounded to `capacity` distinct invocation keys
    /// (`0` disables caching — every lookup misses, every store is
    /// dropped — mirroring `PlanCache::new(0)`).
    pub fn with_capacity(setting: CacheSetting, capacity: usize) -> Self {
        PageCache {
            setting,
            capacity,
            tick: 0,
            one_call: HashMap::new(),
            optimal: HashMap::new(),
            stats: HashMap::new(),
            evictions: 0,
        }
    }

    /// The active setting.
    pub fn setting(&self) -> CacheSetting {
        self.setting
    }

    /// Invocation entries dropped to respect the capacity bound (LRU
    /// evictions under *optimal*, key replacements under *one-call*).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Distinct invocation keys currently memoized — the cache's
    /// occupancy (0 under *no-cache*).
    pub fn entries(&self) -> usize {
        match self.setting {
            CacheSetting::NoCache => 0,
            CacheSetting::OneCall => self.one_call.len(),
            CacheSetting::Optimal => self.optimal.len(),
        }
    }

    fn store_of(&mut self, service: ServiceId, key: &[Value]) -> Option<&PageStore> {
        if self.capacity == 0 {
            return None;
        }
        match self.setting {
            CacheSetting::NoCache => None,
            CacheSetting::OneCall => self
                .one_call
                .get(&service)
                .filter(|(k, _)| k.as_slice() == key)
                .map(|(_, s)| s),
            CacheSetting::Optimal => {
                self.tick += 1;
                let tick = self.tick;
                self.optimal
                    .get_mut(&(service, key.to_vec()))
                    .map(|(s, used)| {
                        *used = tick;
                        &*s
                    })
            }
        }
    }

    /// Probes the cache for page `page` of an invocation (refreshing
    /// the invocation's LRU recency under a bounded *optimal* setting).
    pub fn lookup(&mut self, service: ServiceId, key: &[Value], page: u32) -> PageLookup {
        let Some(store) = self.store_of(service, key) else {
            return PageLookup::Unknown;
        };
        let p = page as usize;
        if p < store.pages.len() {
            let has_more = p + 1 < store.pages.len() || !store.exhausted;
            return PageLookup::Hit(store.pages[p].clone(), has_more);
        }
        if store.exhausted {
            PageLookup::PastEnd
        } else {
            PageLookup::Unknown
        }
    }

    /// Stores a freshly fetched page. Pages are demanded in order per
    /// invocation, so `page` is normally at most one past the stored
    /// prefix; a non-contiguous store (an invocation whose earlier pages
    /// were fetched before the one-call cache evicted its key) is
    /// dropped — caching a stream with a hole would fabricate empty
    /// pages on later lookups.
    pub fn store(
        &mut self,
        service: ServiceId,
        key: &[Value],
        page: u32,
        tuples: Vec<Tuple>,
        has_more: bool,
    ) {
        if self.capacity == 0 {
            return;
        }
        let store = match self.setting {
            CacheSetting::NoCache => return,
            CacheSetting::OneCall => {
                let entry = self
                    .one_call
                    .entry(service)
                    .or_insert_with(|| (key.to_vec(), PageStore::default()));
                if entry.0.as_slice() != key {
                    if page != 0 {
                        // mid-stream for a new key: keep the old entry
                        // rather than caching a stream with a hole
                        return;
                    }
                    // the one-call cache replaces its per-service entry
                    *entry = (key.to_vec(), PageStore::default());
                    self.evictions += 1;
                }
                &mut entry.1
            }
            CacheSetting::Optimal => {
                let full_key = (service, key.to_vec());
                if self.optimal.len() >= self.capacity && !self.optimal.contains_key(&full_key) {
                    // bounded: evict the least-recently-used invocation
                    if let Some(oldest) = self
                        .optimal
                        .iter()
                        .min_by_key(|(_, (_, used))| *used)
                        .map(|(k, _)| k.clone())
                    {
                        self.optimal.remove(&oldest);
                        self.evictions += 1;
                    }
                }
                self.tick += 1;
                let tick = self.tick;
                let (store, used) = self.optimal.entry(full_key).or_default();
                *used = tick;
                store
            }
        };
        if (page as usize) > store.pages.len() {
            return; // non-contiguous: drop instead of padding with holes
        }
        if store.pages.len() == page as usize {
            store.pages.push(tuples);
        }
        if !has_more {
            store.exhausted = true;
        }
    }

    /// Records one invocation-level hit or miss.
    pub fn record_invocation(&mut self, service: ServiceId, hit: bool) {
        let stats = self.stats.entry(service).or_default();
        if hit {
            stats.hits += 1;
        } else {
            stats.misses += 1;
        }
    }

    /// Per-service statistics.
    pub fn stats(&self, service: ServiceId) -> CacheStats {
        self.stats.get(&service).copied().unwrap_or_default()
    }

    /// Sum of statistics over all services.
    pub fn total_stats(&self) -> CacheStats {
        self.stats
            .values()
            .fold(CacheStats::default(), |a, s| CacheStats {
                hits: a.hits + s.hits,
                misses: a.misses + s.misses,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> Vec<Value> {
        vec![Value::str(s)]
    }

    fn page(n: usize) -> Vec<Tuple> {
        (0..n)
            .map(|i| Tuple::new(vec![Value::Int(i as i64)]))
            .collect()
    }

    #[test]
    fn no_cache_never_hits() {
        let mut c = PageCache::new(CacheSetting::NoCache);
        let s = ServiceId(0);
        c.store(s, &key("a"), 0, page(2), false);
        assert!(matches!(c.lookup(s, &key("a"), 0), PageLookup::Unknown));
    }

    #[test]
    fn one_call_remembers_only_last_key() {
        let mut c = PageCache::new(CacheSetting::OneCall);
        let s = ServiceId(0);
        c.store(s, &key("a"), 0, page(2), false);
        assert!(matches!(c.lookup(s, &key("a"), 0), PageLookup::Hit(t, false) if t.len() == 2));
        c.store(s, &key("b"), 0, page(1), true);
        assert!(
            matches!(c.lookup(s, &key("a"), 0), PageLookup::Unknown),
            "a was evicted by b"
        );
        assert!(matches!(c.lookup(s, &key("b"), 0), PageLookup::Hit(t, true) if t.len() == 1));
    }

    #[test]
    fn one_call_is_per_service() {
        let mut c = PageCache::new(CacheSetting::OneCall);
        c.store(ServiceId(0), &key("a"), 0, page(1), false);
        c.store(ServiceId(1), &key("b"), 0, page(1), false);
        assert!(matches!(
            c.lookup(ServiceId(0), &key("a"), 0),
            PageLookup::Hit(..)
        ));
        assert!(matches!(
            c.lookup(ServiceId(1), &key("b"), 0),
            PageLookup::Hit(..)
        ));
    }

    #[test]
    fn optimal_remembers_everything() {
        let mut c = PageCache::new(CacheSetting::Optimal);
        let s = ServiceId(0);
        for k in ["a", "b", "c"] {
            assert!(matches!(c.lookup(s, &key(k), 0), PageLookup::Unknown));
            c.store(s, &key(k), 0, page(1), false);
        }
        for k in ["a", "b", "c"] {
            assert!(matches!(c.lookup(s, &key(k), 0), PageLookup::Hit(..)));
        }
    }

    #[test]
    fn exhaustion_marks_later_pages_past_end() {
        let mut c = PageCache::new(CacheSetting::Optimal);
        let s = ServiceId(0);
        c.store(s, &key("a"), 0, page(2), true);
        c.store(s, &key("a"), 1, page(1), false);
        assert!(
            matches!(c.lookup(s, &key("a"), 0), PageLookup::Hit(_, true)),
            "page 0 has a successor"
        );
        assert!(
            matches!(c.lookup(s, &key("a"), 1), PageLookup::Hit(_, false)),
            "page 1 is the last"
        );
        assert!(
            matches!(c.lookup(s, &key("a"), 2), PageLookup::PastEnd),
            "deeper requests need no forwarding"
        );
        // an open (non-exhausted) prefix cannot answer deeper requests
        c.store(s, &key("b"), 0, page(2), true);
        assert!(matches!(c.lookup(s, &key("b"), 1), PageLookup::Unknown));
    }

    #[test]
    fn non_contiguous_store_is_dropped() {
        // one-call: a key whose earlier pages predate an eviction must
        // not evict the current entry or cache a stream with a hole
        let mut c = PageCache::new(CacheSetting::OneCall);
        let s = ServiceId(0);
        c.store(s, &key("a"), 0, page(2), true);
        c.store(s, &key("b"), 1, page(1), false);
        assert!(
            matches!(c.lookup(s, &key("a"), 0), PageLookup::Hit(..)),
            "a survives the mid-stream store of b"
        );
        assert!(matches!(c.lookup(s, &key("b"), 0), PageLookup::Unknown));
        // and no setting ever fabricates an empty page below a hole
        let mut o = PageCache::new(CacheSetting::Optimal);
        o.store(s, &key("a"), 2, page(1), false);
        assert!(matches!(o.lookup(s, &key("a"), 0), PageLookup::Unknown));
        assert!(matches!(o.lookup(s, &key("a"), 2), PageLookup::Unknown));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = PageCache::with_capacity(CacheSetting::Optimal, 0);
        let s = ServiceId(0);
        c.store(s, &key("a"), 0, page(2), false);
        assert!(matches!(c.lookup(s, &key("a"), 0), PageLookup::Unknown));
        assert_eq!(c.evictions(), 0, "nothing stored, nothing evicted");
    }

    #[test]
    fn bounded_optimal_evicts_lru_invocations() {
        let mut c = PageCache::with_capacity(CacheSetting::Optimal, 2);
        let s = ServiceId(0);
        c.store(s, &key("a"), 0, page(1), false);
        c.store(s, &key("b"), 0, page(1), false);
        // touch a so b is the coldest
        assert!(matches!(c.lookup(s, &key("a"), 0), PageLookup::Hit(..)));
        c.store(s, &key("c"), 0, page(1), false);
        assert_eq!(c.evictions(), 1);
        assert!(matches!(c.lookup(s, &key("b"), 0), PageLookup::Unknown));
        assert!(matches!(c.lookup(s, &key("a"), 0), PageLookup::Hit(..)));
        assert!(matches!(c.lookup(s, &key("c"), 0), PageLookup::Hit(..)));
    }

    #[test]
    fn one_call_replacements_count_as_evictions() {
        let mut c = PageCache::new(CacheSetting::OneCall);
        let s = ServiceId(0);
        c.store(s, &key("a"), 0, page(1), false);
        assert_eq!(c.evictions(), 0, "first entry replaces nothing");
        c.store(s, &key("b"), 0, page(1), false);
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn invocation_stats_accumulate() {
        let mut c = PageCache::new(CacheSetting::OneCall);
        let s = ServiceId(0);
        c.record_invocation(s, false);
        c.record_invocation(s, true);
        c.record_invocation(s, true);
        assert_eq!(c.stats(s), CacheStats { hits: 2, misses: 1 });
        let t = c.total_stats();
        assert_eq!(t.hits + t.misses, 3);
        assert_eq!(c.stats(ServiceId(9)), CacheStats::default());
    }
}
