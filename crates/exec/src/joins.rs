//! Rank-preserving parallel-join strategies (§3.3, after ref. \[4\]).
//!
//! Both strategies consume two streams whose order encodes ranking and
//! emit joined pairs in an order *consistent with both partial orders*:
//! if pair `a` dominates pair `b` componentwise (both of `a`'s inputs
//! ranked at least as high), `a` is emitted no later than `b`. This is
//! the property that lets the engine compose a global ranking from the
//! services' opaque relevance orders (§1), and it is property-tested.
//!
//! * **Nested loop** (`NlJoin`): materialise the *outer* (selective) side
//!   first, then sweep the inner stream; grid scanned row by row.
//! * **Merge scan** (`MsJoin`): pull both sides in lockstep and traverse
//!   the grid by anti-diagonals (Fig. 5).

use crate::binding::Binding;
use mdq_model::query::VarId;

/// Nested-loop rank-preserving join. The outer side is fully materialised
/// up front (it is chosen to be the selective one, §3.3); pairs are
/// emitted inner-major: for each inner tuple, all outer matches.
pub struct NlJoin<O, I> {
    outer_src: Option<O>,
    outer: Vec<Binding>,
    inner: I,
    on: Vec<VarId>,
    current_inner: Option<Binding>,
    outer_idx: usize,
    /// When `true`, emitted pairs put the outer binding on the left of
    /// the merge (association only affects nothing semantically — merge
    /// is symmetric — but keeps provenance conventions tidy).
    outer_is_left: bool,
}

impl<O, I> NlJoin<O, I>
where
    O: Iterator<Item = Binding>,
    I: Iterator<Item = Binding>,
{
    /// Creates a nested-loop join; `outer` is the selective side.
    pub fn new(outer: O, inner: I, on: Vec<VarId>, outer_is_left: bool) -> Self {
        NlJoin {
            outer_src: Some(outer),
            outer: Vec::new(),
            inner,
            on,
            current_inner: None,
            outer_idx: 0,
            outer_is_left,
        }
    }

    fn ensure_outer(&mut self) {
        if let Some(src) = self.outer_src.take() {
            self.outer = src.collect();
        }
    }
}

impl<O, I> Iterator for NlJoin<O, I>
where
    O: Iterator<Item = Binding>,
    I: Iterator<Item = Binding>,
{
    type Item = Binding;

    fn next(&mut self) -> Option<Binding> {
        self.ensure_outer();
        if self.outer.is_empty() {
            return None;
        }
        loop {
            if self.current_inner.is_none() {
                self.current_inner = Some(self.inner.next()?);
                self.outer_idx = 0;
            }
            let inner = self.current_inner.as_ref().expect("just set");
            while self.outer_idx < self.outer.len() {
                let o = &self.outer[self.outer_idx];
                self.outer_idx += 1;
                let merged = if self.outer_is_left {
                    o.merge(inner, &self.on)
                } else {
                    inner.merge(o, &self.on)
                };
                if let Some(m) = merged {
                    return Some(m);
                }
            }
            self.current_inner = None;
        }
    }
}

/// Merge-scan rank-preserving join: anti-diagonal traversal of the
/// Cartesian grid, pulling both inputs in lockstep (Fig. 5, right).
pub struct MsJoin<L, R> {
    left: L,
    right: R,
    lbuf: Vec<Binding>,
    rbuf: Vec<Binding>,
    l_done: bool,
    r_done: bool,
    on: Vec<VarId>,
    /// Current anti-diagonal `d = i + j` and position `i` along it.
    d: usize,
    i: usize,
}

impl<L, R> MsJoin<L, R>
where
    L: Iterator<Item = Binding>,
    R: Iterator<Item = Binding>,
{
    /// Creates a merge-scan join.
    pub fn new(left: L, right: R, on: Vec<VarId>) -> Self {
        MsJoin {
            left,
            right,
            lbuf: Vec::new(),
            rbuf: Vec::new(),
            l_done: false,
            r_done: false,
            on,
            d: 0,
            i: 0,
        }
    }

    fn pull_left(&mut self, upto: usize) {
        while !self.l_done && self.lbuf.len() <= upto {
            match self.left.next() {
                Some(b) => self.lbuf.push(b),
                None => self.l_done = true,
            }
        }
    }

    fn pull_right(&mut self, upto: usize) {
        while !self.r_done && self.rbuf.len() <= upto {
            match self.right.next() {
                Some(b) => self.rbuf.push(b),
                None => self.r_done = true,
            }
        }
    }
}

impl<L, R> Iterator for MsJoin<L, R>
where
    L: Iterator<Item = Binding>,
    R: Iterator<Item = Binding>,
{
    type Item = Binding;

    fn next(&mut self) -> Option<Binding> {
        loop {
            // a provably empty side empties the grid
            if (self.l_done && self.lbuf.is_empty()) || (self.r_done && self.rbuf.is_empty()) {
                return None;
            }
            // is the whole grid exhausted?
            if self.l_done && self.r_done {
                let max_d = match (self.lbuf.len(), self.rbuf.len()) {
                    (0, _) | (_, 0) => return None,
                    (l, r) => l + r - 2,
                };
                if self.d > max_d {
                    return None;
                }
            }
            let (d, i) = (self.d, self.i);
            let j = d - i;
            // advance cursor for the next call
            if self.i < self.d {
                self.i += 1;
            } else {
                self.d += 1;
                self.i = 0;
            }
            // materialise the needed prefix of each side
            self.pull_left(i);
            self.pull_right(j);
            if i >= self.lbuf.len() || j >= self.rbuf.len() {
                // off-grid cell (one side shorter); skip.
                // When a side is exhausted, cells beyond it never exist;
                // if BOTH are exhausted the max_d check above terminates.
                if self.l_done && self.r_done {
                    continue;
                }
                // With one side still open the diagonal sweep continues —
                // later diagonals revisit the open side.
                continue;
            }
            if let Some(m) = self.lbuf[i].merge(&self.rbuf[j], &self.on) {
                return Some(m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdq_model::query::{Atom, Term};
    use mdq_model::schema::ServiceId;
    use mdq_model::value::{Tuple, Value};

    /// Builds a stream of bindings over vars (X=shared key, Y=rank id)
    /// for the left side, (X, Z) for the right side; 4 vars total.
    fn stream(var_key: u32, var_val: u32, items: &[(i64, i64)]) -> Vec<Binding> {
        items
            .iter()
            .map(|&(k, v)| {
                Binding::empty(4)
                    .bind_atom(
                        &Atom {
                            service: ServiceId(0),
                            terms: vec![Term::Var(VarId(var_key)), Term::Var(VarId(var_val))],
                        },
                        &Tuple::new(vec![Value::Int(k), Value::Int(v)]),
                    )
                    .expect("binds")
            })
            .collect()
    }

    fn pairs_of(results: &[Binding]) -> Vec<(i64, i64)> {
        results
            .iter()
            .map(|b| {
                let y = match b.get(VarId(1)) {
                    Some(Value::Int(v)) => *v,
                    other => panic!("Y not an int: {other:?}"),
                };
                let z = match b.get(VarId(2)) {
                    Some(Value::Int(v)) => *v,
                    other => panic!("Z not an int: {other:?}"),
                };
                (y, z)
            })
            .collect()
    }

    #[test]
    fn ms_join_equals_set_join() {
        // left: X in {1,2}, right: X in {1,3}: only X=1 matches
        let left = stream(0, 1, &[(1, 10), (2, 11), (1, 12)]);
        let right = stream(0, 2, &[(1, 20), (3, 21), (1, 22)]);
        let out: Vec<Binding> =
            MsJoin::new(left.into_iter(), right.into_iter(), vec![VarId(0)]).collect();
        let got = pairs_of(&out);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![(10, 20), (10, 22), (12, 20), (12, 22)]);
    }

    #[test]
    fn ms_join_diagonal_order() {
        // identical keys: all pairs join; diagonal order expected
        let left = stream(0, 1, &[(1, 0), (1, 1), (1, 2)]);
        let right = stream(0, 2, &[(1, 0), (1, 1), (1, 2)]);
        let out: Vec<Binding> =
            MsJoin::new(left.into_iter(), right.into_iter(), vec![VarId(0)]).collect();
        let got = pairs_of(&out);
        assert_eq!(
            got,
            vec![
                (0, 0),
                (0, 1),
                (1, 0),
                (0, 2),
                (1, 1),
                (2, 0),
                (1, 2),
                (2, 1),
                (2, 2)
            ]
        );
    }

    #[test]
    fn nl_join_inner_major_order() {
        let outer = stream(0, 1, &[(1, 0), (1, 1)]);
        let inner = stream(0, 2, &[(1, 0), (1, 1)]);
        let out: Vec<Binding> =
            NlJoin::new(outer.into_iter(), inner.into_iter(), vec![VarId(0)], true).collect();
        let got = pairs_of(&out);
        assert_eq!(got, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn joins_agree_on_result_set() {
        let l = &[(1, 0), (2, 1), (1, 2), (3, 3)];
        let r = &[(1, 0), (1, 1), (2, 2), (4, 3)];
        let ms: Vec<Binding> = MsJoin::new(
            stream(0, 1, l).into_iter(),
            stream(0, 2, r).into_iter(),
            vec![VarId(0)],
        )
        .collect();
        let nl: Vec<Binding> = NlJoin::new(
            stream(0, 1, l).into_iter(),
            stream(0, 2, r).into_iter(),
            vec![VarId(0)],
            true,
        )
        .collect();
        let (mut a, mut b) = (pairs_of(&ms), pairs_of(&nl));
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(a.len(), 2 * 2 + 1); // X=1: 2×2, X=2: 1×1
    }

    /// The rank-consistency property: if a pair dominates another
    /// componentwise, it is emitted no later.
    fn assert_rank_consistent(emitted: &[(usize, usize)]) {
        for (pos_a, &a) in emitted.iter().enumerate() {
            for (pos_b, &b) in emitted.iter().enumerate() {
                if a.0 <= b.0 && a.1 <= b.1 && (a.0 < b.0 || a.1 < b.1) {
                    assert!(
                        pos_a < pos_b,
                        "pair {a:?} dominates {b:?} but is emitted later"
                    );
                }
            }
        }
    }

    #[test]
    fn ms_emission_is_rank_consistent() {
        // ranks double as ids: all same key, sizes 4 × 3
        let left = stream(0, 1, &[(1, 0), (1, 1), (1, 2), (1, 3)]);
        let right = stream(0, 2, &[(1, 0), (1, 1), (1, 2)]);
        let out: Vec<Binding> =
            MsJoin::new(left.into_iter(), right.into_iter(), vec![VarId(0)]).collect();
        let got: Vec<(usize, usize)> = pairs_of(&out)
            .into_iter()
            .map(|(y, z)| (y as usize, z as usize))
            .collect();
        assert_eq!(got.len(), 12);
        assert_rank_consistent(&got);
    }

    #[test]
    fn nl_emission_is_rank_consistent() {
        let outer = stream(0, 1, &[(1, 0), (1, 1)]);
        let inner = stream(0, 2, &[(1, 0), (1, 1), (1, 2)]);
        let out: Vec<Binding> =
            NlJoin::new(outer.into_iter(), inner.into_iter(), vec![VarId(0)], true).collect();
        let got: Vec<(usize, usize)> = pairs_of(&out)
            .into_iter()
            .map(|(y, z)| (y as usize, z as usize))
            .collect();
        assert_rank_consistent(&got);
    }

    #[test]
    fn empty_sides() {
        let empty: Vec<Binding> = Vec::new();
        let right = stream(0, 2, &[(1, 0)]);
        let ms: Vec<Binding> = MsJoin::new(
            empty.clone().into_iter(),
            right.clone().into_iter(),
            vec![VarId(0)],
        )
        .collect();
        assert!(ms.is_empty());
        let nl: Vec<Binding> =
            NlJoin::new(empty.into_iter(), right.into_iter(), vec![VarId(0)], true).collect();
        assert!(nl.is_empty());
    }

    #[test]
    fn cartesian_when_no_shared_vars() {
        let left = stream(0, 1, &[(1, 0), (2, 1)]);
        let right = stream(3, 2, &[(7, 0)]); // different key var → no overlap
        let out: Vec<Binding> = MsJoin::new(left.into_iter(), right.into_iter(), vec![]).collect();
        assert_eq!(out.len(), 2, "cross product on empty join condition");
    }
}
