//! Rank-preserving parallel-join strategies (§3.3, after ref. \[4\]).
//!
//! Both strategies consume two streams whose order encodes ranking and
//! emit joined pairs in an order *consistent with both partial orders*:
//! if pair `a` dominates pair `b` componentwise (both of `a`'s inputs
//! ranked at least as high), `a` is emitted no later than `b`. This is
//! the property that lets the engine compose a global ranking from the
//! services' opaque relevance orders (§1), and it is property-tested.
//!
//! * **Nested loop** (`NlJoin`): materialise the *outer* (selective) side
//!   first and index it by its equi-join key; each inner tuple then
//!   probes the hash index instead of sweeping the whole outer side.
//!   Candidate lists keep the outer scan order, so the emission order is
//!   byte-identical to the original row-by-row grid sweep.
//! * **Merge scan** (`MsJoin`): pull both sides in lockstep and traverse
//!   the grid by anti-diagonals (Fig. 5).

use crate::binding::Binding;
use crate::operator::{drain_into, Batch, Operator};
use mdq_model::query::VarId;
use mdq_model::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// One component of a hash-join key: a canonical, hashable image of an
/// `Option<&Value>` under which two bindings merge on a join variable
/// exactly when their key parts are equal — up to the benign false
/// positive of distinct `i64`s sharing an `f64` image, which the
/// per-candidate [`Binding::merge`] re-verification rejects.
///
/// Soundness: [`Value::join_eq`] equality is `total_cmp` equality on
/// the `as_f64` image for every numeric pairing (and `total_cmp`
/// equality is bit equality), and kind+content equality otherwise — so
/// `join_eq` never holds across two distinct `KeyPart`s. A join
/// variable unbound on *both* sides also merges, hence the explicit
/// `Unbound` part.
#[derive(Clone, PartialEq, Eq, Hash)]
enum KeyPart {
    Num(u64),
    Str(Arc<str>),
    Bool(bool),
    Null,
    Unbound,
}

fn key_part(v: Option<&Value>) -> KeyPart {
    match v {
        None => KeyPart::Unbound,
        Some(Value::Null) => KeyPart::Null,
        Some(Value::Bool(b)) => KeyPart::Bool(*b),
        Some(Value::Str(s)) => KeyPart::Str(Arc::clone(s)),
        Some(other) => KeyPart::Num(
            other
                .as_f64()
                .expect("Int/Float/Date all have an f64 image")
                .to_bits(),
        ),
    }
}

fn join_key(b: &Binding, on: &[VarId]) -> Vec<KeyPart> {
    on.iter().map(|&v| key_part(b.get(v))).collect()
}

/// The inner tuple currently probing the outer index.
struct Probe {
    inner: Binding,
    /// Outer-side candidate indices in outer scan order.
    cands: Arc<[usize]>,
    pos: usize,
}

/// Nested-loop rank-preserving join. The outer side is fully materialised
/// up front (it is chosen to be the selective one, §3.3) into a hash
/// index over the equi-join key; pairs are emitted inner-major: for each
/// inner tuple, all outer matches in outer order — exactly the emission
/// order of the naive grid sweep, at probe cost.
pub struct NlJoin<O, I> {
    outer_src: Option<O>,
    outer: Vec<Binding>,
    /// Equi-key buckets over the outer side; with an empty `on` every
    /// outer binding lands in the single empty-key bucket (full scan).
    index: HashMap<Vec<KeyPart>, Arc<[usize]>>,
    inner: I,
    on: Vec<VarId>,
    probe: Option<Probe>,
    /// When `true`, emitted pairs put the outer binding on the left of
    /// the merge (association only affects nothing semantically — merge
    /// is symmetric — but keeps provenance conventions tidy).
    outer_is_left: bool,
}

impl<O, I> NlJoin<O, I>
where
    O: Operator,
    I: Operator,
{
    /// Creates a nested-loop join; `outer` is the selective side.
    pub fn new(outer: O, inner: I, on: Vec<VarId>, outer_is_left: bool) -> Self {
        NlJoin {
            outer_src: Some(outer),
            outer: Vec::new(),
            index: HashMap::new(),
            inner,
            on,
            probe: None,
            outer_is_left,
        }
    }

    fn ensure_outer(&mut self) {
        if let Some(mut src) = self.outer_src.take() {
            let mut outer = Vec::new();
            drain_into(&mut src, 256, &mut outer);
            let mut buckets: HashMap<Vec<KeyPart>, Vec<usize>> = HashMap::new();
            for (i, b) in outer.iter().enumerate() {
                buckets.entry(join_key(b, &self.on)).or_default().push(i);
            }
            self.index = buckets
                .into_iter()
                .map(|(k, v)| (k, Arc::from(v)))
                .collect();
            self.outer = outer;
        }
    }

    fn pull_next(&mut self) -> Option<Binding> {
        self.ensure_outer();
        if self.outer.is_empty() {
            return None;
        }
        loop {
            if self.probe.is_none() {
                // the inner side is pulled strictly one binding at a
                // time: bulk-pulling it would over-demand upstream
                // service calls beyond what this join actually consumes
                let inner = self.inner.next_binding()?;
                let cands = self
                    .index
                    .get(&join_key(&inner, &self.on))
                    .cloned()
                    .unwrap_or_else(|| Arc::from(Vec::new()));
                self.probe = Some(Probe {
                    inner,
                    cands,
                    pos: 0,
                });
            }
            let p = self.probe.as_mut().expect("just set");
            while p.pos < p.cands.len() {
                let o = &self.outer[p.cands[p.pos]];
                p.pos += 1;
                let merged = if self.outer_is_left {
                    o.merge(&p.inner, &self.on)
                } else {
                    p.inner.merge(o, &self.on)
                };
                if let Some(m) = merged {
                    return Some(m);
                }
            }
            self.probe = None;
        }
    }
}

impl<O, I> Operator for NlJoin<O, I>
where
    O: Operator,
    I: Operator,
{
    fn next_binding(&mut self) -> Option<Binding> {
        self.pull_next()
    }
}

/// Merge-scan rank-preserving join: anti-diagonal traversal of the
/// Cartesian grid, pulling both inputs in lockstep (Fig. 5, right).
pub struct MsJoin<L, R> {
    left: L,
    right: R,
    lbuf: Batch,
    rbuf: Batch,
    l_done: bool,
    r_done: bool,
    on: Vec<VarId>,
    /// Current anti-diagonal `d = i + j` and position `i` along it.
    d: usize,
    i: usize,
}

impl<L, R> MsJoin<L, R>
where
    L: Operator,
    R: Operator,
{
    /// Creates a merge-scan join.
    pub fn new(left: L, right: R, on: Vec<VarId>) -> Self {
        MsJoin {
            left,
            right,
            lbuf: Vec::new(),
            rbuf: Vec::new(),
            l_done: false,
            r_done: false,
            on,
            d: 0,
            i: 0,
        }
    }

    fn pull_left(&mut self, upto: usize) {
        while !self.l_done && self.lbuf.len() <= upto {
            match self.left.next_binding() {
                Some(b) => self.lbuf.push(b),
                None => self.l_done = true,
            }
        }
    }

    fn pull_right(&mut self, upto: usize) {
        while !self.r_done && self.rbuf.len() <= upto {
            match self.right.next_binding() {
                Some(b) => self.rbuf.push(b),
                None => self.r_done = true,
            }
        }
    }

    fn pull_next(&mut self) -> Option<Binding> {
        loop {
            // a provably empty side empties the grid
            if (self.l_done && self.lbuf.is_empty()) || (self.r_done && self.rbuf.is_empty()) {
                return None;
            }
            // is the whole grid exhausted?
            if self.l_done && self.r_done {
                let max_d = match (self.lbuf.len(), self.rbuf.len()) {
                    (0, _) | (_, 0) => return None,
                    (l, r) => l + r - 2,
                };
                if self.d > max_d {
                    return None;
                }
            }
            let (d, i) = (self.d, self.i);
            let j = d - i;
            // advance cursor for the next call
            if self.i < self.d {
                self.i += 1;
            } else {
                self.d += 1;
                self.i = 0;
            }
            // materialise the needed prefix of each side
            self.pull_left(i);
            self.pull_right(j);
            if i >= self.lbuf.len() || j >= self.rbuf.len() {
                // off-grid cell (one side shorter); skip.
                // When a side is exhausted, cells beyond it never exist;
                // if BOTH are exhausted the max_d check above terminates.
                if self.l_done && self.r_done {
                    continue;
                }
                // With one side still open the diagonal sweep continues —
                // later diagonals revisit the open side.
                continue;
            }
            if let Some(m) = self.lbuf[i].merge(&self.rbuf[j], &self.on) {
                return Some(m);
            }
        }
    }
}

impl<L, R> Operator for MsJoin<L, R>
where
    L: Operator,
    R: Operator,
{
    fn next_binding(&mut self) -> Option<Binding> {
        self.pull_next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{drain_all, Source};
    use mdq_model::query::{Atom, Term};
    use mdq_model::schema::ServiceId;
    use mdq_model::value::{Tuple, Value};

    /// Builds a stream of bindings over vars (X=shared key, Y=rank id)
    /// for the left side, (X, Z) for the right side; 4 vars total.
    fn stream(var_key: u32, var_val: u32, items: &[(i64, i64)]) -> Vec<Binding> {
        items
            .iter()
            .map(|&(k, v)| {
                Binding::empty(4)
                    .bind_atom(
                        &Atom {
                            service: ServiceId(0),
                            terms: vec![Term::Var(VarId(var_key)), Term::Var(VarId(var_val))],
                        },
                        &Tuple::new(vec![Value::Int(k), Value::Int(v)]),
                    )
                    .expect("binds")
            })
            .collect()
    }

    fn src(items: Vec<Binding>) -> Source<std::vec::IntoIter<Binding>> {
        Source(items.into_iter())
    }

    fn pairs_of(results: &[Binding]) -> Vec<(i64, i64)> {
        results
            .iter()
            .map(|b| {
                let y = match b.get(VarId(1)) {
                    Some(Value::Int(v)) => *v,
                    other => panic!("Y not an int: {other:?}"),
                };
                let z = match b.get(VarId(2)) {
                    Some(Value::Int(v)) => *v,
                    other => panic!("Z not an int: {other:?}"),
                };
                (y, z)
            })
            .collect()
    }

    #[test]
    fn ms_join_equals_set_join() {
        // left: X in {1,2}, right: X in {1,3}: only X=1 matches
        let left = stream(0, 1, &[(1, 10), (2, 11), (1, 12)]);
        let right = stream(0, 2, &[(1, 20), (3, 21), (1, 22)]);
        let out = drain_all(MsJoin::new(src(left), src(right), vec![VarId(0)]), 16);
        let got = pairs_of(&out);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![(10, 20), (10, 22), (12, 20), (12, 22)]);
    }

    #[test]
    fn ms_join_diagonal_order() {
        // identical keys: all pairs join; diagonal order expected
        let left = stream(0, 1, &[(1, 0), (1, 1), (1, 2)]);
        let right = stream(0, 2, &[(1, 0), (1, 1), (1, 2)]);
        let out = drain_all(MsJoin::new(src(left), src(right), vec![VarId(0)]), 16);
        let got = pairs_of(&out);
        assert_eq!(
            got,
            vec![
                (0, 0),
                (0, 1),
                (1, 0),
                (0, 2),
                (1, 1),
                (2, 0),
                (1, 2),
                (2, 1),
                (2, 2)
            ]
        );
    }

    #[test]
    fn nl_join_inner_major_order() {
        let outer = stream(0, 1, &[(1, 0), (1, 1)]);
        let inner = stream(0, 2, &[(1, 0), (1, 1)]);
        let out = drain_all(
            NlJoin::new(src(outer), src(inner), vec![VarId(0)], true),
            16,
        );
        let got = pairs_of(&out);
        assert_eq!(got, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn joins_agree_on_result_set() {
        let l = &[(1, 0), (2, 1), (1, 2), (3, 3)];
        let r = &[(1, 0), (1, 1), (2, 2), (4, 3)];
        let ms = drain_all(
            MsJoin::new(src(stream(0, 1, l)), src(stream(0, 2, r)), vec![VarId(0)]),
            16,
        );
        let nl = drain_all(
            NlJoin::new(
                src(stream(0, 1, l)),
                src(stream(0, 2, r)),
                vec![VarId(0)],
                true,
            ),
            16,
        );
        let (mut a, mut b) = (pairs_of(&ms), pairs_of(&nl));
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(a.len(), 2 * 2 + 1); // X=1: 2×2, X=2: 1×1
    }

    /// The hash index must match numerics across kinds exactly like
    /// `Value::join_eq`: `Int(1)` joins `Float(1.0)`.
    #[test]
    fn nl_join_matches_numerics_across_kinds() {
        let outer: Vec<Binding> = stream(0, 1, &[(1, 0), (2, 1)]);
        // right side binds X as Float
        let right: Vec<Binding> = [(1.0f64, 5i64), (3.0, 6)]
            .iter()
            .map(|&(k, v)| {
                Binding::empty(4)
                    .bind_atom(
                        &Atom {
                            service: ServiceId(0),
                            terms: vec![Term::Var(VarId(0)), Term::Var(VarId(2))],
                        },
                        &Tuple::new(vec![Value::float(k), Value::Int(v)]),
                    )
                    .expect("binds")
            })
            .collect();
        let out = drain_all(
            NlJoin::new(src(outer), src(right), vec![VarId(0)], true),
            16,
        );
        assert_eq!(pairs_of(&out), vec![(0, 5)]);
    }

    /// The rank-consistency property: if a pair dominates another
    /// componentwise, it is emitted no later.
    fn assert_rank_consistent(emitted: &[(usize, usize)]) {
        for (pos_a, &a) in emitted.iter().enumerate() {
            for (pos_b, &b) in emitted.iter().enumerate() {
                if a.0 <= b.0 && a.1 <= b.1 && (a.0 < b.0 || a.1 < b.1) {
                    assert!(
                        pos_a < pos_b,
                        "pair {a:?} dominates {b:?} but is emitted later"
                    );
                }
            }
        }
    }

    #[test]
    fn ms_emission_is_rank_consistent() {
        // ranks double as ids: all same key, sizes 4 × 3
        let left = stream(0, 1, &[(1, 0), (1, 1), (1, 2), (1, 3)]);
        let right = stream(0, 2, &[(1, 0), (1, 1), (1, 2)]);
        let out = drain_all(MsJoin::new(src(left), src(right), vec![VarId(0)]), 16);
        let got: Vec<(usize, usize)> = pairs_of(&out)
            .into_iter()
            .map(|(y, z)| (y as usize, z as usize))
            .collect();
        assert_eq!(got.len(), 12);
        assert_rank_consistent(&got);
    }

    #[test]
    fn nl_emission_is_rank_consistent() {
        let outer = stream(0, 1, &[(1, 0), (1, 1)]);
        let inner = stream(0, 2, &[(1, 0), (1, 1), (1, 2)]);
        let out = drain_all(
            NlJoin::new(src(outer), src(inner), vec![VarId(0)], true),
            16,
        );
        let got: Vec<(usize, usize)> = pairs_of(&out)
            .into_iter()
            .map(|(y, z)| (y as usize, z as usize))
            .collect();
        assert_rank_consistent(&got);
    }

    #[test]
    fn empty_sides() {
        let empty: Vec<Binding> = Vec::new();
        let right = stream(0, 2, &[(1, 0)]);
        let ms = drain_all(
            MsJoin::new(src(empty.clone()), src(right.clone()), vec![VarId(0)]),
            16,
        );
        assert!(ms.is_empty());
        let nl = drain_all(
            NlJoin::new(src(empty), src(right), vec![VarId(0)], true),
            16,
        );
        assert!(nl.is_empty());
    }

    #[test]
    fn cartesian_when_no_shared_vars() {
        let left = stream(0, 1, &[(1, 0), (2, 1)]);
        let right = stream(3, 2, &[(7, 0)]); // different key var → no overlap
        let out = drain_all(MsJoin::new(src(left), src(right), vec![]), 16);
        assert_eq!(out.len(), 2, "cross product on empty join condition");
    }
}
