//! The streaming operator kernel shared by every executor.
//!
//! A plan node becomes a pull-based [`Operator`] — `next_binding()`
//! yields the node's output stream one [`Binding`] at a time, and
//! `next_batch()` moves a whole [`Batch`] of bindings per hop (same
//! stream, amortized dispatch):
//!
//! * [`Invoke`] — drives service invocations through the
//!   [`ServiceGateway`](crate::gateway::ServiceGateway): per upstream
//!   binding it extracts the input key, pages through the service on
//!   demand (within the phase-3 fetch budget, or elastically), and binds
//!   result tuples; consecutive cached pages are fetched as one run
//!   under a single gateway lock acquisition;
//! * [`Join`] — a rank-preserving parallel join in the plan's chosen
//!   strategy (merge-scan or nested-loop, §3.3);
//! * [`Filter`] — applies the predicates placed at a node;
//! * [`Select`] — truncates a stream to the best `k` bindings.
//!
//! Batches carry *canonical rows*: a [`Binding`] is an `Arc`-shared
//! value row, so moving it between operators — or replaying it through
//! a `Tee` fan-out — is a reference-count bump, never a per-value
//! deep copy.
//!
//! **Demand-exactness.** `next_batch(max, out)` must perform exactly
//! the work of `max` successive `next_binding()` calls: same upstream
//! pulls, same service requests, same accounting. Returning fewer than
//! `max` bindings means the stream is exhausted. This is what makes
//! answer sets *and per-service call counts* invariant under batch
//! size — the equivalence suite sweeps batch sizes to pin it.
//!
//! The three executors are thin drivers over this kernel: the
//! stage-materialised engine drains one operator per node and accounts
//! virtual time, the top-k engine pulls lazily from a [`compile`]d
//! operator tree, and the threaded engine runs one operator per worker
//! over channel streams. None of them invokes a service or touches a
//! cache directly.

use crate::binding::Binding;
use crate::gateway::GatewayHandle;
use crate::plan_info::PlanInfo;
use mdq_model::query::{Atom, Predicate};
use mdq_model::schema::{Schema, ServiceId};
use mdq_model::value::{Tuple, Value};
use mdq_plan::dag::{JoinStrategy, NodeKind, Plan, Side};
use std::collections::VecDeque;
use std::fmt;

/// Execution failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// A plan atom's service has no runtime registration.
    MissingService(String),
    /// An input variable was unbound when a node needed it (an
    /// inadmissible plan slipped through — a bug upstream).
    UnboundInput {
        /// Service name of the starving atom.
        service: String,
    },
    /// Admission control: the execution reached its per-query
    /// forwarded-call budget and further service requests were refused.
    CallBudgetExhausted {
        /// The budget that was exhausted.
        budget: u64,
    },
    /// Admission control: the tenant this execution runs under has
    /// spent its cumulative forwarded-call budget across *all* of its
    /// queries, and further service requests were refused.
    TenantBudgetExhausted {
        /// The tenant whose budget is spent.
        tenant: u32,
        /// The cumulative budget that was exhausted.
        budget: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MissingService(s) => write!(f, "service `{s}` is not registered"),
            ExecError::UnboundInput { service } => {
                write!(f, "input variable unbound when invoking `{service}`")
            }
            ExecError::CallBudgetExhausted { budget } => {
                write!(
                    f,
                    "per-query call budget of {budget} request-responses exhausted"
                )
            }
            ExecError::TenantBudgetExhausted { tenant, budget } => {
                write!(
                    f,
                    "tenant {tenant} call budget of {budget} request-responses exhausted"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// A batch of canonical rows moved per operator hop.
pub type Batch = Vec<Binding>;

/// Default number of bindings moved per operator hop.
pub const DEFAULT_BATCH: usize = 64;

/// A pull-based streaming operator: `next_binding()` yields the next
/// output binding, `None` ends the stream; `next_batch()` yields up to
/// `max` bindings per call.
///
/// Implementations of `next_batch` must be **demand-exact**: the call
/// performs precisely the work of `max` successive `next_binding()`
/// calls (same upstream demand, same service requests), and a return
/// value below `max` means the stream is exhausted.
pub trait Operator {
    /// Pulls the next binding.
    fn next_binding(&mut self) -> Option<Binding>;

    /// Appends up to `max` bindings to `out`, returning how many were
    /// appended. The default loops `next_binding`; operators with a
    /// cheaper bulk path override it.
    fn next_batch(&mut self, max: usize, out: &mut Batch) -> usize {
        let mut n = 0;
        while n < max {
            match self.next_binding() {
                Some(b) => {
                    out.push(b);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }
}

impl<T: Operator + ?Sized> Operator for &mut T {
    fn next_binding(&mut self) -> Option<Binding> {
        (**self).next_binding()
    }
    fn next_batch(&mut self, max: usize, out: &mut Batch) -> usize {
        (**self).next_batch(max, out)
    }
}

impl<T: Operator + ?Sized> Operator for Box<T> {
    fn next_binding(&mut self) -> Option<Binding> {
        (**self).next_binding()
    }
    fn next_batch(&mut self, max: usize, out: &mut Batch) -> usize {
        (**self).next_batch(max, out)
    }
}

impl Iterator for Box<dyn Operator + '_> {
    type Item = Binding;
    fn next(&mut self) -> Option<Binding> {
        (**self).next_binding()
    }
}

/// Adapts any binding iterator into an [`Operator`] — the root of every
/// compiled plan and the shim for materialised intermediate stages.
pub struct Source<I>(pub I);

impl<I: Iterator<Item = Binding>> Operator for Source<I> {
    fn next_binding(&mut self) -> Option<Binding> {
        self.0.next()
    }
    fn next_batch(&mut self, max: usize, out: &mut Batch) -> usize {
        let before = out.len();
        out.extend(self.0.by_ref().take(max));
        out.len() - before
    }
}

/// Drains `op` to exhaustion in `batch`-sized steps.
pub fn drain_all(mut op: impl Operator, batch: usize) -> Batch {
    let mut out = Vec::new();
    drain_into(&mut op, batch, &mut out);
    out
}

/// Appends every remaining binding of `op` to `out`, `batch` at a time.
pub fn drain_into(op: &mut impl Operator, batch: usize, out: &mut Batch) {
    let batch = batch.max(1);
    while op.next_batch(batch, out) == batch {}
}

/// Paging state for the input binding currently being expanded.
struct CurrentInput {
    binding: Binding,
    key: Vec<Value>,
    next_page: u32,
    buf: VecDeque<Tuple>,
    done: bool,
    /// Summed latency of the pages this input actually forwarded.
    forwarded: f64,
    any_forwarded: bool,
}

/// The invocation operator: extends each upstream binding with the
/// tuples a service returns for it, paging on demand through the
/// gateway.
pub struct Invoke<I, G> {
    upstream: I,
    gateway: G,
    /// Plan node this operator executes — declared as the gateway's
    /// active node around page runs so fetch-side statistics (calls,
    /// retries, cached pages, simulated seconds) land on the right
    /// EXPLAIN ANALYZE row.
    node: usize,
    svc_id: ServiceId,
    service_name: String,
    pattern: usize,
    input_positions: Vec<usize>,
    atom: Atom,
    /// Page budget per input (the phase-3 fetch factor); `None` pages
    /// elastically while downstream demand is unmet.
    max_pages: Option<u32>,
    /// Real seconds slept per simulated latency second on forwarded
    /// calls (0 = no sleeping; used by the real-thread driver).
    sleep_scale: f64,
    current: Option<CurrentInput>,
    /// One entry per input that forwarded at least one call: its summed
    /// latency. The materialised drivers read this for virtual time.
    input_latencies: Vec<f64>,
    /// Reused scratch for batched page runs.
    page_buf: Vec<crate::gateway::PageFetch>,
    halted: bool,
}

impl<I, G> Invoke<I, G>
where
    I: Operator,
    G: GatewayHandle,
{
    /// Builds the invoke operator for plan node `node` (must be an
    /// `Invoke` node) over `upstream`.
    #[allow(clippy::too_many_arguments)] // one parameter per plan-node fact
    pub fn for_node(
        plan: &Plan,
        schema: &Schema,
        info: &PlanInfo,
        node: usize,
        upstream: I,
        gateway: G,
        elastic: bool,
        sleep_scale: f64,
    ) -> Self {
        let NodeKind::Invoke { atom } = plan.nodes[node].kind else {
            panic!("node {node} is not an invoke node");
        };
        let atom_ref = plan.query.atoms[atom].clone();
        let svc_id = atom_ref.service;
        let pos = plan.position_of(atom).expect("plan covers atom");
        let max_pages = if elastic {
            None
        } else {
            Some(plan.fetch_of(pos) as u32)
        };
        Invoke {
            upstream,
            gateway,
            node,
            svc_id,
            service_name: schema.service(svc_id).name.to_string(),
            pattern: info.pattern_of_node[node],
            input_positions: info.input_positions[node].clone(),
            atom: atom_ref,
            max_pages,
            sleep_scale,
            current: None,
            input_latencies: Vec::new(),
            page_buf: Vec::new(),
            halted: false,
        }
    }

    /// Summed forwarded latency per input (only inputs that forwarded at
    /// least one call), in input order.
    pub fn input_latencies(&self) -> &[f64] {
        &self.input_latencies
    }

    /// Total forwarded latency of this node so far — its virtual busy
    /// time under sequential execution.
    pub fn busy(&self) -> f64 {
        self.input_latencies.iter().sum()
    }

    /// Finishes the current input: records its forwarded latency and
    /// its invocation-level cache outcome (a *hit* only when no page of
    /// the whole invocation was forwarded).
    fn close_current(&mut self) {
        if let Some(cur) = self.current.take() {
            if cur.next_page > 0 {
                let svc = self.svc_id;
                let hit = !cur.any_forwarded;
                self.gateway.with(|g| g.record_invocation(svc, hit));
            }
            if cur.any_forwarded {
                self.input_latencies.push(cur.forwarded);
            }
        }
    }

    fn pull_next(&mut self) -> Option<Binding> {
        loop {
            if self.halted {
                return None;
            }
            if let Some(cur) = &mut self.current {
                if let Some(t) = cur.buf.pop_front() {
                    if let Some(nb) = cur.binding.bind_atom(&self.atom, &t) {
                        return Some(nb);
                    }
                    continue;
                }
                let within_budget = self.max_pages.map(|m| cur.next_page < m).unwrap_or(true);
                if !cur.done && within_budget {
                    // request the remaining page budget as one run: the
                    // gateway serves consecutive *cached* pages under a
                    // single lock acquisition and stops the run at the
                    // first page that must be forwarded — so the
                    // forwarded-call sequence is identical to paging
                    // tuple-at-a-time, only the lock traffic amortizes.
                    // Elastic paging stays demand-driven one page at a
                    // time (cached pages beyond demand are free, but
                    // elastic demand itself must stay lazy).
                    let first = cur.next_page;
                    let want = match self.max_pages {
                        Some(m) => (m - first) as usize,
                        None => 1,
                    };
                    let svc = self.svc_id;
                    let pattern = self.pattern;
                    let node = self.node;
                    self.page_buf.clear();
                    {
                        let key = &cur.key;
                        let buf = &mut self.page_buf;
                        self.gateway.with(|g| {
                            g.set_active_node(Some(node));
                            g.fetch_page_run(svc, pattern, key, first, want, buf);
                            g.set_active_node(None);
                        });
                    }
                    for fetch in self.page_buf.drain(..) {
                        cur.next_page += 1;
                        if let Some(lat) = fetch.forwarded_latency {
                            cur.forwarded += lat;
                            cur.any_forwarded = true;
                            if self.sleep_scale > 0.0 {
                                std::thread::sleep(std::time::Duration::from_secs_f64(
                                    lat * self.sleep_scale,
                                ));
                            }
                        }
                        if !fetch.has_more {
                            cur.done = true;
                        }
                        cur.buf.extend(fetch.tuples);
                    }
                    continue;
                }
                self.close_current();
            }
            let binding = self.upstream.next_binding()?;
            match binding.input_key(&self.atom, &self.input_positions) {
                Some(key) => {
                    self.current = Some(CurrentInput {
                        binding,
                        key,
                        next_page: 0,
                        buf: VecDeque::new(),
                        done: false,
                        forwarded: 0.0,
                        any_forwarded: false,
                    });
                }
                None => {
                    self.halted = true;
                    let err = ExecError::UnboundInput {
                        service: self.service_name.clone(),
                    };
                    self.gateway.with(|g| g.poison(err));
                    return None;
                }
            }
        }
    }
}

impl<I, G> Operator for Invoke<I, G>
where
    I: Operator,
    G: GatewayHandle,
{
    fn next_binding(&mut self) -> Option<Binding> {
        self.pull_next()
    }
}

/// The parallel-join operator: dispatches to the plan's chosen
/// rank-preserving strategy (§3.3).
pub struct Join<'a> {
    inner: Box<dyn Operator + 'a>,
}

impl<'a> Join<'a> {
    /// Joins `left` and `right` on the shared variables `on` with the
    /// given strategy. For nested loops, the strategy's `outer` side is
    /// materialised first (it is chosen to be the selective one).
    pub fn new<L, R>(
        left: L,
        right: R,
        strategy: &JoinStrategy,
        on: Vec<mdq_model::query::VarId>,
    ) -> Self
    where
        L: Operator + 'a,
        R: Operator + 'a,
    {
        let inner: Box<dyn Operator + 'a> = match strategy {
            JoinStrategy::MergeScan => Box::new(crate::joins::MsJoin::new(left, right, on)),
            JoinStrategy::NestedLoop { outer: Side::Left } => {
                Box::new(crate::joins::NlJoin::new(left, right, on, true))
            }
            JoinStrategy::NestedLoop { outer: Side::Right } => {
                Box::new(crate::joins::NlJoin::new(right, left, on, false))
            }
        };
        Join { inner }
    }
}

impl Operator for Join<'_> {
    fn next_binding(&mut self) -> Option<Binding> {
        self.inner.next_binding()
    }
    fn next_batch(&mut self, max: usize, out: &mut Batch) -> usize {
        self.inner.next_batch(max, out)
    }
}

/// The predicate-filter operator: passes bindings satisfying every
/// predicate placed at the node.
pub struct Filter<I> {
    inner: I,
    preds: Vec<Predicate>,
    /// Reused scratch for batched filtering.
    scratch: Batch,
}

impl<I> Filter<I> {
    /// Filters `inner` by `preds`.
    pub fn new(inner: I, preds: Vec<Predicate>) -> Self {
        Filter {
            inner,
            preds,
            scratch: Vec::new(),
        }
    }

    /// The predicates for plan node `node`.
    pub fn for_node(plan: &Plan, info: &PlanInfo, node: usize, inner: I) -> Self {
        let preds = info.preds_at_node[node]
            .iter()
            .map(|&p| plan.query.predicates[p].clone())
            .collect();
        Filter::new(inner, preds)
    }

    fn passes(&self, b: &Binding) -> bool {
        self.preds.iter().all(|p| b.eval_predicate(p) == Some(true))
    }
}

impl<I: Operator> Operator for Filter<I> {
    fn next_binding(&mut self) -> Option<Binding> {
        loop {
            let b = self.inner.next_binding()?;
            if self.passes(&b) {
                return Some(b);
            }
        }
    }

    fn next_batch(&mut self, max: usize, out: &mut Batch) -> usize {
        // Pull the inner stream in chunks of exactly the *outstanding*
        // demand. This is demand-exact: if the chunk fills the target,
        // every chunk element passed — a sequential puller would have
        // pulled precisely the same bindings; if any element failed, the
        // target is still open and the loop continues.
        let mut n = 0;
        while n < max {
            let want = max - n;
            self.scratch.clear();
            let got = self.inner.next_batch(want, &mut self.scratch);
            let preds = &self.preds;
            for b in self.scratch.drain(..) {
                if preds.iter().all(|p| b.eval_predicate(p) == Some(true)) {
                    out.push(b);
                    n += 1;
                }
            }
            if got < want {
                break; // inner exhausted
            }
        }
        n
    }
}

/// The selection operator: passes the first `k` bindings, then ends the
/// stream (and stops pulling upstream — top-k halting).
pub struct Select<I> {
    inner: I,
    remaining: usize,
}

impl<I> Select<I> {
    /// Truncates `inner` to `k` bindings.
    pub fn new(inner: I, k: usize) -> Self {
        Select {
            inner,
            remaining: k,
        }
    }
}

impl<I: Operator> Operator for Select<I> {
    fn next_binding(&mut self) -> Option<Binding> {
        if self.remaining == 0 {
            return None;
        }
        let b = self.inner.next_binding()?;
        self.remaining -= 1;
        Some(b)
    }

    fn next_batch(&mut self, max: usize, out: &mut Batch) -> usize {
        let want = max.min(self.remaining);
        let got = self.inner.next_batch(want, out);
        self.remaining -= got;
        got
    }
}

/// A transparent per-node statistics probe: counts the bindings and
/// batched hops flowing out of one plan node into the gateway's
/// [`OperatorStats`](mdq_obs::span::OperatorStats) — the observed
/// side of EXPLAIN ANALYZE.
///
/// The probe is demand-exact by construction (1:1 passthrough) and
/// keeps the hot path lock-free: counts accumulate locally and flush
/// through the gateway only on stream exhaustion and on drop (which
/// covers top-k early halting — the driver drops the operator tree
/// before reading the stats). Traced executions flush per batched hop
/// instead, so every hop lands as one `operator_batch` instant on the
/// execution's track.
pub struct Probe<I, G: GatewayHandle> {
    inner: I,
    gateway: G,
    node: usize,
    traced: bool,
    rows: u64,
    batches: u64,
}

impl<I: Operator, G: GatewayHandle> Probe<I, G> {
    /// Probes the output stream of plan node `node`.
    pub fn new(inner: I, gateway: G, node: usize) -> Self {
        let traced = gateway.with(|g| g.trace().is_some());
        Probe {
            inner,
            gateway,
            node,
            traced,
            rows: 0,
            batches: 0,
        }
    }

    fn flush(&mut self) {
        if self.rows != 0 || self.batches != 0 {
            let (node, rows, batches) = (self.node, self.rows, self.batches);
            self.gateway
                .with(|g| g.record_node_output(node, rows, batches));
            self.rows = 0;
            self.batches = 0;
        }
    }
}

impl<I: Operator, G: GatewayHandle> Operator for Probe<I, G> {
    fn next_binding(&mut self) -> Option<Binding> {
        match self.inner.next_binding() {
            Some(b) => {
                self.rows += 1;
                Some(b)
            }
            None => {
                self.flush();
                None
            }
        }
    }

    fn next_batch(&mut self, max: usize, out: &mut Batch) -> usize {
        let got = self.inner.next_batch(max, out);
        self.rows += got as u64;
        self.batches += 1;
        if self.traced || got < max {
            self.flush();
        }
        got
    }
}

impl<I, G: GatewayHandle> Drop for Probe<I, G> {
    fn drop(&mut self) {
        if self.rows != 0 || self.batches != 0 {
            let (node, rows, batches) = (self.node, self.rows, self.batches);
            self.gateway
                .with(|g| g.record_node_output(node, rows, batches));
        }
    }
}

/// Fills the topology-derived `rows_in` of every stats row: the sum of
/// the node's input rows (`rows_out` of its plan inputs). Drivers call
/// this once, after execution, before attaching the stats to a report.
pub fn derive_rows_in(plan: &Plan, stats: &mut [mdq_obs::span::OperatorStats]) {
    for (i, node) in plan.nodes.iter().enumerate() {
        let rows_in = node
            .inputs
            .iter()
            .map(|inp| stats.get(inp.0).map(|s| s.rows_out).unwrap_or(0))
            .sum();
        if let Some(s) = stats.get_mut(i) {
            s.rows_in = rows_in;
        }
    }
}

/// A lazily materialised shared node: the single execution of a plan
/// node with more than one consumer.
struct SharedNode {
    op: Box<dyn Operator>,
    buf: Batch,
    done: bool,
}

/// One consumer's cursor over a [`SharedNode`]: pulls drive the shared
/// operator exactly once, every consumer replays the same stream.
/// This is what makes the compiled plan a DAG rather than a tree —
/// common subplans execute through one operator, so the pull executor
/// forwards exactly the same calls as the materialised one. Replay is
/// an `Arc` refcount bump per binding, never a value deep copy.
struct Tee {
    shared: std::rc::Rc<std::cell::RefCell<SharedNode>>,
    pos: usize,
}

impl Operator for Tee {
    fn next_binding(&mut self) -> Option<Binding> {
        let mut s = self.shared.borrow_mut();
        loop {
            if self.pos < s.buf.len() {
                let b = s.buf[self.pos].clone();
                self.pos += 1;
                return Some(b);
            }
            if s.done {
                return None;
            }
            match s.op.next_binding() {
                Some(b) => s.buf.push(b),
                None => s.done = true,
            }
        }
    }

    fn next_batch(&mut self, max: usize, out: &mut Batch) -> usize {
        let mut s = self.shared.borrow_mut();
        let mut n = 0;
        while n < max {
            if self.pos < s.buf.len() {
                // serve a run straight from the shared buffer
                let take = (s.buf.len() - self.pos).min(max - n);
                out.extend_from_slice(&s.buf[self.pos..self.pos + take]);
                self.pos += take;
                n += take;
                continue;
            }
            if s.done {
                break;
            }
            // 1:1 passthrough, so outstanding demand maps directly onto
            // the shared operator — demand-exact by construction
            let need = max - n;
            let shared = &mut *s;
            let got = shared.op.next_batch(need, &mut shared.buf);
            if got == 0 {
                shared.done = true;
            }
        }
        n
    }
}

/// Compiles `plan` (from its output node down) into a lazy operator DAG
/// over `gateway` — the pull executor's engine. Nodes with several
/// consumers are compiled once and shared through replaying cursors.
/// With `elastic = true` the fetch factors become soft hints.
pub fn compile<G: GatewayHandle + 'static>(
    plan: &Plan,
    schema: &Schema,
    info: &PlanInfo,
    gateway: &G,
    elastic: bool,
) -> Box<dyn Operator> {
    compile_with(plan, schema, info, gateway, elastic, None)
}

/// [`compile`] with an optional *subtree override*: the operator stands
/// in for the named plan node (filters included), and the nodes beneath
/// it are never compiled. This is how a materialized or replayed invoke
/// prefix (`mdq-runtime`'s sub-result sharing) is spliced under the
/// rest of the plan — a multi-consumer override node still goes through
/// the shared replay cursor, so fan-outs see one stream.
pub fn compile_with<G: GatewayHandle + 'static>(
    plan: &Plan,
    schema: &Schema,
    info: &PlanInfo,
    gateway: &G,
    elastic: bool,
    mut override_op: Option<(usize, Box<dyn Operator>)>,
) -> Box<dyn Operator> {
    let mut consumers = vec![0usize; plan.nodes.len()];
    for node in &plan.nodes {
        for inp in &node.inputs {
            consumers[inp.0] += 1;
        }
    }
    let mut shared = std::collections::HashMap::new();
    compile_node(
        plan,
        schema,
        info,
        gateway,
        elastic,
        &consumers,
        &mut shared,
        &mut override_op,
        plan.output_node().0,
    )
}

#[allow(clippy::too_many_arguments)] // internal recursion carrying compile state
fn compile_node<G: GatewayHandle + 'static>(
    plan: &Plan,
    schema: &Schema,
    info: &PlanInfo,
    gateway: &G,
    elastic: bool,
    consumers: &[usize],
    shared: &mut std::collections::HashMap<usize, std::rc::Rc<std::cell::RefCell<SharedNode>>>,
    override_op: &mut Option<(usize, Box<dyn Operator>)>,
    node: usize,
) -> Box<dyn Operator> {
    if consumers[node] > 1 {
        if let Some(cell) = shared.get(&node) {
            return Box::new(Tee {
                shared: std::rc::Rc::clone(cell),
                pos: 0,
            });
        }
        let op = compile_raw(
            plan,
            schema,
            info,
            gateway,
            elastic,
            consumers,
            shared,
            override_op,
            node,
        );
        let cell = std::rc::Rc::new(std::cell::RefCell::new(SharedNode {
            op,
            buf: Vec::new(),
            done: false,
        }));
        shared.insert(node, std::rc::Rc::clone(&cell));
        return Box::new(Tee {
            shared: cell,
            pos: 0,
        });
    }
    compile_raw(
        plan,
        schema,
        info,
        gateway,
        elastic,
        consumers,
        shared,
        override_op,
        node,
    )
}

#[allow(clippy::too_many_arguments)] // internal recursion carrying compile state
fn compile_raw<G: GatewayHandle + 'static>(
    plan: &Plan,
    schema: &Schema,
    info: &PlanInfo,
    gateway: &G,
    elastic: bool,
    consumers: &[usize],
    shared: &mut std::collections::HashMap<usize, std::rc::Rc<std::cell::RefCell<SharedNode>>>,
    override_op: &mut Option<(usize, Box<dyn Operator>)>,
    node: usize,
) -> Box<dyn Operator> {
    let op: Box<dyn Operator> = if override_op.as_ref().is_some_and(|(n, _)| *n == node) {
        // the subtree at this node is already accounted for (replayed
        // or eagerly materialized): stand its stream in, compile nothing
        // beneath it
        override_op.take().expect("checked above").1
    } else {
        match &plan.nodes[node].kind {
            NodeKind::Input => Box::new(Source(std::iter::once(Binding::empty(
                plan.query.var_count(),
            )))),
            NodeKind::Output => {
                let up = plan.nodes[node].inputs[0].0;
                let inner = compile_node(
                    plan,
                    schema,
                    info,
                    gateway,
                    elastic,
                    consumers,
                    shared,
                    override_op,
                    up,
                );
                Box::new(Filter::for_node(plan, info, node, inner))
            }
            NodeKind::Invoke { .. } => {
                let up = plan.nodes[node].inputs[0].0;
                let upstream = compile_node(
                    plan,
                    schema,
                    info,
                    gateway,
                    elastic,
                    consumers,
                    shared,
                    override_op,
                    up,
                );
                let invoke = Invoke::for_node(
                    plan,
                    schema,
                    info,
                    node,
                    upstream,
                    gateway.clone(),
                    elastic,
                    0.0,
                );
                Box::new(Filter::for_node(plan, info, node, invoke))
            }
            NodeKind::Join {
                left,
                right,
                strategy,
                on,
            } => {
                let l = compile_node(
                    plan,
                    schema,
                    info,
                    gateway,
                    elastic,
                    consumers,
                    shared,
                    override_op,
                    left.0,
                );
                let r = compile_node(
                    plan,
                    schema,
                    info,
                    gateway,
                    elastic,
                    consumers,
                    shared,
                    override_op,
                    right.0,
                );
                let joined = Join::new(l, r, strategy, on.clone());
                Box::new(Filter::for_node(plan, info, node, joined))
            }
        }
    };
    // every node's output stream passes through a statistics probe, the
    // override stand-in included — so a replayed prefix's rows still
    // show up as the node's `rows_out`
    Box::new(Probe::new(op, gateway.clone(), node))
}
