//! The span taxonomy and the per-operator runtime statistics behind
//! EXPLAIN ANALYZE.
//!
//! Every traced occurrence in the engine is one [`TraceEvent`]: a typed
//! [`SpanKind`] on a *track* (track 0 is the server's control plane —
//! optimize, plan-cache, admission batching; every traced execution
//! gets its own track), positioned on that track's accounted-seconds
//! timeline. Durations are **accounted**, not wall-clock: a service
//! call's span is as long as its simulated latency (backoff included),
//! a control-plane span as long as the caller measured — so a trace of
//! a deterministic chaos run is itself deterministic, and span-summed
//! counts reconcile exactly with the accounting cells.

/// What one traced span/event records. Counting contracts (pinned by
/// the trace-completeness suite): every *forwarded* request-response is
/// exactly one [`ServiceCall`](SpanKind::ServiceCall), every retry
/// exactly one [`Retry`](SpanKind::Retry), every mid-flight plan splice
/// exactly one [`Replan`](SpanKind::Replan), every sub-result replay
/// exactly one [`SubResultReplay`](SpanKind::SubResultReplay).
#[derive(Clone, Debug, PartialEq)]
pub enum SpanKind {
    /// One optimizer run (branch-and-bound); duration is the measured
    /// planning wall time.
    Optimize,
    /// The plan cache served a fingerprint without optimizing.
    PlanCacheHit {
        /// The query fingerprint that hit.
        fingerprint: u64,
    },
    /// The plan cache missed and the optimizer was invoked.
    PlanCacheMiss {
        /// The query fingerprint that missed.
        fingerprint: u64,
    },
    /// The admission batcher released one batch.
    AdmissionBatch {
        /// Queries in the batch.
        members: u64,
        /// Members whose invoke prefix overlapped another member's (or
        /// already-materialized work) at admission-planning time.
        shared_prefix_hits: u64,
    },
    /// Start of one traced execution; correlates the track with the
    /// query it runs.
    QueryStart {
        /// The query's plan-cache fingerprint.
        fingerprint: u64,
    },
    /// One `next_batch` hop out of an operator.
    OperatorBatch {
        /// Plan node index.
        node: u64,
        /// Bindings the hop produced.
        rows: u64,
    },
    /// One forwarded request-response (successful or faulted attempt);
    /// duration is the attempt's simulated latency.
    ServiceCall {
        /// Service name.
        service: String,
        /// Page number requested.
        page: u64,
        /// Tuples returned (0 on a fault).
        tuples: u64,
        /// Whether the attempt succeeded.
        ok: bool,
    },
    /// One retry issued after a faulted attempt; duration is the
    /// accounted backoff.
    Retry {
        /// Service name.
        service: String,
    },
    /// A run of pages served from the shared page cache (no
    /// forwarding).
    CachedPages {
        /// Service name.
        service: String,
        /// Pages served in the run.
        pages: u64,
    },
    /// A page served degraded from the failed-page memo.
    DegradedPage {
        /// Service name.
        service: String,
    },
    /// One adaptive mid-flight plan splice.
    Replan {
        /// Names of the diverging services, comma-separated.
        services: String,
        /// The worst symmetric divergence ratio that triggered it.
        worst_ratio: f64,
    },
    /// A materialized invoke prefix replayed from the sub-result store.
    SubResultReplay {
        /// Chain level (1-based) the prefix covers.
        level: u64,
        /// Bindings replayed.
        rows: u64,
        /// Forwarded calls the publisher spent producing them.
        calls_saved: u64,
    },
    /// This execution published a materialized invoke prefix.
    SubResultMaterialize {
        /// Chain level (1-based) published.
        level: u64,
        /// Bindings materialized.
        rows: u64,
    },
    /// End of one traced execution.
    QueryDone {
        /// Answers delivered.
        answers: u64,
    },
    /// Lifetime of one accepted network connection on the serving
    /// edge; duration is the measured wall time the connection stayed
    /// open.
    Connection {
        /// The peer address, as reported at accept time.
        peer: String,
        /// Queries the connection submitted.
        queries: u64,
    },
    /// The serving edge refused a submission (admission control).
    Shed {
        /// The tenant whose submission was refused.
        tenant: u64,
        /// Why: `queue_full`, `tenant_queue_full` or `tenant_budget`.
        reason: &'static str,
        /// The retry-after hint handed to the client, in milliseconds.
        retry_after_ms: u64,
    },
    /// The server entered graceful drain; duration is the measured
    /// wall time until the last in-flight session completed.
    Drain {
        /// Sessions still in flight when the drain began.
        in_flight: u64,
    },
    /// One standing-query refresh pass over the tracked invocation
    /// frontier; duration is the measured wall time of the pass.
    Refresh {
        /// The epoch the pass brought due invocations to.
        epoch: u64,
        /// Invocations re-fetched.
        refreshed: u64,
        /// Invocations whose page sets changed.
        changed: u64,
        /// Request-response attempts the pass issued (retries
        /// included).
        calls: u64,
    },
    /// One phase of a refresh pass (`snapshot`-relative timing is
    /// implicit in the pass span; the phases recorded are `fetch`,
    /// `evaluate` and `commit`); duration is the phase's measured wall
    /// time.
    RefreshPhase {
        /// The epoch the enclosing pass ran at.
        epoch: u64,
        /// Which pipeline phase: `fetch`, `evaluate` or `commit`.
        phase: &'static str,
        /// Work items the phase processed — due invocations for
        /// `fetch`, affected subscriptions for `evaluate` and
        /// `commit`.
        items: u64,
    },
    /// One subscription's delta emission after a refresh pass.
    DeltaEmit {
        /// The subscription the delta belongs to.
        subscription: u64,
        /// Answer rows added at this epoch.
        added: u64,
        /// Answer rows retracted at this epoch.
        retracted: u64,
    },
}

impl SpanKind {
    /// The span's display name (the `name` field of a Chrome trace
    /// event).
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::Optimize => "optimize",
            SpanKind::PlanCacheHit { .. } => "plan_cache_hit",
            SpanKind::PlanCacheMiss { .. } => "plan_cache_miss",
            SpanKind::AdmissionBatch { .. } => "admission_batch",
            SpanKind::QueryStart { .. } => "query_start",
            SpanKind::OperatorBatch { .. } => "operator_batch",
            SpanKind::ServiceCall { .. } => "service_call",
            SpanKind::Retry { .. } => "retry",
            SpanKind::CachedPages { .. } => "cached_pages",
            SpanKind::DegradedPage { .. } => "degraded_page",
            SpanKind::Replan { .. } => "replan",
            SpanKind::SubResultReplay { .. } => "sub_result_replay",
            SpanKind::SubResultMaterialize { .. } => "sub_result_materialize",
            SpanKind::QueryDone { .. } => "query_done",
            SpanKind::Connection { .. } => "connection",
            SpanKind::Shed { .. } => "shed",
            SpanKind::Drain { .. } => "drain",
            SpanKind::Refresh { .. } => "refresh",
            SpanKind::RefreshPhase { .. } => "refresh_phase",
            SpanKind::DeltaEmit { .. } => "delta_emit",
        }
    }

    /// The span's category (the `cat` field of a Chrome trace event):
    /// `control` for planning/admission work, `serving` for the
    /// network edge (connections, shedding, drain), `exec` for operator
    /// and gateway work.
    pub fn category(&self) -> &'static str {
        match self {
            SpanKind::Optimize
            | SpanKind::PlanCacheHit { .. }
            | SpanKind::PlanCacheMiss { .. }
            | SpanKind::AdmissionBatch { .. }
            | SpanKind::Refresh { .. }
            | SpanKind::RefreshPhase { .. } => "control",
            SpanKind::Connection { .. }
            | SpanKind::Shed { .. }
            | SpanKind::Drain { .. }
            | SpanKind::DeltaEmit { .. } => "serving",
            _ => "exec",
        }
    }
}

/// One recorded span/event on a track's accounted timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Global record order across every track (merge key).
    pub seq: u64,
    /// Track id: 0 is the control plane, every traced execution gets
    /// its own.
    pub track: u64,
    /// Accounted seconds into the track when the span starts.
    pub start: f64,
    /// Accounted seconds the span covers (0 = instant event).
    pub dur: f64,
    /// What happened.
    pub kind: SpanKind,
}

/// Runtime statistics of one plan-node operator — the observed side of
/// EXPLAIN ANALYZE, collected by every driver and reconciling with the
/// gateway accounting (calls/retries here sum to the execution's
/// totals).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OperatorStats {
    /// Bindings produced by the node's input operators (derived from
    /// the plan topology: the sum of the inputs' `rows_out`).
    pub rows_in: u64,
    /// Bindings this node produced (post-filter).
    pub rows_out: u64,
    /// Batched hops out of this node (`next_batch` calls).
    pub batches: u64,
    /// Request-responses this node's invocations forwarded (faulted
    /// attempts included).
    pub calls: u64,
    /// Pages served to this node from the shared page cache.
    pub cached_pages: u64,
    /// Bindings replayed into this node from the sub-result store.
    pub sub_result_rows: u64,
    /// Retries issued for this node's pages.
    pub retries: u64,
    /// Simulated seconds this node's forwarded calls consumed (attempt
    /// latencies plus accounted backoff).
    pub sim_seconds: f64,
}

impl OperatorStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &OperatorStats) {
        self.rows_in += other.rows_in;
        self.rows_out += other.rows_out;
        self.batches += other.batches;
        self.calls += other.calls;
        self.cached_pages += other.cached_pages;
        self.sub_result_rows += other.sub_result_rows;
        self.retries += other.retries;
        self.sim_seconds += other.sim_seconds;
    }
}
