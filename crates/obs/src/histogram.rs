//! Fixed-bucket histograms — the distribution-aware replacement for
//! sum-only gauges.
//!
//! A [`Histogram`] owns a static list of upper bucket bounds plus one
//! overflow bucket, and tracks count, sum and max alongside the bucket
//! counters — so a consumer gets mean/max/percentile-ish shape from one
//! cheap structure. Bounds are chosen per signal (service-call
//! simulated seconds, queue-wait wall seconds, admission batch sizes)
//! and never rebucketed: merging two histograms over the same bounds is
//! element-wise addition, which is what lets per-worker instances fold
//! into one snapshot without locks on the hot path.

/// Upper bucket bounds for *simulated* per-call service latency,
/// seconds (the paper's services answer in fractions of a second to a
/// few seconds; retries with backoff push single pages past that). One
/// overflow bucket follows the last bound.
pub const SERVICE_LATENCY_BOUNDS: [f64; 7] = [0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0];

/// A fixed-bucket histogram with count, sum and max riding along.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    bounds: &'static [f64],
    /// `bounds.len() + 1` counters; the last is the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    max: f64,
}

impl Histogram {
    /// An empty histogram over `bounds` (ascending upper bounds; one
    /// overflow bucket is added past the last).
    pub fn new(bounds: &'static [f64]) -> Self {
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            max: 0.0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        if value > self.max {
            self.max = value;
        }
    }

    /// Folds `other` (over the same bounds) into `self`.
    ///
    /// # Panics
    /// When the bound lists differ — merging histograms of different
    /// signals is always a bug.
    pub fn merge(&mut self, other: &Histogram) {
        // value comparison, not pointer identity: a `const` bounds
        // array promotes to a distinct static per referencing crate
        assert_eq!(
            self.bounds, other.bounds,
            "merging histograms over different bucket bounds"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Rebuilds a histogram from raw bucket counters (e.g. atomics
    /// sampled by a metrics snapshot), with `sum`/`max` supplied by the
    /// caller's own accumulators.
    pub fn from_parts(bounds: &'static [f64], counts: Vec<u64>, sum: f64, max: f64) -> Self {
        assert_eq!(counts.len(), bounds.len() + 1, "one counter per bucket");
        let count = counts.iter().sum();
        Histogram {
            bounds,
            counts,
            count,
            sum,
            max,
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (0 while empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Largest observation (0 while empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The buckets as `(upper bound — `None` for overflow — , count)`.
    pub fn buckets(&self) -> impl Iterator<Item = (Option<f64>, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .map(Some)
            .chain(std::iter::once(None))
            .zip(self.counts.iter().copied())
    }

    /// Condenses into a [`LatencySummary`].
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            total: self.sum,
            mean: self.mean(),
            max: self.max,
        }
    }
}

/// Count + mean + max (and the exact total they derive from) of one
/// latency distribution — what `per_service_latency` reports instead of
/// a bare sum.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Observations (forwarded attempts for service latency).
    pub count: u64,
    /// Exact summed seconds — reconciliation anchors against this.
    pub total: f64,
    /// `total / count` (0 while empty).
    pub mean: f64,
    /// Largest single observation.
    pub max: f64,
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}× mean {:.3}s max {:.3}s (Σ {:.2}s)",
            self.count, self.mean, self.max, self.total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static BOUNDS: [f64; 3] = [1.0, 2.0, 4.0];

    #[test]
    fn observe_buckets_and_summary() {
        let mut h = Histogram::new(&BOUNDS);
        for v in [0.5, 1.5, 3.0, 9.0] {
            h.observe(v);
        }
        let counts: Vec<u64> = h.buckets().map(|(_, n)| n).collect();
        assert_eq!(counts, vec![1, 1, 1, 1]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 14.0);
        assert_eq!(h.max(), 9.0);
        assert_eq!(h.summary().mean, 3.5);
    }

    #[test]
    fn merge_is_elementwise() {
        let mut a = Histogram::new(&BOUNDS);
        let mut b = Histogram::new(&BOUNDS);
        a.observe(0.5);
        b.observe(5.0);
        b.observe(1.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 5.0);
        let counts: Vec<u64> = a.buckets().map(|(_, n)| n).collect();
        assert_eq!(counts, vec![2, 0, 0, 1]);
    }
}
