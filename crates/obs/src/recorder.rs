//! The trace recorder: per-execution buffers merged on read.
//!
//! Mirrors the execution engine's accounting layer (`mdq-exec`'s
//! merge-on-read cells): a [`TraceRecorder`] hands each traced
//! execution its own [`QueryTrace`] cell, the execution's hot path
//! locks only that uncontended cell, and readers merge every cell's
//! buffer (ordered by a global sequence counter) on demand. Tracing a
//! workload therefore never adds a shared lock to the page path — and a
//! workload that attaches no recorder pays a single `Option` branch per
//! record site.

use crate::span::{SpanKind, TraceEvent};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One track's buffer: its accounted-seconds cursor and the events
/// recorded so far.
struct CellInner {
    cursor: f64,
    events: Vec<TraceEvent>,
}

/// One track's recording cell (the per-worker buffer).
struct TraceCell {
    track: u64,
    label: String,
    inner: Mutex<CellInner>,
}

/// The trace recorder for one server or stand-alone run: hands out
/// per-execution [`QueryTrace`] cells and merges them on read.
pub struct TraceRecorder {
    seq: AtomicU64,
    next_track: AtomicU64,
    cells: Mutex<Vec<Arc<TraceCell>>>,
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("tracks", &self.next_track.load(Ordering::Relaxed))
            .field("events", &self.seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl TraceRecorder {
    /// A fresh recorder. Track 0 (the control plane) exists from the
    /// start; call [`TraceRecorder::control`] to record on it.
    pub fn new() -> Arc<Self> {
        let rec = Arc::new(TraceRecorder {
            seq: AtomicU64::new(0),
            next_track: AtomicU64::new(1),
            cells: Mutex::new(Vec::new()),
        });
        let control = Arc::new(TraceCell {
            track: 0,
            label: "control".to_string(),
            inner: Mutex::new(CellInner {
                cursor: 0.0,
                events: Vec::new(),
            }),
        });
        rec.cells.lock().expect("trace registry lock").push(control);
        rec
    }

    /// Registers a fresh execution track labelled `label`, returning
    /// its recording handle.
    pub fn register(self: &Arc<Self>, label: impl Into<String>) -> QueryTrace {
        let cell = Arc::new(TraceCell {
            track: self.next_track.fetch_add(1, Ordering::Relaxed),
            label: label.into(),
            inner: Mutex::new(CellInner {
                cursor: 0.0,
                events: Vec::new(),
            }),
        });
        self.cells
            .lock()
            .expect("trace registry lock")
            .push(Arc::clone(&cell));
        QueryTrace {
            recorder: Arc::clone(self),
            cell,
        }
    }

    /// The control-plane track (track 0): optimize, plan-cache and
    /// admission events live here.
    pub fn control(self: &Arc<Self>) -> QueryTrace {
        let cell = Arc::clone(
            self.cells
                .lock()
                .expect("trace registry lock")
                .first()
                .expect("control track exists from construction"),
        );
        QueryTrace {
            recorder: Arc::clone(self),
            cell,
        }
    }

    /// Every event recorded so far, merged across tracks in global
    /// record order.
    pub fn events(&self) -> Vec<TraceEvent> {
        let cells = self.cells.lock().expect("trace registry lock");
        let mut out = Vec::new();
        for cell in cells.iter() {
            out.extend_from_slice(&cell.inner.lock().expect("trace cell lock").events);
        }
        drop(cells);
        out.sort_by_key(|e| e.seq);
        out
    }

    /// The `(track, label)` pairs of every registered track, in track
    /// order.
    pub fn tracks(&self) -> Vec<(u64, String)> {
        let cells = self.cells.lock().expect("trace registry lock");
        let mut out: Vec<(u64, String)> =
            cells.iter().map(|c| (c.track, c.label.clone())).collect();
        out.sort_by_key(|(t, _)| *t);
        out
    }

    /// Events recorded so far (cheaper than materializing
    /// [`TraceRecorder::events`]).
    pub fn event_count(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }
}

/// One execution's (or the control plane's) recording handle. Cloning
/// shares the underlying cell — a driver and its gateway record onto
/// the same track.
#[derive(Clone)]
pub struct QueryTrace {
    recorder: Arc<TraceRecorder>,
    cell: Arc<TraceCell>,
}

impl std::fmt::Debug for QueryTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryTrace")
            .field("track", &self.cell.track)
            .field("label", &self.cell.label)
            .finish()
    }
}

impl QueryTrace {
    /// Records a span covering `dur` accounted seconds; the track's
    /// cursor advances past it.
    pub fn record(&self, kind: SpanKind, dur: f64) {
        let seq = self.recorder.seq.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.cell.inner.lock().expect("trace cell lock");
        let start = inner.cursor;
        inner.cursor += dur;
        inner.events.push(TraceEvent {
            seq,
            track: self.cell.track,
            start,
            dur,
            kind,
        });
    }

    /// Records an instant event (zero duration).
    pub fn instant(&self, kind: SpanKind) {
        self.record(kind, 0.0);
    }

    /// This handle's track id.
    pub fn track(&self) -> u64 {
        self.cell.track
    }

    /// The recorder this handle records into.
    pub fn recorder(&self) -> &Arc<TraceRecorder> {
        &self.recorder
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_merge_in_record_order() {
        let rec = TraceRecorder::new();
        let a = rec.register("a");
        let b = rec.register("b");
        a.record(SpanKind::Optimize, 1.0);
        b.instant(SpanKind::QueryStart { fingerprint: 7 });
        a.instant(SpanKind::QueryDone { answers: 2 });
        let events = rec.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].track, a.track());
        assert_eq!(events[1].track, b.track());
        assert_eq!(events[2].start, 1.0, "cursor advanced past the span");
        assert_eq!(rec.event_count(), 3);
    }

    #[test]
    fn control_track_is_zero_and_shared() {
        let rec = TraceRecorder::new();
        let c1 = rec.control();
        let c2 = rec.control();
        c1.record(SpanKind::Optimize, 0.5);
        c2.record(SpanKind::Optimize, 0.5);
        assert_eq!(c1.track(), 0);
        let events = rec.events();
        assert_eq!(events[1].start, 0.5, "same cursor: one shared cell");
        assert_eq!(rec.tracks()[0].1, "control");
    }

    #[test]
    fn threaded_recording_keeps_every_event() {
        let rec = TraceRecorder::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let t = rec.register("worker");
                scope.spawn(move || {
                    for _ in 0..100 {
                        t.instant(SpanKind::Retry {
                            service: "svc".into(),
                        });
                    }
                });
            }
        });
        assert_eq!(rec.events().len(), 400);
    }
}
