//! Trace export: JSONL for machine consumption, Chrome `trace_event`
//! JSON for `chrome://tracing` / Perfetto.
//!
//! Both emitters are hand-rolled (the workspace is std-only): every
//! string field goes through [`json_escape`], numbers are emitted with
//! plain `Display`, and the Chrome format follows the JSON-array form
//! of the trace-event spec — metadata `M` events name the tracks, `X`
//! complete events carry spans (microsecond timestamps scaled from
//! accounted seconds), `i` instant events carry zero-duration marks.

use crate::recorder::TraceRecorder;
use crate::span::{SpanKind, TraceEvent};
use std::fmt::Write as _;

/// Escapes `s` for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Emits a finite float for JSON (`NaN`/infinite become 0 — JSON has
/// no spelling for them and traces must always parse).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// The span's argument object, as a JSON fragment (`{...}`).
fn args_json(kind: &SpanKind) -> String {
    match kind {
        SpanKind::Optimize => "{}".to_string(),
        SpanKind::PlanCacheHit { fingerprint } | SpanKind::PlanCacheMiss { fingerprint } => {
            format!("{{\"fingerprint\":\"{fingerprint:016x}\"}}")
        }
        SpanKind::AdmissionBatch {
            members,
            shared_prefix_hits,
        } => format!("{{\"members\":{members},\"shared_prefix_hits\":{shared_prefix_hits}}}"),
        SpanKind::QueryStart { fingerprint } => {
            format!("{{\"fingerprint\":\"{fingerprint:016x}\"}}")
        }
        SpanKind::OperatorBatch { node, rows } => {
            format!("{{\"node\":{node},\"rows\":{rows}}}")
        }
        SpanKind::ServiceCall {
            service,
            page,
            tuples,
            ok,
        } => format!(
            "{{\"service\":\"{}\",\"page\":{page},\"tuples\":{tuples},\"ok\":{ok}}}",
            json_escape(service)
        ),
        SpanKind::Retry { service } => {
            format!("{{\"service\":\"{}\"}}", json_escape(service))
        }
        SpanKind::CachedPages { service, pages } => format!(
            "{{\"service\":\"{}\",\"pages\":{pages}}}",
            json_escape(service)
        ),
        SpanKind::DegradedPage { service } => {
            format!("{{\"service\":\"{}\"}}", json_escape(service))
        }
        SpanKind::Replan {
            services,
            worst_ratio,
        } => format!(
            "{{\"services\":\"{}\",\"worst_ratio\":{}}}",
            json_escape(services),
            json_num(*worst_ratio)
        ),
        SpanKind::SubResultReplay {
            level,
            rows,
            calls_saved,
        } => format!("{{\"level\":{level},\"rows\":{rows},\"calls_saved\":{calls_saved}}}"),
        SpanKind::SubResultMaterialize { level, rows } => {
            format!("{{\"level\":{level},\"rows\":{rows}}}")
        }
        SpanKind::QueryDone { answers } => format!("{{\"answers\":{answers}}}"),
        SpanKind::Connection { peer, queries } => format!(
            "{{\"peer\":\"{}\",\"queries\":{queries}}}",
            json_escape(peer)
        ),
        SpanKind::Shed {
            tenant,
            reason,
            retry_after_ms,
        } => format!(
            "{{\"tenant\":{tenant},\"reason\":\"{reason}\",\"retry_after_ms\":{retry_after_ms}}}"
        ),
        SpanKind::Drain { in_flight } => format!("{{\"in_flight\":{in_flight}}}"),
        SpanKind::Refresh {
            epoch,
            refreshed,
            changed,
            calls,
        } => format!(
            "{{\"epoch\":{epoch},\"refreshed\":{refreshed},\"changed\":{changed},\"calls\":{calls}}}"
        ),
        SpanKind::RefreshPhase {
            epoch,
            phase,
            items,
        } => format!("{{\"epoch\":{epoch},\"phase\":\"{phase}\",\"items\":{items}}}"),
        SpanKind::DeltaEmit {
            subscription,
            added,
            retracted,
        } => format!("{{\"subscription\":{subscription},\"added\":{added},\"retracted\":{retracted}}}"),
    }
}

/// One event per line: `{"seq":…,"track":…,"start":…,"dur":…,
/// "name":…,"args":{…}}`. Line order is global record order.
pub fn jsonl(recorder: &TraceRecorder) -> String {
    let mut out = String::new();
    for e in recorder.events() {
        let _ = writeln!(
            out,
            "{{\"seq\":{},\"track\":{},\"start\":{},\"dur\":{},\"name\":\"{}\",\"args\":{}}}",
            e.seq,
            e.track,
            json_num(e.start),
            json_num(e.dur),
            e.kind.name(),
            args_json(&e.kind),
        );
    }
    out
}

fn chrome_event(e: &TraceEvent) -> String {
    let ts = e.start * 1e6;
    let args = args_json(&e.kind);
    if e.dur > 0.0 {
        format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{}}}",
            e.kind.name(),
            e.kind.category(),
            e.track,
            json_num(ts),
            json_num(e.dur * 1e6),
            args,
        )
    } else {
        format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{},\"args\":{}}}",
            e.kind.name(),
            e.kind.category(),
            e.track,
            json_num(ts),
            args,
        )
    }
}

/// The whole trace as Chrome `trace_event` JSON (array form): load the
/// file in `chrome://tracing` or <https://ui.perfetto.dev>. Tracks
/// appear as threads of one process, named by their registration
/// labels; timestamps are the tracks' accounted seconds scaled to
/// microseconds.
pub fn chrome_trace_json(recorder: &TraceRecorder) -> String {
    let mut parts: Vec<String> = Vec::new();
    parts.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"mdq\"}}"
            .to_string(),
    );
    for (track, label) in recorder.tracks() {
        parts.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            track,
            json_escape(&label),
        ));
    }
    for e in recorder.events() {
        parts.push(chrome_event(&e));
    }
    let mut out = String::from("[\n");
    out.push_str(&parts.join(",\n"));
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_quotes_and_control() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn chrome_export_names_tracks_and_events() {
        let rec = TraceRecorder::new();
        let t = rec.register("query 1");
        t.record(
            SpanKind::ServiceCall {
                service: "conf".into(),
                page: 0,
                tuples: 3,
                ok: true,
            },
            0.25,
        );
        t.instant(SpanKind::QueryDone { answers: 1 });
        let json = chrome_trace_json(&rec);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"query 1\""));
        assert!(
            json.contains("\"ph\":\"X\""),
            "span event is complete-typed"
        );
        assert!(json.contains("\"dur\":250000"), "seconds scaled to µs");
        assert!(json.contains("\"ph\":\"i\""), "instant event emitted");
        // crude but effective structural check while the workspace has
        // no JSON parser: balanced delimiters and no raw newlines
        // inside string context beyond our own separators
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "balanced brackets"
        );
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let rec = TraceRecorder::new();
        rec.control().record(SpanKind::Optimize, 0.001);
        let text = jsonl(&rec);
        assert_eq!(text.lines().count(), 1);
        assert!(text.starts_with("{\"seq\":0,\"track\":0,"));
    }
}
