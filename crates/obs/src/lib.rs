//! # mdq-obs — observability primitives for the execution engine
//!
//! The engine's cost model (§4) prices a plan in request-responses and
//! simulated seconds; the serving layer aggregates both into global
//! counters. What neither surface answers is *where* those calls,
//! retries and re-plans actually happened — which operator, which
//! query, which batch. This crate holds the std-only primitives that
//! close the gap, shared by `mdq-exec`, `mdq-cost` and `mdq-runtime`:
//!
//! * [`recorder`] — a [`TraceRecorder`] of
//!   typed spans ([`span::SpanKind`]), built on the same merge-on-read
//!   pattern as the execution accounting: every traced execution writes
//!   to its own uncontended [`QueryTrace`] cell
//!   and readers merge the cells on demand, so tracing never serializes
//!   the page path;
//! * [`span`] — the span taxonomy (optimize, plan-cache hit/miss,
//!   admission batch, operator batches, service calls, retry/backoff,
//!   re-plan splices, sub-result replays) and the per-operator
//!   [`OperatorStats`] behind EXPLAIN ANALYZE;
//! * [`export`] — JSONL and Chrome `trace_event` JSON export (the
//!   latter loads directly into `chrome://tracing` or Perfetto);
//! * [`histogram`] — fixed-bucket [`Histogram`]s
//!   for latency, batch-size and queue-wait distributions, replacing
//!   sum-only gauges in the server's metrics snapshot.
//!
//! Everything here is wall-clock free by design: spans carry
//! *accounted* seconds (simulated service latency and backoff, or the
//! caller's measured planning time), so a trace of a chaos run is as
//! deterministic as the run itself.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod export;
pub mod histogram;
pub mod recorder;
pub mod span;

pub use export::{chrome_trace_json, jsonl};
pub use histogram::{Histogram, LatencySummary, SERVICE_LATENCY_BOUNDS};
pub use recorder::{QueryTrace, TraceRecorder};
pub use span::{OperatorStats, SpanKind, TraceEvent};
