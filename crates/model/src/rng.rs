//! A small deterministic PRNG for the simulated worlds and the
//! randomized test harnesses.
//!
//! The workspace builds fully offline, so instead of the `rand` crate we
//! use a self-contained xoshiro256** generator seeded through splitmix64
//! (the reference seeding procedure). Determinism matters more than
//! statistical strength here: the calibrated worlds promise identical
//! cardinalities for every seed, and the property tests must replay
//! failures from a printed seed.

/// Splitmix64 step — also used standalone for cheap hash-like streams.
#[inline]
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** generator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the generator (any seed is fine, including 0).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut x = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *slot = splitmix64(x);
        }
        Rng { s }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics when `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics when `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    /// Uniform index in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics when `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A biased coin: `true` with probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_usize(0, i + 1);
            items.swap(i, j);
        }
    }

    /// A uniformly chosen element, `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.range_usize(0, items.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(8);
        assert_ne!(Rng::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::new(42);
        for _ in 0..1000 {
            let f = r.range_f64(2.0, 3.5);
            assert!((2.0..3.5).contains(&f));
            let i = r.range_i64(-4, 9);
            assert!((-4..9).contains(&i));
            let u = r.range_usize(1, 2);
            assert_eq!(u, 1, "singleton range");
        }
    }

    #[test]
    fn f64_covers_unit_interval() {
        let mut r = Rng::new(3);
        let vals: Vec<f64> = (0..1000).map(|_| r.f64()).collect();
        assert!(vals.iter().all(|v| (0.0..1.0).contains(v)));
        assert!(vals.iter().any(|&v| v < 0.1));
        assert!(vals.iter().any(|&v| v > 0.9));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(5);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements do move");
    }

    #[test]
    fn choose_and_bool() {
        let mut r = Rng::new(11);
        assert!(r.choose::<u8>(&[]).is_none());
        let items = [1, 2, 3];
        for _ in 0..20 {
            assert!(items.contains(r.choose(&items).expect("non-empty")));
        }
        let heads = (0..2000).filter(|_| r.bool(0.5)).count();
        assert!((800..1200).contains(&heads), "fair-ish coin: {heads}");
    }
}
