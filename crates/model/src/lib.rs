//! # mdq-model — the formal model of multi-domain queries
//!
//! From-scratch implementation of the formal model of
//! *Braga, Ceri, Daniel, Martinenghi: "Optimization of Multi-Domain
//! Queries on the Web", VLDB 2008* (§3):
//!
//! * [`value`] — dynamically typed [`Value`](value::Value)s, ranked
//!   [`Tuple`](value::Tuple)s and abstract domains;
//! * [`schema`] — service signatures `s^α(A1, …, An)` with access
//!   patterns, exact/search classification, chunking and profiles
//!   (erspi ξ, response time τ, chunk size, decay);
//! * [`query`] — conjunctive queries with service atoms and comparison
//!   predicates, plus validation (safety, arity, domains);
//! * [`parser`] — the datalog-like concrete syntax of Fig. 3;
//! * [`binding`] — callability / executability / permissible pattern
//!   sequences (Def. 3.1) and supplier/precedence analysis;
//! * [`cogency`] — the `⪰IO` order and the "bound is better" heuristic
//!   (§4.1.1);
//! * [`fingerprint`] — template normalization: alpha-renaming- and
//!   predicate-order-invariant query fingerprints for plan caching.
//!
//! Downstream crates build plans (`mdq-plan`), estimate costs
//! (`mdq-cost`), optimize (`mdq-optimizer`) and execute (`mdq-exec`) on
//! top of these types.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod binding;
pub mod cogency;
pub mod examples;
pub mod fingerprint;
pub mod parser;
pub mod query;
pub mod rng;
pub mod schema;
pub mod template;
pub mod value;

/// Convenient glob-import surface: `use mdq_model::prelude::*;`.
pub mod prelude {
    pub use crate::binding::{
        callable_after, executable, find_permissible, permissible_sequences, ApChoice, SupplierMap,
    };
    pub use crate::cogency::{exploration_order, most_cogent};
    pub use crate::fingerprint::{
        canonical_text, fingerprint, subplan_canonical_text, subplan_signature, PrefixStep,
        QueryFingerprint, SubplanSig, SubplanSignature,
    };
    pub use crate::parser::{parse_query, ParseError};
    pub use crate::query::{
        Atom, CmpOp, ConjunctiveQuery, Expr, Predicate, QueryError, Term, VarId,
    };
    pub use crate::schema::{
        AccessPattern, ArgMode, Chunking, Schema, SchemaError, ServiceBuilder, ServiceId,
        ServiceKind, ServiceProfile, ServiceSignature,
    };
    pub use crate::template::{QueryTemplate, TemplateError};
    pub use crate::value::{Date, DomainId, DomainInfo, DomainKind, Tuple, Value, F64};
}
