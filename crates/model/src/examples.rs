//! The paper's running example (Fig. 2 schema, Fig. 3 query, Table 1
//! profiles), reusable across crates, tests and documentation.
//!
//! *"Find all database conferences in the next six months in locations
//! where the average temperature is 28 °C degrees and for which a cheap
//! travel solution including a luxury accommodation exists."* (§2.5)

use crate::parser::parse_query;
use crate::query::ConjunctiveQuery;
use crate::schema::{Schema, ServiceBuilder, ServiceProfile};
use crate::value::DomainKind;

/// Index of the `flight` atom in [`running_example_query`]'s body
/// (the paper lists the atoms in this order in Fig. 3).
pub const ATOM_FLIGHT: usize = 0;
/// Index of the `hotel` atom.
pub const ATOM_HOTEL: usize = 1;
/// Index of the `conf` atom.
pub const ATOM_CONF: usize = 2;
/// Index of the `weather` atom.
pub const ATOM_WEATHER: usize = 3;

/// Builds the running-example schema of Fig. 2 with the paper's access
/// patterns and the Table 1 profiles:
///
/// | service | kind   | patterns          | chunk | ξ    | τ (s) |
/// |---------|--------|-------------------|-------|------|-------|
/// | conf    | exact  | `ioooo`, `ooooi`  | —     | 20   | 1.2   |
/// | weather | exact  | `ioi`             | —     | 0.05 | 1.5   |
/// | flight  | search | `iiiiooo`         | 25    | —    | 9.7   |
/// | hotel   | search | `oiiiio`,`oooooo` | 5     | —    | 4.9   |
///
/// `weather`'s erspi of 0.05 folds in the `Temperature ≥ 28` selection,
/// per §3.4 ("selection predicates … are included for convenience in the
/// notion of erspi"); likewise `conf`'s 20 is per-topic.
pub fn running_example_schema() -> Schema {
    let mut s = Schema::new();
    // Domain cardinalities drive optimal-cache estimates; the world of the
    // §6 experiments has a few dozen candidate cities.
    s.domain_with("City", DomainKind::Str, Some(54.0));
    s.domain_with("Date", DomainKind::Date, Some(365.0));
    ServiceBuilder::new(&mut s, "conf")
        .attr_kinded("Topic", "Topic", DomainKind::Str)
        .attr_kinded("Name", "ConfName", DomainKind::Str)
        .attr_kinded("Start", "Date", DomainKind::Date)
        .attr_kinded("End", "Date", DomainKind::Date)
        .attr_kinded("City", "City", DomainKind::Str)
        .pattern("ioooo")
        .pattern("ooooi")
        .profile(ServiceProfile::new(20.0, 1.2))
        .register()
        .expect("conf registers");
    ServiceBuilder::new(&mut s, "weather")
        .attr_kinded("City", "City", DomainKind::Str)
        .attr_kinded("Temperature", "Temp", DomainKind::Float)
        .attr_kinded("Date", "Date", DomainKind::Date)
        .pattern("ioi")
        .profile(ServiceProfile::new(0.05, 1.5))
        .register()
        .expect("weather registers");
    ServiceBuilder::new(&mut s, "flight")
        .attr_kinded("From", "City", DomainKind::Str)
        .attr_kinded("To", "City", DomainKind::Str)
        .attr_kinded("OutDate", "Date", DomainKind::Date)
        .attr_kinded("RetDate", "Date", DomainKind::Date)
        .attr_kinded("OutTime", "Time", DomainKind::Str)
        .attr_kinded("RetTime", "Time", DomainKind::Str)
        .attr_kinded("Price", "Price", DomainKind::Float)
        .pattern("iiiiooo")
        .search()
        .chunked(25)
        .profile(ServiceProfile::new(25.0, 9.7))
        .register()
        .expect("flight registers");
    ServiceBuilder::new(&mut s, "hotel")
        .attr_kinded("Name", "HotelName", DomainKind::Str)
        .attr_kinded("City", "City", DomainKind::Str)
        .attr_kinded("Category", "Category", DomainKind::Str)
        .attr_kinded("CheckInDate", "Date", DomainKind::Date)
        .attr_kinded("CheckOutDate", "Date", DomainKind::Date)
        .attr_kinded("Price", "Price", DomainKind::Float)
        .pattern("oiiiio")
        .pattern("oooooo")
        .search()
        .chunked(5)
        .profile(ServiceProfile::new(5.0, 4.9))
        .register()
        .expect("hotel registers");
    s
}

/// Parses the Fig. 3 query against `schema` (which must contain the
/// services of [`running_example_schema`]).
///
/// Atom order matches the paper's listing: flight, hotel, conf, weather
/// (see the `ATOM_*` constants).
pub fn running_example_query(schema: &Schema) -> ConjunctiveQuery {
    let mut q = parse_query(
        "q(Conf, City, HPrice, FPrice, Start, StartTime, End, EndTime, Hotel) :- \
         flight('Milano', City, Start, End, StartTime, EndTime, FPrice), \
         hotel(Hotel, City, 'luxury', Start, End, HPrice), \
         conf('DB', Conf, Start, End, City), \
         weather(City, Temperature, Start), \
         Start >= '2007/3/14', End <= '2007/3/14' + 180, \
         Temperature >= 28, FPrice + HPrice < 2000.",
        schema,
    )
    .expect("the running example parses");
    q.validate(schema).expect("the running example is valid");
    // Selectivity hints (§3.4 folds selections into erspi): the date and
    // temperature selections are already included in the Table 1 profiles
    // of conf (ξ=20 per topic/semester) and weather (ξ=0.05), so their
    // hints are 1; the price predicate applies at the flight⋈hotel merge
    // with the σ=0.01 used in Fig. 8.
    q.predicates[0].selectivity_hint = Some(1.0); // Start ≥ …
    q.predicates[1].selectivity_hint = Some(1.0); // End ≤ …
    q.predicates[2].selectivity_hint = Some(1.0); // Temperature ≥ 28
    q.predicates[3].selectivity_hint = Some(0.01); // FPrice + HPrice < 2000
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::permissible_sequences;

    #[test]
    fn fixture_is_consistent() {
        let s = running_example_schema();
        let q = running_example_query(&s);
        assert_eq!(q.atoms.len(), 4);
        assert_eq!(s.service(q.atoms[ATOM_CONF].service).name.as_ref(), "conf");
        assert_eq!(
            s.service(q.atoms[ATOM_WEATHER].service).name.as_ref(),
            "weather"
        );
        assert_eq!(permissible_sequences(&q, &s).len(), 3);
    }
}
