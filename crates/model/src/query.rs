//! Conjunctive queries over services (§3.1).
//!
//! A query `q(X̄) ← conj(X̄, Ȳ)` is a head variable list plus a body of
//! service atoms and comparison predicates. Atoms reference services of a
//! [`Schema`]; predicates are comparisons between arithmetic expressions
//! over variables and constants (the running example uses both
//! `Temperature ≥ 28` and `FPrice + HPrice < 2000`).

use crate::schema::{Schema, ServiceId};
use crate::value::Value;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// Identifier of a variable interned in a [`ConjunctiveQuery`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

/// A term: variable or constant (§3.1).
#[derive(Clone, Debug, PartialEq)]
pub enum Term {
    /// A query variable.
    Var(VarId),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// The variable id if this term is a variable.
    pub fn as_var(&self) -> Option<VarId> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// True for constants.
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }
}

/// A service atom `s(t1, …, tn)` in a query body.
#[derive(Clone, Debug, PartialEq)]
pub struct Atom {
    /// The service invoked by this atom.
    pub service: ServiceId,
    /// Positional terms, one per signature argument.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Variables occurring in this atom (deduplicated, in first-occurrence
    /// order).
    pub fn vars(&self) -> Vec<VarId> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if seen.insert(*v) {
                    out.push(*v);
                }
            }
        }
        out
    }

    /// Positions at which `v` occurs.
    pub fn positions_of(&self, v: VarId) -> impl Iterator<Item = usize> + '_ {
        self.terms
            .iter()
            .enumerate()
            .filter(move |(_, t)| t.as_var() == Some(v))
            .map(|(i, _)| i)
    }
}

/// Comparison operators for selection predicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates the operator on an ordering outcome.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// The operator with sides swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Arithmetic expression over terms, as allowed in selection predicates.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A bare term.
    Term(Term),
    /// Sum of two expressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two expressions.
    Sub(Box<Expr>, Box<Expr>),
    /// Product of two expressions.
    Mul(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// A variable expression.
    pub fn var(v: VarId) -> Expr {
        Expr::Term(Term::Var(v))
    }

    /// A constant expression.
    pub fn constant(v: impl Into<Value>) -> Expr {
        Expr::Term(Term::Const(v.into()))
    }

    /// Variables mentioned by the expression (deduplicated).
    pub fn vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Expr::Term(Term::Var(v)) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Expr::Term(Term::Const(_)) => {}
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Evaluates the expression under a variable assignment. Returns `None`
    /// if a variable is unbound or arithmetic is not defined for the
    /// operand kinds.
    pub fn eval(&self, lookup: &dyn Fn(VarId) -> Option<Value>) -> Option<Value> {
        match self {
            Expr::Term(Term::Const(c)) => Some(c.clone()),
            Expr::Term(Term::Var(v)) => lookup(*v),
            Expr::Add(a, b) => a.eval(lookup)?.checked_add(&b.eval(lookup)?),
            Expr::Sub(a, b) => a.eval(lookup)?.checked_sub(&b.eval(lookup)?),
            Expr::Mul(a, b) => a.eval(lookup)?.checked_mul(&b.eval(lookup)?),
        }
    }
}

/// A selection predicate `lhs op rhs` applied during query execution.
///
/// The optimizer folds predicate selectivities into erspi estimates
/// (§3.4: "The selection predicates applied to all service invocations are
/// included for convenience in the notion of erspi"), but the engine also
/// evaluates them exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct Predicate {
    /// Left-hand expression.
    pub lhs: Expr,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand expression.
    pub rhs: Expr,
    /// Optional user/profiler-supplied selectivity estimate σ_p ∈ (0, 1].
    pub selectivity_hint: Option<f64>,
}

impl Predicate {
    /// Builds a predicate without a selectivity hint.
    pub fn new(lhs: Expr, op: CmpOp, rhs: Expr) -> Self {
        Predicate {
            lhs,
            op,
            rhs,
            selectivity_hint: None,
        }
    }

    /// Attaches a selectivity estimate.
    pub fn with_selectivity(mut self, sigma: f64) -> Self {
        self.selectivity_hint = Some(sigma);
        self
    }

    /// Variables mentioned on either side.
    pub fn vars(&self) -> Vec<VarId> {
        let mut v = self.lhs.vars();
        for x in self.rhs.vars() {
            if !v.contains(&x) {
                v.push(x);
            }
        }
        v
    }

    /// Evaluates the predicate; unbound variables or incomparable values
    /// make the predicate *pending* (`None`), which executors treat as
    /// "not yet applicable" rather than failed.
    pub fn eval(&self, lookup: &dyn Fn(VarId) -> Option<Value>) -> Option<bool> {
        let l = self.lhs.eval(lookup)?;
        let r = self.rhs.eval(lookup)?;
        Some(self.op.eval(l.compare(&r)?))
    }
}

/// A conjunctive query `q(X̄) ← B1, …, Bn, p1, …, pm` (§3.1).
#[derive(Clone, Debug)]
pub struct ConjunctiveQuery {
    /// Query name (head predicate symbol).
    pub name: Arc<str>,
    /// Head variables, in output order.
    pub head: Vec<VarId>,
    /// Service atoms of the body.
    pub atoms: Vec<Atom>,
    /// Comparison predicates of the body.
    pub predicates: Vec<Predicate>,
    var_names: Vec<Arc<str>>,
}

/// Errors raised by query validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// A head variable does not occur in any body atom (safety, §3.1).
    UnsafeHeadVar(String),
    /// A predicate variable does not occur in any body atom.
    UnsafePredicateVar(String),
    /// An atom's term count differs from its service signature arity.
    AtomArityMismatch {
        /// Offending service name.
        service: String,
        /// Expected arity.
        expected: usize,
        /// Found term count.
        found: usize,
    },
    /// A constant's kind does not inhabit the declared abstract domain.
    DomainMismatch {
        /// Offending service name.
        service: String,
        /// Argument position.
        position: usize,
    },
    /// The body mentions no atom at all.
    EmptyBody,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnsafeHeadVar(v) => {
                write!(
                    f,
                    "head variable `{v}` does not occur in the body (unsafe query)"
                )
            }
            QueryError::UnsafePredicateVar(v) => {
                write!(f, "predicate variable `{v}` does not occur in any atom")
            }
            QueryError::AtomArityMismatch {
                service,
                expected,
                found,
            } => write!(
                f,
                "atom for `{service}` has {found} terms, signature arity is {expected}"
            ),
            QueryError::DomainMismatch { service, position } => write!(
                f,
                "constant at position {position} of `{service}` does not inhabit its domain"
            ),
            QueryError::EmptyBody => write!(f, "query body has no atoms"),
        }
    }
}

impl std::error::Error for QueryError {}

impl ConjunctiveQuery {
    /// Creates an empty query with the given head-predicate name.
    pub fn new(name: impl AsRef<str>) -> Self {
        ConjunctiveQuery {
            name: Arc::from(name.as_ref()),
            head: Vec::new(),
            atoms: Vec::new(),
            predicates: Vec::new(),
            var_names: Vec::new(),
        }
    }

    /// Interns a variable by name and returns its id (idempotent).
    pub fn var(&mut self, name: impl AsRef<str>) -> VarId {
        let name = name.as_ref();
        if let Some(i) = self.var_names.iter().position(|n| &**n == name) {
            return VarId(i as u32);
        }
        let id = VarId(self.var_names.len() as u32);
        self.var_names.push(Arc::from(name));
        id
    }

    /// Looks up an interned variable by name.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.var_names
            .iter()
            .position(|n| &**n == name)
            .map(|i| VarId(i as u32))
    }

    /// The display name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v.0 as usize]
    }

    /// Number of interned variables.
    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }

    /// Appends a head variable.
    pub fn head_var(&mut self, v: VarId) {
        self.head.push(v);
    }

    /// Appends a body atom and returns its index.
    pub fn atom(&mut self, service: ServiceId, terms: Vec<Term>) -> usize {
        self.atoms.push(Atom { service, terms });
        self.atoms.len() - 1
    }

    /// Appends a selection predicate.
    pub fn predicate(&mut self, p: Predicate) {
        self.predicates.push(p);
    }

    /// Validates the query against `schema`: arity and domain checks plus
    /// the safety condition of §3.1 (every head and predicate variable
    /// occurs in some body atom).
    pub fn validate(&self, schema: &Schema) -> Result<(), QueryError> {
        if self.atoms.is_empty() {
            return Err(QueryError::EmptyBody);
        }
        let mut body_vars: HashSet<VarId> = HashSet::new();
        for a in &self.atoms {
            let sig = schema.service(a.service);
            if a.terms.len() != sig.arity() {
                return Err(QueryError::AtomArityMismatch {
                    service: sig.name.to_string(),
                    expected: sig.arity(),
                    found: a.terms.len(),
                });
            }
            for (i, t) in a.terms.iter().enumerate() {
                match t {
                    Term::Var(v) => {
                        body_vars.insert(*v);
                    }
                    Term::Const(c) => {
                        let dom = schema.domain_info(sig.domains[i]);
                        if !dom.kind.admits(c) {
                            return Err(QueryError::DomainMismatch {
                                service: sig.name.to_string(),
                                position: i,
                            });
                        }
                    }
                }
            }
        }
        for v in &self.head {
            if !body_vars.contains(v) {
                return Err(QueryError::UnsafeHeadVar(self.var_name(*v).to_string()));
            }
        }
        for p in &self.predicates {
            for v in p.vars() {
                if !body_vars.contains(&v) {
                    return Err(QueryError::UnsafePredicateVar(self.var_name(v).to_string()));
                }
            }
        }
        Ok(())
    }

    /// Variables shared between two atoms — the implicit equi-join
    /// condition (§5.2: "the use of the same variable in the query
    /// indicates an equi-join").
    pub fn shared_vars(&self, a: usize, b: usize) -> Vec<VarId> {
        let va = self.atoms[a].vars();
        let vb: HashSet<VarId> = self.atoms[b].vars().into_iter().collect();
        va.into_iter().filter(|v| vb.contains(v)).collect()
    }

    /// For each variable, the indices of atoms mentioning it.
    pub fn var_occurrences(&self) -> HashMap<VarId, Vec<usize>> {
        let mut map: HashMap<VarId, Vec<usize>> = HashMap::new();
        for (i, a) in self.atoms.iter().enumerate() {
            for v in a.vars() {
                map.entry(v).or_default().push(i);
            }
        }
        map
    }

    /// Pretty-prints the query in the datalog-like syntax of Fig. 3,
    /// resolving service names through `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> QueryDisplay<'a> {
        QueryDisplay { q: self, schema }
    }

    fn fmt_term(&self, t: &Term, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match t {
            Term::Var(v) => write!(f, "{}", self.var_name(*v)),
            Term::Const(c) => write!(f, "{c}"),
        }
    }

    fn fmt_expr(&self, e: &Expr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match e {
            Expr::Term(t) => self.fmt_term(t, f),
            Expr::Add(a, b) => {
                self.fmt_expr(a, f)?;
                write!(f, " + ")?;
                self.fmt_expr(b, f)
            }
            Expr::Sub(a, b) => {
                self.fmt_expr(a, f)?;
                write!(f, " - ")?;
                self.fmt_expr(b, f)
            }
            Expr::Mul(a, b) => {
                self.fmt_expr(a, f)?;
                write!(f, " * ")?;
                self.fmt_expr(b, f)
            }
        }
    }
}

/// Display adapter returned by [`ConjunctiveQuery::display`].
pub struct QueryDisplay<'a> {
    q: &'a ConjunctiveQuery,
    schema: &'a Schema,
}

impl fmt::Display for QueryDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let q = self.q;
        write!(f, "{}(", q.name)?;
        for (i, v) in q.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", q.var_name(*v))?;
        }
        write!(f, ") :- ")?;
        let mut first = true;
        for a in &q.atoms {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{}(", self.schema.service(a.service).name)?;
            for (i, t) in a.terms.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                q.fmt_term(t, f)?;
            }
            write!(f, ")")?;
        }
        for p in &q.predicates {
            write!(f, ", ")?;
            q.fmt_expr(&p.lhs, f)?;
            write!(f, " {} ", p.op)?;
            q.fmt_expr(&p.rhs, f)?;
        }
        write!(f, ".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ServiceBuilder, ServiceProfile};
    use crate::value::DomainKind;

    fn tiny_schema() -> (Schema, ServiceId, ServiceId) {
        let mut s = Schema::new();
        let a = ServiceBuilder::new(&mut s, "a")
            .attr_kinded("X", "DX", DomainKind::Str)
            .attr_kinded("Y", "DY", DomainKind::Int)
            .pattern("io")
            .profile(ServiceProfile::new(2.0, 1.0))
            .register()
            .expect("a registers");
        let b = ServiceBuilder::new(&mut s, "b")
            .attr_kinded("Y", "DY", DomainKind::Int)
            .attr_kinded("Z", "DZ", DomainKind::Float)
            .pattern("io")
            .pattern("oo")
            .register()
            .expect("b registers");
        (s, a, b)
    }

    #[test]
    fn build_and_validate() {
        let (s, a, b) = tiny_schema();
        let mut q = ConjunctiveQuery::new("q");
        let y = q.var("Y");
        let z = q.var("Z");
        q.head_var(z);
        q.atom(a, vec![Term::Const(Value::str("k")), Term::Var(y)]);
        q.atom(b, vec![Term::Var(y), Term::Var(z)]);
        q.predicate(Predicate::new(Expr::var(z), CmpOp::Gt, Expr::constant(1.5)));
        q.validate(&s).expect("valid");
        assert_eq!(q.shared_vars(0, 1), vec![y]);
        let occ = q.var_occurrences();
        assert_eq!(occ[&y], vec![0, 1]);
        assert_eq!(occ[&z], vec![1]);
    }

    #[test]
    fn safety_violations() {
        let (s, a, _) = tiny_schema();
        let mut q = ConjunctiveQuery::new("q");
        let y = q.var("Y");
        let w = q.var("W");
        q.head_var(w);
        q.atom(a, vec![Term::Const(Value::str("k")), Term::Var(y)]);
        assert!(matches!(q.validate(&s), Err(QueryError::UnsafeHeadVar(_))));
        let mut q2 = ConjunctiveQuery::new("q");
        let y2 = q2.var("Y");
        q2.head_var(y2);
        q2.atom(a, vec![Term::Const(Value::str("k")), Term::Var(y2)]);
        let ghost = q2.var("Ghost");
        q2.predicate(Predicate::new(
            Expr::var(ghost),
            CmpOp::Eq,
            Expr::constant(0i64),
        ));
        assert!(matches!(
            q2.validate(&s),
            Err(QueryError::UnsafePredicateVar(_))
        ));
    }

    #[test]
    fn arity_and_domain_checks() {
        let (s, a, _) = tiny_schema();
        let mut q = ConjunctiveQuery::new("q");
        let y = q.var("Y");
        q.head_var(y);
        q.atom(a, vec![Term::Var(y)]);
        assert!(matches!(
            q.validate(&s),
            Err(QueryError::AtomArityMismatch { .. })
        ));
        let mut q2 = ConjunctiveQuery::new("q");
        let y2 = q2.var("Y");
        q2.head_var(y2);
        // position 1 expects Int domain, give it a string constant
        q2.atom(a, vec![Term::Var(y2), Term::Const(Value::str("oops"))]);
        // also makes head unsafe? no: y2 occurs at position 0. Domain error fires first.
        assert!(matches!(
            q2.validate(&s),
            Err(QueryError::DomainMismatch { .. })
        ));
    }

    #[test]
    fn predicate_eval() {
        let mut q = ConjunctiveQuery::new("q");
        let x = q.var("X");
        let y = q.var("Y");
        let p = Predicate::new(
            Expr::Add(Box::new(Expr::var(x)), Box::new(Expr::var(y))),
            CmpOp::Lt,
            Expr::constant(2000i64),
        );
        let lookup = |bind: &[(VarId, Value)]| {
            let bind = bind.to_vec();
            move |v: VarId| {
                bind.iter()
                    .find(|(u, _)| *u == v)
                    .map(|(_, val)| val.clone())
            }
        };
        assert_eq!(
            p.eval(&lookup(&[(x, Value::Int(900)), (y, Value::Int(800))])),
            Some(true)
        );
        assert_eq!(
            p.eval(&lookup(&[(x, Value::Int(1900)), (y, Value::Int(800))])),
            Some(false)
        );
        assert_eq!(p.eval(&lookup(&[(x, Value::Int(900))])), None);
        assert_eq!(p.vars(), vec![x, y]);
    }

    #[test]
    fn display_roundtrip_shape() {
        let (s, a, b) = tiny_schema();
        let mut q = ConjunctiveQuery::new("q");
        let y = q.var("Y");
        let z = q.var("Z");
        q.head_var(z);
        q.atom(a, vec![Term::Const(Value::str("k")), Term::Var(y)]);
        q.atom(b, vec![Term::Var(y), Term::Var(z)]);
        q.predicate(Predicate::new(
            Expr::var(z),
            CmpOp::Ge,
            Expr::constant(1i64),
        ));
        let text = format!("{}", q.display(&s));
        assert_eq!(text, "q(Z) :- a('k', Y), b(Y, Z), Z >= 1.");
    }

    #[test]
    fn cmp_op_semantics() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Le.eval(Equal));
        assert!(CmpOp::Le.eval(Less));
        assert!(!CmpOp::Le.eval(Greater));
        assert!(CmpOp::Ne.eval(Less));
        assert_eq!(CmpOp::Lt.flipped(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flipped(), CmpOp::Eq);
    }
}
