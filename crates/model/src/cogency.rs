//! The cogency order on access-pattern sequences and the "bound is
//! better" heuristic (§4.1.1).
//!
//! Sequence `α ⪰IO β` holds when pattern `α[i]` is at least as cogent as
//! `β[i]` for every atom `i` — i.e. `α` binds at least the fields `β`
//! binds everywhere. The heuristic prefers the *most cogent* permissible
//! sequences because more bound fields mean smaller answer sets, fewer
//! requests and smaller intermediate results (the analogue of pushing
//! selections towards data sources).

use crate::binding::ApChoice;
use crate::query::ConjunctiveQuery;
use crate::schema::Schema;
use std::cmp::Ordering;

/// Returns `true` when `a ⪰IO b` (pointwise at-least-as-cogent).
pub fn at_least_as_cogent(
    query: &ConjunctiveQuery,
    schema: &Schema,
    a: &ApChoice,
    b: &ApChoice,
) -> bool {
    debug_assert_eq!(a.len(), b.len());
    query.atoms.iter().enumerate().all(|(i, atom)| {
        let patterns = &schema.service(atom.service).patterns;
        patterns[a.pattern_of(i)].at_least_as_cogent(&patterns[b.pattern_of(i)])
    })
}

/// Strict variant: `a ≻IO b`.
pub fn more_cogent(query: &ConjunctiveQuery, schema: &Schema, a: &ApChoice, b: &ApChoice) -> bool {
    at_least_as_cogent(query, schema, a, b) && !at_least_as_cogent(query, schema, b, a)
}

/// Partial comparison in the cogency preorder.
pub fn compare(
    query: &ConjunctiveQuery,
    schema: &Schema,
    a: &ApChoice,
    b: &ApChoice,
) -> Option<Ordering> {
    match (
        at_least_as_cogent(query, schema, a, b),
        at_least_as_cogent(query, schema, b, a),
    ) {
        (true, true) => Some(Ordering::Equal),
        (true, false) => Some(Ordering::Greater),
        (false, true) => Some(Ordering::Less),
        (false, false) => None,
    }
}

/// Filters `candidates` down to the *most cogent* ones: those not strictly
/// dominated by another candidate (§4.1.1: "a sequence is most cogent
/// whenever there is no other sequence α′ with α′ ≻IO α").
pub fn most_cogent(
    query: &ConjunctiveQuery,
    schema: &Schema,
    candidates: &[ApChoice],
) -> Vec<ApChoice> {
    candidates
        .iter()
        .filter(|a| !candidates.iter().any(|b| more_cogent(query, schema, b, a)))
        .cloned()
        .collect()
}

/// Orders candidates for exploration under the "bound is better"
/// heuristic: most-cogent first, then by descending total number of bound
/// input fields (a useful tiebreak/total extension of the partial order).
pub fn exploration_order(
    query: &ConjunctiveQuery,
    schema: &Schema,
    candidates: &[ApChoice],
) -> Vec<ApChoice> {
    let best = most_cogent(query, schema, candidates);
    let bound_fields = |c: &ApChoice| -> usize {
        query
            .atoms
            .iter()
            .enumerate()
            .map(|(i, atom)| schema.service(atom.service).patterns[c.pattern_of(i)].input_count())
            .sum()
    };
    let mut ordered: Vec<ApChoice> = Vec::with_capacity(candidates.len());
    let mut rest: Vec<ApChoice> = candidates
        .iter()
        .filter(|c| !best.contains(c))
        .cloned()
        .collect();
    let mut best = best;
    best.sort_by_key(|c| std::cmp::Reverse(bound_fields(c)));
    rest.sort_by_key(|c| std::cmp::Reverse(bound_fields(c)));
    ordered.extend(best);
    ordered.extend(rest);
    ordered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::permissible_sequences;
    use crate::parser::parse_query;
    use crate::schema::{Schema, ServiceBuilder, ServiceProfile};

    fn running_example() -> (Schema, ConjunctiveQuery) {
        let mut s = Schema::new();
        ServiceBuilder::new(&mut s, "conf")
            .attr("Topic", "Topic")
            .attr("Name", "ConfName")
            .attr("Start", "Date")
            .attr("End", "Date")
            .attr("City", "City")
            .pattern("ioooo")
            .pattern("ooooi")
            .profile(ServiceProfile::new(20.0, 1.2))
            .register()
            .expect("conf");
        ServiceBuilder::new(&mut s, "weather")
            .attr("City", "City")
            .attr("Temperature", "Temp")
            .attr("Date", "Date")
            .pattern("ioi")
            .profile(ServiceProfile::new(0.05, 1.5))
            .register()
            .expect("weather");
        ServiceBuilder::new(&mut s, "flight")
            .attr("From", "City")
            .attr("To", "City")
            .attr("OutDate", "Date")
            .attr("RetDate", "Date")
            .attr("OutTime", "Time")
            .attr("RetTime", "Time")
            .attr("Price", "Price")
            .pattern("iiiiooo")
            .search()
            .chunked(25)
            .profile(ServiceProfile::new(25.0, 9.7))
            .register()
            .expect("flight");
        ServiceBuilder::new(&mut s, "hotel")
            .attr("Name", "HotelName")
            .attr("City", "City")
            .attr("Category", "Category")
            .attr("CheckInDate", "Date")
            .attr("CheckOutDate", "Date")
            .attr("Price", "Price")
            .pattern("oiiiio")
            .pattern("oooooo")
            .search()
            .chunked(5)
            .profile(ServiceProfile::new(5.0, 4.9))
            .register()
            .expect("hotel");
        let q = parse_query(
            "q(Conf, City) :- \
             flight('Milano', City, Start, End, StartTime, EndTime, FPrice), \
             hotel(Hotel, City, 'luxury', Start, End, HPrice), \
             conf('DB', Conf, Start, End, City), \
             weather(City, Temperature, Start).",
            &s,
        )
        .expect("parses");
        (s, q)
    }

    #[test]
    fn example_41_most_cogent() {
        // Example 4.1: among permissible α1, α2, α4 the most cogent are
        // α1 and α4 (α1 ≻IO α2 because hotel1 binds fields hotel2 leaves
        // free; α4 is incomparable to both).
        let (s, q) = running_example();
        let perms = permissible_sequences(&q, &s);
        assert_eq!(perms.len(), 3);
        let best = most_cogent(&q, &s, &perms);
        assert_eq!(best.len(), 2, "α1 and α4: {best:?}");
        // atom order flight=0, hotel=1, conf=2, weather=3
        let a1 = ApChoice(vec![0, 0, 0, 0]);
        let a2 = ApChoice(vec![0, 1, 0, 0]);
        let a4 = ApChoice(vec![0, 1, 1, 0]);
        assert!(best.contains(&a1));
        assert!(best.contains(&a4));
        assert!(more_cogent(&q, &s, &a1, &a2));
        assert_eq!(compare(&q, &s, &a1, &a2), Some(Ordering::Greater));
        assert_eq!(compare(&q, &s, &a2, &a1), Some(Ordering::Less));
        assert_eq!(compare(&q, &s, &a1, &a4), None);
        assert_eq!(compare(&q, &s, &a1, &a1), Some(Ordering::Equal));
    }

    #[test]
    fn exploration_order_puts_most_cogent_first() {
        let (s, q) = running_example();
        let perms = permissible_sequences(&q, &s);
        let ordered = exploration_order(&q, &s, &perms);
        assert_eq!(ordered.len(), 3);
        let a2 = ApChoice(vec![0, 1, 0, 0]);
        // the dominated α2 comes last
        assert_eq!(ordered[2], a2);
        // and the first element binds at least as many fields as the second
        let bound = |c: &ApChoice| -> usize {
            q.atoms
                .iter()
                .enumerate()
                .map(|(i, a)| s.service(a.service).patterns[c.pattern_of(i)].input_count())
                .sum()
        };
        assert!(bound(&ordered[0]) >= bound(&ordered[1]));
    }
}
