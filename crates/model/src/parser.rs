//! Datalog-like query text syntax (Fig. 3).
//!
//! The grammar accepted is essentially the paper's notation:
//!
//! ```text
//! q(Conf, City, HPrice) :-
//!     flight('Milano', City, Start, End, StartTime, EndTime, FPrice),
//!     hotel(Hotel, City, 'luxury', Start, End, HPrice),
//!     conf('DB', Conf, Start, End, City),
//!     weather(City, Temperature, Start),
//!     Start >= '2007/3/14', End <= '2007/3/14' + 180,
//!     Temperature >= 28, FPrice + HPrice < 2000.
//! ```
//!
//! Conventions (§3.1): identifiers starting with an uppercase letter are
//! variables; lowercase identifiers, numbers and quoted strings are
//! constants. Quoted strings that parse as `YYYY/MM/DD` become
//! [`Date`] constants. Comparison predicates may use
//! `+`, `-`, `*` arithmetic on either side, and may carry a selectivity
//! hint as an `@σ` suffix (e.g. `FPrice + HPrice < 2000 @0.01`) — the
//! per-query-template estimates of §3.4.

use crate::query::{CmpOp, ConjunctiveQuery, Expr, Predicate, Term};
use crate::schema::Schema;
use crate::value::{Date, Value};
use std::fmt;

/// Parse errors with byte position information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input at which the error was detected.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    fn new(position: usize, message: impl Into<String>) -> Self {
        ParseError {
            position,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String), // starts with letter or underscore
    Int(i64),
    Float(f64),
    Str(String), // quoted
    LParen,
    RParen,
    Comma,
    Dot,
    Turnstile, // :-
    Plus,
    Minus,
    Star,
    At,
    Cmp(CmpOp),
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else if b == b'%' || (b == b'/' && self.bytes.get(self.pos + 1) == Some(&b'/')) {
                // line comment: % … or // …
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn next_tok(&mut self) -> Result<Option<(usize, Tok)>, ParseError> {
        self.skip_ws();
        if self.pos >= self.bytes.len() {
            return Ok(None);
        }
        let start = self.pos;
        let b = self.bytes[self.pos];
        let tok =
            match b {
                b'(' => {
                    self.pos += 1;
                    Tok::LParen
                }
                b')' => {
                    self.pos += 1;
                    Tok::RParen
                }
                b',' => {
                    self.pos += 1;
                    Tok::Comma
                }
                b'.' => {
                    self.pos += 1;
                    Tok::Dot
                }
                b'+' => {
                    self.pos += 1;
                    Tok::Plus
                }
                b'*' => {
                    self.pos += 1;
                    Tok::Star
                }
                b'@' => {
                    self.pos += 1;
                    Tok::At
                }
                b'-' => {
                    self.pos += 1;
                    Tok::Minus
                }
                b':' => {
                    if self.bytes.get(self.pos + 1) == Some(&b'-') {
                        self.pos += 2;
                        Tok::Turnstile
                    } else {
                        return Err(ParseError::new(start, "expected `:-`"));
                    }
                }
                b'<' => {
                    if self.bytes.get(self.pos + 1) == Some(&b'=') {
                        self.pos += 2;
                        Tok::Cmp(CmpOp::Le)
                    } else {
                        self.pos += 1;
                        Tok::Cmp(CmpOp::Lt)
                    }
                }
                b'>' => {
                    if self.bytes.get(self.pos + 1) == Some(&b'=') {
                        self.pos += 2;
                        Tok::Cmp(CmpOp::Ge)
                    } else {
                        self.pos += 1;
                        Tok::Cmp(CmpOp::Gt)
                    }
                }
                b'=' => {
                    self.pos += 1;
                    Tok::Cmp(CmpOp::Eq)
                }
                b'!' => {
                    if self.bytes.get(self.pos + 1) == Some(&b'=') {
                        self.pos += 2;
                        Tok::Cmp(CmpOp::Ne)
                    } else {
                        return Err(ParseError::new(start, "expected `!=`"));
                    }
                }
                b'\'' | b'"' => {
                    let quote = b;
                    self.pos += 1;
                    let s_start = self.pos;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != quote {
                        self.pos += 1;
                    }
                    if self.pos >= self.bytes.len() {
                        return Err(ParseError::new(start, "unterminated string literal"));
                    }
                    let s = self.src[s_start..self.pos].to_string();
                    self.pos += 1; // closing quote
                    Tok::Str(s)
                }
                b'0'..=b'9' => {
                    let mut end = self.pos;
                    let mut is_float = false;
                    while end < self.bytes.len() {
                        match self.bytes[end] {
                            b'0'..=b'9' => end += 1,
                            b'.' if !is_float
                                && end + 1 < self.bytes.len()
                                && self.bytes[end + 1].is_ascii_digit() =>
                            {
                                is_float = true;
                                end += 1;
                            }
                            _ => break,
                        }
                    }
                    let text = &self.src[self.pos..end];
                    self.pos = end;
                    if is_float {
                        Tok::Float(text.parse().map_err(|_| {
                            ParseError::new(start, format!("invalid float `{text}`"))
                        })?)
                    } else {
                        Tok::Int(text.parse().map_err(|_| {
                            ParseError::new(start, format!("invalid integer `{text}`"))
                        })?)
                    }
                }
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                    let mut end = self.pos;
                    while end < self.bytes.len()
                        && (self.bytes[end].is_ascii_alphanumeric() || self.bytes[end] == b'_')
                    {
                        end += 1;
                    }
                    let ident = self.src[self.pos..end].to_string();
                    self.pos = end;
                    Tok::Ident(ident)
                }
                other => {
                    return Err(ParseError::new(
                        start,
                        format!("unexpected character `{}`", other as char),
                    ))
                }
            };
        Ok(Some((start, tok)))
    }
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let mut lx = Lexer::new(src);
    let mut toks = Vec::new();
    while let Some(t) = lx.next_tok()? {
        toks.push(t);
    }
    Ok(toks)
}

struct Parser<'a> {
    toks: Vec<(usize, Tok)>,
    i: usize,
    schema: &'a Schema,
    query: ConjunctiveQuery,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i).map(|(_, t)| t)
    }

    fn pos(&self) -> usize {
        self.toks.get(self.i).map(|(p, _)| *p).unwrap_or(usize::MAX)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.i).map(|(_, t)| t.clone());
        self.i += 1;
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        let p = self.pos();
        match self.bump() {
            Some(ref t) if t == want => Ok(()),
            _ => Err(ParseError::new(p, format!("expected {what}"))),
        }
    }

    fn const_from_str(s: &str) -> Value {
        match Date::parse(s) {
            Some(d) => Value::Date(d),
            None => Value::str(s),
        }
    }

    fn parse_term(&mut self) -> Result<Term, ParseError> {
        let p = self.pos();
        match self.bump() {
            Some(Tok::Ident(id)) => {
                if id.starts_with(|c: char| c.is_ascii_uppercase()) {
                    Ok(Term::Var(self.query.var(&id)))
                } else if id == "_" {
                    Err(ParseError::new(p, "anonymous variables are not supported"))
                } else {
                    Ok(Term::Const(Value::str(&id)))
                }
            }
            Some(Tok::Int(v)) => Ok(Term::Const(Value::Int(v))),
            Some(Tok::Float(v)) => Ok(Term::Const(Value::float(v))),
            Some(Tok::Str(s)) => Ok(Term::Const(Self::const_from_str(&s))),
            Some(Tok::Minus) => match self.bump() {
                Some(Tok::Int(v)) => Ok(Term::Const(Value::Int(-v))),
                Some(Tok::Float(v)) => Ok(Term::Const(Value::float(-v))),
                _ => Err(ParseError::new(p, "expected number after `-`")),
            },
            _ => Err(ParseError::new(p, "expected term")),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        Ok(Expr::Term(self.parse_term()?))
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        // factor ( (*) factor )*  with +,- at lower precedence
        let mut lhs = self.parse_mul()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.bump();
                    let rhs = self.parse_mul()?;
                    lhs = Expr::Add(Box::new(lhs), Box::new(rhs));
                }
                Some(Tok::Minus) => {
                    self.bump();
                    let rhs = self.parse_mul()?;
                    lhs = Expr::Sub(Box::new(lhs), Box::new(rhs));
                }
                _ => break,
            }
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_primary()?;
        while matches!(self.peek(), Some(Tok::Star)) {
            self.bump();
            let rhs = self.parse_primary()?;
            lhs = Expr::Mul(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// An item is an atom (`ident(`) or a predicate.
    fn parse_item(&mut self) -> Result<(), ParseError> {
        let is_atom = matches!(
            (self.peek(), self.toks.get(self.i + 1).map(|(_, t)| t)),
            (Some(Tok::Ident(id)), Some(Tok::LParen))
                if id.starts_with(|c: char| c.is_ascii_lowercase())
        );
        if is_atom {
            let p = self.pos();
            let name = match self.bump() {
                Some(Tok::Ident(id)) => id,
                _ => unreachable!("peeked an identifier"),
            };
            let service = self
                .schema
                .service_by_name(&name)
                .ok_or_else(|| ParseError::new(p, format!("unknown service `{name}`")))?;
            self.expect(&Tok::LParen, "`(`")?;
            let mut terms = Vec::new();
            if !matches!(self.peek(), Some(Tok::RParen)) {
                loop {
                    terms.push(self.parse_term()?);
                    match self.peek() {
                        Some(Tok::Comma) => {
                            self.bump();
                        }
                        _ => break,
                    }
                }
            }
            self.expect(&Tok::RParen, "`)`")?;
            self.query.atom(service, terms);
            Ok(())
        } else {
            let lhs = self.parse_expr()?;
            let p = self.pos();
            let op = match self.bump() {
                Some(Tok::Cmp(op)) => op,
                _ => return Err(ParseError::new(p, "expected comparison operator")),
            };
            let rhs = self.parse_expr()?;
            let mut pred = Predicate::new(lhs, op, rhs);
            if matches!(self.peek(), Some(Tok::At)) {
                self.bump();
                let p = self.pos();
                let sigma = match self.bump() {
                    Some(Tok::Float(v)) => v,
                    Some(Tok::Int(v)) => v as f64,
                    _ => return Err(ParseError::new(p, "expected selectivity after `@`")),
                };
                if !(0.0..=1.0).contains(&sigma) {
                    return Err(ParseError::new(p, "selectivity must be in [0, 1]"));
                }
                pred = pred.with_selectivity(sigma);
            }
            self.query.predicate(pred);
            Ok(())
        }
    }

    fn parse_query(mut self) -> Result<ConjunctiveQuery, ParseError> {
        // head
        let p = self.pos();
        let name = match self.bump() {
            Some(Tok::Ident(id)) => id,
            _ => return Err(ParseError::new(p, "expected query name")),
        };
        self.query.name = std::sync::Arc::from(name.as_str());
        self.expect(&Tok::LParen, "`(`")?;
        if !matches!(self.peek(), Some(Tok::RParen)) {
            loop {
                let p = self.pos();
                match self.bump() {
                    Some(Tok::Ident(id)) if id.starts_with(|c: char| c.is_ascii_uppercase()) => {
                        let v = self.query.var(&id);
                        self.query.head_var(v);
                    }
                    _ => return Err(ParseError::new(p, "expected head variable")),
                }
                match self.peek() {
                    Some(Tok::Comma) => {
                        self.bump();
                    }
                    _ => break,
                }
            }
        }
        self.expect(&Tok::RParen, "`)`")?;
        self.expect(&Tok::Turnstile, "`:-`")?;
        loop {
            self.parse_item()?;
            match self.peek() {
                Some(Tok::Comma) => {
                    self.bump();
                }
                Some(Tok::Dot) => {
                    self.bump();
                    break;
                }
                None => break,
                _ => {
                    return Err(ParseError::new(self.pos(), "expected `,` or `.`"));
                }
            }
        }
        if self.peek().is_some() {
            return Err(ParseError::new(self.pos(), "trailing input after query"));
        }
        Ok(self.query)
    }
}

/// Parses a conjunctive query in the paper's datalog-like syntax, resolving
/// service names against `schema`. The returned query is *not* yet
/// validated — call [`ConjunctiveQuery::validate`].
pub fn parse_query(src: &str, schema: &Schema) -> Result<ConjunctiveQuery, ParseError> {
    let toks = lex(src)?;
    let parser = Parser {
        toks,
        i: 0,
        schema,
        query: ConjunctiveQuery::new("q"),
    };
    parser.parse_query()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryError;
    use crate::schema::{ServiceBuilder, ServiceProfile};
    use crate::value::DomainKind;

    fn schema() -> Schema {
        let mut s = Schema::new();
        ServiceBuilder::new(&mut s, "conf")
            .attr_kinded("Topic", "Topic", DomainKind::Str)
            .attr_kinded("Name", "ConfName", DomainKind::Str)
            .attr_kinded("Start", "Date", DomainKind::Date)
            .attr_kinded("End", "Date", DomainKind::Date)
            .attr_kinded("City", "City", DomainKind::Str)
            .pattern("ioooo")
            .pattern("ooooi")
            .profile(ServiceProfile::new(20.0, 1.2))
            .register()
            .expect("conf registers");
        ServiceBuilder::new(&mut s, "weather")
            .attr_kinded("City", "City", DomainKind::Str)
            .attr_kinded("Temperature", "Temp", DomainKind::Float)
            .attr_kinded("Date", "Date", DomainKind::Date)
            .pattern("ioi")
            .profile(ServiceProfile::new(0.05, 1.5))
            .register()
            .expect("weather registers");
        s
    }

    #[test]
    fn parses_simple_query() {
        let s = schema();
        let q = parse_query(
            "q(Conf, City) :- conf('DB', Conf, Start, End, City), \
             weather(City, Temp, Start), Temp >= 28, Start >= '2007/3/14'.",
            &s,
        )
        .expect("parses");
        assert_eq!(q.atoms.len(), 2);
        assert_eq!(q.predicates.len(), 2);
        assert_eq!(q.head.len(), 2);
        q.validate(&s).expect("valid");
        // date constant recognized
        match &q.predicates[1].rhs {
            Expr::Term(Term::Const(Value::Date(d))) => assert_eq!(d.ymd(), (2007, 3, 14)),
            other => panic!("expected date constant, got {other:?}"),
        }
    }

    #[test]
    fn parses_arithmetic_predicates() {
        let s = schema();
        let q = parse_query(
            "q(C) :- conf('DB', C, S, E, City), E <= S + 180, S >= '2007/3/14'.",
            &s,
        )
        .expect("parses");
        assert_eq!(q.predicates.len(), 2);
        match &q.predicates[0].rhs {
            Expr::Add(_, _) => {}
            other => panic!("expected Add, got {other:?}"),
        }
    }

    #[test]
    fn lowercase_idents_are_constants() {
        let s = schema();
        let q = parse_query("q(C) :- conf(db, C, S, E, City).", &s).expect("parses");
        assert_eq!(q.atoms[0].terms[0], Term::Const(Value::str("db")));
    }

    #[test]
    fn unknown_service_is_error() {
        let s = schema();
        let err = parse_query("q(X) :- nope(X).", &s).expect_err("should fail");
        assert!(err.message.contains("unknown service"), "{err}");
    }

    #[test]
    fn arity_mismatch_caught_by_validate() {
        let s = schema();
        let q = parse_query("q(C) :- conf('DB', C).", &s).expect("parses");
        assert!(matches!(
            q.validate(&s),
            Err(QueryError::AtomArityMismatch { .. })
        ));
    }

    #[test]
    fn lexer_errors() {
        let s = schema();
        assert!(parse_query("q(X) :- conf('DB", &s).is_err()); // unterminated
        assert!(parse_query("q(X) : conf('DB')", &s).is_err()); // bad turnstile
        assert!(parse_query("q(X) :- conf('DB', X, S, E, C) # 1", &s).is_err());
    }

    #[test]
    fn comments_and_whitespace() {
        let s = schema();
        let q = parse_query(
            "% a comment\nq(C) :- // another\n  conf('DB', C, S, E, City).",
            &s,
        )
        .expect("parses");
        assert_eq!(q.atoms.len(), 1);
    }

    #[test]
    fn selectivity_hints() {
        let s = schema();
        let q = parse_query(
            "q(C) :- conf('DB', C, S, E, City), weather(City, T, S), \
             T >= 28 @1.0, S >= '2007/3/14' @ 0.5.",
            &s,
        )
        .expect("parses");
        assert_eq!(q.predicates[0].selectivity_hint, Some(1.0));
        assert_eq!(q.predicates[1].selectivity_hint, Some(0.5));
        assert!(parse_query("q(C) :- conf('DB', C, S, E, X), S >= 1 @2.5.", &s).is_err());
        assert!(parse_query("q(C) :- conf('DB', C, S, E, X), S >= 1 @x.", &s).is_err());
    }

    #[test]
    fn negative_numbers() {
        let s = schema();
        let q = parse_query(
            "q(C) :- weather(City, T, D), T >= -5.5, conf('DB', C, S, E, City).",
            &s,
        )
        .expect("parses");
        match &q.predicates[0].rhs {
            Expr::Term(Term::Const(v)) => assert_eq!(*v, Value::float(-5.5)),
            other => panic!("expected const, got {other:?}"),
        }
    }

    #[test]
    fn running_example_full_query_parses() {
        let mut s = schema();
        ServiceBuilder::new(&mut s, "flight")
            .attr_kinded("From", "City", DomainKind::Str)
            .attr_kinded("To", "City", DomainKind::Str)
            .attr_kinded("OutDate", "Date", DomainKind::Date)
            .attr_kinded("RetDate", "Date", DomainKind::Date)
            .attr_kinded("OutTime", "Time", DomainKind::Str)
            .attr_kinded("RetTime", "Time", DomainKind::Str)
            .attr_kinded("Price", "Price", DomainKind::Float)
            .pattern("iiiiooo")
            .search()
            .chunked(25)
            .register()
            .expect("flight registers");
        ServiceBuilder::new(&mut s, "hotel")
            .attr_kinded("Name", "HotelName", DomainKind::Str)
            .attr_kinded("City", "City", DomainKind::Str)
            .attr_kinded("Category", "Category", DomainKind::Str)
            .attr_kinded("CheckInDate", "Date", DomainKind::Date)
            .attr_kinded("CheckOutDate", "Date", DomainKind::Date)
            .attr_kinded("Price", "Price", DomainKind::Float)
            .pattern("oiiiio")
            .search()
            .chunked(5)
            .register()
            .expect("hotel registers");
        let q = parse_query(
            "q(Conf, City, HPrice, FPrice, Start, StartTime, End, EndTime, Hotel) :- \
             flight('Milano', City, Start, End, StartTime, EndTime, FPrice), \
             hotel(Hotel, City, 'luxury', Start, End, HPrice), \
             conf('DB', Conf, Start, End, City), \
             weather(City, Temperature, Start), \
             Start >= '2007/3/14', End <= '2007/3/14' + 180, \
             Temperature >= 28, FPrice + HPrice < 2000.",
            &s,
        )
        .expect("parses");
        q.validate(&s).expect("valid");
        assert_eq!(q.atoms.len(), 4);
        assert_eq!(q.predicates.len(), 4);
        assert_eq!(q.head.len(), 9);
        // round-trips through display and re-parse
        let text = format!("{}", q.display(&s));
        let q2 = parse_query(&text, &s).expect("round-trip parses");
        assert_eq!(q2.atoms.len(), 4);
        assert_eq!(q2.predicates.len(), 4);
    }
}
