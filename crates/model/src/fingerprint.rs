//! Template normalization and query fingerprints.
//!
//! §2.2 observes that "optimization is performed for each query
//! template": queries submitted by different users through the same form
//! differ only in variable spelling and predicate order, and a serving
//! layer (following Roy et al.'s multi-query optimization line) wants to
//! recognise them as one template so the branch-and-bound optimizer runs
//! once per shape, not once per submission.
//!
//! [`fingerprint`] maps a [`ConjunctiveQuery`] to a 64-bit
//! [`QueryFingerprint`] of its *canonical form* ([`canonical_text`]):
//!
//! * **alpha-renaming invariant** — variables are renumbered by first
//!   occurrence in a canonical atom order, so `q(X) :- s('k', X)` and
//!   `q(Foo) :- s('k', Foo)` collide;
//! * **predicate-order invariant** — selection predicates are rendered
//!   and sorted, so swapping `T >= 28, P < 2000` collides with the
//!   reverse order;
//! * **constants and shape preserved** — a different constant, service,
//!   arity, head ordering or predicate operator yields a different
//!   canonical form. Two queries with equal fingerprints are (up to hash
//!   collision on the 64-bit digest) the same query up to renaming, so a
//!   plan optimized for one is valid for the other.
//!
//! The plan cache of `mdq-runtime` keys on this fingerprint (plus `k`).
//!
//! Known limitation (safe direction): atoms whose name-independent sort
//! keys tie — e.g. a self-join invoking one service twice with the same
//! constant/variable pattern — keep their submission order, so listing
//! such atoms in a different order can produce a *different* fingerprint
//! for a semantically identical query. That only costs a spurious
//! plan-cache miss (the optimizer reruns); equal fingerprints still
//! always mean equal templates.

use crate::query::{ConjunctiveQuery, Expr, Term, VarId};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

/// A 64-bit digest of a query's canonical form.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryFingerprint(pub u64);

impl fmt::Display for QueryFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A 64-bit digest of the canonical form of an *invoke prefix* — the
/// serial chain of service invocations a plan executes before its first
/// parallel split. Two prefixes with equal signatures perform exactly
/// the same work (same services in the same execution order, same
/// access patterns, same fetch factors, same constants, same predicates
/// applied along the way) even when they come from *different* query
/// templates, so the bindings the first one materializes can be
/// replayed to the second — the unit of cross-query multi-query
/// optimization (Roy et al.).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubplanSignature(pub u64);

impl fmt::Display for SubplanSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One invocation step of a subplan prefix, in execution order.
#[derive(Clone, Debug)]
pub struct PrefixStep {
    /// Index of the invoked atom in `query.atoms`.
    pub atom: usize,
    /// Chosen access-pattern index for that atom.
    pub pattern: usize,
    /// Phase-3 fetch factor (pages per input; 1 for bulk services).
    pub fetch: u64,
    /// Indices of the query predicates applied right after this
    /// invocation (the first node where all their variables are bound).
    pub preds: Vec<usize>,
}

/// A subplan signature plus the replay mapping that goes with it.
#[derive(Clone, Debug)]
pub struct SubplanSig {
    /// The order- and renaming-invariant digest.
    pub signature: SubplanSignature,
    /// This query's variables in canonical first-occurrence order:
    /// position `i` holds the variable the canonical form calls `?i`.
    /// Two prefixes with equal signatures have `vars` of equal length,
    /// and position-wise corresponding variables carry the same values
    /// — materialized rows stored in canonical order replay into any
    /// subscriber through its own `vars`.
    pub vars: Vec<VarId>,
}

/// Signs the invoke prefix described by `steps` over `query`.
///
/// The canonical form is invariant under alpha-renaming and under the
/// order atoms/predicates are *listed* in the source query (the steps
/// themselves arrive in execution order, which is part of the work and
/// therefore part of the signature). Service identity, access pattern,
/// fetch factor, arity, constants and predicate operators are all
/// preserved; the query head is deliberately excluded — a prefix's
/// downstream is open.
pub fn subplan_signature(query: &ConjunctiveQuery, steps: &[PrefixStep]) -> SubplanSig {
    let (text, vars) = subplan_canonical_text(query, steps);
    SubplanSig {
        signature: SubplanSignature(fnv1a(text.as_bytes())),
        vars,
    }
}

/// The canonical rendering [`subplan_signature`] hashes, plus the
/// canonical variable order (the replay mapping).
pub fn subplan_canonical_text(
    query: &ConjunctiveQuery,
    steps: &[PrefixStep],
) -> (String, Vec<VarId>) {
    // variables renumbered by first occurrence scanning the steps in
    // execution order; every predicate applied at a step only mentions
    // variables bound by that step or earlier, so the map is total
    let mut canon: HashMap<u32, usize> = HashMap::new();
    let mut vars: Vec<VarId> = Vec::new();
    for step in steps {
        for t in &query.atoms[step.atom].terms {
            if let Term::Var(v) = t {
                if let std::collections::hash_map::Entry::Vacant(e) = canon.entry(v.0) {
                    e.insert(vars.len());
                    vars.push(*v);
                }
            }
        }
    }

    let render_term = |t: &Term, out: &mut String| match t {
        Term::Var(v) => {
            let _ = write!(out, "?{}", canon.get(&v.0).copied().unwrap_or(usize::MAX));
        }
        Term::Const(c) => {
            let _ = write!(out, "{c}");
        }
    };

    let mut text = String::new();
    for step in steps {
        let atom = &query.atoms[step.atom];
        let _ = write!(text, "a{}p{}f{}(", atom.service.0, step.pattern, step.fetch);
        for (i, t) in atom.terms.iter().enumerate() {
            if i > 0 {
                text.push(',');
            }
            render_term(t, &mut text);
        }
        text.push(')');
        // predicates applied at this step, rendered then sorted —
        // conjunction is order-free
        let mut preds: Vec<String> = step
            .preds
            .iter()
            .map(|&k| {
                let p = &query.predicates[k];
                let mut s = String::new();
                render_expr(&p.lhs, &render_term, &mut s);
                let _ = write!(s, "{}", p.op);
                render_expr(&p.rhs, &render_term, &mut s);
                if let Some(sigma) = p.selectivity_hint {
                    let _ = write!(s, "@{sigma}");
                }
                s
            })
            .collect();
        preds.sort();
        for p in &preds {
            text.push('[');
            text.push_str(p);
            text.push(']');
        }
        text.push(';');
    }
    (text, vars)
}

/// Fingerprints `query`: FNV-1a over [`canonical_text`].
pub fn fingerprint(query: &ConjunctiveQuery) -> QueryFingerprint {
    QueryFingerprint(fnv1a(canonical_text(query).as_bytes()))
}

/// The canonical rendering the fingerprint hashes: atoms in a
/// name-independent order with variables renumbered by first occurrence,
/// then sorted predicates, then the head positions.
///
/// The query *name* is deliberately excluded — `q(...)` and `q2(...)`
/// with identical bodies are the same template.
pub fn canonical_text(query: &ConjunctiveQuery) -> String {
    // 1. order atoms by a key that does not mention variable identity
    //    beyond the atom's own repetition pattern (stable, so equal keys
    //    keep submission order — a deterministic tie-break);
    let mut order: Vec<usize> = (0..query.atoms.len()).collect();
    let keys: Vec<String> = query.atoms.iter().map(local_atom_key).collect();
    order.sort_by(|&a, &b| keys[a].cmp(&keys[b]).then(a.cmp(&b)));

    // 2. renumber variables by first occurrence scanning atoms in that
    //    order (safety guarantees every head/predicate variable occurs
    //    in some atom, so the map is total);
    let mut canon: HashMap<u32, usize> = HashMap::new();
    for &a in &order {
        for t in &query.atoms[a].terms {
            if let Term::Var(v) = t {
                let next = canon.len();
                canon.entry(v.0).or_insert(next);
            }
        }
    }

    let render_term = |t: &Term, out: &mut String| match t {
        Term::Var(v) => {
            let _ = write!(out, "?{}", canon.get(&v.0).copied().unwrap_or(usize::MAX));
        }
        Term::Const(c) => {
            let _ = write!(out, "{c}");
        }
    };

    let mut text = String::new();
    for &a in &order {
        let atom = &query.atoms[a];
        let _ = write!(text, "a{}(", atom.service.0);
        for (i, t) in atom.terms.iter().enumerate() {
            if i > 0 {
                text.push(',');
            }
            render_term(t, &mut text);
        }
        text.push_str(");");
    }

    // 3. predicates rendered with canonical variables, then sorted —
    //    conjunction is order-free;
    let mut preds: Vec<String> = query
        .predicates
        .iter()
        .map(|p| {
            let mut s = String::new();
            render_expr(&p.lhs, &render_term, &mut s);
            let _ = write!(s, "{}", p.op);
            render_expr(&p.rhs, &render_term, &mut s);
            if let Some(sigma) = p.selectivity_hint {
                // a hint steers the optimizer, so it is part of the shape
                let _ = write!(s, "@{sigma}");
            }
            s
        })
        .collect();
    preds.sort();
    for p in &preds {
        text.push_str(p);
        text.push(';');
    }

    // 4. the head: output positions in order.
    text.push_str("h:");
    for (i, v) in query.head.iter().enumerate() {
        if i > 0 {
            text.push(',');
        }
        let _ = write!(text, "?{}", canon.get(&v.0).copied().unwrap_or(usize::MAX));
    }
    text
}

fn render_expr(e: &Expr, render_term: &impl Fn(&Term, &mut String), out: &mut String) {
    match e {
        Expr::Term(t) => render_term(t, out),
        Expr::Add(a, b) => {
            out.push('(');
            render_expr(a, render_term, out);
            out.push('+');
            render_expr(b, render_term, out);
            out.push(')');
        }
        Expr::Sub(a, b) => {
            out.push('(');
            render_expr(a, render_term, out);
            out.push('-');
            render_expr(b, render_term, out);
            out.push(')');
        }
        Expr::Mul(a, b) => {
            out.push('(');
            render_expr(a, render_term, out);
            out.push('*');
            render_expr(b, render_term, out);
            out.push(')');
        }
    }
}

/// An atom sort key independent of global variable names: the service id
/// plus, per position, either the constant or the position of the
/// variable's first occurrence *within this atom* (its repetition
/// pattern).
fn local_atom_key(atom: &crate::query::Atom) -> String {
    let mut locals: HashMap<u32, usize> = HashMap::new();
    let mut key = format!("a{}(", atom.service.0);
    for (i, t) in atom.terms.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        match t {
            Term::Var(v) => {
                let next = locals.len();
                let idx = *locals.entry(v.0).or_insert(next);
                let _ = write!(key, "v{idx}");
            }
            Term::Const(c) => {
                let _ = write!(key, "{c}");
            }
        }
    }
    key.push(')');
    key
}

/// The FNV-1a 64-bit offset basis — the initial state for
/// [`fnv1a_append`] chains.
pub const FNV1A_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a, 64-bit: stable across platforms and runs (unlike
/// `DefaultHasher`, whose output is unspecified between releases).
/// The workspace's single specified hash — also used by the fault
/// model's identity-keyed schedules (`mdq_services::fault`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_append(FNV1A_OFFSET, bytes)
}

/// Incremental FNV-1a: folds `bytes` into an existing state `h`
/// (start from [`FNV1A_OFFSET`]).
pub fn fnv1a_append(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::running_example_schema;
    use crate::parser::parse_query;

    fn fp(text: &str) -> QueryFingerprint {
        let schema = running_example_schema();
        let q = parse_query(text, &schema).expect("parses");
        fingerprint(&q)
    }

    const BASE: &str = "q(Conf, City) :- conf('DB', Conf, S, E, City), \
                        weather(City, T, S), T >= 28.";

    #[test]
    fn alpha_renaming_is_invariant() {
        let renamed = "q(C2, Town) :- conf('DB', C2, From, To, Town), \
                       weather(Town, Temp, From), Temp >= 28.";
        assert_eq!(fp(BASE), fp(renamed));
    }

    #[test]
    fn head_name_is_ignored() {
        let other_name = "answers(Conf, City) :- conf('DB', Conf, S, E, City), \
                          weather(City, T, S), T >= 28.";
        assert_eq!(fp(BASE), fp(other_name));
    }

    #[test]
    fn predicate_order_is_invariant() {
        let a = "q(City) :- conf('DB', C, S, E, City), weather(City, T, S), \
                 T >= 28, T <= 35.";
        let b = "q(City) :- conf('DB', C, S, E, City), weather(City, T, S), \
                 T <= 35, T >= 28.";
        assert_eq!(fp(a), fp(b));
    }

    #[test]
    fn different_constant_differs() {
        let other = "q(Conf, City) :- conf('AI', Conf, S, E, City), \
                     weather(City, T, S), T >= 28.";
        assert_ne!(fp(BASE), fp(other));
    }

    #[test]
    fn different_shape_differs() {
        // dropped predicate
        let no_pred = "q(Conf, City) :- conf('DB', Conf, S, E, City), \
                       weather(City, T, S).";
        assert_ne!(fp(BASE), fp(no_pred));
        // different operator
        let other_op = "q(Conf, City) :- conf('DB', Conf, S, E, City), \
                        weather(City, T, S), T > 28.";
        assert_ne!(fp(BASE), fp(other_op));
        // different head ordering
        let swapped_head = "q(City, Conf) :- conf('DB', Conf, S, E, City), \
                            weather(City, T, S), T >= 28.";
        assert_ne!(fp(BASE), fp(swapped_head));
    }

    #[test]
    fn join_structure_is_part_of_the_shape() {
        // weather joined on the conference start date vs. its end date:
        // same atoms, same constants, different variable wiring
        let on_start = "q(City) :- conf('DB', C, S, E, City), weather(City, T, S).";
        let on_end = "q(City) :- conf('DB', C, S, E, City), weather(City, T, E).";
        assert_ne!(fp(on_start), fp(on_end));
    }

    fn prefix_steps(_query: &ConjunctiveQuery, atoms: &[usize]) -> Vec<PrefixStep> {
        // pattern 0, fetch 1, no predicates — the shape-only signature
        atoms
            .iter()
            .map(|&atom| PrefixStep {
                atom,
                pattern: 0,
                fetch: 1,
                preds: Vec::new(),
            })
            .collect()
    }

    #[test]
    fn subplan_signature_is_alpha_invariant() {
        let schema = running_example_schema();
        let a = parse_query(BASE, &schema).expect("parses");
        let renamed = "q(C2, Town) :- conf('DB', C2, From, To, Town), \
                       weather(Town, Temp, From), Temp >= 28.";
        let b = parse_query(renamed, &schema).expect("parses");
        let sa = subplan_signature(&a, &prefix_steps(&a, &[0, 1]));
        let sb = subplan_signature(&b, &prefix_steps(&b, &[0, 1]));
        assert_eq!(sa.signature, sb.signature);
        assert_eq!(sa.vars.len(), sb.vars.len(), "replay mappings align");
    }

    #[test]
    fn subplan_signature_ignores_source_atom_order() {
        // the steps arrive in *execution* order; listing the atoms in a
        // different order in the query text must not matter
        let schema = running_example_schema();
        let a = parse_query(BASE, &schema).expect("parses");
        let swapped = "q(Conf, City) :- weather(City, T, S), \
                       conf('DB', Conf, S, E, City), T >= 28.";
        let b = parse_query(swapped, &schema).expect("parses");
        // execution order conf → weather in both: atom indices differ
        let sa = subplan_signature(&a, &prefix_steps(&a, &[0, 1]));
        let sb = subplan_signature(&b, &prefix_steps(&b, &[1, 0]));
        assert_eq!(sa.signature, sb.signature);
    }

    #[test]
    fn subplan_signature_preserves_work_parameters() {
        let schema = running_example_schema();
        let q = parse_query(BASE, &schema).expect("parses");
        let base = subplan_signature(&q, &prefix_steps(&q, &[0, 1]));
        // a different constant is different work
        let other = parse_query(&BASE.replace("'DB'", "'AI'"), &schema).expect("parses");
        assert_ne!(
            base.signature,
            subplan_signature(&other, &prefix_steps(&other, &[0, 1])).signature
        );
        // a different fetch factor fetches a different stream
        let mut steps = prefix_steps(&q, &[0, 1]);
        steps[1].fetch = 3;
        assert_ne!(base.signature, subplan_signature(&q, &steps).signature);
        // a different access pattern is different work
        let mut steps = prefix_steps(&q, &[0, 1]);
        steps[1].pattern = 1;
        assert_ne!(base.signature, subplan_signature(&q, &steps).signature);
        // an applied predicate filters the stream
        let mut steps = prefix_steps(&q, &[0, 1]);
        steps[1].preds = vec![0];
        assert_ne!(base.signature, subplan_signature(&q, &steps).signature);
        // a shorter prefix is a different prefix
        assert_ne!(
            base.signature,
            subplan_signature(&q, &prefix_steps(&q, &[0])).signature
        );
    }

    #[test]
    fn subplan_vars_follow_first_occurrence() {
        let schema = running_example_schema();
        let q = parse_query(BASE, &schema).expect("parses");
        let sig = subplan_signature(&q, &prefix_steps(&q, &[0, 1]));
        // conf('DB', Conf, S, E, City) then weather(City, T, S): the
        // canonical order is Conf, S, E, City, T
        let names: Vec<&str> = sig.vars.iter().map(|v| q.var_name(*v)).collect();
        assert_eq!(names, vec!["Conf", "S", "E", "City", "T"]);
    }

    #[test]
    fn canonical_text_is_stable() {
        let schema = running_example_schema();
        let q = parse_query(BASE, &schema).expect("parses");
        assert_eq!(canonical_text(&q), canonical_text(&q));
        // and the digest is the documented FNV of that text
        assert_eq!(
            fingerprint(&q).0,
            fnv1a(canonical_text(&q).as_bytes()),
            "fingerprint hashes the canonical text"
        );
    }
}
