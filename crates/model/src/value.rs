//! Runtime values, tuples and abstract domains.
//!
//! The paper abstracts web sources into relations over *abstract domains*
//! (§3.1: "the `Ai`'s do not denote attributes but abstract domains"). We
//! keep values dynamically typed — a service result field is a [`Value`] —
//! but every signature position is tagged with a [`DomainId`] so the
//! optimizer can reason about join compatibility and domain cardinalities.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A totally ordered, hashable `f64` wrapper.
///
/// Web-service fields such as prices and temperatures are floating point;
/// we need them as join keys and in `BTreeMap`s, so we adopt the IEEE-754
/// `totalOrder` predicate ([`f64::total_cmp`]) and normalise `-0.0`/NaN for
/// hashing.
#[derive(Clone, Copy, Debug, Default)]
pub struct F64(pub f64);

impl F64 {
    /// The wrapped float.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    #[inline]
    fn canonical_bits(self) -> u64 {
        let v = if self.0 == 0.0 {
            0.0 // collapse -0.0 and +0.0
        } else if self.0.is_nan() {
            f64::NAN // collapse NaN payloads
        } else {
            self.0
        };
        v.to_bits()
    }
}

impl PartialEq for F64 {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.canonical_bits() == other.canonical_bits()
    }
}
impl Eq for F64 {}

impl PartialOrd for F64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for F64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl Hash for F64 {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.canonical_bits().hash(state);
    }
}
impl fmt::Display for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A calendar date, stored as days since the civil epoch 1970-01-01.
///
/// The running example compares and offsets dates
/// (`Start ≥ '2007/3/14', End ≤ '2007/3/14' + 180`), so dates support
/// ordering and integer-day arithmetic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    days: i32,
}

impl Date {
    /// Builds a date from a civil year/month/day triple.
    ///
    /// Uses Howard Hinnant's `days_from_civil` algorithm; valid for the
    /// entire `i32` day range.
    pub fn from_ymd(y: i32, m: u32, d: u32) -> Self {
        debug_assert!((1..=12).contains(&m), "month out of range: {m}");
        debug_assert!((1..=31).contains(&d), "day out of range: {d}");
        let y = if m <= 2 { y - 1 } else { y };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = (y - era * 400) as i64; // [0, 399]
        let mp = ((m + 9) % 12) as i64; // [0, 11], Mar=0
        let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        Date {
            days: (era as i64 * 146_097 + doe - 719_468) as i32,
        }
    }

    /// Days since 1970-01-01 (may be negative).
    #[inline]
    pub fn days_since_epoch(self) -> i32 {
        self.days
    }

    /// Builds a date directly from a day count since 1970-01-01.
    #[inline]
    pub fn from_days(days: i32) -> Self {
        Date { days }
    }

    /// Returns the civil (year, month, day) triple.
    pub fn ymd(self) -> (i32, u32, u32) {
        let z = self.days as i64 + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
        let y = if m <= 2 { y + 1 } else { y };
        (y as i32, m, d)
    }

    /// Offsets the date by a (possibly negative) number of days.
    #[inline]
    pub fn plus_days(self, delta: i64) -> Self {
        Date {
            days: (self.days as i64 + delta) as i32,
        }
    }

    /// Parses `YYYY/MM/DD` or `YYYY-MM-DD` (months/days may omit the
    /// leading zero, as in the paper's `'2007/3/14'`).
    pub fn parse(s: &str) -> Option<Self> {
        let sep = if s.contains('/') { '/' } else { '-' };
        let mut it = s.split(sep);
        let y: i32 = it.next()?.trim().parse().ok()?;
        let m: u32 = it.next()?.trim().parse().ok()?;
        let d: u32 = it.next()?.trim().parse().ok()?;
        if it.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
            return None;
        }
        Some(Date::from_ymd(y, m, d))
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}/{m:02}/{d:02}")
    }
}

/// A dynamically typed value flowing through query plans.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Absent/unknown value (service did not fill the field).
    Null,
    /// Boolean flag.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// Totally ordered float.
    Float(F64),
    /// Interned string (cheap to clone across plan operators).
    Str(Arc<str>),
    /// Calendar date.
    Date(Date),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Convenience constructor for float values.
    pub fn float(f: f64) -> Self {
        Value::Float(F64(f))
    }

    /// True when the value is [`Value::Null`].
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (ints and floats; dates as day counts) used by
    /// comparison predicates with mixed operand types.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(f.0),
            Value::Date(d) => Some(d.days_since_epoch() as f64),
            _ => None,
        }
    }

    /// Adds two values under the model's arithmetic:
    /// `Int+Int`, float combinations, and `Date + Int` (day offset).
    pub fn checked_add(&self, rhs: &Value) -> Option<Value> {
        match (self, rhs) {
            (Value::Int(a), Value::Int(b)) => Some(Value::Int(a.checked_add(*b)?)),
            (Value::Date(d), Value::Int(n)) | (Value::Int(n), Value::Date(d)) => {
                Some(Value::Date(d.plus_days(*n)))
            }
            (a, b) => Some(Value::float(a.as_f64()? + b.as_f64()?)),
        }
    }

    /// Subtracts two values; `Date - Date` yields the day difference as an
    /// integer, `Date - Int` offsets backwards.
    pub fn checked_sub(&self, rhs: &Value) -> Option<Value> {
        match (self, rhs) {
            (Value::Int(a), Value::Int(b)) => Some(Value::Int(a.checked_sub(*b)?)),
            (Value::Date(a), Value::Date(b)) => Some(Value::Int(
                (a.days_since_epoch() - b.days_since_epoch()) as i64,
            )),
            (Value::Date(d), Value::Int(n)) => Some(Value::Date(d.plus_days(-*n))),
            (a, b) => Some(Value::float(a.as_f64()? - b.as_f64()?)),
        }
    }

    /// Multiplies two numeric values.
    pub fn checked_mul(&self, rhs: &Value) -> Option<Value> {
        match (self, rhs) {
            (Value::Int(a), Value::Int(b)) => Some(Value::Int(a.checked_mul(*b)?)),
            (a, b) => Some(Value::float(a.as_f64()? * b.as_f64()?)),
        }
    }

    /// Compares two values for predicate evaluation. Numeric types compare
    /// by value across `Int`/`Float`; other kinds compare only within the
    /// same kind. Returns `None` for incomparable kinds.
    pub fn compare(&self, rhs: &Value) -> Option<Ordering> {
        match (self, rhs) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Null, Value::Null) => Some(Ordering::Equal),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                Some(x.total_cmp(&y))
            }
        }
    }

    /// Semantic equality used for equi-joins: numeric values match across
    /// `Int`/`Float`; other kinds require identical kind and content.
    pub fn join_eq(&self, rhs: &Value) -> bool {
        self.compare(rhs) == Some(Ordering::Equal)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Date(d) => write!(f, "'{d}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}
impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A tuple of values as returned by a service invocation or composed by a
/// join. Reference-counted so plan operators can fan tuples out to several
/// consumers without copying the payload.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(Arc<[Value]>);

impl Tuple {
    /// Builds a tuple from values.
    pub fn new(values: impl Into<Vec<Value>>) -> Self {
        Tuple(Arc::from(values.into()))
    }

    /// Number of fields.
    #[inline]
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Field access.
    #[inline]
    pub fn get(&self, i: usize) -> &Value {
        &self.0[i]
    }

    /// All fields as a slice.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Concatenates two tuples (used by join operators).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple::new(v)
    }

    /// Projects the tuple onto the given positions.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple::new(
            positions
                .iter()
                .map(|&i| self.0[i].clone())
                .collect::<Vec<_>>(),
        )
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

/// Identifier of an abstract domain interned in a
/// [`Schema`](crate::schema::Schema).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(pub u32);

/// The value kind a domain ranges over; used for lenient type checking of
/// query constants and for generating synthetic data.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum DomainKind {
    /// Any value kind accepted.
    #[default]
    Any,
    /// Integers.
    Int,
    /// Floats.
    Float,
    /// Strings.
    Str,
    /// Dates.
    Date,
    /// Booleans.
    Bool,
}

impl DomainKind {
    /// Whether `v` inhabits this domain kind (`Null` inhabits all).
    pub fn admits(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (DomainKind::Any, _)
                | (_, Value::Null)
                | (DomainKind::Int, Value::Int(_))
                | (DomainKind::Float, Value::Float(_))
                | (DomainKind::Float, Value::Int(_))
                | (DomainKind::Str, Value::Str(_))
                | (DomainKind::Date, Value::Date(_))
                | (DomainKind::Bool, Value::Bool(_))
        )
    }
}

/// Metadata for an abstract domain (§3.1).
///
/// `cardinality` is the optimizer's estimate of the number of distinct
/// values the domain can take; it caps distinct-value estimates under the
/// *optimal cache* setting (§5.1).
#[derive(Clone, Debug)]
pub struct DomainInfo {
    /// Domain name, e.g. `City`.
    pub name: Arc<str>,
    /// Kind of values in the domain.
    pub kind: DomainKind,
    /// Estimated number of distinct values, if known.
    pub cardinality: Option<f64>,
}

impl DomainInfo {
    /// A domain with the given name and kind and unknown cardinality.
    pub fn new(name: impl AsRef<str>, kind: DomainKind) -> Self {
        DomainInfo {
            name: Arc::from(name.as_ref()),
            kind,
            cardinality: None,
        }
    }

    /// Sets the estimated distinct-value cardinality.
    pub fn with_cardinality(mut self, card: f64) -> Self {
        self.cardinality = Some(card);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn f64_total_order_and_hash() {
        assert_eq!(F64(0.0), F64(-0.0));
        assert_eq!(hash_of(&F64(0.0)), hash_of(&F64(-0.0)));
        assert_eq!(F64(f64::NAN), F64(f64::NAN));
        assert!(F64(1.0) < F64(2.0));
        assert!(F64(-1.0) < F64(0.0));
    }

    #[test]
    fn date_roundtrip() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (2007, 3, 14),
            (2008, 8, 24),
            (2000, 2, 29),
            (1999, 12, 31),
            (2100, 1, 1),
        ] {
            let date = Date::from_ymd(y, m, d);
            assert_eq!(date.ymd(), (y, m, d), "roundtrip {y}/{m}/{d}");
        }
        assert_eq!(Date::from_ymd(1970, 1, 1).days_since_epoch(), 0);
        assert_eq!(Date::from_ymd(1970, 1, 2).days_since_epoch(), 1);
        assert_eq!(Date::from_ymd(1969, 12, 31).days_since_epoch(), -1);
    }

    #[test]
    fn date_parse_and_arith() {
        let d = Date::parse("2007/3/14").expect("parses");
        assert_eq!(d.ymd(), (2007, 3, 14));
        let later = d.plus_days(180);
        assert_eq!(later.ymd(), (2007, 9, 10));
        assert!(Date::parse("2007/13/1").is_none());
        assert!(Date::parse("not-a-date").is_none());
        assert_eq!(
            Date::parse("2008-08-24").map(|d| d.ymd()),
            Some((2008, 8, 24))
        );
    }

    #[test]
    fn value_arithmetic() {
        let d = Value::Date(Date::from_ymd(2007, 3, 14));
        let plus = d.checked_add(&Value::Int(180)).expect("date+int");
        assert_eq!(plus, Value::Date(Date::from_ymd(2007, 9, 10)));
        assert_eq!(
            Value::Int(2).checked_add(&Value::float(0.5)),
            Some(Value::float(2.5))
        );
        assert_eq!(
            Value::Date(Date::from_ymd(2007, 3, 15))
                .checked_sub(&Value::Date(Date::from_ymd(2007, 3, 14))),
            Some(Value::Int(1))
        );
        assert_eq!(Value::Int(i64::MAX).checked_add(&Value::Int(1)), None);
        assert_eq!(Value::str("x").checked_add(&Value::Int(1)), None);
    }

    #[test]
    fn value_compare_mixed() {
        assert_eq!(
            Value::Int(3).compare(&Value::float(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(3).compare(&Value::float(3.5)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::str("a").compare(&Value::Int(1)), None);
        assert!(Value::Int(3).join_eq(&Value::float(3.0)));
        assert!(!Value::str("a").join_eq(&Value::str("b")));
    }

    #[test]
    fn tuple_ops() {
        let t = Tuple::new(vec![Value::Int(1), Value::str("x")]);
        let u = Tuple::new(vec![Value::float(2.0)]);
        let c = t.concat(&u);
        assert_eq!(c.arity(), 3);
        assert_eq!(c.get(2), &Value::float(2.0));
        assert_eq!(
            c.project(&[2, 0]).values(),
            &[Value::float(2.0), Value::Int(1)]
        );
        assert_eq!(format!("{t}"), "⟨1, 'x'⟩");
    }

    #[test]
    fn domain_kind_admits() {
        assert!(DomainKind::Int.admits(&Value::Int(1)));
        assert!(!DomainKind::Int.admits(&Value::str("a")));
        assert!(DomainKind::Float.admits(&Value::Int(1)));
        assert!(DomainKind::Any.admits(&Value::str("a")));
        assert!(DomainKind::Str.admits(&Value::Null));
    }
}
