//! Service signatures, access patterns and schemas (§3.1).
//!
//! A *schema* is a set of service signatures. Each signature
//! `s^α(A1, …, An)` carries the service name, the positional abstract
//! domains, the set of feasible access patterns `α`, and the behavioural
//! classification the optimizer relies on: exact vs. search (§2.1),
//! bulk vs. chunked, and the profile parameters `ξ` (erspi), `τ` (average
//! response time), chunk size and decay.

use crate::value::{DomainId, DomainInfo, DomainKind};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Marks one argument position of an access pattern as input or output.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArgMode {
    /// The field must be filled by the caller (an `i` in the paper).
    In,
    /// The field is produced by the service (an `o` in the paper).
    Out,
}

/// An access pattern: a sequence of [`ArgMode`]s, one per argument (§3.1).
///
/// `AccessPattern::parse("iooo")` builds the pattern for a 4-ary service
/// whose first argument is input.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AccessPattern(Vec<ArgMode>);

impl AccessPattern {
    /// Builds a pattern from explicit modes.
    pub fn new(modes: Vec<ArgMode>) -> Self {
        AccessPattern(modes)
    }

    /// Parses a pattern from the paper's `i`/`o` string syntax.
    ///
    /// Returns `None` on any character other than `i`/`o` (case
    /// insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        s.chars()
            .map(|c| match c.to_ascii_lowercase() {
                'i' => Some(ArgMode::In),
                'o' => Some(ArgMode::Out),
                _ => None,
            })
            .collect::<Option<Vec<_>>>()
            .map(AccessPattern)
    }

    /// Number of argument positions.
    #[inline]
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Mode of position `i`.
    #[inline]
    pub fn mode(&self, i: usize) -> ArgMode {
        self.0[i]
    }

    /// All modes.
    #[inline]
    pub fn modes(&self) -> &[ArgMode] {
        &self.0
    }

    /// Indices of input positions.
    pub fn inputs(&self) -> impl Iterator<Item = usize> + '_ {
        self.0
            .iter()
            .enumerate()
            .filter(|(_, m)| **m == ArgMode::In)
            .map(|(i, _)| i)
    }

    /// Indices of output positions.
    pub fn outputs(&self) -> impl Iterator<Item = usize> + '_ {
        self.0
            .iter()
            .enumerate()
            .filter(|(_, m)| **m == ArgMode::Out)
            .map(|(i, _)| i)
    }

    /// Number of input positions.
    pub fn input_count(&self) -> usize {
        self.inputs().count()
    }

    /// The cogency preorder `⪰IO` of §4.1.1: `self` is *at least as cogent*
    /// as `other` when every field marked input in `other` is also input in
    /// `self`.
    ///
    /// Patterns of different arity are incomparable (returns `false`).
    pub fn at_least_as_cogent(&self, other: &AccessPattern) -> bool {
        self.arity() == other.arity() && other.inputs().all(|i| self.mode(i) == ArgMode::In)
    }

    /// Strict cogency: `self ≻IO other`.
    pub fn more_cogent(&self, other: &AccessPattern) -> bool {
        self.at_least_as_cogent(other) && !other.at_least_as_cogent(self)
    }
}

impl fmt::Display for AccessPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for m in &self.0 {
            match m {
                ArgMode::In => write!(f, "i")?,
                ArgMode::Out => write!(f, "o")?,
            }
        }
        Ok(())
    }
}

/// Classification of services by answer semantics (§2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ServiceKind {
    /// Returns a single tuple or an unranked set ("relational" behaviour).
    Exact,
    /// Returns tuples in (opaque) relevance order; normally highly
    /// proliferative, so retrieval must be halted.
    Search,
}

impl fmt::Display for ServiceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceKind::Exact => write!(f, "exact"),
            ServiceKind::Search => write!(f, "search"),
        }
    }
}

/// Result delivery mode (§2.1): all-at-once or paged.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Chunking {
    /// All results delivered by a single request.
    Bulk,
    /// Results delivered in pages of `chunk_size` tuples per *fetch*.
    Chunked {
        /// Tuples returned by each sequential fetch (the paper's `cs`).
        chunk_size: u32,
    },
}

impl Chunking {
    /// The chunk size if the service is chunked.
    pub fn chunk_size(&self) -> Option<u32> {
        match self {
            Chunking::Bulk => None,
            Chunking::Chunked { chunk_size } => Some(*chunk_size),
        }
    }

    /// True for [`Chunking::Chunked`].
    pub fn is_chunked(&self) -> bool {
        matches!(self, Chunking::Chunked { .. })
    }
}

/// Profile parameters estimated at service registration time (§5):
/// the statistics the optimizer's cost model consumes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceProfile {
    /// `ξ` — expected result size per invocation (§2.1). For chunked
    /// services the estimator uses chunk size × fetches instead, but the
    /// erspi still informs heuristic ordering.
    pub erspi: f64,
    /// `τ` — average response time per invocation/fetch, in seconds.
    pub response_time: f64,
    /// `m(n)` — monetary/abstract cost charged per invocation, used by the
    /// sum cost metric. Defaults to 1 (request-response counting).
    pub invocation_cost: f64,
    /// `d` — decay: number of tuples after which ranking is known to drop
    /// below the threshold of interest (§3.1), if known. Bounds the number
    /// of useful fetches by `⌈d / cs⌉`.
    pub decay: Option<u64>,
    /// `φ` — observed failure rate per request-response (errors,
    /// timeouts and throttling over attempts), learned by the sampling
    /// profiler at registration/re-estimation time (§5). The cost
    /// metrics inflate a flaky service's effective response time by the
    /// expected attempts per successful call, so re-planning penalizes
    /// unreliable services.
    pub failure_rate: f64,
}

impl Default for ServiceProfile {
    fn default() -> Self {
        ServiceProfile {
            erspi: 1.0,
            response_time: 1.0,
            invocation_cost: 1.0,
            decay: None,
            failure_rate: 0.0,
        }
    }
}

impl ServiceProfile {
    /// A profile with the given erspi and response time and default cost.
    pub fn new(erspi: f64, response_time: f64) -> Self {
        ServiceProfile {
            erspi,
            response_time,
            ..Default::default()
        }
    }

    /// Sets the per-invocation cost `m(n)`.
    pub fn with_cost(mut self, cost: f64) -> Self {
        self.invocation_cost = cost;
        self
    }

    /// Sets the decay bound `d`.
    pub fn with_decay(mut self, decay: u64) -> Self {
        self.decay = Some(decay);
        self
    }

    /// Sets the observed failure rate `φ` (clamped to `[0, 0.95]` so a
    /// fully dead service still yields finite costs).
    pub fn with_failure_rate(mut self, rate: f64) -> Self {
        self.failure_rate = rate.clamp(0.0, 0.95);
        self
    }

    /// Expected request-responses per *successful* call given the
    /// observed failure rate: `1 / (1 − φ)` (geometric retries).
    pub fn expected_attempts(&self) -> f64 {
        1.0 / (1.0 - self.failure_rate.clamp(0.0, 0.95))
    }

    /// Response time `τ` inflated by the expected attempts — what a
    /// resilient client actually waits per successful call.
    pub fn effective_response_time(&self) -> f64 {
        self.response_time * self.expected_attempts()
    }

    /// Whether an invocation is *proliferative* (ξ > 1) as opposed to
    /// *selective* (ξ ≤ 1) (§2.1, after \[16\]).
    pub fn is_proliferative(&self) -> bool {
        self.erspi > 1.0
    }
}

/// Identifier of a service interned in a [`Schema`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServiceId(pub u32);

/// The signature `s^α(A1, …, An)` of a service (§3.1) plus its behavioural
/// profile.
#[derive(Clone, Debug)]
pub struct ServiceSignature {
    /// Service name (`conf`, `flight`, …).
    pub name: Arc<str>,
    /// Positional abstract domains.
    pub domains: Vec<DomainId>,
    /// Positional attribute names, for display only (the model itself is
    /// positional, see §3.1 footnote 2).
    pub attr_names: Vec<Arc<str>>,
    /// Feasible access patterns; must be non-empty and all of the
    /// signature's arity.
    pub patterns: Vec<AccessPattern>,
    /// Exact or search.
    pub kind: ServiceKind,
    /// Bulk or chunked delivery.
    pub chunking: Chunking,
    /// Registered statistics.
    pub profile: ServiceProfile,
}

impl ServiceSignature {
    /// Arity `n` of the signature.
    #[inline]
    pub fn arity(&self) -> usize {
        self.domains.len()
    }

    /// The chunk size, if chunked.
    pub fn chunk_size(&self) -> Option<u32> {
        self.chunking.chunk_size()
    }

    /// Maximum useful fetch count per input tuple derived from decay
    /// (§4.3.2): after `⌈d / cs⌉` fetches no relevant data is returned.
    pub fn max_fetches_from_decay(&self) -> Option<u64> {
        match (self.profile.decay, self.chunking.chunk_size()) {
            (Some(d), Some(cs)) if cs > 0 => Some(d.div_ceil(cs as u64).max(1)),
            _ => None,
        }
    }
}

/// Errors raised while assembling a [`Schema`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchemaError {
    /// Two services registered under the same name.
    DuplicateService(String),
    /// A signature with no access pattern.
    NoAccessPattern(String),
    /// An access pattern whose arity differs from the signature's.
    PatternArityMismatch {
        /// Offending service.
        service: String,
        /// Expected arity (number of domains).
        expected: usize,
        /// Pattern arity found.
        found: usize,
    },
    /// Attribute-name list length differs from the domain list length.
    AttrArityMismatch(String),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateService(s) => write!(f, "duplicate service `{s}`"),
            SchemaError::NoAccessPattern(s) => {
                write!(f, "service `{s}` has no access pattern")
            }
            SchemaError::PatternArityMismatch {
                service,
                expected,
                found,
            } => write!(
                f,
                "service `{service}`: access pattern arity {found} does not match signature arity {expected}"
            ),
            SchemaError::AttrArityMismatch(s) => write!(
                f,
                "service `{s}`: attribute name count differs from domain count"
            ),
        }
    }
}

impl std::error::Error for SchemaError {}

/// A set of service signatures plus the interned abstract domains.
#[derive(Clone, Debug, Default)]
pub struct Schema {
    services: Vec<ServiceSignature>,
    by_name: HashMap<Arc<str>, ServiceId>,
    domains: Vec<DomainInfo>,
    domains_by_name: HashMap<Arc<str>, DomainId>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Interns a domain by name, creating it with [`DomainKind::Any`] if
    /// new, and returns its id.
    pub fn domain(&mut self, name: impl AsRef<str>) -> DomainId {
        self.domain_with(name, DomainKind::Any, None)
    }

    /// Interns a domain with an explicit kind and optional cardinality.
    /// Re-registering an existing name updates kind/cardinality when they
    /// were previously unset.
    pub fn domain_with(
        &mut self,
        name: impl AsRef<str>,
        kind: DomainKind,
        cardinality: Option<f64>,
    ) -> DomainId {
        let name: Arc<str> = Arc::from(name.as_ref());
        if let Some(&id) = self.domains_by_name.get(&name) {
            let info = &mut self.domains[id.0 as usize];
            if info.kind == DomainKind::Any {
                info.kind = kind;
            }
            if info.cardinality.is_none() {
                info.cardinality = cardinality;
            }
            return id;
        }
        let id = DomainId(self.domains.len() as u32);
        self.domains.push(DomainInfo {
            name: name.clone(),
            kind,
            cardinality,
        });
        self.domains_by_name.insert(name, id);
        id
    }

    /// Registers a service signature, validating pattern arities.
    pub fn add_service(&mut self, sig: ServiceSignature) -> Result<ServiceId, SchemaError> {
        if self.by_name.contains_key(&sig.name) {
            return Err(SchemaError::DuplicateService(sig.name.to_string()));
        }
        if sig.patterns.is_empty() {
            return Err(SchemaError::NoAccessPattern(sig.name.to_string()));
        }
        for p in &sig.patterns {
            if p.arity() != sig.arity() {
                return Err(SchemaError::PatternArityMismatch {
                    service: sig.name.to_string(),
                    expected: sig.arity(),
                    found: p.arity(),
                });
            }
        }
        if sig.attr_names.len() != sig.domains.len() {
            return Err(SchemaError::AttrArityMismatch(sig.name.to_string()));
        }
        let id = ServiceId(self.services.len() as u32);
        self.by_name.insert(sig.name.clone(), id);
        self.services.push(sig);
        Ok(id)
    }

    /// Looks a service up by name.
    pub fn service_by_name(&self, name: &str) -> Option<ServiceId> {
        self.by_name.get(name).copied()
    }

    /// The signature of `id`.
    #[inline]
    pub fn service(&self, id: ServiceId) -> &ServiceSignature {
        &self.services[id.0 as usize]
    }

    /// Mutable signature access (used by the profiler to install measured
    /// statistics).
    pub fn service_mut(&mut self, id: ServiceId) -> &mut ServiceSignature {
        &mut self.services[id.0 as usize]
    }

    /// All registered services with their ids.
    pub fn services(&self) -> impl Iterator<Item = (ServiceId, &ServiceSignature)> {
        self.services
            .iter()
            .enumerate()
            .map(|(i, s)| (ServiceId(i as u32), s))
    }

    /// Number of registered services.
    pub fn service_count(&self) -> usize {
        self.services.len()
    }

    /// Domain metadata.
    #[inline]
    pub fn domain_info(&self, id: DomainId) -> &DomainInfo {
        &self.domains[id.0 as usize]
    }

    /// Looks a domain up by name.
    pub fn domain_by_name(&self, name: &str) -> Option<DomainId> {
        self.domains_by_name.get(name).copied()
    }

    /// Overwrites the distinct-value cardinality estimate of a domain
    /// (used by the profiler after sampling, §5 "service registration").
    pub fn set_domain_cardinality(&mut self, id: DomainId, cardinality: f64) {
        self.domains[id.0 as usize].cardinality = Some(cardinality);
    }

    /// All interned domains.
    pub fn domains(&self) -> impl Iterator<Item = (DomainId, &DomainInfo)> {
        self.domains
            .iter()
            .enumerate()
            .map(|(i, d)| (DomainId(i as u32), d))
    }
}

/// Fluent builder for [`ServiceSignature`], the main entry point for
/// registering services. See the crate examples.
pub struct ServiceBuilder<'a> {
    schema: &'a mut Schema,
    name: String,
    domains: Vec<DomainId>,
    attr_names: Vec<Arc<str>>,
    patterns: Vec<AccessPattern>,
    kind: ServiceKind,
    chunking: Chunking,
    profile: ServiceProfile,
}

impl<'a> ServiceBuilder<'a> {
    /// Starts building a service with the given name into `schema`.
    pub fn new(schema: &'a mut Schema, name: impl AsRef<str>) -> Self {
        ServiceBuilder {
            schema,
            name: name.as_ref().to_string(),
            domains: Vec::new(),
            attr_names: Vec::new(),
            patterns: Vec::new(),
            kind: ServiceKind::Exact,
            chunking: Chunking::Bulk,
            profile: ServiceProfile::default(),
        }
    }

    /// Adds an attribute with the given display name and domain name
    /// (domain interned with kind [`DomainKind::Any`] when new).
    pub fn attr(mut self, attr: &str, domain: &str) -> Self {
        let d = self.schema.domain(domain);
        self.domains.push(d);
        self.attr_names.push(Arc::from(attr));
        self
    }

    /// Adds an attribute with an explicitly kinded domain.
    pub fn attr_kinded(mut self, attr: &str, domain: &str, kind: DomainKind) -> Self {
        let d = self.schema.domain_with(domain, kind, None);
        self.domains.push(d);
        self.attr_names.push(Arc::from(attr));
        self
    }

    /// Adds a feasible access pattern from `i`/`o` syntax.
    ///
    /// # Panics
    /// Panics if the string contains other characters; pattern arity is
    /// validated on [`ServiceBuilder::register`].
    pub fn pattern(mut self, p: &str) -> Self {
        self.patterns
            .push(AccessPattern::parse(p).unwrap_or_else(|| panic!("invalid pattern `{p}`")));
        self
    }

    /// Marks the service as a search service (ranked results).
    pub fn search(mut self) -> Self {
        self.kind = ServiceKind::Search;
        self
    }

    /// Marks the service as exact (the default).
    pub fn exact(mut self) -> Self {
        self.kind = ServiceKind::Exact;
        self
    }

    /// Marks the service as chunked with the given page size.
    pub fn chunked(mut self, chunk_size: u32) -> Self {
        self.chunking = Chunking::Chunked { chunk_size };
        self
    }

    /// Installs profile statistics.
    pub fn profile(mut self, profile: ServiceProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Finalises and registers the signature.
    pub fn register(self) -> Result<ServiceId, SchemaError> {
        self.schema.add_service(ServiceSignature {
            name: Arc::from(self.name.as_str()),
            domains: self.domains,
            attr_names: self.attr_names,
            patterns: self.patterns,
            kind: self.kind,
            chunking: self.chunking,
            profile: self.profile,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> Schema {
        let mut s = Schema::new();
        ServiceBuilder::new(&mut s, "conf")
            .attr("Topic", "Topic")
            .attr("Name", "ConfName")
            .attr("Start", "Date")
            .attr("End", "Date")
            .attr("City", "City")
            .pattern("ioooo")
            .pattern("ooooi")
            .profile(ServiceProfile::new(20.0, 1.2))
            .register()
            .expect("conf registers");
        ServiceBuilder::new(&mut s, "flight")
            .attr("From", "City")
            .attr("To", "City")
            .attr("OutDate", "Date")
            .attr("RetDate", "Date")
            .attr("OutTime", "Time")
            .attr("RetTime", "Time")
            .attr("Price", "Price")
            .pattern("iiiioOO".to_lowercase().as_str())
            .search()
            .chunked(25)
            .profile(ServiceProfile::new(25.0, 9.7))
            .register()
            .expect("flight registers");
        s
    }

    #[test]
    fn pattern_parse_and_display() {
        let p = AccessPattern::parse("ioio").expect("parses");
        assert_eq!(p.arity(), 4);
        assert_eq!(p.inputs().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(p.outputs().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(format!("{p}"), "ioio");
        assert!(AccessPattern::parse("iox").is_none());
    }

    #[test]
    fn cogency_order() {
        let all_in = AccessPattern::parse("iii").expect("parses");
        let some = AccessPattern::parse("ioi").expect("parses");
        let none = AccessPattern::parse("ooo").expect("parses");
        assert!(all_in.at_least_as_cogent(&some));
        assert!(all_in.more_cogent(&some));
        assert!(some.more_cogent(&none));
        assert!(!none.at_least_as_cogent(&some));
        assert!(all_in.at_least_as_cogent(&all_in));
        assert!(!all_in.more_cogent(&all_in));
        // incomparable pair
        let a = AccessPattern::parse("io").expect("parses");
        let b = AccessPattern::parse("oi").expect("parses");
        assert!(!a.at_least_as_cogent(&b) && !b.at_least_as_cogent(&a));
    }

    #[test]
    fn schema_registration_and_lookup() {
        let s = sample_schema();
        let conf = s.service_by_name("conf").expect("conf exists");
        assert_eq!(s.service(conf).arity(), 5);
        assert_eq!(s.service(conf).patterns.len(), 2);
        assert_eq!(s.service(conf).kind, ServiceKind::Exact);
        let flight = s.service_by_name("flight").expect("flight exists");
        assert_eq!(s.service(flight).chunk_size(), Some(25));
        assert_eq!(s.service(flight).kind, ServiceKind::Search);
        assert!(s.service_by_name("nope").is_none());
        // City domain shared across services
        let city = s.domain_by_name("City").expect("city domain");
        assert_eq!(s.service(conf).domains[4], city);
        assert_eq!(s.service(flight).domains[0], city);
    }

    #[test]
    fn schema_validation_errors() {
        let mut s = Schema::new();
        let sig = ServiceSignature {
            name: Arc::from("bad"),
            domains: vec![],
            attr_names: vec![],
            patterns: vec![],
            kind: ServiceKind::Exact,
            chunking: Chunking::Bulk,
            profile: ServiceProfile::default(),
        };
        assert_eq!(
            s.add_service(sig),
            Err(SchemaError::NoAccessPattern("bad".into()))
        );
        let d = s.domain("D");
        let sig = ServiceSignature {
            name: Arc::from("bad2"),
            domains: vec![d],
            attr_names: vec![Arc::from("A")],
            patterns: vec![AccessPattern::parse("io").expect("parses")],
            kind: ServiceKind::Exact,
            chunking: Chunking::Bulk,
            profile: ServiceProfile::default(),
        };
        assert!(matches!(
            s.add_service(sig),
            Err(SchemaError::PatternArityMismatch { .. })
        ));
    }

    #[test]
    fn decay_bounds_fetches() {
        let mut sig = ServiceSignature {
            name: Arc::from("s"),
            domains: vec![],
            attr_names: vec![],
            patterns: vec![AccessPattern::new(vec![])],
            kind: ServiceKind::Search,
            chunking: Chunking::Chunked { chunk_size: 5 },
            profile: ServiceProfile::new(1.0, 1.0).with_decay(12),
        };
        assert_eq!(sig.max_fetches_from_decay(), Some(3));
        sig.profile.decay = Some(3);
        assert_eq!(sig.max_fetches_from_decay(), Some(1));
        sig.profile.decay = None;
        assert_eq!(sig.max_fetches_from_decay(), None);
        sig.chunking = Chunking::Bulk;
        sig.profile.decay = Some(3);
        assert_eq!(sig.max_fetches_from_decay(), None);
    }

    #[test]
    fn failure_rate_inflates_effective_time() {
        let healthy = ServiceProfile::new(1.0, 4.0);
        assert!((healthy.expected_attempts() - 1.0).abs() < 1e-12);
        assert!((healthy.effective_response_time() - 4.0).abs() < 1e-12);
        let flaky = ServiceProfile::new(1.0, 4.0).with_failure_rate(0.5);
        assert!((flaky.expected_attempts() - 2.0).abs() < 1e-12);
        assert!((flaky.effective_response_time() - 8.0).abs() < 1e-12);
        // dead services clamp to finite costs
        let dead = ServiceProfile::new(1.0, 4.0).with_failure_rate(1.0);
        assert!(dead.expected_attempts().is_finite());
        assert!((dead.failure_rate - 0.95).abs() < 1e-12);
    }

    #[test]
    fn proliferative_classification() {
        assert!(ServiceProfile::new(20.0, 1.0).is_proliferative());
        assert!(!ServiceProfile::new(0.05, 1.0).is_proliferative());
        assert!(!ServiceProfile::new(1.0, 1.0).is_proliferative());
    }
}
