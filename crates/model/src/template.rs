//! Query templates (§2.2).
//!
//! "Constant values appearing in a query are either presented by the
//! user through a form or set within a query template; optimization is
//! performed for each query template" — and a user may "change the
//! choice of keywords and resubmit a new query with the same template".
//!
//! A [`QueryTemplate`] is query text with `$name` placeholders in
//! constant positions:
//!
//! ```text
//! q(Conf, City) :- conf($topic, Conf, S, E, City),
//!                  weather(City, T, S), T >= $min_temp.
//! ```
//!
//! Instantiating substitutes properly quoted literals and parses the
//! result; the same template can be instantiated many times while the
//! optimizer's plan (chosen per template) is reused.

use crate::parser::{parse_query, ParseError};
use crate::query::ConjunctiveQuery;
use crate::schema::Schema;
use crate::value::Value;
use std::collections::HashSet;
use std::fmt;

/// A parsed-on-demand query template with `$name` placeholders.
#[derive(Clone, Debug)]
pub struct QueryTemplate {
    text: String,
    placeholders: Vec<String>,
}

/// Errors raised while instantiating a template.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TemplateError {
    /// A placeholder had no binding.
    Missing(String),
    /// A binding does not correspond to any placeholder.
    Unknown(String),
    /// The instantiated text failed to parse.
    Parse(ParseError),
    /// A placeholder name is empty or not an identifier.
    BadPlaceholder(String),
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateError::Missing(n) => write!(f, "no binding for placeholder `${n}`"),
            TemplateError::Unknown(n) => write!(f, "no placeholder `${n}` in the template"),
            TemplateError::Parse(e) => write!(f, "instantiated template: {e}"),
            TemplateError::BadPlaceholder(n) => {
                write!(f, "bad placeholder name `{n}` (identifiers only)")
            }
        }
    }
}

impl std::error::Error for TemplateError {}

impl From<ParseError> for TemplateError {
    fn from(e: ParseError) -> Self {
        TemplateError::Parse(e)
    }
}

impl QueryTemplate {
    /// Creates a template from text, scanning for `$name` placeholders.
    pub fn new(text: impl Into<String>) -> Result<Self, TemplateError> {
        let text = text.into();
        let mut placeholders = Vec::new();
        let bytes = text.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b'$' {
                let start = i + 1;
                let mut end = start;
                while end < bytes.len()
                    && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                if end == start {
                    return Err(TemplateError::BadPlaceholder("$".into()));
                }
                let name = text[start..end].to_string();
                if !placeholders.contains(&name) {
                    placeholders.push(name);
                }
                i = end;
            } else {
                i += 1;
            }
        }
        Ok(QueryTemplate { text, placeholders })
    }

    /// The placeholder names, in first-occurrence order.
    pub fn placeholders(&self) -> &[String] {
        &self.placeholders
    }

    /// The raw template text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Instantiates the template with the given bindings and parses the
    /// resulting query against `schema`.
    pub fn instantiate(
        &self,
        schema: &Schema,
        bindings: &[(&str, Value)],
    ) -> Result<ConjunctiveQuery, TemplateError> {
        let given: HashSet<&str> = bindings.iter().map(|(n, _)| *n).collect();
        for p in &self.placeholders {
            if !given.contains(p.as_str()) {
                return Err(TemplateError::Missing(p.clone()));
            }
        }
        for (n, _) in bindings {
            if !self.placeholders.iter().any(|p| p == n) {
                return Err(TemplateError::Unknown((*n).to_string()));
            }
        }
        // substitute longest names first so `$ab` never clobbers `$abc`
        let mut ordered: Vec<&(&str, Value)> = bindings.iter().collect();
        ordered.sort_by_key(|(n, _)| std::cmp::Reverse(n.len()));
        let mut text = self.text.clone();
        for (name, value) in ordered {
            let needle = format!("${name}");
            text = text.replace(&needle, &literal(value));
        }
        Ok(parse_query(&text, schema)?)
    }
}

/// Formats a value as query-literal text.
fn literal(v: &Value) -> String {
    match v {
        // the parser re-reads quoted strings (and date-shaped ones as
        // dates), so `Display` — which quotes Str and Date — is exactly
        // the literal syntax
        Value::Str(s) => format!("'{s}'"),
        Value::Date(d) => format!("'{d}'"),
        Value::Int(i) => i.to_string(),
        Value::Float(x) => {
            let f = x.get();
            if (f - f.round()).abs() < f64::EPSILON {
                format!("{f:.1}") // keep the dot so it re-parses as float
            } else {
                format!("{f}")
            }
        }
        Value::Bool(b) => b.to_string(),
        Value::Null => "''".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::running_example_schema;
    use crate::value::Date;

    const TEXT: &str = "q(Conf, City) :- conf($topic, Conf, S, E, City), \
                        weather(City, T, S), T >= $min_temp, S >= $from.";

    #[test]
    fn scans_placeholders() {
        let t = QueryTemplate::new(TEXT).expect("builds");
        assert_eq!(t.placeholders(), &["topic", "min_temp", "from"]);
        assert!(QueryTemplate::new("q(X) :- s($, X).").is_err());
    }

    #[test]
    fn instantiates_with_typed_literals() {
        let schema = running_example_schema();
        let t = QueryTemplate::new(TEXT).expect("builds");
        let q = t
            .instantiate(
                &schema,
                &[
                    ("topic", Value::str("DB")),
                    ("min_temp", Value::Int(28)),
                    ("from", Value::Date(Date::from_ymd(2007, 3, 14))),
                ],
            )
            .expect("instantiates");
        assert_eq!(q.atoms.len(), 2);
        assert_eq!(q.predicates.len(), 2);
        let text = format!("{}", q.display(&schema));
        assert!(text.contains("'DB'"), "{text}");
        assert!(text.contains("28"), "{text}");
        assert!(text.contains("2007/03/14"), "{text}");
    }

    #[test]
    fn missing_and_unknown_bindings() {
        let schema = running_example_schema();
        let t = QueryTemplate::new(TEXT).expect("builds");
        match t.instantiate(&schema, &[("topic", Value::str("DB"))]) {
            Err(TemplateError::Missing(name)) => assert_eq!(name, "min_temp"),
            other => panic!("expected Missing, got {other:?}"),
        }
        let all = [
            ("topic", Value::str("DB")),
            ("min_temp", Value::Int(28)),
            ("from", Value::Date(Date::from_ymd(2007, 3, 14))),
            ("ghost", Value::Int(1)),
        ];
        match t.instantiate(&schema, &all) {
            Err(TemplateError::Unknown(name)) => assert_eq!(name, "ghost"),
            other => panic!("expected Unknown, got {other:?}"),
        }
    }

    #[test]
    fn prefix_placeholder_names_do_not_clobber() {
        let mut schema = Schema::new();
        crate::schema::ServiceBuilder::new(&mut schema, "s")
            .attr_kinded("A", "DA", crate::value::DomainKind::Str)
            .attr_kinded("B", "DB2", crate::value::DomainKind::Str)
            .pattern("io")
            .register()
            .expect("registers");
        let t = QueryTemplate::new("q(B) :- s($a, B), B != $ab.").expect("builds");
        let q = t
            .instantiate(
                &schema,
                &[("a", Value::str("one")), ("ab", Value::str("two"))],
            )
            .expect("instantiates");
        let text = format!("{}", q.display(&schema));
        assert!(text.contains("'one'"), "{text}");
        assert!(text.contains("'two'"), "{text}");
    }

    #[test]
    fn float_literals_reparse_as_floats() {
        assert_eq!(literal(&Value::float(2000.0)), "2000.0");
        assert_eq!(literal(&Value::float(0.5)), "0.5");
        assert_eq!(literal(&Value::Int(7)), "7");
    }
}
