//! Access-pattern analysis (§3.2, Def. 3.1).
//!
//! Given a conjunctive query and one feasible access pattern chosen per
//! atom, this module decides *callability* and *executability*, enumerates
//! all *permissible* pattern sequences, and derives the precedence
//! structure that phase 2 of the optimizer must respect.

use crate::query::{ConjunctiveQuery, Term, VarId};
use crate::schema::{ArgMode, Schema};
use std::collections::HashSet;
use std::fmt;

/// One chosen feasible access pattern per query atom: `choice[i]` indexes
/// into `schema.service(query.atoms[i].service).patterns`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ApChoice(pub Vec<usize>);

impl ApChoice {
    /// The pattern index chosen for atom `i`.
    #[inline]
    pub fn pattern_of(&self, atom: usize) -> usize {
        self.0[atom]
    }

    /// Number of atoms covered.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when there are no atoms.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for ApChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, p) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "⟩")
    }
}

/// Variables at input positions of atom `atom` under `choice`.
pub fn input_vars(
    query: &ConjunctiveQuery,
    schema: &Schema,
    choice: &ApChoice,
    atom: usize,
) -> Vec<VarId> {
    let a = &query.atoms[atom];
    let pat = &schema.service(a.service).patterns[choice.pattern_of(atom)];
    let mut out = Vec::new();
    for i in pat.inputs() {
        if let Term::Var(v) = &a.terms[i] {
            if !out.contains(v) {
                out.push(*v);
            }
        }
    }
    out
}

/// Variables at output positions of atom `atom` under `choice`.
pub fn output_vars(
    query: &ConjunctiveQuery,
    schema: &Schema,
    choice: &ApChoice,
    atom: usize,
) -> Vec<VarId> {
    let a = &query.atoms[atom];
    let pat = &schema.service(a.service).patterns[choice.pattern_of(atom)];
    let mut out = Vec::new();
    for i in pat.outputs() {
        if let Term::Var(v) = &a.terms[i] {
            if !out.contains(v) {
                out.push(*v);
            }
        }
    }
    out
}

/// True when every input field of `atom` is a constant or a variable in
/// `bound` — i.e. the atom is *callable after* the atoms that bound those
/// variables (Def. 3.1).
pub fn callable_with(
    query: &ConjunctiveQuery,
    schema: &Schema,
    choice: &ApChoice,
    atom: usize,
    bound: &HashSet<VarId>,
) -> bool {
    let a = &query.atoms[atom];
    let pat = &schema.service(a.service).patterns[choice.pattern_of(atom)];
    a.terms.iter().enumerate().all(|(i, t)| match pat.mode(i) {
        ArgMode::In => match t {
            Term::Const(_) => true,
            Term::Var(v) => bound.contains(v),
        },
        ArgMode::Out => true,
    })
}

/// The set of atoms callable after the atoms in `placed` — the paper's
/// `callable_Q(N)` (§3.3). Variables bound are the outputs of placed atoms.
pub fn callable_after(
    query: &ConjunctiveQuery,
    schema: &Schema,
    choice: &ApChoice,
    placed: &HashSet<usize>,
) -> Vec<usize> {
    let mut bound: HashSet<VarId> = HashSet::new();
    for &p in placed {
        bound.extend(output_vars(query, schema, choice, p));
    }
    (0..query.atoms.len())
        .filter(|i| !placed.contains(i))
        .filter(|&i| callable_with(query, schema, choice, i, &bound))
        .collect()
}

/// Whether the query is *executable* with respect to `choice`
/// (Def. 3.1): a total schedule exists in which every atom is callable.
///
/// Computed as a fixpoint: repeatedly add callable atoms, binding their
/// output variables, until no progress; executable iff all atoms become
/// callable. Runs in `O(atoms² · arity)`.
pub fn executable(query: &ConjunctiveQuery, schema: &Schema, choice: &ApChoice) -> bool {
    debug_assert_eq!(choice.len(), query.atoms.len());
    let n = query.atoms.len();
    let mut placed: HashSet<usize> = HashSet::with_capacity(n);
    let mut bound: HashSet<VarId> = HashSet::new();
    loop {
        let mut progress = false;
        for i in 0..n {
            if !placed.contains(&i) && callable_with(query, schema, choice, i, &bound) {
                placed.insert(i);
                bound.extend(output_vars(query, schema, choice, i));
                progress = true;
            }
        }
        if placed.len() == n {
            return true;
        }
        if !progress {
            return false;
        }
    }
}

/// Enumerates all *permissible* access-pattern sequences (§3.2): one
/// feasible pattern per atom such that the query is executable.
///
/// The raw space is `∏ mᵢ` over the atoms' feasible-pattern counts;
/// non-executable sequences are filtered out.
pub fn permissible_sequences(query: &ConjunctiveQuery, schema: &Schema) -> Vec<ApChoice> {
    let counts: Vec<usize> = query
        .atoms
        .iter()
        .map(|a| schema.service(a.service).patterns.len())
        .collect();
    let mut out = Vec::new();
    let mut current = vec![0usize; counts.len()];
    enumerate_product(&counts, 0, &mut current, &mut |c| {
        let choice = ApChoice(c.to_vec());
        if executable(query, schema, &choice) {
            out.push(choice);
        }
    });
    out
}

fn enumerate_product(
    counts: &[usize],
    idx: usize,
    current: &mut [usize],
    visit: &mut impl FnMut(&[usize]),
) {
    if idx == counts.len() {
        visit(current);
        return;
    }
    for v in 0..counts[idx] {
        current[idx] = v;
        enumerate_product(counts, idx + 1, current, visit);
    }
}

/// Linear-time *existence* check for a permissible sequence, after Yang,
/// Kifer & Chaudhri \[21\] (§3.2): greedily schedule any atom having *some*
/// feasible pattern whose inputs are covered by the currently bound
/// variables; since the bound set only grows, greedy choice is complete.
///
/// Returns a witnessing [`ApChoice`] when one exists. Note the witness may
/// mix patterns more liberally than [`permissible_sequences`]'s first
/// entry; only existence is guaranteed minimal-time.
#[allow(clippy::needless_range_loop)] // `i` also indexes `chosen`
pub fn find_permissible(query: &ConjunctiveQuery, schema: &Schema) -> Option<ApChoice> {
    let n = query.atoms.len();
    let mut chosen: Vec<Option<usize>> = vec![None; n];
    let mut bound: HashSet<VarId> = HashSet::new();
    let mut remaining = n;
    loop {
        let mut progress = false;
        for i in 0..n {
            if chosen[i].is_some() {
                continue;
            }
            let sig = schema.service(query.atoms[i].service);
            let found = (0..sig.patterns.len()).find(|&p| {
                let probe = ApChoiceProbe {
                    pattern: p,
                    atom: i,
                };
                probe.callable(query, schema, &bound)
            });
            if let Some(p) = found {
                chosen[i] = Some(p);
                // bind every variable of the atom (inputs were bound already)
                bound.extend(query.atoms[i].vars());
                remaining -= 1;
                progress = true;
            }
        }
        if remaining == 0 {
            return Some(ApChoice(
                chosen.into_iter().map(|c| c.expect("all chosen")).collect(),
            ));
        }
        if !progress {
            return None;
        }
    }
}

/// Helper for [`find_permissible`] checking a single (atom, pattern) pair.
struct ApChoiceProbe {
    pattern: usize,
    atom: usize,
}

impl ApChoiceProbe {
    fn callable(&self, query: &ConjunctiveQuery, schema: &Schema, bound: &HashSet<VarId>) -> bool {
        let a = &query.atoms[self.atom];
        let pat = &schema.service(a.service).patterns[self.pattern];
        a.terms.iter().enumerate().all(|(i, t)| match pat.mode(i) {
            ArgMode::In => match t {
                Term::Const(_) => true,
                Term::Var(v) => bound.contains(v),
            },
            ArgMode::Out => true,
        })
    }
}

/// For each atom and each of its input variables, the candidate *supplier*
/// atoms (those with the variable in an output position under `choice`).
///
/// Used by phase 2: a topology is admissible iff every (atom, input var)
/// pair has a supplier among the atom's predecessors (or the variable is
/// bound by a constant elsewhere — constants appear inline in input
/// positions, so they never reach this map).
#[derive(Clone, Debug)]
pub struct SupplierMap {
    /// `per_atom[i]` lists, for each input variable of atom `i`, the
    /// variable and its candidate supplier atoms.
    pub per_atom: Vec<Vec<(VarId, Vec<usize>)>>,
}

impl SupplierMap {
    /// Builds the supplier map for a pattern choice.
    pub fn build(query: &ConjunctiveQuery, schema: &Schema, choice: &ApChoice) -> Self {
        let n = query.atoms.len();
        let outputs: Vec<Vec<VarId>> = (0..n)
            .map(|i| output_vars(query, schema, choice, i))
            .collect();
        let per_atom = (0..n)
            .map(|i| {
                input_vars(query, schema, choice, i)
                    .into_iter()
                    .map(|v| {
                        let suppliers = (0..n)
                            .filter(|&j| j != i && outputs[j].contains(&v))
                            .collect();
                        (v, suppliers)
                    })
                    .collect()
            })
            .collect();
        SupplierMap { per_atom }
    }

    /// Hard precedence pairs `(a, b)` — `a ≺ b` in the paper's notation
    /// (§3.3) — arising when `b` has an input variable with exactly one
    /// candidate supplier `a`.
    pub fn required_precedences(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (b, inputs) in self.per_atom.iter().enumerate() {
            for (_, suppliers) in inputs {
                if suppliers.len() == 1 {
                    let a = suppliers[0];
                    if !out.contains(&(a, b)) {
                        out.push((a, b));
                    }
                }
            }
        }
        out
    }

    /// True when atom `b`'s inputs are all covered by suppliers inside
    /// `preds` (used to admit a topology).
    pub fn covered_by(&self, b: usize, preds: &HashSet<usize>) -> bool {
        self.per_atom[b]
            .iter()
            .all(|(_, suppliers)| suppliers.iter().any(|s| preds.contains(s)))
    }

    /// Atoms with no input variables at all (directly callable, §3.3).
    pub fn directly_callable(&self) -> Vec<usize> {
        self.per_atom
            .iter()
            .enumerate()
            .filter(|(_, ins)| ins.is_empty())
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Term;
    use crate::schema::{Schema, ServiceBuilder, ServiceProfile};
    use crate::value::Value;

    /// Builds the running-example schema of Fig. 2 with the paper's access
    /// patterns: conf{ioooo, ooooi}, weather{ioi}, flight{iiiiooo},
    /// hotel{oiiiio, oooooo}.
    pub(crate) fn running_example_schema() -> Schema {
        let mut s = Schema::new();
        ServiceBuilder::new(&mut s, "conf")
            .attr("Topic", "Topic")
            .attr("Name", "ConfName")
            .attr("Start", "Date")
            .attr("End", "Date")
            .attr("City", "City")
            .pattern("ioooo")
            .pattern("ooooi")
            .profile(ServiceProfile::new(20.0, 1.2))
            .register()
            .expect("conf registers");
        ServiceBuilder::new(&mut s, "weather")
            .attr("City", "City")
            .attr("Temperature", "Temp")
            .attr("Date", "Date")
            .pattern("ioi")
            .profile(ServiceProfile::new(0.05, 1.5))
            .register()
            .expect("weather registers");
        ServiceBuilder::new(&mut s, "flight")
            .attr("From", "City")
            .attr("To", "City")
            .attr("OutDate", "Date")
            .attr("RetDate", "Date")
            .attr("OutTime", "Time")
            .attr("RetTime", "Time")
            .attr("Price", "Price")
            .pattern("iiiiooo")
            .search()
            .chunked(25)
            .profile(ServiceProfile::new(25.0, 9.7))
            .register()
            .expect("flight registers");
        ServiceBuilder::new(&mut s, "hotel")
            .attr("Name", "HotelName")
            .attr("City", "City")
            .attr("Category", "Category")
            .attr("CheckInDate", "Date")
            .attr("CheckOutDate", "Date")
            .attr("Price", "Price")
            .pattern("oiiiio")
            .pattern("oooooo")
            .search()
            .chunked(5)
            .profile(ServiceProfile::new(5.0, 4.9))
            .register()
            .expect("hotel registers");
        s
    }

    /// Builds the running-example query of Fig. 3 with atom order
    /// flight, hotel, conf, weather (as in the paper's listing).
    pub(crate) fn running_example_query(s: &Schema) -> ConjunctiveQuery {
        crate::parser::parse_query(
            "q(Conf, City, HPrice, FPrice, Start, StartTime, End, EndTime, Hotel) :- \
             flight('Milano', City, Start, End, StartTime, EndTime, FPrice), \
             hotel(Hotel, City, 'luxury', Start, End, HPrice), \
             conf('DB', Conf, Start, End, City), \
             weather(City, Temperature, Start), \
             Start >= '2007/3/14', End <= '2007/3/14' + 180, \
             Temperature >= 28, FPrice + HPrice < 2000.",
            s,
        )
        .expect("running example parses")
    }

    #[test]
    fn example_41_permissible_sequences() {
        // Example 4.1: atoms ⟨flight, hotel, conf, weather⟩; 4 raw choices
        // (conf×2 · hotel×2); α3 = (conf2, hotel1) is not permissible.
        let s = running_example_schema();
        let q = running_example_query(&s);
        let perms = permissible_sequences(&q, &s);
        assert_eq!(perms.len(), 3, "α1, α2, α4 are permissible");
        // atom order: flight=0, hotel=1, conf=2, weather=3
        let a1 = ApChoice(vec![0, 0, 0, 0]); // hotel1, conf1
        let a2 = ApChoice(vec![0, 1, 0, 0]); // hotel2, conf1
        let a3 = ApChoice(vec![0, 0, 1, 0]); // hotel1, conf2 — impermissible
        let a4 = ApChoice(vec![0, 1, 1, 0]); // hotel2, conf2
        assert!(perms.contains(&a1));
        assert!(perms.contains(&a2));
        assert!(!perms.contains(&a3));
        assert!(perms.contains(&a4));
        assert!(!executable(&q, &s, &a3));
    }

    #[test]
    fn find_permissible_agrees_with_enumeration() {
        let s = running_example_schema();
        let q = running_example_query(&s);
        let witness = find_permissible(&q, &s).expect("a permissible choice exists");
        assert!(executable(&q, &s, &witness));
    }

    #[test]
    fn impossible_query_has_no_permissible_choice() {
        let mut s = Schema::new();
        // both services need X as input, nobody outputs it
        for name in ["u", "v"] {
            ServiceBuilder::new(&mut s, name)
                .attr("X", "DX")
                .attr("Y", "DY")
                .pattern("io")
                .register()
                .expect("registers");
        }
        let u = s.service_by_name("u").expect("u");
        let v = s.service_by_name("v").expect("v");
        let mut q = ConjunctiveQuery::new("q");
        let x = q.var("X");
        let y = q.var("Y");
        let z = q.var("Z");
        q.head_var(y);
        q.atom(u, vec![Term::Var(x), Term::Var(y)]);
        q.atom(v, vec![Term::Var(x), Term::Var(z)]);
        assert!(find_permissible(&q, &s).is_none());
        assert!(permissible_sequences(&q, &s).is_empty());
    }

    #[test]
    fn constants_make_atoms_directly_callable() {
        let mut s = Schema::new();
        ServiceBuilder::new(&mut s, "svc")
            .attr("K", "DK")
            .attr("V", "DV")
            .pattern("io")
            .register()
            .expect("registers");
        let svc = s.service_by_name("svc").expect("svc");
        let mut q = ConjunctiveQuery::new("q");
        let v = q.var("V");
        q.head_var(v);
        q.atom(svc, vec![Term::Const(Value::str("key")), Term::Var(v)]);
        let choice = ApChoice(vec![0]);
        assert!(executable(&q, &s, &choice));
        let sm = SupplierMap::build(&q, &s, &choice);
        assert_eq!(sm.directly_callable(), vec![0]);
    }

    #[test]
    fn supplier_map_running_example() {
        let s = running_example_schema();
        let q = running_example_query(&s);
        // α1: atom order flight=0, hotel=1, conf=2, weather=3
        let choice = ApChoice(vec![0, 0, 0, 0]);
        let sm = SupplierMap::build(&q, &s, &choice);
        // conf (Topic const input) is directly callable
        assert_eq!(sm.directly_callable(), vec![2]);
        // flight's inputs (City, Start, End) can only be supplied by conf
        let prec = sm.required_precedences();
        assert!(prec.contains(&(2, 0)), "conf ≺ flight: {prec:?}");
        assert!(prec.contains(&(2, 1)), "conf ≺ hotel: {prec:?}");
        assert!(prec.contains(&(2, 3)), "conf ≺ weather: {prec:?}");
        // flight/hotel/weather are callable after conf alone
        let placed: HashSet<usize> = [2].into_iter().collect();
        let mut callable = callable_after(&q, &s, &choice, &placed);
        callable.sort_unstable();
        assert_eq!(callable, vec![0, 1, 3]);
    }

    #[test]
    fn callable_after_empty_set_is_directly_callable() {
        let s = running_example_schema();
        let q = running_example_query(&s);
        let choice = ApChoice(vec![0, 0, 0, 0]);
        assert_eq!(callable_after(&q, &s, &choice, &HashSet::new()), vec![2]);
        // with α4 (hotel2, conf2), hotel is directly callable
        let choice4 = ApChoice(vec![0, 1, 1, 0]);
        assert_eq!(callable_after(&q, &s, &choice4, &HashSet::new()), vec![1]);
    }

    #[test]
    fn io_vars_respect_pattern() {
        let s = running_example_schema();
        let q = running_example_query(&s);
        let choice = ApChoice(vec![0, 0, 0, 0]);
        // flight = atom 0, pattern iiiiooo: inputs From(const),To,Out,Ret
        let city = q.var_by_name("City").expect("City");
        let start = q.var_by_name("Start").expect("Start");
        let end = q.var_by_name("End").expect("End");
        let fp = q.var_by_name("FPrice").expect("FPrice");
        let ins = input_vars(&q, &s, &choice, 0);
        assert_eq!(ins, vec![city, start, end]);
        let outs = output_vars(&q, &s, &choice, 0);
        assert!(outs.contains(&fp));
        assert!(!outs.contains(&city));
    }
}
