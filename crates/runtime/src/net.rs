//! The network serving edge: a std-only TCP wire protocol over the
//! [`QueryServer`].
//!
//! # Wire protocol (`mdq/1`)
//!
//! Newline-framed text, one frame per line, UTF-8. The server greets
//! with `HELLO mdq/1`; the client then speaks:
//!
//! | client frame               | meaning                                   |
//! |----------------------------|-------------------------------------------|
//! | `TENANT <name>`            | run subsequent queries as this tenant     |
//! | `QUERY [k=<n>] <text>`     | submit query text (conjunctive syntax)    |
//! | `SUBSCRIBE [k=<n>] <text>` | register a standing query                 |
//! | `POLL <id>`                | drain the subscription's queued deltas (own/operator-managed ids only) |
//! | `REFRESH`                  | run one refresh pass (operator tenants only) |
//! | `UNSUBSCRIBE <id>`         | deregister a standing query (own/operator-managed ids only) |
//! | `PING`                     | liveness probe                            |
//! | `QUIT`                     | close the connection                      |
//!
//! and the server answers:
//!
//! | server frame                  | meaning                             |
//! |-------------------------------|-------------------------------------|
//! | `OK tenant=<id>`              | tenant handshake accepted           |
//! | `ANSWER <tuple>`              | one answer, streamed in rank order  |
//! | `DONE answers=<n> calls=<n> wall_ms=<n> partial=<bool>` | stream end |
//! | `SUBSCRIBED id=<n> epoch=<n> answers=<n>` | standing query accepted; exactly `answers` `ANSWER` frames follow |
//! | `DELTA id=<n> epoch=<n> op=<+\|-> <tuple>` | one incremental answer change (`-` rows precede `+` rows per epoch) |
//! | `SYNCED id=<n> epoch=<n> deltas=<n>` | poll response end, after `deltas` `DELTA` frames |
//! | `REFRESHED epoch=<n> refreshed=<n> changed=<n> calls=<n> deltas=<n>` | one refresh pass completed |
//! | `UNSUBSCRIBED id=<n>`         | the standing query is gone          |
//! | `ERR <reason>`                | the query (or frame) failed         |
//! | `SHED retry-after-ms=<n>`     | admission control refused the query |
//! | `DRAINING`                    | the server is shutting down         |
//! | `PONG` / `BYE`                | ping reply / close acknowledgement  |
//!
//! Standing queries are tenant-scoped end to end: `SUBSCRIBE` passes
//! the same admission gates as `QUERY` (spent-budget shed, per-query
//! call budget on the materializing evaluation, a per-tenant
//! subscription cap), `POLL`/`UNSUBSCRIBE` answer `ERR unknown
//! subscription` for any id the connection's tenant does not own
//! (ids are sequential — without the check a client could drain or
//! deregister a stranger's stream by guessing), and `REFRESH` requires
//! the tenant's [`TenantPolicy::operator`] flag. Operator tenants may
//! manage any subscription.
//!
//! Load shedding is part of the protocol, not an error path: a `SHED`
//! frame carries the server's retry-after hint and the connection stays
//! usable — a well-behaved client backs off and retries. Graceful
//! drain likewise: [`NetServer::shutdown`] stops accepting connections
//! (new ones get `DRAINING`), lets every in-flight query finish, sends
//! idle connections `DRAINING`, and only then shuts the query server
//! down.

use crate::server::{QueryServer, Rejection};
use crate::session::SessionEvent;
use crate::tenant::{TenantPolicy, DEFAULT_TENANT};
use mdq_exec::gateway::TenantId;
use mdq_obs::span::SpanKind;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked reads and the accept loop re-check the drain flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Replaces newline characters so any text fits a one-line frame.
fn escape_line(s: &str) -> String {
    s.replace('\r', "\\r").replace('\n', "\\n")
}

/// One frame from client to server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientFrame {
    /// `TENANT <name>` — run subsequent queries as this tenant
    /// (registered with an unlimited policy if unknown; an existing
    /// registration keeps its policy).
    Tenant {
        /// The tenant name.
        name: String,
    },
    /// `QUERY [k=<n>] <text>` — submit query text.
    Query {
        /// Answer target (`None` = the server's default).
        k: Option<u64>,
        /// The query text.
        text: String,
    },
    /// `SUBSCRIBE [k=<n>] <text>` — register a standing query.
    Subscribe {
        /// Answer target (`None` = the server's default).
        k: Option<u64>,
        /// The query text.
        text: String,
    },
    /// `POLL <id>` — drain a subscription's queued deltas.
    Poll {
        /// The subscription id from `SUBSCRIBED`.
        id: u64,
    },
    /// `REFRESH` — run one refresh pass now (operator tenants only —
    /// a pass re-fetches every tracked invocation for all tenants; a
    /// deployment would drive this from a timer).
    Refresh,
    /// `UNSUBSCRIBE <id>` — deregister a standing query.
    Unsubscribe {
        /// The subscription id from `SUBSCRIBED`.
        id: u64,
    },
    /// `PING` — liveness probe.
    Ping,
    /// `QUIT` — close the connection.
    Quit,
}

impl ClientFrame {
    /// Encodes the frame as one line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            ClientFrame::Tenant { name } => format!("TENANT {}", escape_line(name)),
            ClientFrame::Query { k: Some(k), text } => {
                format!("QUERY k={k} {}", escape_line(text))
            }
            ClientFrame::Query { k: None, text } => format!("QUERY {}", escape_line(text)),
            ClientFrame::Subscribe { k: Some(k), text } => {
                format!("SUBSCRIBE k={k} {}", escape_line(text))
            }
            ClientFrame::Subscribe { k: None, text } => format!("SUBSCRIBE {}", escape_line(text)),
            ClientFrame::Poll { id } => format!("POLL {id}"),
            ClientFrame::Refresh => "REFRESH".to_string(),
            ClientFrame::Unsubscribe { id } => format!("UNSUBSCRIBE {id}"),
            ClientFrame::Ping => "PING".to_string(),
            ClientFrame::Quit => "QUIT".to_string(),
        }
    }

    /// Parses one line into a frame.
    pub fn parse(line: &str) -> Result<ClientFrame, String> {
        let line = line.trim_end_matches(['\r', '\n']);
        let (verb, rest) = match line.split_once(' ') {
            Some((verb, rest)) => (verb, rest.trim_start()),
            None => (line, ""),
        };
        match verb {
            "TENANT" => {
                if rest.is_empty() {
                    return Err("TENANT requires a name".to_string());
                }
                Ok(ClientFrame::Tenant {
                    name: rest.to_string(),
                })
            }
            "QUERY" => {
                let (k, text) = parse_query_tail(verb, rest)?;
                Ok(ClientFrame::Query { k, text })
            }
            "SUBSCRIBE" => {
                let (k, text) = parse_query_tail(verb, rest)?;
                Ok(ClientFrame::Subscribe { k, text })
            }
            "POLL" => Ok(ClientFrame::Poll {
                id: parse_id(verb, rest)?,
            }),
            "REFRESH" => Ok(ClientFrame::Refresh),
            "UNSUBSCRIBE" => Ok(ClientFrame::Unsubscribe {
                id: parse_id(verb, rest)?,
            }),
            "PING" => Ok(ClientFrame::Ping),
            "QUIT" => Ok(ClientFrame::Quit),
            other => Err(format!("unknown frame {other:?}")),
        }
    }
}

/// Parses the `[k=<n>] <text>` tail shared by `QUERY` and `SUBSCRIBE`.
fn parse_query_tail(verb: &str, rest: &str) -> Result<(Option<u64>, String), String> {
    let (k, text) = match rest.strip_prefix("k=") {
        Some(tail) => {
            let (num, text) = tail.split_once(' ').unwrap_or((tail, ""));
            let k = num
                .parse::<u64>()
                .map_err(|_| format!("bad k value {num:?}"))?;
            (Some(k), text.trim_start())
        }
        None => (None, rest),
    };
    if text.is_empty() {
        return Err(format!("{verb} requires query text"));
    }
    Ok((k, text.to_string()))
}

/// Parses the `<id>` operand of `POLL` / `UNSUBSCRIBE`.
fn parse_id(verb: &str, rest: &str) -> Result<u64, String> {
    rest.trim()
        .parse::<u64>()
        .map_err(|_| format!("{verb} requires a numeric subscription id, got {rest:?}"))
}

/// One frame from server to client.
#[derive(Clone, Debug, PartialEq)]
pub enum ServerFrame {
    /// `HELLO mdq/1` — greeting, names the protocol version.
    Hello {
        /// The protocol identifier (`mdq/1`).
        proto: String,
    },
    /// `OK tenant=<id>` — tenant handshake accepted.
    Ok {
        /// The tenant id the connection now runs as.
        tenant: TenantId,
    },
    /// `ANSWER <tuple>` — one answer, in rank order.
    Answer {
        /// The rendered tuple.
        tuple: String,
    },
    /// `DONE …` — the answer stream ended normally.
    Done {
        /// Answers streamed.
        answers: u64,
        /// Request-responses the query forwarded to services.
        calls: u64,
        /// Wall-clock milliseconds from dequeue to completion.
        wall_ms: u64,
        /// Whether the answers are partial (some service degraded).
        partial: bool,
    },
    /// `SUBSCRIBED id=<n> epoch=<n> answers=<n>` — standing query
    /// accepted; exactly `answers` `ANSWER` frames follow with the
    /// initial answers.
    Subscribed {
        /// The subscription id (use with `POLL` / `UNSUBSCRIBE`).
        id: u64,
        /// The epoch the initial answers reflect.
        epoch: u64,
        /// How many `ANSWER` frames follow.
        answers: u64,
    },
    /// `DELTA id=<n> epoch=<n> op=<+|-> <tuple>` — one incremental
    /// answer change of a standing query (`-` rows of an epoch precede
    /// its `+` rows).
    Delta {
        /// The subscription the change belongs to.
        id: u64,
        /// The epoch the change brings the subscriber to.
        epoch: u64,
        /// `true` = the row appeared (`op=+`), `false` = it was
        /// retracted (`op=-`).
        added: bool,
        /// The rendered tuple.
        tuple: String,
    },
    /// `SYNCED id=<n> epoch=<n> deltas=<n>` — poll response end, after
    /// `deltas` `DELTA` frames; the subscriber is now current as of
    /// `epoch`.
    Synced {
        /// The polled subscription.
        id: u64,
        /// The epoch the subscriber is now current to.
        epoch: u64,
        /// `DELTA` frames that preceded this frame.
        deltas: u64,
    },
    /// `REFRESHED epoch=<n> refreshed=<n> changed=<n> calls=<n>
    /// deltas=<n>` — one refresh pass completed.
    Refreshed {
        /// The epoch the pass advanced the clock to.
        epoch: u64,
        /// Tracked invocations re-fetched.
        refreshed: u64,
        /// Invocations whose page sets changed.
        changed: u64,
        /// Request-response attempts the pass issued.
        calls: u64,
        /// Deltas queued to subscribers.
        deltas: u64,
    },
    /// `UNSUBSCRIBED id=<n>` — the standing query is deregistered.
    Unsubscribed {
        /// The deregistered subscription.
        id: u64,
    },
    /// `ERR <reason>` — the query (or the frame itself) failed.
    Err {
        /// Human-readable reason.
        reason: String,
    },
    /// `SHED retry-after-ms=<n>` — admission control refused the
    /// query; retry after the hint.
    Shed {
        /// The server's retry-after hint, in milliseconds.
        retry_after_ms: u64,
    },
    /// `DRAINING` — the server is shutting down and accepts no more
    /// queries on this connection.
    Draining,
    /// `PONG` — ping reply.
    Pong,
    /// `BYE` — close acknowledgement.
    Bye,
}

impl ServerFrame {
    /// Encodes the frame as one line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            ServerFrame::Hello { proto } => format!("HELLO {proto}"),
            ServerFrame::Ok { tenant } => format!("OK tenant={tenant}"),
            ServerFrame::Answer { tuple } => format!("ANSWER {}", escape_line(tuple)),
            ServerFrame::Done {
                answers,
                calls,
                wall_ms,
                partial,
            } => {
                format!("DONE answers={answers} calls={calls} wall_ms={wall_ms} partial={partial}")
            }
            ServerFrame::Subscribed { id, epoch, answers } => {
                format!("SUBSCRIBED id={id} epoch={epoch} answers={answers}")
            }
            ServerFrame::Delta {
                id,
                epoch,
                added,
                tuple,
            } => {
                let op = if *added { '+' } else { '-' };
                format!("DELTA id={id} epoch={epoch} op={op} {}", escape_line(tuple))
            }
            ServerFrame::Synced { id, epoch, deltas } => {
                format!("SYNCED id={id} epoch={epoch} deltas={deltas}")
            }
            ServerFrame::Refreshed {
                epoch,
                refreshed,
                changed,
                calls,
                deltas,
            } => format!(
                "REFRESHED epoch={epoch} refreshed={refreshed} changed={changed} calls={calls} deltas={deltas}"
            ),
            ServerFrame::Unsubscribed { id } => format!("UNSUBSCRIBED id={id}"),
            ServerFrame::Err { reason } => format!("ERR {}", escape_line(reason)),
            ServerFrame::Shed { retry_after_ms } => format!("SHED retry-after-ms={retry_after_ms}"),
            ServerFrame::Draining => "DRAINING".to_string(),
            ServerFrame::Pong => "PONG".to_string(),
            ServerFrame::Bye => "BYE".to_string(),
        }
    }

    /// Parses one line into a frame.
    pub fn parse(line: &str) -> Result<ServerFrame, String> {
        fn field<T: std::str::FromStr>(part: &str, key: &str) -> Result<T, String> {
            part.strip_prefix(key)
                .and_then(|v| v.strip_prefix('='))
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("expected {key}=<value>, got {part:?}"))
        }
        let line = line.trim_end_matches(['\r', '\n']);
        let (verb, rest) = match line.split_once(' ') {
            Some((verb, rest)) => (verb, rest),
            None => (line, ""),
        };
        match verb {
            "HELLO" => Ok(ServerFrame::Hello {
                proto: rest.to_string(),
            }),
            "OK" => Ok(ServerFrame::Ok {
                tenant: field(rest, "tenant")?,
            }),
            "ANSWER" => Ok(ServerFrame::Answer {
                tuple: rest.to_string(),
            }),
            "DONE" => {
                let mut parts = rest.split(' ');
                let mut next = || parts.next().ok_or_else(|| "short DONE frame".to_string());
                Ok(ServerFrame::Done {
                    answers: field(next()?, "answers")?,
                    calls: field(next()?, "calls")?,
                    wall_ms: field(next()?, "wall_ms")?,
                    partial: field(next()?, "partial")?,
                })
            }
            "SUBSCRIBED" => {
                let mut parts = rest.split(' ');
                let mut next = || {
                    parts
                        .next()
                        .ok_or_else(|| "short SUBSCRIBED frame".to_string())
                };
                Ok(ServerFrame::Subscribed {
                    id: field(next()?, "id")?,
                    epoch: field(next()?, "epoch")?,
                    answers: field(next()?, "answers")?,
                })
            }
            "DELTA" => {
                let mut parts = rest.splitn(4, ' ');
                let mut next = || parts.next().ok_or_else(|| "short DELTA frame".to_string());
                let id = field(next()?, "id")?;
                let epoch = field(next()?, "epoch")?;
                let added = match next()? {
                    "op=+" => true,
                    "op=-" => false,
                    other => return Err(format!("expected op=+ or op=-, got {other:?}")),
                };
                Ok(ServerFrame::Delta {
                    id,
                    epoch,
                    added,
                    tuple: next().unwrap_or("").to_string(),
                })
            }
            "SYNCED" => {
                let mut parts = rest.split(' ');
                let mut next = || parts.next().ok_or_else(|| "short SYNCED frame".to_string());
                Ok(ServerFrame::Synced {
                    id: field(next()?, "id")?,
                    epoch: field(next()?, "epoch")?,
                    deltas: field(next()?, "deltas")?,
                })
            }
            "REFRESHED" => {
                let mut parts = rest.split(' ');
                let mut next = || {
                    parts
                        .next()
                        .ok_or_else(|| "short REFRESHED frame".to_string())
                };
                Ok(ServerFrame::Refreshed {
                    epoch: field(next()?, "epoch")?,
                    refreshed: field(next()?, "refreshed")?,
                    changed: field(next()?, "changed")?,
                    calls: field(next()?, "calls")?,
                    deltas: field(next()?, "deltas")?,
                })
            }
            "UNSUBSCRIBED" => Ok(ServerFrame::Unsubscribed {
                id: field(rest, "id")?,
            }),
            "ERR" => Ok(ServerFrame::Err {
                reason: rest.to_string(),
            }),
            "SHED" => Ok(ServerFrame::Shed {
                retry_after_ms: field(rest, "retry-after-ms")?,
            }),
            "DRAINING" => Ok(ServerFrame::Draining),
            "PONG" => Ok(ServerFrame::Pong),
            "BYE" => Ok(ServerFrame::Bye),
            other => Err(format!("unknown frame {other:?}")),
        }
    }
}

/// Recovers a mutex guard from a poisoned lock (a panicked connection
/// handler must not wedge the listener).
fn recover<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

struct NetShared {
    query: Arc<QueryServer>,
    draining: AtomicBool,
    /// Connections currently open.
    open: AtomicU64,
}

/// The TCP front door: accepts connections on a listener, speaks the
/// `mdq/1` frame protocol per connection, and submits queries to the
/// wrapped [`QueryServer`] under each connection's tenant.
///
/// ```no_run
/// use mdq_runtime::net::{NetClient, NetServer};
/// use mdq_runtime::server::{QueryServer, RuntimeConfig};
/// use mdq_services::domains::news::news_world;
/// use std::sync::Arc;
///
/// let server = Arc::new(QueryServer::from_world(news_world(), RuntimeConfig::default()));
/// let net = NetServer::start(server, "127.0.0.1:0").expect("bind");
/// let mut client = NetClient::connect(net.addr()).expect("connect");
/// let outcome = client
///     .query(
///         "q(City, Venue, Price) :- events('mahler-2', City, Venue, D), \
///          lowcost('Milano', City, Price), Price <= 60.0.",
///         Some(5),
///     )
///     .expect("wire io");
/// net.shutdown();
/// ```
pub struct NetServer {
    shared: Arc<NetShared>,
    addr: SocketAddr,
    accept: Mutex<Option<JoinHandle<()>>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the accept loop over `query`.
    pub fn start(query: Arc<QueryServer>, addr: &str) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(NetShared {
            query,
            draining: AtomicBool::new(false),
            open: AtomicU64::new(0),
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || loop {
                if shared.draining.load(Ordering::Acquire) {
                    return;
                }
                match listener.accept() {
                    Ok((stream, peer)) => {
                        if shared.draining.load(Ordering::Acquire) {
                            // refuse with a drain notice, never silently
                            let mut stream = stream;
                            let _ = writeln!(stream, "{}", ServerFrame::Draining.encode());
                            let _ = writeln!(stream, "{}", ServerFrame::Bye.encode());
                            return;
                        }
                        let shared = Arc::clone(&shared);
                        let handle =
                            std::thread::spawn(move || handle_connection(&shared, stream, peer));
                        let mut conns = recover(conns.lock());
                        conns.retain(|h| !h.is_finished());
                        conns.push(handle);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(_) => std::thread::sleep(POLL_INTERVAL),
                }
            })
        };
        Ok(NetServer {
            shared,
            addr,
            accept: Mutex::new(Some(accept)),
            conns,
        })
    }

    /// The bound address (resolves the actual port after binding
    /// `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently open.
    pub fn open_connections(&self) -> u64 {
        self.shared.open.load(Ordering::Acquire)
    }

    /// Graceful drain: stop accepting connections (late arrivals get
    /// `DRAINING`), let in-flight queries finish and idle connections
    /// notice the drain, join every handler, then shut the wrapped
    /// [`QueryServer`] down. Idempotent; called automatically on drop.
    pub fn shutdown(&self) {
        let drain_started = Instant::now();
        let in_flight = self.shared.open.load(Ordering::Acquire);
        self.shared.draining.store(true, Ordering::Release);
        if let Some(handle) = recover(self.accept.lock()).take() {
            let _ = handle.join();
        }
        for handle in recover(self.conns.lock()).drain(..) {
            let _ = handle.join();
        }
        if let Some(recorder) = self.shared.query.trace_recorder() {
            recorder.control().record(
                SpanKind::Drain { in_flight },
                drain_started.elapsed().as_secs_f64(),
            );
        }
        self.shared.query.shutdown();
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Decrements the open-connection gauge even if the handler panics.
struct OpenGuard<'a>(&'a AtomicU64);

impl Drop for OpenGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// One connection, accept to close: greet, then serve frames until
/// `QUIT`, EOF, a write failure, or drain.
fn handle_connection(shared: &NetShared, stream: TcpStream, peer: SocketAddr) {
    shared.open.fetch_add(1, Ordering::AcqRel);
    let _open = OpenGuard(&shared.open);
    shared.query.note_connection();
    let connected_at = Instant::now();
    let mut queries = 0u64;
    // the read half polls so an idle connection notices the drain flag
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    // answer frames are small and latency-bound: without nodelay, Nagle
    // against the peer's delayed ACK adds ~40ms to every round trip
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    // one write per frame: a frame split across writes can be torn
    // apart by the peer's read timeout mid-line
    let mut send =
        |frame: ServerFrame| writer.write_all(format!("{}\n", frame.encode()).as_bytes());
    if send(ServerFrame::Hello {
        proto: "mdq/1".to_string(),
    })
    .is_err()
    {
        return;
    }
    let mut tenant = DEFAULT_TENANT;
    let mut line = String::new();
    loop {
        if shared.draining.load(Ordering::Acquire) {
            let _ = send(ServerFrame::Draining);
            let _ = send(ServerFrame::Bye);
            break;
        }
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF: client went away
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // poll tick: re-check the drain flag. A partially read
                // line stays in `line` and completes on a later tick —
                // clearing here would tear frames that straddle a
                // timeout
                continue;
            }
            Err(_) => break,
        }
        let text = std::mem::take(&mut line);
        if text.trim().is_empty() {
            continue;
        }
        let frame = match ClientFrame::parse(&text) {
            Ok(frame) => frame,
            Err(reason) => {
                if send(ServerFrame::Err { reason }).is_err() {
                    break;
                }
                continue;
            }
        };
        let ok = match frame {
            ClientFrame::Ping => send(ServerFrame::Pong).is_ok(),
            ClientFrame::Quit => {
                let _ = send(ServerFrame::Bye);
                break;
            }
            ClientFrame::Tenant { name } => {
                // an unknown name self-registers with the unlimited
                // default policy; a pre-registered name keeps the
                // policy the operator installed (first wins)
                tenant = shared.query.register_tenant(&name, TenantPolicy::default());
                send(ServerFrame::Ok { tenant }).is_ok()
            }
            ClientFrame::Query { k, text } => {
                queries += 1;
                serve_query(shared, &mut send, tenant, &text, k)
            }
            ClientFrame::Subscribe { k, text } => {
                queries += 1;
                match shared.query.subscribe(tenant, &text, k) {
                    Ok(ticket) => {
                        let mut ok = send(ServerFrame::Subscribed {
                            id: ticket.id,
                            epoch: ticket.epoch,
                            answers: ticket.answers.len() as u64,
                        })
                        .is_ok();
                        for t in &ticket.answers {
                            ok = ok
                                && send(ServerFrame::Answer {
                                    tuple: t.to_string(),
                                })
                                .is_ok();
                        }
                        ok
                    }
                    Err(reason) => send(ServerFrame::Err { reason }).is_ok(),
                }
            }
            // POLL/UNSUBSCRIBE run as the connection's tenant: ids are
            // sequential, so without the scoping any client could
            // drain (destructively) or deregister another tenant's
            // subscription just by guessing
            ClientFrame::Poll { id } => match shared.query.poll_deltas(tenant, id) {
                Some(deltas) => {
                    let mut epoch = shared.query.epoch();
                    let mut rows = 0u64;
                    let mut ok = true;
                    for d in &deltas {
                        epoch = d.epoch;
                        // retractions first: a client applying frames in
                        // order never sees a transiently oversized set
                        for t in &d.retracted {
                            rows += 1;
                            ok = ok
                                && send(ServerFrame::Delta {
                                    id,
                                    epoch: d.epoch,
                                    added: false,
                                    tuple: t.to_string(),
                                })
                                .is_ok();
                        }
                        for t in &d.added {
                            rows += 1;
                            ok = ok
                                && send(ServerFrame::Delta {
                                    id,
                                    epoch: d.epoch,
                                    added: true,
                                    tuple: t.to_string(),
                                })
                                .is_ok();
                        }
                    }
                    ok && send(ServerFrame::Synced {
                        id,
                        epoch,
                        deltas: rows,
                    })
                    .is_ok()
                }
                None => send(ServerFrame::Err {
                    reason: format!("unknown subscription {id}"),
                })
                .is_ok(),
            },
            // REFRESH re-fetches every tracked invocation for all
            // tenants — operator-only, or any anonymous client could
            // spam the single most expensive lever the server has
            ClientFrame::Refresh => match shared.query.try_refresh(tenant) {
                Ok(s) => send(ServerFrame::Refreshed {
                    epoch: s.epoch,
                    refreshed: s.refreshed,
                    changed: s.invocations_changed,
                    calls: s.calls,
                    deltas: s.deltas_emitted,
                })
                .is_ok(),
                Err(rejection) => send(ServerFrame::Err {
                    reason: rejection.to_string(),
                })
                .is_ok(),
            },
            ClientFrame::Unsubscribe { id } => {
                if shared.query.unsubscribe(tenant, id) {
                    send(ServerFrame::Unsubscribed { id }).is_ok()
                } else {
                    send(ServerFrame::Err {
                        reason: format!("unknown subscription {id}"),
                    })
                    .is_ok()
                }
            }
        };
        if !ok {
            break;
        }
    }
    if let Some(recorder) = shared.query.trace_recorder() {
        recorder.control().record(
            SpanKind::Connection {
                peer: peer.to_string(),
                queries,
            },
            connected_at.elapsed().as_secs_f64(),
        );
    }
}

/// Submits one query and streams its session to the client. Returns
/// whether the connection is still writable.
fn serve_query(
    shared: &NetShared,
    send: &mut impl FnMut(ServerFrame) -> io::Result<()>,
    tenant: TenantId,
    text: &str,
    k: Option<u64>,
) -> bool {
    let session = match shared.query.try_submit(tenant, text, k) {
        Ok(session) => session,
        Err(rejection) => {
            let frame = match rejection {
                Rejection::QueueFull { retry_after }
                | Rejection::TenantQueueFull { retry_after } => ServerFrame::Shed {
                    retry_after_ms: retry_after.as_millis() as u64,
                },
                Rejection::Closed => ServerFrame::Draining,
                other => ServerFrame::Err {
                    reason: other.to_string(),
                },
            };
            return send(frame).is_ok();
        }
    };
    let mut answers = 0u64;
    loop {
        match session.next_event() {
            Some(SessionEvent::Answer(tuple)) => {
                answers += 1;
                if send(ServerFrame::Answer {
                    tuple: tuple.to_string(),
                })
                .is_err()
                {
                    // client gone: dropping the session cancels the
                    // query's remaining pulls
                    return false;
                }
            }
            Some(SessionEvent::Done(stats)) => {
                return send(ServerFrame::Done {
                    answers,
                    calls: stats.forwarded_calls,
                    wall_ms: (stats.wall_seconds * 1e3) as u64,
                    partial: stats.is_partial(),
                })
                .is_ok();
            }
            Some(SessionEvent::Failed(reason)) => {
                return send(ServerFrame::Err { reason }).is_ok();
            }
            None => {
                return send(ServerFrame::Err {
                    reason: "server shut down before the query finished".to_string(),
                })
                .is_ok();
            }
        }
    }
}

/// What one `QUERY` frame produced, as seen by [`NetClient::query`].
#[derive(Clone, Debug, PartialEq)]
pub enum QueryOutcome {
    /// The stream completed: answers in rank order plus the `DONE`
    /// frame's statistics.
    Done {
        /// Rendered answer tuples, in rank order.
        answers: Vec<String>,
        /// Request-responses the query forwarded.
        calls: u64,
        /// Wall-clock milliseconds from dequeue to completion.
        wall_ms: u64,
        /// Whether the answers are partial.
        partial: bool,
    },
    /// Admission control shed the query; retry after the hint.
    Shed {
        /// The server's retry-after hint, in milliseconds.
        retry_after_ms: u64,
    },
    /// The query failed.
    Failed {
        /// Human-readable reason.
        reason: String,
    },
    /// The server is draining; the connection accepts no more queries.
    Draining,
}

/// A blocking client for the `mdq/1` wire protocol — used by the
/// examples and the overload harness, and small enough to crib for a
/// real client.
pub struct NetClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl NetClient {
    /// Connects and consumes the server's `HELLO`.
    pub fn connect(addr: SocketAddr) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        // request frames are small and latency-bound; see the server
        // side — Nagle would stall every query by a delayed-ACK tick
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        let mut client = NetClient {
            writer,
            reader: BufReader::new(stream),
        };
        match client.read_frame()? {
            ServerFrame::Hello { .. } => Ok(client),
            other => Err(protocol_error(&other)),
        }
    }

    fn send(&mut self, frame: &ClientFrame) -> io::Result<()> {
        // one write per frame — see the server-side note on torn frames
        self.writer
            .write_all(format!("{}\n", frame.encode()).as_bytes())
    }

    fn read_frame(&mut self) -> io::Result<ServerFrame> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-stream",
            ));
        }
        ServerFrame::parse(&line).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Runs the tenant handshake; subsequent queries run as `name`.
    pub fn tenant(&mut self, name: &str) -> io::Result<TenantId> {
        self.send(&ClientFrame::Tenant {
            name: name.to_string(),
        })?;
        match self.read_frame()? {
            ServerFrame::Ok { tenant } => Ok(tenant),
            ServerFrame::Err { reason } => Err(io::Error::new(io::ErrorKind::InvalidInput, reason)),
            other => Err(protocol_error(&other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        self.send(&ClientFrame::Ping)?;
        match self.read_frame()? {
            ServerFrame::Pong => Ok(()),
            other => Err(protocol_error(&other)),
        }
    }

    /// Submits one query and drains its stream. IO errors are `Err`;
    /// everything the protocol can say (done, shed, failed, draining)
    /// is a [`QueryOutcome`].
    pub fn query(&mut self, text: &str, k: Option<u64>) -> io::Result<QueryOutcome> {
        self.send(&ClientFrame::Query {
            k,
            text: text.to_string(),
        })?;
        let mut answers = Vec::new();
        loop {
            match self.read_frame()? {
                ServerFrame::Answer { tuple } => answers.push(tuple),
                ServerFrame::Done {
                    calls,
                    wall_ms,
                    partial,
                    ..
                } => {
                    return Ok(QueryOutcome::Done {
                        answers,
                        calls,
                        wall_ms,
                        partial,
                    })
                }
                ServerFrame::Shed { retry_after_ms } => {
                    return Ok(QueryOutcome::Shed { retry_after_ms })
                }
                ServerFrame::Err { reason } => return Ok(QueryOutcome::Failed { reason }),
                ServerFrame::Draining => return Ok(QueryOutcome::Draining),
                other => return Err(protocol_error(&other)),
            }
        }
    }

    /// Registers a standing query; returns `(id, epoch, answers)` from
    /// the `SUBSCRIBED` frame and its trailing `ANSWER` stream.
    pub fn subscribe(&mut self, text: &str, k: Option<u64>) -> io::Result<(u64, u64, Vec<String>)> {
        self.send(&ClientFrame::Subscribe {
            k,
            text: text.to_string(),
        })?;
        match self.read_frame()? {
            ServerFrame::Subscribed { id, epoch, answers } => {
                let mut rows = Vec::with_capacity(answers as usize);
                for _ in 0..answers {
                    match self.read_frame()? {
                        ServerFrame::Answer { tuple } => rows.push(tuple),
                        other => return Err(protocol_error(&other)),
                    }
                }
                Ok((id, epoch, rows))
            }
            ServerFrame::Err { reason } => Err(io::Error::new(io::ErrorKind::InvalidInput, reason)),
            other => Err(protocol_error(&other)),
        }
    }

    /// Drains a subscription's queued deltas: `(epoch, added, tuple)`
    /// rows in apply order (retractions before additions per epoch),
    /// terminated by the server's `SYNCED` frame.
    pub fn poll(&mut self, id: u64) -> io::Result<Vec<(u64, bool, String)>> {
        self.send(&ClientFrame::Poll { id })?;
        let mut rows = Vec::new();
        loop {
            match self.read_frame()? {
                ServerFrame::Delta {
                    id: got,
                    epoch,
                    added,
                    tuple,
                } if got == id => rows.push((epoch, added, tuple)),
                ServerFrame::Synced { deltas, .. } => {
                    if deltas as usize != rows.len() {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("SYNCED reports {deltas} deltas, read {}", rows.len()),
                        ));
                    }
                    return Ok(rows);
                }
                ServerFrame::Err { reason } => {
                    return Err(io::Error::new(io::ErrorKind::InvalidInput, reason))
                }
                other => return Err(protocol_error(&other)),
            }
        }
    }

    /// Asks the server to run one refresh pass; returns the `REFRESHED`
    /// counters `(epoch, refreshed, changed, calls, deltas)`.
    pub fn refresh_all(&mut self) -> io::Result<(u64, u64, u64, u64, u64)> {
        self.send(&ClientFrame::Refresh)?;
        match self.read_frame()? {
            ServerFrame::Refreshed {
                epoch,
                refreshed,
                changed,
                calls,
                deltas,
            } => Ok((epoch, refreshed, changed, calls, deltas)),
            other => Err(protocol_error(&other)),
        }
    }

    /// Deregisters a standing query.
    pub fn unsubscribe(&mut self, id: u64) -> io::Result<()> {
        self.send(&ClientFrame::Unsubscribe { id })?;
        match self.read_frame()? {
            ServerFrame::Unsubscribed { id: got } if got == id => Ok(()),
            ServerFrame::Err { reason } => Err(io::Error::new(io::ErrorKind::InvalidInput, reason)),
            other => Err(protocol_error(&other)),
        }
    }

    /// Closes the connection politely (waits for `BYE`).
    pub fn quit(mut self) -> io::Result<()> {
        self.send(&ClientFrame::Quit)?;
        loop {
            match self.read_frame() {
                Ok(ServerFrame::Bye) => return Ok(()),
                Ok(_) => continue, // drain stragglers until BYE
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
                Err(e) => return Err(e),
            }
        }
    }
}

fn protocol_error(frame: &ServerFrame) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected frame {frame:?}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::RuntimeConfig;
    use mdq_services::domains::news::news_world;

    const QUERY: &str = "q(City, Venue, Price) :- events('mahler-2', City, Venue, D), \
                         lowcost('Milano', City, Price), Price <= 60.0.";

    #[test]
    fn client_frames_round_trip() {
        for frame in [
            ClientFrame::Tenant {
                name: "acme".to_string(),
            },
            ClientFrame::Query {
                k: Some(5),
                text: "q(X) :- s(X).".to_string(),
            },
            ClientFrame::Query {
                k: None,
                text: "q(X) :- s(X).".to_string(),
            },
            ClientFrame::Subscribe {
                k: Some(3),
                text: "q(X) :- s(X).".to_string(),
            },
            ClientFrame::Subscribe {
                k: None,
                text: "q(X) :- s(X).".to_string(),
            },
            ClientFrame::Poll { id: 42 },
            ClientFrame::Refresh,
            ClientFrame::Unsubscribe { id: 42 },
            ClientFrame::Ping,
            ClientFrame::Quit,
        ] {
            assert_eq!(ClientFrame::parse(&frame.encode()), Ok(frame));
        }
        assert!(ClientFrame::parse("QUERY").is_err(), "empty query text");
        assert!(ClientFrame::parse("SUBSCRIBE").is_err(), "empty sub text");
        assert!(ClientFrame::parse("POLL x").is_err(), "non-numeric id");
        assert!(ClientFrame::parse("UNSUBSCRIBE").is_err(), "missing id");
        assert!(ClientFrame::parse("NOPE x").is_err(), "unknown verb");
    }

    #[test]
    fn server_frames_round_trip() {
        for frame in [
            ServerFrame::Hello {
                proto: "mdq/1".to_string(),
            },
            ServerFrame::Ok { tenant: 3 },
            ServerFrame::Answer {
                tuple: "⟨'Milano', 42⟩".to_string(),
            },
            ServerFrame::Done {
                answers: 5,
                calls: 17,
                wall_ms: 12,
                partial: false,
            },
            ServerFrame::Err {
                reason: "no such service".to_string(),
            },
            ServerFrame::Shed { retry_after_ms: 50 },
            ServerFrame::Subscribed {
                id: 7,
                epoch: 3,
                answers: 4,
            },
            ServerFrame::Delta {
                id: 7,
                epoch: 4,
                added: true,
                tuple: "⟨'Milano', 42⟩".to_string(),
            },
            ServerFrame::Delta {
                id: 7,
                epoch: 4,
                added: false,
                tuple: "⟨'Roma', 17⟩".to_string(),
            },
            ServerFrame::Synced {
                id: 7,
                epoch: 4,
                deltas: 2,
            },
            ServerFrame::Refreshed {
                epoch: 4,
                refreshed: 9,
                changed: 2,
                calls: 11,
                deltas: 1,
            },
            ServerFrame::Unsubscribed { id: 7 },
            ServerFrame::Draining,
            ServerFrame::Pong,
            ServerFrame::Bye,
        ] {
            assert_eq!(ServerFrame::parse(&frame.encode()), Ok(frame));
        }
        assert!(
            ServerFrame::parse("DELTA id=1 epoch=2 op=? x").is_err(),
            "bad op rejected"
        );
    }

    #[test]
    fn tcp_round_trip_serves_answers() {
        let server = Arc::new(QueryServer::from_world(
            news_world(),
            RuntimeConfig {
                workers: 2,
                ..RuntimeConfig::default()
            },
        ));
        let net = NetServer::start(server, "127.0.0.1:0").expect("bind");
        let mut client = NetClient::connect(net.addr()).expect("connect");
        client.ping().expect("ping");
        let outcome = client.query(QUERY, Some(5)).expect("wire io");
        match outcome {
            QueryOutcome::Done { answers, calls, .. } => {
                assert!(!answers.is_empty(), "query streams answers");
                assert!(calls > 0, "DONE reports forwarded calls");
            }
            other => panic!("expected Done, got {other:?}"),
        }
        client.quit().expect("clean close");
        net.shutdown();
    }

    #[test]
    fn tenant_handshake_scopes_budget() {
        let server = Arc::new(QueryServer::from_world(
            news_world(),
            RuntimeConfig {
                workers: 1,
                ..RuntimeConfig::default()
            },
        ));
        // pre-registered with a zero call budget: every forwarded call
        // is over budget, so the tenant's queries are shed at the door
        server.register_tenant(
            "starved",
            TenantPolicy {
                call_budget: Some(0),
                ..TenantPolicy::default()
            },
        );
        let net = NetServer::start(Arc::clone(&server), "127.0.0.1:0").expect("bind");
        let mut client = NetClient::connect(net.addr()).expect("connect");
        let id = client.tenant("starved").expect("handshake");
        assert!(id > 0, "tenant ids are distinct from the default");
        match client.query(QUERY, Some(3)).expect("wire io") {
            QueryOutcome::Failed { reason } => {
                assert!(
                    reason.contains("budget"),
                    "budget exhaustion names the budget: {reason}"
                );
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        // an untenanted connection on the same server is unaffected
        let mut other = NetClient::connect(net.addr()).expect("connect");
        match other.query(QUERY, Some(3)).expect("wire io") {
            QueryOutcome::Done { answers, .. } => assert!(!answers.is_empty()),
            o => panic!("default tenant unaffected, got {o:?}"),
        }
        net.shutdown();
    }

    #[test]
    fn subscribe_poll_refresh_unsubscribe_over_the_wire() {
        let server = Arc::new(QueryServer::from_world(
            news_world(),
            RuntimeConfig {
                workers: 1,
                ..RuntimeConfig::default()
            },
        ));
        // REFRESH is operator-only: handshake as an operator tenant
        server.register_tenant(
            "ops",
            TenantPolicy {
                operator: true,
                ..TenantPolicy::default()
            },
        );
        let net = NetServer::start(server, "127.0.0.1:0").expect("bind");
        let mut client = NetClient::connect(net.addr()).expect("connect");
        client.tenant("ops").expect("handshake");
        let (id, epoch, answers) = client.subscribe(QUERY, Some(5)).expect("subscribe");
        assert_eq!(epoch, 0, "no refresh pass yet");
        assert!(!answers.is_empty(), "initial answers stream");
        // a static world: the refresh pass re-fetches but changes
        // nothing, so the poll comes back empty
        let (epoch, refreshed, changed, _calls, deltas) = client.refresh_all().expect("refresh");
        assert_eq!(epoch, 1);
        assert!(refreshed > 0, "frontier invocations are tracked");
        assert_eq!((changed, deltas), (0, 0), "static world never changes");
        assert!(client.poll(id).expect("poll").is_empty());
        client.unsubscribe(id).expect("unsubscribe");
        assert!(client.poll(id).is_err(), "polling a gone id is an error");
        client.quit().expect("clean close");
        net.shutdown();
    }

    #[test]
    fn foreign_subscriptions_are_invisible_and_refresh_is_operator_only() {
        let server = Arc::new(QueryServer::from_world(
            news_world(),
            RuntimeConfig {
                workers: 1,
                ..RuntimeConfig::default()
            },
        ));
        server.register_tenant(
            "ops",
            TenantPolicy {
                operator: true,
                ..TenantPolicy::default()
            },
        );
        let net = NetServer::start(server, "127.0.0.1:0").expect("bind");
        let mut alice = NetClient::connect(net.addr()).expect("connect");
        alice.tenant("alice").expect("handshake");
        let (id, _, _) = alice.subscribe(QUERY, Some(5)).expect("subscribe");

        // a different tenant cannot poll (destructive!), read or
        // deregister alice's subscription — the id answers as unknown,
        // so sequential ids leak nothing across tenants
        let mut bob = NetClient::connect(net.addr()).expect("connect");
        bob.tenant("bob").expect("handshake");
        let poll_err = bob.poll(id).expect_err("foreign poll refused");
        assert!(
            poll_err.to_string().contains("unknown subscription"),
            "foreign id is indistinguishable from an unknown one: {poll_err}"
        );
        assert!(bob.unsubscribe(id).is_err(), "foreign unsubscribe refused");
        // nor may a non-operator trigger the all-tenant refresh pass
        let refresh_err = bob.refresh_all().expect_err("non-operator refresh refused");
        assert!(
            refresh_err.to_string().contains("unexpected frame"),
            "REFRESH answers ERR for non-operators: {refresh_err}"
        );

        // the operator may do all three: refresh, poll, deregister
        let mut ops = NetClient::connect(net.addr()).expect("connect");
        ops.tenant("ops").expect("handshake");
        let (epoch, refreshed, ..) = ops.refresh_all().expect("operator refresh");
        assert_eq!(epoch, 1);
        assert!(refreshed > 0, "alice's frontier is tracked");
        assert!(ops.poll(id).expect("operator poll").is_empty());
        ops.unsubscribe(id).expect("operator unsubscribe");
        // and alice's subscription really is gone now
        assert!(alice.poll(id).is_err(), "deregistered id is unknown");
        net.shutdown();
    }

    #[test]
    fn subscription_cap_sheds_at_the_door() {
        let server = Arc::new(QueryServer::from_world(
            news_world(),
            RuntimeConfig {
                workers: 1,
                max_subscriptions: 2,
                ..RuntimeConfig::default()
            },
        ));
        let net = NetServer::start(Arc::clone(&server), "127.0.0.1:0").expect("bind");
        let mut client = NetClient::connect(net.addr()).expect("connect");
        client.subscribe(QUERY, Some(3)).expect("first subscribe");
        client.subscribe(QUERY, Some(3)).expect("second subscribe");
        let err = client
            .subscribe(QUERY, Some(3))
            .expect_err("cap refuses the third");
        assert!(
            err.to_string().contains("subscription cap"),
            "refusal names the cap: {err}"
        );
        let m = server.metrics();
        assert_eq!(m.shed_subscription_cap, 1);
        assert_eq!(m.subscriptions_active, 2);
        net.shutdown();
    }

    #[test]
    fn subscribe_frame_survives_a_read_timeout_mid_line() {
        // the PR 8 QUERY regression shape, for SUBSCRIBE: a frame
        // delivered in two TCP segments straddling the server's 25ms
        // poll tick must not be torn into two bogus lines
        let server = Arc::new(QueryServer::from_world(
            news_world(),
            RuntimeConfig {
                workers: 1,
                ..RuntimeConfig::default()
            },
        ));
        let net = NetServer::start(server, "127.0.0.1:0").expect("bind");
        let mut stream = TcpStream::connect(net.addr()).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("hello");
        assert!(line.starts_with("HELLO"));
        let frame = format!("SUBSCRIBE k=5 {QUERY}\n");
        let (head, tail) = frame.split_at(frame.len() / 2);
        stream.write_all(head.as_bytes()).expect("first half");
        stream.flush().expect("flush");
        // straddle at least one poll tick so the server's read times
        // out with the partial line buffered
        std::thread::sleep(POLL_INTERVAL * 3);
        stream.write_all(tail.as_bytes()).expect("second half");
        stream.flush().expect("flush");
        line.clear();
        reader.read_line(&mut line).expect("subscribed");
        match ServerFrame::parse(&line).expect("parses") {
            ServerFrame::Subscribed { answers, .. } => {
                for _ in 0..answers {
                    line.clear();
                    reader.read_line(&mut line).expect("answer");
                    assert!(line.starts_with("ANSWER"), "answer stream intact: {line}");
                }
            }
            other => panic!("expected SUBSCRIBED, got {other:?}"),
        }
        drop(stream);
        net.shutdown();
    }

    #[test]
    fn drain_notifies_idle_connections_and_refuses_new_ones() {
        let server = Arc::new(QueryServer::from_world(
            news_world(),
            RuntimeConfig {
                workers: 1,
                ..RuntimeConfig::default()
            },
        ));
        let net = NetServer::start(server, "127.0.0.1:0").expect("bind");
        let addr = net.addr();
        let mut idle = NetClient::connect(addr).expect("connect");
        idle.ping().expect("ping");
        let drainer = std::thread::spawn(move || net.shutdown());
        // the idle connection is told about the drain rather than cut
        let frame = idle.read_frame().expect("drain notice");
        assert_eq!(frame, ServerFrame::Draining);
        drainer.join().expect("drain completes");
        // and the listener is gone: new connections fail outright
        assert!(NetClient::connect(addr).is_err(), "listener closed");
    }
}
