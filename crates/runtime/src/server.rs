//! The [`QueryServer`]: a fixed worker pool draining a submission queue,
//! a fingerprint-keyed plan cache in front of the branch-and-bound
//! optimizer, and one cross-query
//! [`SharedServiceState`] so the
//! §5.1 page cache and call accounting span the whole workload.

use crate::metrics::{Metrics, MetricsSnapshot};
use crate::plan_cache::{PlanCache, PlanKey};
use crate::session::{QuerySession, QueryStats, SessionEvent};
use crate::subscribe::{
    Delta, EngineCtx, RefreshSummary, SubscribeError, SubscriptionManager, SubscriptionTicket,
};
use crate::tenant::{TenantInfo, TenantPolicy, TenantRegistry, DEFAULT_TENANT};
use mdq_core::{Mdq, OptimizerReplanner};
use mdq_cost::divergence::AdaptiveConfig;
use mdq_cost::estimate::CacheSetting;
use mdq_cost::metrics::ExecutionTime;
use mdq_cost::shared::SharedWorkOracle;
use mdq_exec::adaptive::AdaptiveTopK;
use mdq_exec::gateway::{FaultStats, RetryPolicy, SharedServiceState, TenantId};
use mdq_exec::topk::TopKExecution;
use mdq_model::fingerprint::fingerprint;
use mdq_model::value::Tuple;
use mdq_obs::recorder::TraceRecorder;
use mdq_obs::span::SpanKind;
use mdq_optimizer::bnb::OptimizerConfig;
use mdq_plan::dag::Plan;
use mdq_services::domains::World;
use std::collections::{HashMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server policies. The defaults suit the simulated worlds: a small
/// pool, the *optimal* (memoize-everything) cache shared across
/// queries, a bounded plan cache and no per-query call budget.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Shared client-cache setting (§5.1) — cross-query, so `Optimal`
    /// turns repeated invocations from different queries into hits.
    pub cache: CacheSetting,
    /// Plans kept by the fingerprint-keyed LRU (`0` disables plan
    /// caching: every query runs the optimizer).
    pub plan_cache_capacity: usize,
    /// Max request-responses in flight per service across the whole
    /// server (`0` = unlimited).
    pub per_service_concurrency: usize,
    /// Admission control: max request-responses one query may forward
    /// before it is failed (`None` = unlimited).
    pub call_budget: Option<u64>,
    /// Retry policy applied to faulted service calls (bounded retries
    /// with deterministic backoff accounting; exhausted pages degrade
    /// the query into partial results instead of failing it).
    pub retry: RetryPolicy,
    /// Adaptive mid-flight re-optimization policy: `Some` makes every
    /// query compare observed service statistics against the estimates
    /// at its suspension points and splice in a re-optimized plan when
    /// they drift past the configured ratio (a query that re-planned
    /// publishes its better plan back to the plan cache under the same
    /// fingerprint). `None` (the default) freezes plans as optimized.
    pub adaptive: Option<AdaptiveConfig>,
    /// Bounded capacity of the shared page cache, in distinct
    /// invocation keys: `usize::MAX` (the default) is the unbounded
    /// idealised cache, `0` disables client-side page caching entirely
    /// (mirroring `PlanCache::new(0)`), anything between is an LRU
    /// whose evictions surface in
    /// [`MetricsSnapshot::page_cache_evictions`].
    ///
    /// [`MetricsSnapshot::page_cache_evictions`]: crate::metrics::MetricsSnapshot::page_cache_evictions
    pub page_cache_entries: usize,
    /// Capacity of the signature-keyed sub-result store, in
    /// materialized invoke prefixes. `0` (the default) disables
    /// cross-query sub-result sharing — execution is exactly the PR 2
    /// page-cache-only serving path.
    pub sub_results: usize,
    /// Admission batching: `Some(window)` groups submissions arriving
    /// within the window (up to [`RuntimeConfig::batch_max`], and
    /// naturally whatever queued up while the workers were busy) and
    /// plans them *as a batch* — overlapping invoke prefixes across
    /// members are detected, counted as
    /// [`MetricsSnapshot::shared_prefix_hits`] and discounted by the
    /// optimizer's shared-work oracle, so the batch unifies on shared
    /// work instead of paying for it per member. `None` (the default)
    /// dispatches every submission immediately.
    ///
    /// [`MetricsSnapshot::shared_prefix_hits`]: crate::metrics::MetricsSnapshot::shared_prefix_hits
    pub batch_window: Option<std::time::Duration>,
    /// Max queries admitted into one batch.
    pub batch_max: usize,
    /// Answer target used when `submit` is called without an explicit
    /// `k`.
    pub default_k: u64,
    /// Admission control: max jobs queued across all tenants before
    /// further submissions are shed with a retry-after hint (`0` = the
    /// pre-serving-edge unbounded queue).
    pub max_queue_depth: usize,
    /// The retry-after hint handed to shed submissions — how long a
    /// well-behaved client should wait before retrying.
    pub shed_retry_after: Duration,
    /// Admission control for standing queries: max live subscriptions
    /// per tenant (`0` = unlimited) unless the tenant's own
    /// [`TenantPolicy::max_subscriptions`] overrides it. Every
    /// subscription pins pages and joins every refresh pass, so this
    /// bounds how much continuous maintenance work one client — the
    /// anonymous default tenant included — can register.
    ///
    /// [`TenantPolicy::max_subscriptions`]: crate::tenant::TenantPolicy::max_subscriptions
    pub max_subscriptions: usize,
    /// Worker threads a refresh pass fans its lock-free phases across
    /// (due re-fetches, affected re-evaluations). `1` runs the pass
    /// inline; any setting produces byte-identical delta streams — the
    /// pipeline's determinism contract — so this is purely a latency
    /// knob for latency-dominated refresh workloads.
    pub refresh_workers: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 4,
            cache: CacheSetting::Optimal,
            plan_cache_capacity: 256,
            per_service_concurrency: 4,
            call_budget: None,
            retry: RetryPolicy::default(),
            adaptive: None,
            page_cache_entries: usize::MAX,
            sub_results: 0,
            batch_window: None,
            batch_max: 16,
            default_k: 10,
            max_queue_depth: 0,
            shed_retry_after: Duration::from_millis(50),
            max_subscriptions: 64,
            refresh_workers: 1,
        }
    }
}

/// State shared by the server handle and every worker.
struct ServerState {
    engine: Mdq,
    config: RuntimeConfig,
    shared: Arc<SharedServiceState>,
    plans: Mutex<PlanState>,
    /// Signalled when a plan lands in (or drops out of) the cache, so
    /// workers waiting on a single-flight optimization re-probe.
    plan_ready: Condvar,
    /// Prefix signatures seen at admission (batching only): a prefix
    /// admitted once before is popular enough to materialize when it
    /// shows up again, even if its first carrier ran unshared.
    admitted_prefixes: Mutex<std::collections::HashSet<mdq_model::fingerprint::SubplanSignature>>,
    tenants: TenantRegistry,
    metrics: Metrics,
    /// Standing queries: subscriptions, their pinned frontiers, the
    /// shared refresh driver and the epoch clock.
    subs: SubscriptionManager,
}

/// Bound on the admitted-prefix memory; reaching it clears the set (a
/// coarse reset is fine — the set only steers a materialize-or-not
/// heuristic, never correctness).
const ADMITTED_PREFIX_CAP: usize = 16_384;

/// Bound on the failed-plan memo; reaching it clears the memo (the
/// next submission of a broken template re-runs the optimizer once and
/// re-memoizes — coarse, but the memo only suppresses repeat work).
const FAILED_PLAN_CAP: usize = 1_024;

/// The plan cache plus the keys currently being optimized
/// (single-flight: concurrent submissions of one template wait for the
/// first optimization instead of duplicating it) and the templates that
/// already failed to optimize (waiters and later submissions wake into
/// the error instead of re-running the optimizer or blocking forever —
/// the plan-cache analogue of the gateway's failed-page memo).
struct PlanState {
    cache: PlanCache,
    optimizing: std::collections::HashSet<PlanKey>,
    failed: HashMap<PlanKey, String>,
}

/// Recovers a mutex guard from a poisoned lock: the protected state is
/// counters/caches whose worst case after an interrupted update is a
/// stale entry, never corruption — and propagating the poison would let
/// one panicking job take down every worker with it.
fn recover<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

struct Job {
    text: String,
    k: u64,
    /// The tenant this job runs as (scheduling, budgets, attribution).
    tenant: TenantId,
    tinfo: Arc<TenantInfo>,
    events: mpsc::Sender<SessionEvent>,
    /// When `submit` accepted the job — the queue-wait histogram
    /// measures from here to worker dequeue.
    submitted_at: Instant,
    /// Filled by the admission batcher: plan resolved at batch-planning
    /// time plus batch bookkeeping. `None` = the worker plans.
    prepared: Option<Prepared>,
}

/// Why a submission was refused at the front door. Shed variants carry
/// the server's retry-after hint; the others are terminal.
#[derive(Clone, Debug)]
pub enum Rejection {
    /// The global admission queue is at
    /// [`RuntimeConfig::max_queue_depth`] — retry after the hint.
    QueueFull {
        /// How long a well-behaved client should wait before retrying.
        retry_after: Duration,
    },
    /// The tenant's own queue is at its
    /// [`TenantPolicy::max_queued`](crate::tenant::TenantPolicy::max_queued)
    /// bound — retry after the hint.
    TenantQueueFull {
        /// How long a well-behaved client should wait before retrying.
        retry_after: Duration,
    },
    /// The tenant's cumulative forwarded-call budget is spent; retrying
    /// cannot help until the budget is raised.
    TenantBudgetExhausted,
    /// The tenant id was never registered.
    UnknownTenant,
    /// The operation (a wire-triggered refresh pass) requires the
    /// [`TenantPolicy::operator`](crate::tenant::TenantPolicy::operator)
    /// flag, which this tenant lacks.
    OperatorOnly,
    /// The tenant is at its standing-query cap
    /// ([`TenantPolicy::max_subscriptions`](crate::tenant::TenantPolicy::max_subscriptions)
    /// or the server-wide [`RuntimeConfig::max_subscriptions`]).
    SubscriptionCapReached,
    /// The server is shut down (or draining) and accepts nothing new.
    Closed,
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::QueueFull { retry_after } => {
                write!(f, "admission queue full; retry after {retry_after:?}")
            }
            Rejection::TenantQueueFull { retry_after } => {
                write!(f, "tenant queue full; retry after {retry_after:?}")
            }
            Rejection::TenantBudgetExhausted => write!(f, "tenant call budget exhausted"),
            Rejection::UnknownTenant => write!(f, "unknown tenant"),
            Rejection::OperatorOnly => write!(f, "operator-only operation"),
            Rejection::SubscriptionCapReached => write!(f, "tenant subscription cap reached"),
            Rejection::Closed => write!(f, "server is shut down"),
        }
    }
}

impl std::error::Error for Rejection {}

/// The admission queue: one FIFO per tenant, drained round-robin, with
/// a global depth bound. Fairness is structural — a tenant flooding its
/// own queue delays only itself; every pop serves the next tenant in
/// rotation.
struct Scheduler {
    inner: Mutex<SchedulerInner>,
    /// Signalled on push and on close.
    available: Condvar,
    /// Global bound (`0` = unbounded).
    max_depth: usize,
    /// The hint stamped into shed rejections.
    retry_after: Duration,
}

struct SchedulerInner {
    /// Per-tenant FIFOs (entries persist once a tenant submits).
    queues: HashMap<TenantId, VecDeque<Job>>,
    /// Tenants with a non-empty queue, in service rotation order.
    rr: VecDeque<TenantId>,
    /// Total queued jobs across all tenants.
    depth: usize,
    /// `false` once the server begins draining: pushes are refused,
    /// pops serve the backlog then return `None`.
    open: bool,
}

/// Outcome of a bounded-wait pop (the admission batcher's clock).
enum Pop {
    Job(Box<Job>),
    TimedOut,
    /// Closed *and* drained — nothing will ever arrive again.
    Closed,
}

impl Scheduler {
    fn new(max_depth: usize, retry_after: Duration) -> Self {
        Scheduler {
            inner: Mutex::new(SchedulerInner {
                queues: HashMap::new(),
                rr: VecDeque::new(),
                depth: 0,
                open: true,
            }),
            available: Condvar::new(),
            max_depth,
            retry_after,
        }
    }

    /// Enqueues `job` under its tenant, enforcing the global and
    /// per-tenant depth bounds. Returns the new global depth; a
    /// rejected job is dropped (its session sees the rejection through
    /// the caller).
    fn push(&self, job: Job, tenant_cap: usize) -> Result<usize, Rejection> {
        let mut inner = recover(self.inner.lock());
        if !inner.open {
            return Err(Rejection::Closed);
        }
        if self.max_depth > 0 && inner.depth >= self.max_depth {
            let retry_after = self.retry_after;
            return Err(Rejection::QueueFull { retry_after });
        }
        let tenant = job.tenant;
        let queue = inner.queues.entry(tenant).or_default();
        if tenant_cap > 0 && queue.len() >= tenant_cap {
            let retry_after = self.retry_after;
            return Err(Rejection::TenantQueueFull { retry_after });
        }
        let was_empty = queue.is_empty();
        queue.push_back(job);
        if was_empty {
            inner.rr.push_back(tenant);
        }
        inner.depth += 1;
        let depth = inner.depth;
        drop(inner);
        self.available.notify_one();
        Ok(depth)
    }

    /// Pops the next job in tenant rotation, blocking while the queue
    /// is open and empty. `None` = closed and fully drained.
    fn pop(&self) -> Option<Job> {
        let mut inner = recover(self.inner.lock());
        loop {
            if let Some(job) = Self::take(&mut inner) {
                return Some(job);
            }
            if !inner.open {
                return None;
            }
            inner = recover(self.available.wait(inner));
        }
    }

    /// [`Scheduler::pop`] with a deadline, for the admission batcher's
    /// window clock.
    fn pop_timeout(&self, timeout: Duration) -> Pop {
        let deadline = Instant::now() + timeout;
        let mut inner = recover(self.inner.lock());
        loop {
            if let Some(job) = Self::take(&mut inner) {
                return Pop::Job(Box::new(job));
            }
            if !inner.open {
                return Pop::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return Pop::TimedOut;
            }
            let (guard, timed_out) = recover(self.available.wait_timeout(inner, deadline - now));
            inner = guard;
            if timed_out.timed_out() && Self::peek_empty(&inner) && inner.open {
                return Pop::TimedOut;
            }
        }
    }

    fn peek_empty(inner: &SchedulerInner) -> bool {
        inner.rr.is_empty()
    }

    /// Dequeues the front tenant's next job and rotates the tenant to
    /// the back of the service order while it still has work queued.
    fn take(inner: &mut SchedulerInner) -> Option<Job> {
        let tenant = inner.rr.pop_front()?;
        let queue = inner.queues.get_mut(&tenant).expect("rr lists live queues");
        let job = queue.pop_front().expect("rr lists non-empty queues");
        if !queue.is_empty() {
            inner.rr.push_back(tenant);
        }
        inner.depth -= 1;
        Some(job)
    }

    /// Stops accepting pushes; queued jobs still drain. Wakes every
    /// sleeper so idle workers observe the close.
    fn close(&self) {
        recover(self.inner.lock()).open = false;
        self.available.notify_all();
    }

    fn depth(&self) -> usize {
        recover(self.inner.lock()).depth
    }
}

/// What the admission batcher resolved for one batch member.
struct Prepared {
    plan: Arc<Plan>,
    key: PlanKey,
    plan_cache_hit: bool,
    /// The member's invoke prefix overlapped another member's (or
    /// already-materialized work) at planning time.
    shared_prefix: bool,
}

/// A concurrent multi-query server over one engine (schema + services).
///
/// ```
/// use mdq_runtime::server::{QueryServer, RuntimeConfig};
/// use mdq_services::domains::news::news_world;
///
/// let server = QueryServer::from_world(news_world(), RuntimeConfig::default());
/// let session = server.submit(
///     "q(City, Venue, Price) :- events('mahler-2', City, Venue, D), \
///      lowcost('Milano', City, Price), Price <= 60.0.",
///     Some(5),
/// );
/// let result = session.collect().expect("runs");
/// assert!(!result.answers.is_empty());
/// server.shutdown();
/// ```
pub struct QueryServer {
    state: Arc<ServerState>,
    scheduler: Arc<Scheduler>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// Where a worker takes its next job from: the scheduler directly, or
/// the admission batcher's prepared-job channel when batching is on.
enum WorkSource {
    Direct(Arc<Scheduler>),
    Batched(Arc<Mutex<mpsc::Receiver<Job>>>),
}

impl WorkSource {
    fn next(&self) -> Option<Job> {
        match self {
            WorkSource::Direct(sched) => sched.pop(),
            WorkSource::Batched(rx) => recover(rx.lock()).recv().ok(),
        }
    }
}

impl QueryServer {
    /// Starts a server over `engine` with the given policies.
    pub fn new(engine: Mdq, config: RuntimeConfig) -> Self {
        let state = Arc::new(ServerState {
            shared: Arc::new(
                SharedServiceState::new(config.cache, config.per_service_concurrency)
                    .with_retry(config.retry)
                    .with_page_capacity(config.page_cache_entries)
                    .with_sub_results(config.sub_results),
            ),
            plans: Mutex::new(PlanState {
                cache: PlanCache::new(config.plan_cache_capacity),
                optimizing: std::collections::HashSet::new(),
                failed: HashMap::new(),
            }),
            plan_ready: Condvar::new(),
            admitted_prefixes: Mutex::new(std::collections::HashSet::new()),
            tenants: TenantRegistry::new(),
            metrics: Metrics::new(),
            subs: SubscriptionManager::new(),
            engine,
            config,
        });
        let scheduler = Arc::new(Scheduler::new(
            config.max_queue_depth,
            config.shed_retry_after,
        ));
        let mut workers = Vec::new();
        let source = match config.batch_window {
            Some(window) => {
                // the admission batcher sits between the scheduler and
                // the worker pool: it groups arrivals, plans each batch
                // with cross-member shared-prefix detection and
                // forwards the prepared jobs
                let (work_tx, work_rx) = mpsc::channel::<Job>();
                let state = Arc::clone(&state);
                let sched = Arc::clone(&scheduler);
                let max = config.batch_max.max(1);
                workers.push(std::thread::spawn(move || {
                    batch_loop(&state, &sched, work_tx, window, max)
                }));
                let rx = Arc::new(Mutex::new(work_rx));
                WorkSource::Batched(rx)
            }
            None => WorkSource::Direct(Arc::clone(&scheduler)),
        };
        let source = Arc::new(source);
        workers.extend((0..config.workers.max(1)).map(|_| {
            let state = Arc::clone(&state);
            let source = Arc::clone(&source);
            std::thread::spawn(move || {
                while let Some(job) = source.next() {
                    // one bad query must not take down the pool: a
                    // panicking job fails its own session, the worker
                    // recovers and serves the next job (lock poisoning
                    // is tolerated throughout — see `recover`)
                    let events = job.events.clone();
                    let tinfo = Arc::clone(&job.tinfo);
                    let run = std::panic::catch_unwind(AssertUnwindSafe(|| process(&state, job)));
                    if run.is_err() {
                        state.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                        state.metrics.failed.fetch_add(1, Ordering::Relaxed);
                        tinfo.failed.fetch_add(1, Ordering::Relaxed);
                        let _ = events.send(SessionEvent::Failed(
                            "worker panicked while executing the query".into(),
                        ));
                    }
                }
            })
        }));
        QueryServer {
            state,
            scheduler,
            workers: Mutex::new(workers),
        }
    }

    /// Starts a server over a ready-made simulated [`World`].
    pub fn from_world(world: World, config: RuntimeConfig) -> Self {
        Self::new(Mdq::from_world(world), config)
    }

    /// Registers a tenant (or returns the existing id for `name` —
    /// first registration wins, the policy is never relaxed by a
    /// re-register). The policy's budget and store quota are installed
    /// into the shared gateway state immediately.
    pub fn register_tenant(&self, name: &str, policy: TenantPolicy) -> TenantId {
        let id = self.state.tenants.register(name, policy);
        // install the policy that actually won (the first registration's
        // on a re-register) — installing the caller's would let a
        // reconnecting client overwrite its own budget cells
        let winner = self
            .state
            .tenants
            .get(id)
            .map(|t| t.policy)
            .unwrap_or(policy);
        self.state.shared.set_tenant_budget(id, winner.call_budget);
        self.state
            .shared
            .set_tenant_sub_quota(id, winner.sub_result_quota);
        id
    }

    /// The id registered under `name`, if any.
    pub fn tenant_id(&self, name: &str) -> Option<TenantId> {
        self.state.tenants.lookup(name)
    }

    /// Submits query text for execution; `k` defaults to the server's
    /// `default_k`. Returns immediately with a [`QuerySession`]
    /// streaming answers as a worker produces them. Runs as the default
    /// tenant; a rejection (shutdown, or admission bounds when
    /// [`RuntimeConfig::max_queue_depth`] is set) surfaces as a failed
    /// session.
    pub fn submit(&self, text: &str, k: Option<u64>) -> QuerySession {
        match self.try_submit(DEFAULT_TENANT, text, k) {
            Ok(session) => session,
            Err(rejection) => {
                let (events, rx) = mpsc::channel();
                let _ = events.send(SessionEvent::Failed(rejection.to_string()));
                QuerySession { rx }
            }
        }
    }

    /// Submits query text as `tenant`, enforcing admission control at
    /// the front door: a full global queue, a full tenant queue or a
    /// spent tenant budget sheds the submission *now* — with a
    /// retry-after hint where retrying can help — instead of queueing
    /// unboundedly. Rejections count in [`MetricsSnapshot::rejected`]
    /// and the shed counters, never in `submitted`.
    ///
    /// [`MetricsSnapshot::rejected`]: crate::metrics::MetricsSnapshot::rejected
    pub fn try_submit(
        &self,
        tenant: TenantId,
        text: &str,
        k: Option<u64>,
    ) -> Result<QuerySession, Rejection> {
        let metrics = &self.state.metrics;
        let Some(tinfo) = self.state.tenants.get(tenant) else {
            metrics.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(Rejection::UnknownTenant);
        };
        // a tenant whose cumulative budget is already spent would only
        // occupy a worker to fail — shed at the door, where the client
        // gets a typed rejection instead of a burned queue slot
        if !self.state.shared.tenant_has_room(tenant) {
            metrics.rejected.fetch_add(1, Ordering::Relaxed);
            metrics.shed_tenant_budget.fetch_add(1, Ordering::Relaxed);
            tinfo.shed.fetch_add(1, Ordering::Relaxed);
            self.record_shed(tenant, "tenant_budget");
            return Err(Rejection::TenantBudgetExhausted);
        }
        let (events, rx) = mpsc::channel();
        let job = Job {
            text: text.to_string(),
            k: k.unwrap_or(self.state.config.default_k),
            tenant,
            tinfo: Arc::clone(&tinfo),
            events,
            submitted_at: Instant::now(),
            prepared: None,
        };
        match self.scheduler.push(job, tinfo.policy.max_queued) {
            Ok(depth) => {
                metrics.submitted.fetch_add(1, Ordering::Relaxed);
                metrics.observe_queue_depth(depth);
                tinfo.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(QuerySession { rx })
            }
            Err(rejection) => {
                metrics.rejected.fetch_add(1, Ordering::Relaxed);
                match &rejection {
                    Rejection::QueueFull { .. } => {
                        metrics.shed_queue_full.fetch_add(1, Ordering::Relaxed);
                        tinfo.shed.fetch_add(1, Ordering::Relaxed);
                        self.record_shed(tenant, "queue_full");
                    }
                    Rejection::TenantQueueFull { .. } => {
                        metrics.shed_tenant_queue.fetch_add(1, Ordering::Relaxed);
                        tinfo.shed.fetch_add(1, Ordering::Relaxed);
                        self.record_shed(tenant, "tenant_queue_full");
                    }
                    _ => {}
                }
                Err(rejection)
            }
        }
    }

    /// Records a shed event on the control track when tracing is on.
    fn record_shed(&self, tenant: TenantId, reason: &'static str) {
        if let Some(recorder) = self.state.shared.trace_recorder() {
            recorder.control().instant(SpanKind::Shed {
                tenant: u64::from(tenant),
                reason,
                retry_after_ms: self.state.config.shed_retry_after.as_millis() as u64,
            });
        }
    }

    /// Jobs currently waiting in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.scheduler.depth()
    }

    /// Counts one accepted network connection (the serving edge's
    /// hook into [`MetricsSnapshot::connections`]).
    ///
    /// [`MetricsSnapshot::connections`]: crate::metrics::MetricsSnapshot::connections
    pub(crate) fn note_connection(&self) {
        self.state
            .metrics
            .connections
            .fetch_add(1, Ordering::Relaxed);
    }

    /// The engine this server executes against.
    pub fn engine(&self) -> &Mdq {
        &self.state.engine
    }

    /// The cross-query shared gateway state (page cache + accounting).
    pub fn shared_state(&self) -> &Arc<SharedServiceState> {
        &self.state.shared
    }

    /// Attaches a fresh span-trace recorder to the shared gateway
    /// state and returns it: from now on every execution registers its
    /// own track recording operator batches, service calls, retries,
    /// cache replays and re-plans, while the server itself records the
    /// control-plane events (optimize, plan-cache probes, admission
    /// batches) on track 0. Export the result with
    /// [`mdq_obs::chrome_trace_json`] or [`mdq_obs::jsonl`]. Without
    /// this call the server records nothing and pays nothing.
    pub fn enable_tracing(&self) -> Arc<TraceRecorder> {
        let recorder = TraceRecorder::new();
        self.state.shared.set_trace(Some(Arc::clone(&recorder)));
        recorder
    }

    /// The recorder attached by [`QueryServer::enable_tracing`], if
    /// any.
    pub fn trace_recorder(&self) -> Option<Arc<TraceRecorder>> {
        self.state.shared.trace_recorder()
    }

    /// Forgets every memoized page failure in the shared gateway state,
    /// returning how many were dropped — the operator's recovery lever
    /// after a service outage ends (condemned pages are never re-probed
    /// on their own, so they stay degraded until this is called or the
    /// server restarts).
    pub fn forget_failed_pages(&self) -> usize {
        self.state.shared.clear_failed_pages()
    }

    /// Forgets every memoized plan failure, returning how many were
    /// dropped — the recovery lever after the condition that made a
    /// template unoptimizable (say, a dropped service) is fixed.
    pub fn forget_failed_plans(&self) -> usize {
        let mut plans = recover(self.state.plans.lock());
        let dropped = plans.failed.len();
        plans.failed.clear();
        dropped
    }

    /// Plans currently held by the plan cache.
    pub fn cached_plans(&self) -> usize {
        recover(self.state.plans.lock()).cache.len()
    }

    /// The subscription layer's view of the server internals.
    fn sub_ctx(&self) -> EngineCtx<'_> {
        EngineCtx {
            schema: self.state.engine.schema(),
            registry: self.state.engine.registry(),
            shared: &self.state.shared,
            metrics: &self.state.metrics,
        }
    }

    /// Installs the epoch clock the (refreshing) services drift on and
    /// the per-service TTL policy refresh passes consult. Without this
    /// call subscriptions still work: the server runs a private clock
    /// with a TTL of 1 epoch, and [`QueryServer::refresh`] advances it.
    pub fn attach_refresh(
        &self,
        clock: Arc<mdq_services::refresh::EpochClock>,
        policy: mdq_services::refresh::RefreshPolicy,
    ) {
        self.state.subs.attach(clock, policy);
    }

    /// The current refresh epoch (0 until the first refresh pass).
    pub fn epoch(&self) -> u64 {
        self.state.subs.epoch()
    }

    /// Registers a standing query as `tenant`: resolves the plan
    /// through the same cache/single-flight path ad-hoc queries use,
    /// materializes the initial answers, pins every page the execution
    /// touched, and tracks the invocations for refresh. The returned
    /// ticket carries the subscription id, the epoch and the initial
    /// answers; subsequent [`QueryServer::refresh`] passes queue
    /// incremental [`Delta`]s retrievable with
    /// [`QueryServer::poll_deltas`].
    ///
    /// Subscriptions pass the same admission gates as ad-hoc queries:
    /// a spent tenant budget sheds the registration at the door, the
    /// materializing evaluation runs under the tenant's per-query call
    /// budget, and the tenant's live subscriptions are capped
    /// ([`TenantPolicy::max_subscriptions`], defaulting to
    /// [`RuntimeConfig::max_subscriptions`]). Refusals count in
    /// [`MetricsSnapshot::rejected`] and the shed counters.
    ///
    /// [`TenantPolicy::max_subscriptions`]: crate::tenant::TenantPolicy::max_subscriptions
    /// [`MetricsSnapshot::rejected`]: crate::metrics::MetricsSnapshot::rejected
    pub fn subscribe(
        &self,
        tenant: TenantId,
        text: &str,
        k: Option<u64>,
    ) -> Result<SubscriptionTicket, String> {
        let metrics = &self.state.metrics;
        let Some(tinfo) = self.state.tenants.get(tenant) else {
            return Err(Rejection::UnknownTenant.to_string());
        };
        // same shed-at-the-door rule as `try_submit`: a tenant whose
        // cumulative budget is spent would only burn an evaluation to
        // fail it
        if !self.state.shared.tenant_has_room(tenant) {
            metrics.rejected.fetch_add(1, Ordering::Relaxed);
            metrics.shed_tenant_budget.fetch_add(1, Ordering::Relaxed);
            tinfo.shed.fetch_add(1, Ordering::Relaxed);
            self.record_shed(tenant, "tenant_budget");
            return Err(Rejection::TenantBudgetExhausted.to_string());
        }
        let cap = tinfo
            .policy
            .max_subscriptions
            .unwrap_or(self.state.config.max_subscriptions);
        let budget = tinfo
            .policy
            .per_query_call_budget
            .or(self.state.config.call_budget);
        let k = k.unwrap_or(self.state.config.default_k);
        let (_key, plan, _hit) = resolve_plan(&self.state, text, k)?;
        self.state
            .subs
            .subscribe(&self.sub_ctx(), &plan, k, tenant, cap, budget)
            .map_err(|e| match e {
                SubscribeError::CapReached { active } => {
                    metrics.rejected.fetch_add(1, Ordering::Relaxed);
                    metrics
                        .shed_subscription_cap
                        .fetch_add(1, Ordering::Relaxed);
                    tinfo.shed.fetch_add(1, Ordering::Relaxed);
                    self.record_shed(tenant, "subscription_cap");
                    format!(
                        "{} ({active} active, cap {cap})",
                        Rejection::SubscriptionCapReached
                    )
                }
                SubscribeError::Eval(reason) => reason,
            })
    }

    /// Runs one refresh pass: advances the epoch, re-fetches due
    /// tracked invocations once for *all* subscriptions, installs
    /// changed page sets into the shared cache, and re-evaluates
    /// exactly the subscriptions whose frontier intersects the changed
    /// set — queueing each a [`Delta`]. Unaffected subscriptions do
    /// zero work. The pass pipelines its re-fetches and re-evaluations
    /// across [`RuntimeConfig::refresh_workers`] threads; the delta
    /// streams are byte-identical at any worker count.
    pub fn refresh(&self) -> RefreshSummary {
        self.state
            .subs
            .refresh(&self.sub_ctx(), self.state.config.refresh_workers)
    }

    /// [`QueryServer::refresh`] gated for client-triggered use (the
    /// wire `REFRESH` frame): only a tenant whose policy carries the
    /// [`operator`](crate::tenant::TenantPolicy::operator) flag may
    /// run a pass — a refresh re-fetches every tracked invocation for
    /// *all* tenants, far too expensive a lever to hand to anonymous
    /// clients. In-process callers (who already own the server handle)
    /// keep the ungated method.
    pub fn try_refresh(&self, tenant: TenantId) -> Result<RefreshSummary, Rejection> {
        let Some(tinfo) = self.state.tenants.get(tenant) else {
            return Err(Rejection::UnknownTenant);
        };
        if !tinfo.policy.operator {
            self.state.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(Rejection::OperatorOnly);
        }
        Ok(self.refresh())
    }

    /// Whether `tenant` carries the operator flag (may trigger wire
    /// refreshes and manage any tenant's subscriptions).
    fn is_operator(&self, tenant: TenantId) -> bool {
        self.state
            .tenants
            .get(tenant)
            .is_some_and(|t| t.policy.operator)
    }

    /// Drains the queued deltas of subscription `id` as `tenant`
    /// (`None` = unknown id, or an id the tenant neither owns nor — by
    /// the operator flag — may manage; an empty vec = known but
    /// nothing new since the last poll). The drain is destructive, so
    /// ownership is enforced: sequential ids must not let one tenant
    /// steal another's delta stream.
    pub fn poll_deltas(&self, tenant: TenantId, id: u64) -> Option<Vec<Delta>> {
        self.state.subs.poll(id, tenant, self.is_operator(tenant))
    }

    /// Deregisters subscription `id` as `tenant`, unpinning every page
    /// no other subscription still covers. Returns whether the id was
    /// known *and* owned by `tenant` (operators may deregister any
    /// subscription).
    pub fn unsubscribe(&self, tenant: TenantId, id: u64) -> bool {
        self.state
            .subs
            .unsubscribe(&self.sub_ctx(), id, tenant, self.is_operator(tenant))
    }

    /// The current answers of subscription `id` (rank order) — the
    /// fold target its delta stream reproduces. Tenant-scoped like
    /// [`QueryServer::poll_deltas`].
    pub fn subscription_answers(&self, tenant: TenantId, id: u64) -> Option<Vec<Tuple>> {
        self.state
            .subs
            .answers(id, tenant, self.is_operator(tenant))
    }

    /// Live subscriptions.
    pub fn subscriptions_active(&self) -> u64 {
        self.state.subs.active()
    }

    /// Samples the server's metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        let tenants = self
            .state
            .tenants
            .all()
            .into_iter()
            .enumerate()
            .map(|(id, t)| {
                let id = id as TenantId;
                t.snapshot(id, self.state.shared.tenant_calls(id))
            })
            .collect();
        self.state.metrics.snapshot(
            &self.state.shared,
            self.state.engine.schema(),
            self.scheduler.depth(),
            tenants,
        )
    }

    /// Stops accepting submissions, drains the queue and joins the
    /// workers (in-flight and queued queries complete — a graceful
    /// drain, not an abort). Called automatically on drop; explicit
    /// calls make the drain point visible in calling code.
    pub fn shutdown(&self) {
        self.scheduler.close();
        for handle in recover(self.workers.lock()).drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Probes the plan cache. On a miss the key is claimed for
/// single-flight optimization: concurrent submissions of the same
/// template block here until the first worker's plan lands, instead of
/// all running the optimizer. Returns `Ok(None)` when the caller must
/// optimize (it then owns the claim and must release it), and
/// `Err(reason)` when the template is memoized as unoptimizable —
/// including for waiters that blocked on a claim whose owner's
/// optimizer failed: the owner publishes the error *before* releasing
/// the claim, so a waiter always wakes into either the plan or the
/// error, never into re-running a doomed optimization. With plan
/// caching disabled (`capacity == 0`) every call misses immediately —
/// no claims, no waiting, no memo.
fn lookup_single_flight(state: &ServerState, key: &PlanKey) -> Result<Option<Arc<Plan>>, String> {
    if state.config.plan_cache_capacity == 0 {
        return Ok(None);
    }
    let mut plans = recover(state.plans.lock());
    loop {
        if let Some(reason) = plans.failed.get(key) {
            state
                .metrics
                .plan_failed_memo_hits
                .fetch_add(1, Ordering::Relaxed);
            return Err(reason.clone());
        }
        if let Some((plan, discounted)) = plans.cache.get(key) {
            // a discounted plan assumed a materialized prefix; once
            // that prefix is gone the entry is stale — claim the key
            // and re-optimize standalone (overwriting the entry)
            if !discounted
                || mdq_plan::signature::invoke_prefixes(&plan)
                    .iter()
                    .any(|p| state.shared.is_materialized(p.signature))
            {
                return Ok(Some(plan));
            }
        }
        if plans.optimizing.insert(*key) {
            return Ok(None);
        }
        plans = recover(state.plan_ready.wait(plans));
    }
}

/// Memoizes an optimizer failure for `key` so every waiter and later
/// submission of the template fails immediately instead of re-running
/// the optimizer. Must be called while the single-flight claim is still
/// held — publish, *then* release — so waiters wake into the memo.
fn memoize_failed_plan(state: &ServerState, key: PlanKey, reason: &str) {
    if state.config.plan_cache_capacity == 0 {
        return;
    }
    let mut plans = recover(state.plans.lock());
    // coarse reset over per-entry eviction: failures are rare, and a
    // full memo means something systemic that a restart-style flush
    // handles better than LRU churn
    if plans.failed.len() >= FAILED_PLAN_CAP {
        plans.failed.clear();
    }
    plans.failed.insert(key, reason.to_string());
}

/// Releases a single-flight optimization claim and wakes the waiters —
/// on return AND on unwind, so a panicking optimizer cannot leave every
/// future submission of the template blocked on the Condvar.
struct ClaimGuard<'a> {
    state: &'a ServerState,
    key: PlanKey,
}

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        // tolerate a poisoned lock: this runs during unwind, and a
        // second panic here would abort the process
        let mut plans = self
            .state
            .plans
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        plans.optimizing.remove(&self.key);
        drop(plans);
        self.state.plan_ready.notify_all();
    }
}

/// The admission batcher: drains the scheduler into batches — the first
/// arrival opens a batch, further arrivals join until the window
/// elapses or the batch is full (while workers are busy, queued
/// submissions join naturally) — plans each batch as a unit and
/// forwards the prepared jobs to the worker pool. Because jobs come off
/// the scheduler, batch membership inherits its round-robin fairness:
/// one flooding tenant cannot fill every batch.
fn batch_loop(
    state: &Arc<ServerState>,
    sched: &Scheduler,
    tx: mpsc::Sender<Job>,
    window: std::time::Duration,
    max: usize,
) {
    loop {
        let first = match sched.pop() {
            Some(job) => job,
            None => return, // scheduler closed and drained: shutdown
        };
        let mut batch = vec![first];
        let deadline = Instant::now() + window;
        while batch.len() < max {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match sched.pop_timeout(deadline - now) {
                Pop::Job(job) => batch.push(*job),
                Pop::TimedOut => break, // window elapsed
                Pop::Closed => break,   // drain: plan what we have
            }
        }
        state.metrics.observe_batch_size(batch.len());
        for job in plan_batch(state, batch) {
            if tx.send(job).is_err() {
                return; // every worker died
            }
        }
    }
}

/// The batch's view of already-materialized work while it is being
/// planned: the sub-result store plus the prefixes of members planned
/// earlier in this very batch (they *will* be materialized by the time
/// a later member executes — single-flight makes exactly one member pay).
struct BatchOracle<'a> {
    shared: &'a SharedServiceState,
    batch: &'a std::collections::HashSet<mdq_model::fingerprint::SubplanSignature>,
}

impl mdq_cost::shared::SharedWorkOracle for BatchOracle<'_> {
    fn is_materialized(&self, sig: mdq_model::fingerprint::SubplanSignature) -> bool {
        self.batch.contains(&sig) || self.shared.is_materialized(sig)
    }
}

/// Plans every member of a batch and returns the jobs to forward:
/// plan-cache probe, optimizer run on a miss (priced under the batch's
/// shared-work oracle), then cross-member overlap detection — a member
/// whose invoke prefix matches another member's (or already-materialized
/// work) is a *shared-prefix hit* and the only kind of member told to
/// materialize. Members that fail to optimize fail their session right
/// here (counted exactly once); parse failures are forwarded unprepared
/// and surface through the worker's ordinary path.
///
/// With adaptivity enabled the batch is planned *standalone* and
/// nothing is flagged: the adaptive executor re-prices plans mid-flight
/// and never replays sub-results, so a shared-work discount would steer
/// it toward savings it cannot collect (materialized pages still replay
/// through the shared page cache either way).
fn plan_batch(state: &Arc<ServerState>, batch: Vec<Job>) -> Vec<Job> {
    use mdq_model::fingerprint::SubplanSignature;
    let use_oracle = state.config.adaptive.is_none();
    let ctl = state.shared.trace_recorder().map(|r| r.control());
    let members = batch.len() as u64;
    let mut seen: std::collections::HashSet<SubplanSignature> = std::collections::HashSet::new();
    // signatures per member, for the second (overlap-marking) pass
    let mut member_sigs: Vec<Vec<SubplanSignature>> = Vec::with_capacity(batch.len());
    let mut out: Vec<Job> = Vec::with_capacity(batch.len());
    for mut job in batch {
        let Ok(query) = state.engine.parse(&job.text) else {
            member_sigs.push(Vec::new());
            out.push(job); // the worker re-parses and fails the session
            continue;
        };
        let key = (fingerprint(&query), job.k);
        let cached = if state.config.plan_cache_capacity == 0 {
            None
        } else {
            let mut plans = recover(state.plans.lock());
            if let Some(reason) = plans.failed.get(&key) {
                // the template is memoized as unoptimizable: fail the
                // session without burning an optimizer run
                state
                    .metrics
                    .plan_failed_memo_hits
                    .fetch_add(1, Ordering::Relaxed);
                state.metrics.failed.fetch_add(1, Ordering::Relaxed);
                job.tinfo.failed.fetch_add(1, Ordering::Relaxed);
                let _ = job.events.send(SessionEvent::Failed(reason.clone()));
                continue;
            }
            plans.cache.get(&key)
        };
        // a discounted entry assumed a materialized prefix: reuse it
        // only while that prefix is still live (in the store, or being
        // produced by an earlier member of this very batch); otherwise
        // fall through to a standalone re-optimization
        let cached = cached.and_then(|(plan, discounted)| {
            if !discounted {
                return Some(plan);
            }
            let oracle = BatchOracle {
                shared: &state.shared,
                batch: &seen,
            };
            mdq_plan::signature::invoke_prefixes(&plan)
                .iter()
                .any(|p| oracle.is_materialized(p.signature))
                .then_some(plan)
        });
        let (plan, hit) = match cached {
            Some(plan) => {
                state
                    .metrics
                    .plan_cache_hits
                    .fetch_add(1, Ordering::Relaxed);
                if let Some(ctl) = &ctl {
                    ctl.instant(SpanKind::PlanCacheHit {
                        fingerprint: key.0 .0,
                    });
                }
                (plan, true)
            }
            None => {
                state
                    .metrics
                    .plan_cache_misses
                    .fetch_add(1, Ordering::Relaxed);
                state
                    .metrics
                    .optimizer_invocations
                    .fetch_add(1, Ordering::Relaxed);
                if let Some(ctl) = &ctl {
                    ctl.instant(SpanKind::PlanCacheMiss {
                        fingerprint: key.0 .0,
                    });
                }
                let oracle = BatchOracle {
                    shared: &state.shared,
                    batch: &seen,
                };
                let config = OptimizerConfig {
                    k: job.k,
                    cache: state.config.cache,
                    ..OptimizerConfig::default()
                };
                let opt_started = Instant::now();
                let optimized = if use_oracle {
                    state
                        .engine
                        .optimize_shared(query, &ExecutionTime, config, &oracle)
                } else {
                    state.engine.optimize(query, &ExecutionTime, config)
                };
                if let Some(ctl) = &ctl {
                    // control-plane spans measure real optimizer work,
                    // so track 0 runs on wall seconds
                    ctl.record(SpanKind::Optimize, opt_started.elapsed().as_secs_f64());
                }
                match optimized {
                    Ok(o) => {
                        let plan = Arc::new(o.candidate.plan);
                        // a plan chosen under the batch's transient
                        // discount must not silently become the
                        // template's durable plan: the cache is keyed
                        // by (fingerprint, k) alone and outlives the
                        // materialization. Cache it with the discount
                        // *recorded* — a later probe revalidates that
                        // the materialized prefix is still live and
                        // re-optimizes standalone only then, so the
                        // cold path never pays the optimizer twice for
                        // one admission
                        let discounted = use_oracle
                            && mdq_plan::signature::invoke_prefixes(&plan)
                                .iter()
                                .any(|p| oracle.is_materialized(p.signature));
                        let mut plans = recover(state.plans.lock());
                        if discounted {
                            plans.cache.insert_discounted(key, Arc::clone(&plan));
                        } else {
                            plans.cache.insert(key, Arc::clone(&plan));
                        }
                        drop(plans);
                        (plan, false)
                    }
                    Err(e) => {
                        // fail the session here — the worker must not
                        // re-run (and re-count) the optimizer — and
                        // memoize the failure so the template never
                        // burns another optimizer run
                        let reason = e.to_string();
                        memoize_failed_plan(state, key, &reason);
                        state.metrics.failed.fetch_add(1, Ordering::Relaxed);
                        job.tinfo.failed.fetch_add(1, Ordering::Relaxed);
                        let _ = job.events.send(SessionEvent::Failed(reason));
                        continue;
                    }
                }
            }
        };
        let sigs: Vec<SubplanSignature> = mdq_plan::signature::invoke_prefixes(&plan)
            .iter()
            .map(|p| p.signature)
            .collect();
        member_sigs.push(sigs.clone());
        job.prepared = Some(Prepared {
            plan,
            key,
            plan_cache_hit: hit,
            shared_prefix: false, // marked in the second pass
        });
        out.push(job);
        seen.extend(sigs);
    }
    if !use_oracle {
        if let Some(ctl) = &ctl {
            ctl.instant(SpanKind::AdmissionBatch {
                members,
                shared_prefix_hits: 0,
            });
        }
        return out;
    }
    // second pass: a member shares a prefix when any of its signatures
    // occurs in another member, was admitted by an earlier batch, or is
    // already materialized in the store — only those members are told
    // to materialize (paying the eager drain for a prefix nobody else
    // wants is the classic MQO anti-pattern)
    let mut counts: std::collections::HashMap<SubplanSignature, usize> =
        std::collections::HashMap::new();
    for sigs in &member_sigs {
        for s in sigs {
            *counts.entry(*s).or_insert(0) += 1;
        }
    }
    let mut admitted = recover(state.admitted_prefixes.lock());
    for (job, sigs) in out.iter_mut().zip(&member_sigs) {
        let Some(prepared) = job.prepared.as_mut() else {
            continue;
        };
        let shared = sigs.iter().any(|s| {
            counts.get(s).copied().unwrap_or(0) > 1
                || admitted.contains(s)
                || state.shared.is_materialized(*s)
        });
        if shared {
            prepared.shared_prefix = true;
            state
                .metrics
                .shared_prefix_hits
                .fetch_add(1, Ordering::Relaxed);
        }
    }
    if admitted.len() > ADMITTED_PREFIX_CAP {
        admitted.clear();
    }
    admitted.extend(member_sigs.iter().flatten().copied());
    if let Some(ctl) = &ctl {
        let flagged = out
            .iter()
            .filter(|j| j.prepared.as_ref().is_some_and(|p| p.shared_prefix))
            .count() as u64;
        ctl.instant(SpanKind::AdmissionBatch {
            members,
            shared_prefix_hits: flagged,
        });
    }
    out
}

/// Parse → plan-cache probe (single-flight) → optimize on a miss: the
/// plan-resolution path shared by ad-hoc queries and standing
/// subscriptions. Returns `(key, plan, plan_cache_hit)`.
fn resolve_plan(
    state: &ServerState,
    text: &str,
    k: u64,
) -> Result<(PlanKey, Arc<Plan>, bool), String> {
    let query = state.engine.parse(text).map_err(|e| e.to_string())?;
    let key = (fingerprint(&query), k);
    let cached = lookup_single_flight(state, &key)?;
    let plan_cache_hit = cached.is_some();
    let ctl = state.shared.trace_recorder().map(|r| r.control());
    let plan: Arc<Plan> = match cached {
        Some(plan) => {
            state
                .metrics
                .plan_cache_hits
                .fetch_add(1, Ordering::Relaxed);
            if let Some(ctl) = &ctl {
                ctl.instant(SpanKind::PlanCacheHit {
                    fingerprint: key.0 .0,
                });
            }
            plan
        }
        None => {
            // the claim from `lookup_single_flight` is released
            // by this guard even if the optimizer panics
            let claim = ClaimGuard { state, key };
            state
                .metrics
                .plan_cache_misses
                .fetch_add(1, Ordering::Relaxed);
            state
                .metrics
                .optimizer_invocations
                .fetch_add(1, Ordering::Relaxed);
            if let Some(ctl) = &ctl {
                ctl.instant(SpanKind::PlanCacheMiss {
                    fingerprint: key.0 .0,
                });
            }
            let opt_started = Instant::now();
            let optimized = state.engine.optimize(
                query,
                &ExecutionTime,
                OptimizerConfig {
                    k,
                    cache: state.config.cache,
                    ..OptimizerConfig::default()
                },
            );
            if let Some(ctl) = &ctl {
                // control spans measure real optimizer work:
                // track 0 runs on wall seconds
                ctl.record(SpanKind::Optimize, opt_started.elapsed().as_secs_f64());
            }
            let plan = optimized.map(|o| Arc::new(o.candidate.plan));
            match &plan {
                Ok(plan) => {
                    recover(state.plans.lock())
                        .cache
                        .insert(key, Arc::clone(plan));
                }
                Err(e) => {
                    // publish the failure while the claim is
                    // still held: when the guard's release
                    // wakes the waiters they find the memo and
                    // fail immediately, instead of waking into
                    // an empty cache and re-claiming the doomed
                    // template one by one
                    memoize_failed_plan(state, key, &e.to_string());
                }
            }
            drop(claim);
            plan.map_err(|e| e.to_string())?
        }
    };
    Ok((key, plan, plan_cache_hit))
}

/// One query, start to finish, on a worker thread: parse → plan-cache
/// probe (miss: optimize + insert) → pull-based execution over the
/// shared gateway state, streaming each answer to the session.
fn process(state: &ServerState, job: Job) {
    let started = Instant::now();
    state
        .metrics
        .observe_queue_wait(job.submitted_at.elapsed().as_secs_f64());
    let fail = |reason: String| {
        state.metrics.failed.fetch_add(1, Ordering::Relaxed);
        job.tinfo.failed.fetch_add(1, Ordering::Relaxed);
        let _ = job.events.send(SessionEvent::Failed(reason));
    };

    // prepared by the admission batcher, or resolved here (parse →
    // plan-cache probe with single-flight → optimize on a miss). A
    // batched query materializes sub-results only when the batcher saw
    // its prefix overlap; without batching every query is opportunistic
    let (key, plan, plan_cache_hit, shared_prefix, materialize) = match job.prepared {
        Some(p) => (
            p.key,
            p.plan,
            p.plan_cache_hit,
            p.shared_prefix,
            p.shared_prefix,
        ),
        None => match resolve_plan(state, &job.text, job.k) {
            Ok((key, plan, plan_cache_hit)) => (key, plan, plan_cache_hit, false, true),
            Err(reason) => return fail(reason),
        },
    };

    // the pull engine: frozen by default; with an [`AdaptiveConfig`]
    // the adaptive variant checks observed-vs-estimated statistics at
    // answer boundaries and splices re-optimized plans in mid-flight
    enum Exec<'e> {
        Frozen(TopKExecution),
        Adaptive(Box<AdaptiveTopK<'e>>, Box<OptimizerReplanner<'e>>),
    }
    impl Exec<'_> {
        fn next_answer(&mut self) -> Option<Tuple> {
            match self {
                Exec::Frozen(pull) => pull.next_answer(),
                Exec::Adaptive(pull, replanner) => pull.next_answer(replanner.as_mut()),
            }
        }
    }

    // the tenant's per-query budget override wins over the server-wide
    // default; forwarded calls are charged to the tenant's cumulative
    // budget cell inside the gateway either way
    let call_budget = job
        .tinfo
        .policy
        .per_query_call_budget
        .or(state.config.call_budget);
    let mut exec = match &state.config.adaptive {
        Some(adaptive) => {
            // the re-planner consults the shared state as its
            // shared-work oracle: a splice prefers suffix plans whose
            // invoke prefix is already materialized
            let replanner = state
                .engine
                .replanner(
                    &ExecutionTime,
                    OptimizerConfig {
                        k: job.k,
                        cache: state.config.cache,
                        ..OptimizerConfig::default()
                    },
                )
                .with_oracle(Arc::clone(&state.shared) as Arc<_>);
            match AdaptiveTopK::with_shared_tenant(
                &plan,
                state.engine.schema(),
                state.engine.registry(),
                Arc::clone(&state.shared),
                call_budget,
                false,
                adaptive,
                Some(job.tenant),
            ) {
                Ok(a) => Exec::Adaptive(Box::new(a), Box::new(replanner)),
                Err(e) => return fail(e.to_string()),
            }
        }
        None => match TopKExecution::with_shared_tenant(
            &plan,
            state.engine.schema(),
            state.engine.registry(),
            Arc::clone(&state.shared),
            call_budget,
            false,
            materialize,
            Some(job.tenant),
        ) {
            Ok(p) => Exec::Frozen(p),
            Err(e) => return fail(e.to_string()),
        },
    };
    // the execution registered its own trace track (if a recorder is
    // attached): bracket it with the query's correlation id
    let query_trace = match &exec {
        Exec::Frozen(pull) => pull.trace(),
        Exec::Adaptive(pull, _) => pull.trace(),
    };
    if let Some(t) = &query_trace {
        t.instant(SpanKind::QueryStart {
            fingerprint: key.0 .0,
        });
    }
    let mut produced = 0u64;
    while produced < job.k {
        match exec.next_answer() {
            Some(answer) => {
                produced += 1;
                if job.events.send(SessionEvent::Answer(answer)).is_err() {
                    break; // session dropped: stop pulling (cancellation)
                }
            }
            None => break,
        }
    }
    if let Some(t) = &query_trace {
        t.instant(SpanKind::QueryDone { answers: produced });
    }
    let (
        per_service_faults,
        error,
        partial,
        forwarded_calls,
        forwarded_latency,
        replans,
        sub_result_hits,
        sub_result_calls_saved,
    ) = match &exec {
        Exec::Frozen(pull) => (
            pull.fault_stats(),
            pull.error(),
            pull.partial_results(),
            pull.total_calls(),
            pull.total_latency(),
            0u32,
            pull.sub_result_hits(),
            pull.sub_result_calls_saved(),
        ),
        Exec::Adaptive(pull, _) => (
            pull.fault_stats(),
            pull.error(),
            pull.partial_results(),
            pull.total_calls(),
            pull.total_latency(),
            pull.replans(),
            // the adaptive pull driver executes its own chain (a splice
            // invalidates a replayed prefix), so it never replays
            0u64,
            0u64,
        ),
    };
    let mut faults = FaultStats::default();
    for s in per_service_faults.values() {
        faults.merge(s);
    }
    // sub-result attribution happens success or fail, like faults: the
    // store counted the replay when the execution was built, and the
    // server counters must reconcile with it exactly
    state
        .metrics
        .sub_result_hits
        .fetch_add(sub_result_hits, Ordering::Relaxed);
    state
        .metrics
        .sub_result_calls_saved
        .fetch_add(sub_result_calls_saved, Ordering::Relaxed);
    if let Some(err) = error {
        // even a failed query attributes its fault accounting, so the
        // server counters reconcile with the shared gateway state
        state.metrics.observe_faults(&faults, false);
        return fail(err.to_string());
    }
    // re-plans are attributed on completion only — failed queries emit
    // no QueryStats, and the server counter must reconcile exactly with
    // the summed per-query replans
    state
        .metrics
        .replans
        .fetch_add(replans as u64, Ordering::Relaxed);
    // a query that re-planned found a better plan for its template:
    // publish it under the same fingerprint so the next submission
    // starts from the corrected plan instead of the stale one
    if replans > 0 {
        if let Exec::Adaptive(pull, _) = &exec {
            recover(state.plans.lock())
                .cache
                .insert(key, Arc::new(pull.plan().clone()));
        }
    }
    // degraded services don't fail the query: the session completes
    // with partial results naming them
    state.metrics.observe_faults(&faults, partial.is_some());

    let wall = started.elapsed().as_secs_f64();
    state.metrics.completed.fetch_add(1, Ordering::Relaxed);
    job.tinfo.completed.fetch_add(1, Ordering::Relaxed);
    state.metrics.observe_latency(wall);
    let _ = job.events.send(SessionEvent::Done(QueryStats {
        tenant: job.tenant,
        plan_cache_hit,
        forwarded_calls,
        forwarded_latency,
        wall_seconds: wall,
        retries: faults.retries,
        timeouts: faults.timeouts,
        replans,
        shared_prefix_hit: shared_prefix,
        sub_result_hits,
        sub_result_calls_saved,
        degraded_services: partial
            .map(|p| p.degraded.into_iter().map(|d| d.service).collect())
            .unwrap_or_default(),
        epoch: state.subs.epoch(),
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdq_services::domains::news::news_world;
    use mdq_services::domains::travel::travel_world;

    const NEWS_QUERY: &str = "q(City, Venue, Price) :- events('mahler-2', City, Venue, D), \
                              lowcost('Milano', City, Price), Price <= 60.0.";

    fn travel_engine() -> Mdq {
        let w = travel_world(2008);
        Mdq::from_world(World {
            schema: w.schema,
            query: w.query,
            registry: w.registry,
        })
    }

    const TRAVEL_QUERY: &str = "q(Conf, City, HPrice, FPrice, Hotel) :- \
         flight('Milano', City, Start, End, ST, ET, FPrice), \
         hotel(Hotel, City, 'luxury', Start, End, HPrice), \
         conf('DB', Conf, Start, End, City), \
         weather(City, Temp, Start), \
         Start >= '2007/3/14', End <= '2007/3/14' + 180, \
         Temp >= 28, FPrice + HPrice < 2000.";

    #[test]
    fn serves_answers_and_counts_metrics() {
        let server = QueryServer::from_world(news_world(), RuntimeConfig::default());
        let result = server.submit(NEWS_QUERY, Some(5)).collect().expect("runs");
        assert!(!result.answers.is_empty());
        assert!(!result.stats.plan_cache_hit, "first submission optimizes");
        let m = server.metrics();
        assert_eq!((m.submitted, m.completed, m.failed), (1, 1, 0));
        assert_eq!(m.optimizer_invocations, 1);
        assert!(m.total_service_calls > 0);
    }

    #[test]
    fn repeated_shape_hits_the_plan_cache() {
        let server = QueryServer::from_world(news_world(), RuntimeConfig::default());
        let first = server.submit(NEWS_QUERY, Some(5)).collect().expect("runs");
        // alpha-renamed + reordered predicate: same fingerprint
        let renamed = "q(Town, Where, Cost) :- events('mahler-2', Town, Where, Day), \
                       lowcost('Milano', Town, Cost), Cost <= 60.0.";
        let second = server.submit(renamed, Some(5)).collect().expect("runs");
        assert!(second.stats.plan_cache_hit, "renamed query reuses the plan");
        assert_eq!(first.answers, second.answers);
        let m = server.metrics();
        assert_eq!(m.optimizer_invocations, 1, "optimizer ran once");
        assert_eq!(m.plan_cache_hits, 1);
        assert_eq!(server.cached_plans(), 1);
    }

    #[test]
    fn different_k_is_a_different_plan() {
        let server = QueryServer::from_world(news_world(), RuntimeConfig::default());
        server.submit(NEWS_QUERY, Some(3)).collect().expect("runs");
        let other_k = server.submit(NEWS_QUERY, Some(5)).collect().expect("runs");
        assert!(!other_k.stats.plan_cache_hit, "fetch factors depend on k");
        assert_eq!(server.metrics().optimizer_invocations, 2);
    }

    #[test]
    fn parse_errors_fail_the_session() {
        let server = QueryServer::from_world(news_world(), RuntimeConfig::default());
        let err = server
            .submit("q(X) :- nosuch(X).", None)
            .collect()
            .expect_err("bad query");
        assert!(err.to_string().contains("query failed"));
        let m = server.metrics();
        assert_eq!((m.submitted, m.failed), (1, 1));
    }

    #[test]
    fn call_budget_rejects_expensive_queries() {
        let server = QueryServer::new(
            travel_engine(),
            RuntimeConfig {
                call_budget: Some(3),
                ..RuntimeConfig::default()
            },
        );
        let err = server
            .submit(TRAVEL_QUERY, Some(10))
            .collect()
            .expect_err("budget of 3 cannot cover the travel query");
        assert!(
            err.to_string().contains("budget"),
            "admission-control error: {err}"
        );
        assert_eq!(server.metrics().failed, 1);
    }

    const CATALOG_QUERY: &str = "q(Item, Part, Vendor, Price) :- seed('widgets', Item), \
         parts(Item, Part), offers(Part, Vendor, Price), Price <= 100.0.";

    fn adaptive_config() -> RuntimeConfig {
        RuntimeConfig {
            adaptive: Some(AdaptiveConfig::default()),
            workers: 1,
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn adaptive_server_replans_and_publishes_the_better_plan() {
        let c = mdq_services::domains::catalog::catalog_world(true);
        let server = QueryServer::new(Mdq::from_world(c.world), adaptive_config());
        let first = server
            .submit(CATALOG_QUERY, Some(10))
            .collect()
            .expect("runs");
        assert!(
            first.stats.replans >= 1,
            "the mis-estimate forces a re-plan"
        );
        let m = server.metrics();
        assert_eq!(m.replans, first.stats.replans as u64, "metrics reconcile");
        assert_eq!(server.cached_plans(), 1, "the corrected plan is published");

        // the re-submitted template starts from the corrected plan: a
        // plan-cache hit, zero further re-plans (its pages replay from
        // the shared cache, which is no observation at all), and the
        // same answers
        let second = server
            .submit(CATALOG_QUERY, Some(10))
            .collect()
            .expect("runs");
        assert!(second.stats.plan_cache_hit);
        assert_eq!(second.stats.replans, 0);
        assert_eq!(first.answers, second.answers);
        assert_eq!(
            server.metrics().replans,
            (first.stats.replans + second.stats.replans) as u64,
            "summed per-query replans reconcile with the server counter"
        );
    }

    #[test]
    fn adaptive_server_is_quiet_on_truthful_estimates() {
        let c = mdq_services::domains::catalog::catalog_world(false);
        let server = QueryServer::new(Mdq::from_world(c.world), adaptive_config());
        let result = server
            .submit(CATALOG_QUERY, Some(10))
            .collect()
            .expect("runs");
        assert_eq!(result.stats.replans, 0, "no divergence, no re-plan");
        assert_eq!(server.metrics().replans, 0);
    }

    #[test]
    fn frozen_server_reports_zero_replans() {
        let server = QueryServer::from_world(news_world(), RuntimeConfig::default());
        let result = server.submit(NEWS_QUERY, Some(5)).collect().expect("runs");
        assert_eq!(result.stats.replans, 0);
        assert_eq!(server.metrics().replans, 0);
    }

    #[test]
    fn adaptive_replan_under_faults_counts_retries_once() {
        use mdq_services::fault::{FaultConfig, FaultProfile};
        let mut c = mdq_services::domains::catalog::catalog_world(true);
        for id in [c.ids.seed, c.ids.parts, c.ids.offers] {
            let inner = c.world.registry.get(id).expect("registered").clone();
            let cfg = FaultConfig::seeded(0x5EED ^ id.0 as u64)
                .with_errors(0.08)
                .with_timeouts(0.04);
            c.world
                .registry
                .register(id, FaultProfile::seeded(inner, cfg));
        }
        let server = QueryServer::new(Mdq::from_world(c.world), adaptive_config());
        let result = server
            .submit(CATALOG_QUERY, Some(10))
            .collect()
            .expect("runs despite faults");
        assert!(result.stats.replans >= 1, "degraded observations re-plan");
        // a single query on a fresh server: its attributed retries must
        // equal the shared gateway's cumulative count exactly — a retry
        // spent before the splice is never re-counted after it
        let shared = server.shared_state().total_fault_stats();
        assert_eq!(result.stats.retries, shared.retries);
        assert_eq!(server.metrics().retries, shared.retries);
        assert_eq!(result.stats.timeouts, shared.timeouts);
    }

    #[test]
    fn submit_after_shutdown_fails_cleanly() {
        let server = QueryServer::from_world(news_world(), RuntimeConfig::default());
        server.shutdown();
        let err = server
            .submit(NEWS_QUERY, None)
            .collect()
            .expect_err("server is down");
        assert!(err.to_string().contains("shut down"), "{err}");
    }

    fn batching_config() -> RuntimeConfig {
        RuntimeConfig {
            sub_results: 16,
            batch_window: Some(std::time::Duration::from_millis(5)),
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn batched_unoptimizable_query_fails_once_and_counts_once() {
        // parseable but not executable (weather alone has no permissible
        // pattern): the batcher must fail the session itself, without a
        // second optimizer run or double-counted metrics in the worker
        let server = QueryServer::new(travel_engine(), batching_config());
        let err = server
            .submit("q(City) :- weather(City, Temp, Day).", Some(5))
            .collect()
            .expect_err("not executable");
        assert!(err.to_string().contains("not executable"), "{err}");
        let m = server.metrics();
        assert_eq!((m.submitted, m.failed, m.completed), (1, 1, 0));
        assert_eq!(m.optimizer_invocations, 1, "optimized exactly once");
        assert_eq!(m.plan_cache_misses, 1);
        // batched parse failures still surface through the worker path
        let err = server
            .submit("q(X) :- nosuch(X).", Some(5))
            .collect()
            .expect_err("parse error");
        assert!(err.to_string().contains("query failed"), "{err}");
        assert_eq!(server.metrics().failed, 2);
    }

    #[test]
    fn adaptive_batches_plan_standalone_and_flag_nothing() {
        // with adaptivity on, the adaptive executor never replays
        // sub-results, so the batcher must not flag shared prefixes
        // (nor optimize under a discount it cannot realize)
        let c = mdq_services::domains::catalog::catalog_world(false);
        let server = QueryServer::new(
            Mdq::from_world(c.world),
            RuntimeConfig {
                adaptive: Some(AdaptiveConfig::default()),
                ..batching_config()
            },
        );
        let sessions: Vec<_> = (0..4)
            .map(|_| server.submit(CATALOG_QUERY, Some(5)))
            .collect();
        for s in sessions {
            s.collect().expect("runs");
        }
        let m = server.metrics();
        assert_eq!(m.completed, 4);
        assert_eq!(m.shared_prefix_hits, 0, "adaptive batches flag nothing");
        assert_eq!(m.sub_result_hits, 0, "the adaptive path never replays");
    }

    #[test]
    fn shutdown_rejection_counts_rejected_not_submitted() {
        // the regression this pins: `submit` used to bump `submitted`
        // before the shutdown check, so every refusal broke the
        // submitted = completed + failed + in-flight reconciliation
        let server = QueryServer::from_world(news_world(), RuntimeConfig::default());
        server.shutdown();
        let err = server
            .submit(NEWS_QUERY, None)
            .collect()
            .expect_err("server is down");
        assert!(err.to_string().contains("shut down"), "{err}");
        let m = server.metrics();
        assert_eq!(m.submitted, 0, "a refusal is not a submission");
        assert_eq!(m.failed, 0, "nor a failed query");
        assert_eq!(m.rejected, 1, "it counts in its own counter");
    }

    #[test]
    fn queue_bound_sheds_with_retry_after() {
        let server = QueryServer::from_world(
            news_world(),
            RuntimeConfig {
                workers: 1,
                max_queue_depth: 1,
                ..RuntimeConfig::default()
            },
        );
        // exhaust the bound quickly; at least one push must shed (the
        // worker drains, so exact counts depend on timing)
        let sessions: Vec<_> = (0..32)
            .map(|_| server.try_submit(DEFAULT_TENANT, NEWS_QUERY, Some(3)))
            .collect();
        let shed = sessions.iter().filter(|s| s.is_err()).count() as u64;
        assert!(shed > 0, "a depth-1 queue cannot absorb 32 instant pushes");
        for s in sessions.into_iter().flatten() {
            s.collect().expect("admitted queries complete");
        }
        let m = server.metrics();
        assert_eq!(m.rejected, shed);
        assert_eq!(m.shed_queue_full, shed);
        assert_eq!(m.submitted, 32 - shed);
        assert_eq!(m.completed, 32 - shed, "admitted work all completed");
        // refill until we catch a live rejection to inspect
        let rejection = loop {
            match server.try_submit(DEFAULT_TENANT, NEWS_QUERY, Some(3)) {
                Err(r) => break r,
                Ok(_) => continue,
            }
        };
        match rejection {
            Rejection::QueueFull { retry_after } => {
                assert_eq!(retry_after, server.state.config.shed_retry_after);
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
    }

    #[test]
    fn unoptimizable_template_is_memoized_for_waiters_and_repeats() {
        // satellite 3: the single-flight claim owner publishes the
        // optimizer error before releasing the claim, so concurrent
        // waiters wake into the error — and later submissions hit the
        // memo without re-running the optimizer
        let server = QueryServer::new(
            travel_engine(),
            RuntimeConfig {
                workers: 4,
                ..RuntimeConfig::default()
            },
        );
        let unoptimizable = "q(City) :- weather(City, Temp, Day).";
        let sessions: Vec<_> = (0..8)
            .map(|_| server.submit(unoptimizable, Some(5)))
            .collect();
        for s in sessions {
            let err = s.collect().expect_err("not executable");
            assert!(err.to_string().contains("not executable"), "{err}");
        }
        let m = server.metrics();
        assert_eq!((m.submitted, m.failed), (8, 8));
        assert_eq!(m.optimizer_invocations, 1, "one optimizer run for all 8");
        assert_eq!(
            m.plan_failed_memo_hits, 7,
            "waiters and repeats hit the failure memo"
        );
        // the recovery lever: forgetting the memo re-enables the
        // optimizer for the template
        assert_eq!(server.forget_failed_plans(), 1);
        server
            .submit(unoptimizable, Some(5))
            .collect()
            .expect_err("still not executable");
        assert_eq!(server.metrics().optimizer_invocations, 2);
    }

    /// Builds a queued job for scheduler-order tests (nothing ever
    /// executes it).
    fn probe_job(text: &str, tenant: TenantId, tinfo: Arc<TenantInfo>) -> Job {
        let (events, _rx) = mpsc::channel();
        std::mem::forget(_rx); // keep the channel open; the job is inert
        Job {
            text: text.to_string(),
            k: 1,
            tenant,
            tinfo,
            events,
            submitted_at: Instant::now(),
            prepared: None,
        }
    }

    #[test]
    fn scheduler_round_robins_across_tenants() {
        // structural fairness: a tenant that floods its queue is served
        // one-for-one against a tenant that queued a single job — the
        // light tenant's job comes out second, not behind the flood
        let tenants = TenantRegistry::new();
        let flooder = tenants.register("flooder", TenantPolicy::default());
        let light = tenants.register("light", TenantPolicy::default());
        let sched = Scheduler::new(0, Duration::from_millis(50));
        for i in 0..8 {
            let job = probe_job(
                &format!("flood {i}"),
                flooder,
                tenants.get(flooder).unwrap(),
            );
            assert!(sched.push(job, 0).is_ok(), "unbounded push");
        }
        assert!(
            sched
                .push(probe_job("light", light, tenants.get(light).unwrap()), 0)
                .is_ok(),
            "unbounded push"
        );
        let order: Vec<TenantId> = (0..9)
            .map(|_| sched.pop().expect("queued").tenant)
            .collect();
        assert_eq!(order[0], flooder, "the flood got there first");
        assert_eq!(order[1], light, "round-robin serves the light tenant next");
        assert!(order[2..].iter().all(|&t| t == flooder));
        assert_eq!(sched.depth(), 0);
        // a per-tenant bound sheds the flooder while the light tenant
        // still gets in
        let bounded = Scheduler::new(0, Duration::from_millis(50));
        assert!(
            bounded
                .push(probe_job("a", flooder, tenants.get(flooder).unwrap()), 1)
                .is_ok(),
            "first fits"
        );
        match bounded.push(probe_job("b", flooder, tenants.get(flooder).unwrap()), 1) {
            Err(Rejection::TenantQueueFull { .. }) => {}
            Err(other) => panic!("expected the tenant bound to shed, got {other}"),
            Ok(_) => panic!("expected the tenant bound to shed, got admission"),
        }
        assert!(
            bounded
                .push(probe_job("c", light, tenants.get(light).unwrap()), 1)
                .is_ok(),
            "other tenants unaffected"
        );
    }

    #[test]
    fn tenant_snapshots_reconcile_end_to_end() {
        let server = QueryServer::from_world(
            news_world(),
            RuntimeConfig {
                workers: 2,
                ..RuntimeConfig::default()
            },
        );
        let flooder = server.register_tenant("flooder", TenantPolicy::default());
        let light = server.register_tenant("light", TenantPolicy::default());
        let flood: Vec<_> = (0..12)
            .map(|_| {
                server
                    .try_submit(flooder, NEWS_QUERY, Some(3))
                    .expect("admitted")
            })
            .collect();
        let quick = server
            .try_submit(light, NEWS_QUERY, Some(3))
            .expect("admitted");
        let result = quick.collect().expect("light tenant completes");
        assert_eq!(result.stats.tenant, light);
        for s in flood {
            s.collect().expect("flooded queries complete");
        }
        let m = server.metrics();
        let f = m.tenants.iter().find(|t| t.name == "flooder").unwrap();
        let l = m.tenants.iter().find(|t| t.name == "light").unwrap();
        assert_eq!((f.submitted, f.completed, f.failed, f.shed), (12, 12, 0, 0));
        assert_eq!((l.submitted, l.completed), (1, 1));
        // every execution ran tenanted, so the per-tenant budget cells
        // account for every forwarded call (whichever tenant's
        // execution won the cache races and did the forwarding)
        let charged: u64 = m.tenants.iter().map(|t| t.forwarded_calls).sum();
        assert!(charged > 0, "someone forwarded the first fetches");
        assert_eq!(
            charged, m.total_service_calls,
            "tenant budget cells reconcile with the gateway call accounting"
        );
        assert_eq!(
            m.submitted,
            m.tenants.iter().map(|t| t.submitted).sum::<u64>(),
            "per-tenant submissions sum to the global counter"
        );
    }

    /// A service that panics on every fetch — the worker-pool
    /// resilience probe.
    struct PanickingService;

    impl mdq_services::service::Service for PanickingService {
        fn name(&self) -> &str {
            "lowcost"
        }
        fn fetch(
            &self,
            _pattern: usize,
            _inputs: &[mdq_model::value::Value],
            _page: u32,
        ) -> mdq_services::service::ServiceResponse {
            panic!("injected service panic");
        }
    }

    #[test]
    fn worker_pool_survives_a_panicking_job() {
        // satellite 2: one panicking job must fail its own session and
        // nothing else — no dead worker, no poisoned-lock cascade into
        // later queries
        let mut world = news_world();
        let id = world
            .schema
            .service_by_name("lowcost")
            .expect("news world has lowcost");
        world.registry.register(id, PanickingService);
        let server = QueryServer::from_world(
            world,
            RuntimeConfig {
                workers: 1,
                ..RuntimeConfig::default()
            },
        );
        let err = server
            .submit(NEWS_QUERY, Some(3))
            .collect()
            .expect_err("the panicking service fails the query");
        assert!(err.to_string().contains("panicked"), "{err}");
        let m = server.metrics();
        assert_eq!(m.worker_panics, 1);
        assert_eq!((m.submitted, m.failed), (1, 1));
        // the single worker survived: a query avoiding the broken
        // service still completes
        let events_only = "q(City, Venue) :- events('mahler-2', City, Venue, D).";
        let result = server
            .submit(events_only, Some(3))
            .collect()
            .expect("the pool still serves");
        assert!(!result.answers.is_empty());
        assert_eq!(server.metrics().completed, 1);
    }
}
